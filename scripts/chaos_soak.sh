#!/usr/bin/env bash
# Crash-recovery soak for the serve daemon: run it over loopback TCP
# with a durable journal, SIGKILL it mid-run, restart it with
# --recover on the same journal, and prove the recovery contract:
# every submitted job finishes with exact iteration coverage
# (completed == total, no loss, no duplication) and the recovered
# run's trace validates.
#
#   scripts/chaos_soak.sh [ROUNDS]
#
# Artifacts (daemon logs + the recovered run's trace) land under
# results/soak/ — gitignored — or $SOAK_OUT when set (CI points it at
# a scratch dir it uploads).
#
# Exits non-zero on the first failing round.
set -euo pipefail

ROUNDS="${1:-3}"
JOBS=8
ITERS=8000000
# Light per-iteration cost: the default (20k units) makes each
# iteration ~10µs and the soak would take minutes per round.
COST=40
cd "$(dirname "$0")/.."

OUT="${SOAK_OUT:-results/soak}"
mkdir -p "$OUT"

cargo build --release -p lss-cli >/dev/null
LSS=target/release/lss

# A killed or failed run must not leave daemons behind: an orphaned
# phase-1 daemon from a previous invocation keeps polling its journal
# dir and steals CPU from the next round.
SERVE_PID=""
RECOVER_PID=""
cleanup() {
    [[ -n "$SERVE_PID" ]] && kill -9 "$SERVE_PID" 2>/dev/null
    [[ -n "$RECOVER_PID" ]] && kill -9 "$RECOVER_PID" 2>/dev/null
    true
}
trap cleanup EXIT

# Polls a daemon log for its "listening on HOST:PORT" line and prints
# the address. The daemon picks an ephemeral port (--port 0), so a
# killed round never leaves the next one fighting over a socket.
await_addr() {
    local log=$1 addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^serve: listening on \([0-9.:]*\).*/\1/p' "$log" | head -1)
        [[ -n "$addr" ]] && break
        sleep 0.1
    done
    [[ -n "$addr" ]] || { echo "daemon never came up; log:" >&2; cat "$log" >&2; exit 1; }
    echo "$addr"
}

for ((round = 1; round <= ROUNDS; round++)); do
    echo "=== chaos-soak round ${round}/${ROUNDS} ==="
    DIR=$(mktemp -d)
    rm -f "$OUT"/soak_serve.log "$OUT"/soak_recover.log "$OUT"/soak_trace.json

    # Phase 1: daemon with a fresh journal; SIGKILL it mid-run so some
    # jobs are done, some mid-flight, and the WAL tail is whatever the
    # crash left behind.
    "$LSS" serve --port 0 --workers 4 --local-workers \
        --journal "$DIR/journal" >"$OUT"/soak_serve.log 2>&1 &
    SERVE_PID=$!
    ADDR=$(await_addr "$OUT"/soak_serve.log)
    "$LSS" submit --connect "$ADDR" --count "$JOBS" dtss \
        --iters "$ITERS" --cost "$COST"
    sleep 0.8
    kill -9 "$SERVE_PID"
    wait "$SERVE_PID" 2>/dev/null || true
    SERVE_PID=""
    echo "daemon SIGKILLed mid-run (journal at $DIR/journal)"

    # Phase 2: recover on the same journal. Unfinished jobs are
    # re-admitted with only their un-completed iterations; drain stops
    # the service once they retire.
    "$LSS" serve --port 0 --workers 4 --local-workers \
        --recover "$DIR/journal" --trace-out "$OUT"/soak_trace.json \
        >"$OUT"/soak_recover.log 2>&1 &
    RECOVER_PID=$!
    ADDR=$(await_addr "$OUT"/soak_recover.log)
    "$LSS" jobs --connect "$ADDR" --drain
    wait "$RECOVER_PID"
    RECOVER_PID=""
    cat "$OUT"/soak_recover.log

    # The recovered run must have re-admitted work (the kill landed
    # mid-run, not after completion) and finished every job exactly:
    # a completed/total mismatch means lost or duplicated iterations.
    if ! grep -qE '^  job [0-9]+ \[done\]' "$OUT"/soak_recover.log; then
        echo "FAIL round ${round}: recovery re-admitted no jobs"; exit 1
    fi
    if grep -E '^  job [0-9]+ \[' "$OUT"/soak_recover.log | grep -vE '\[done\]'; then
        echo "FAIL round ${round}: a recovered job did not finish"; exit 1
    fi
    if grep -oE '[0-9]+/[0-9]+ iterations' "$OUT"/soak_recover.log \
        | awk -F'[/ ]' '$1 != $2 { exit 1 }'; then :; else
        echo "FAIL round ${round}: iteration coverage mismatch"; exit 1
    fi
    "$LSS" trace --validate "$OUT"/soak_trace.json
    rm -rf "$DIR"
done

echo "chaos-soak: ${ROUNDS}/${ROUNDS} rounds green"
