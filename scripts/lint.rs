//! Repo-specific lint rules, shared between the standalone script
//! (`rustc scripts/lint.rs -o /tmp/lss-lint && /tmp/lss-lint .`) and
//! `lss-verify`'s lint engine (which includes this file via `#[path]`).
//!
//! Five rules, each encoding an architectural invariant the compiler
//! cannot express:
//!
//! 1. **scheme-purity** — files under `crates/core/src/scheme/` are
//!    pure chunk-size formulas: no clocks, threads, filesystem,
//!    network, or console I/O outside `#[cfg(test)]` regions.
//! 2. **no-wall-clock** — `crates/core/src` and `crates/sim/src` model
//!    logical/virtual time only; `Instant::now` / `SystemTime::now`
//!    would make simulations non-reproducible.
//! 3. **no-unwrap-runtime** — `crates/runtime/src` non-test code must
//!    not call `.unwrap()`; a master must degrade, not panic, when a
//!    worker misbehaves (the lease/self-healing design depends on it).
//! 4. **serve-link-deadline** — no `ServeLink` call site may disable
//!    its request deadline with `set_deadline(None)`, and no transport
//!    read (serve links or `runtime/transport`) may clear its socket
//!    timeout with `set_read_timeout(None)`; an unbounded read is how
//!    a half-open peer parks a thread forever (PR 7, PR 10).
//! 5. **serve-scheduler-pure-time** — `crates/serve/src/scheduler.rs`
//!    decision functions take logical `now_ns` parameters; reading the
//!    wall clock there would make the serve-scheduler interleaving
//!    explorer in `lss-verify` unable to drive the real code.
//!
//! Rules scan the *non-test region* of each file: everything before the
//! first `#[cfg(test)]` line, with `//` comments stripped.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// One rule violation at a specific file/line.
#[derive(Debug, Clone)]
pub struct LintFinding {
    /// Rule identifier (e.g. `scheme-purity`).
    pub rule: &'static str,
    /// Path relative to the repo root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The forbidden pattern that matched.
    pub pattern: &'static str,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] forbidden `{}`: {}",
            self.file, self.line, self.rule, self.pattern, self.excerpt
        )
    }
}

/// A set of roots (directory subtrees or single files) plus the
/// patterns their non-test code must avoid.
struct Rule {
    name: &'static str,
    roots: &'static [&'static str],
    forbidden: &'static [&'static str],
}

const RULES: &[Rule] = &[
    Rule {
        name: "scheme-purity",
        roots: &["crates/core/src/scheme"],
        forbidden: &[
            "std::time",
            "Instant::now",
            "SystemTime",
            "std::thread",
            "std::fs::",
            "std::net",
            "println!",
            "eprintln!",
        ],
    },
    Rule {
        name: "no-wall-clock",
        roots: &["crates/core/src", "crates/sim/src"],
        forbidden: &["Instant::now", "SystemTime::now"],
    },
    Rule {
        name: "no-unwrap-runtime",
        roots: &["crates/runtime/src"],
        forbidden: &[".unwrap()"],
    },
    // The deadline discipline spans both layers: no serve-link call
    // site may disable its request deadline, and no transport read may
    // clear its socket timeout — `set_read_timeout(None)` is exactly
    // the half-open-socket bug (a silent peer parks a thread forever).
    // Blocking semantics are expressed as loops over finite slices.
    Rule {
        name: "serve-link-deadline",
        roots: &["crates/serve/src", "crates/cli/src", "crates/runtime/src/transport"],
        forbidden: &["set_deadline(None)", "set_read_timeout(None)"],
    },
    Rule {
        name: "serve-scheduler-pure-time",
        roots: &["crates/serve/src/scheduler.rs"],
        forbidden: &["std::time", "Instant::now", "SystemTime"],
    },
    // Shard steal/grant decisions must replay identically under the
    // simulator's logical clock and the runtime's monotonic one; wall
    // clocks would make lease expiry and drain-reclaim nondeterministic.
    Rule {
        name: "shard-no-wall-clock",
        roots: &["crates/shard/src"],
        forbidden: &["std::time", "Instant::now", "SystemTime"],
    },
];

/// Strips `//` line comments (naive: does not track string literals,
/// which is fine for pattern denial — a pattern hidden in a string
/// would be reported, and none legitimately appear in one).
fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(idx) => &line[..idx],
        None => line,
    }
}

/// Scans one file's non-test region against a rule's patterns.
fn scan_file(rule: &Rule, root: &Path, path: &Path, findings: &mut Vec<LintFinding>) {
    let Ok(text) = fs::read_to_string(path) else {
        return;
    };
    let rel = path
        .strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/");
    for (idx, raw) in text.lines().enumerate() {
        if raw.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        let line = strip_comment(raw);
        for pat in rule.forbidden {
            if line.contains(pat) {
                findings.push(LintFinding {
                    rule: rule.name,
                    file: rel.clone(),
                    line: idx + 1,
                    pattern: pat,
                    excerpt: raw.trim().to_string(),
                });
            }
        }
    }
}

/// Recursively collects `.rs` files under `dir`.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Runs every rule against the repo rooted at `repo_root`.
pub fn run_lints(repo_root: &Path) -> Result<Vec<LintFinding>, String> {
    if !repo_root.join("Cargo.toml").is_file() {
        return Err(format!(
            "{} does not look like the repo root (no Cargo.toml)",
            repo_root.display()
        ));
    }
    let mut findings = Vec::new();
    for rule in RULES {
        for sub in rule.roots {
            let root = repo_root.join(sub);
            let mut files = Vec::new();
            if root.is_file() {
                files.push(root);
            } else {
                rust_files(&root, &mut files);
            }
            for file in &files {
                scan_file(rule, repo_root, file, &mut findings);
            }
        }
    }
    Ok(findings)
}

/// Names of all rules, for reporting.
pub fn rule_names() -> Vec<&'static str> {
    RULES.iter().map(|r| r.name).collect()
}

fn main() {
    let root = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    match run_lints(Path::new(&root)) {
        Ok(findings) if findings.is_empty() => {
            println!("lint: OK ({} rules clean)", rule_names().len());
        }
        Ok(findings) => {
            for f in &findings {
                eprintln!("{f}");
            }
            eprintln!("lint: {} violation(s)", findings.len());
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("lint: {e}");
            std::process::exit(2);
        }
    }
}
