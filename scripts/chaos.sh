#!/usr/bin/env bash
# Loop the chaos/fault test suite N times (default 5) to flush out
# timing-sensitive flakes in lease expiry, reconnect and requeue paths.
#
#   scripts/chaos.sh [N]
#
# Exits non-zero on the first failing round, printing which round died.
set -euo pipefail

N="${1:-5}"
cd "$(dirname "$0")/.."

# Build once so the loop times the tests, not the compiler.
cargo test --release --no-run --workspace >/dev/null

for ((round = 1; round <= N; round++)); do
    echo "=== chaos round ${round}/${N} ==="
    # End-to-end chaos over channels + TCP, hang/reconnect/degrade/lossy.
    cargo test --release --test runtime_end_to_end -- \
        chaos hung_worker reconnecting degraded lossy
    # Property-based exactly-once invariants under arbitrary fault plans.
    cargo test --release --test fault_invariants
    # Deterministic simulator fault injection regressions.
    cargo test --release -p lss-sim chaos_tests
done

echo "chaos suite: ${N}/${N} rounds green"
