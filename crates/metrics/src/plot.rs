//! ASCII plots, CSV series and PPM images for the figures.
//!
//! Figures 1 and 4–7 are line/scatter plots; Figure 2 is the fractal
//! itself. Experiments write a machine-readable CSV next to an
//! immediately-readable ASCII rendering, and the fractal additionally
//! as a binary PPM.

use std::fmt::Write as _;

/// Renders one or more named series as an ASCII chart.
///
/// `series` are `(name, points)` pairs; all points are `(x, y)`.
/// Each series is drawn with its own glyph (`*`, `o`, `+`, …).
pub fn ascii_chart(
    title: &str,
    series: &[(String, Vec<(f64, f64)>)],
    width: usize,
    height: usize,
) -> String {
    assert!(width >= 16 && height >= 4, "chart too small");
    let glyphs = ['*', 'o', '+', 'x', '#', '@', '%', '&'];
    let all: Vec<(f64, f64)> = series.iter().flat_map(|(_, pts)| pts.iter().copied()).collect();
    if all.is_empty() {
        return format!("{title}\n(no data)\n");
    }
    let (mut x0, mut x1) = (f64::MAX, f64::MIN);
    let (mut y0, mut y1) = (0.0f64, f64::MIN);
    for &(x, y) in &all {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    if (x1 - x0).abs() < 1e-12 {
        x1 = x0 + 1.0;
    }
    if (y1 - y0).abs() < 1e-12 {
        y1 = y0 + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        let g = glyphs[si % glyphs.len()];
        for &(x, y) in pts {
            let cx = ((x - x0) / (x1 - x0) * (width - 1) as f64).round() as usize;
            let cy = ((y - y0) / (y1 - y0) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = g;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "y: {:.2} .. {:.2}", y0, y1);
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    let _ = writeln!(out, " x: {:.1} .. {:.1}", x0, x1);
    for (si, (name, _)) in series.iter().enumerate() {
        let _ = writeln!(out, "  {} {}", glyphs[si % glyphs.len()], name);
    }
    out
}

/// Serializes named series as CSV: `x,<name1>,<name2>,…` — one row per
/// distinct x value, empty cells where a series lacks that x.
pub fn series_csv(series: &[(String, Vec<(f64, f64)>)]) -> String {
    let mut xs: Vec<f64> = series.iter().flat_map(|(_, p)| p.iter().map(|&(x, _)| x)).collect();
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
    let mut out = String::from("x");
    for (name, _) in series {
        out.push(',');
        out.push_str(name);
    }
    out.push('\n');
    for &x in &xs {
        let _ = write!(out, "{x}");
        for (_, pts) in series {
            out.push(',');
            if let Some(&(_, y)) = pts.iter().find(|&&(px, _)| (px - x).abs() < 1e-12) {
                let _ = write!(out, "{y}");
            }
        }
        out.push('\n');
    }
    out
}

/// Serializes a single `u64` profile as `index,value` CSV — the Figure
/// 1 format (iteration number vs. basic computations).
pub fn profile_csv(header: &str, profile: &[u64]) -> String {
    let mut out = format!("index,{header}\n");
    for (i, v) in profile.iter().enumerate() {
        let _ = writeln!(out, "{i},{v}");
    }
    out
}

/// Downsamples a profile to at most `buckets` points by taking bucket
/// maxima — keeps the envelope visible in a terminal-width plot.
pub fn downsample_max(profile: &[u64], buckets: usize) -> Vec<(f64, f64)> {
    assert!(buckets >= 1);
    if profile.is_empty() {
        return Vec::new();
    }
    let per = profile.len().div_ceil(buckets);
    profile
        .chunks(per)
        .enumerate()
        .map(|(i, c)| ((i * per) as f64, *c.iter().max().unwrap() as f64))
        .collect()
}

/// Encodes a grayscale image (row-major `values`, arbitrary scale) as a
/// binary PPM (P6), mapping 0..max to a blue-to-white palette —
/// adequate for eyeballing the Figure 2 fractal.
pub fn ppm_image(values: &[u32], width: usize, height: usize) -> Vec<u8> {
    assert_eq!(values.len(), width * height, "image size mismatch");
    let max = values.iter().copied().max().unwrap_or(1).max(1);
    let mut out = format!("P6\n{width} {height}\n255\n").into_bytes();
    out.reserve(3 * values.len());
    for &v in values {
        let t = (v as f64 / max as f64).powf(0.45); // gamma for contrast
        let r = (t * 255.0) as u8;
        let g = (t * 220.0) as u8;
        let b = 64u8.saturating_add((t * 191.0) as u8);
        out.extend_from_slice(&[r, g, b]);
    }
    out
}

/// Renders the image as ASCII art (for terminals / EXPERIMENTS.md),
/// downsampling to `cols` characters wide.
pub fn ascii_image(values: &[u32], width: usize, height: usize, cols: usize) -> String {
    assert_eq!(values.len(), width * height, "image size mismatch");
    assert!(cols >= 1);
    let ramp: &[u8] = b" .:-=+*#%@";
    let rows = (cols * height / width / 2).max(1); // terminal cells ~2:1
    let max = values.iter().copied().max().unwrap_or(1).max(1) as f64;
    let mut out = String::new();
    for r in 0..rows {
        for c in 0..cols {
            let y = r * height / rows;
            let x = c * width / cols;
            let v = values[y * width + x] as f64 / max;
            let idx = (v * (ramp.len() - 1) as f64).round() as usize;
            out.push(ramp[idx] as char);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_contains_series_glyphs_and_legend() {
        let s = vec![
            ("TSS".to_string(), vec![(1.0, 1.0), (2.0, 1.5), (4.0, 2.5)]),
            ("FSS".to_string(), vec![(1.0, 1.0), (2.0, 1.2), (4.0, 2.0)]),
        ];
        let c = ascii_chart("Fig 4", &s, 40, 10);
        assert!(c.contains('*'));
        assert!(c.contains('o'));
        assert!(c.contains("TSS"));
        assert!(c.contains("Fig 4"));
    }

    #[test]
    fn chart_empty_series_safe() {
        let c = ascii_chart("empty", &[], 40, 10);
        assert!(c.contains("no data"));
    }

    #[test]
    fn csv_merges_x_values() {
        let s = vec![
            ("a".to_string(), vec![(1.0, 10.0), (2.0, 20.0)]),
            ("b".to_string(), vec![(2.0, 200.0)]),
        ];
        let csv = series_csv(&s);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,a,b");
        assert_eq!(lines[1], "1,10,");
        assert_eq!(lines[2], "2,20,200");
    }

    #[test]
    fn profile_csv_shape() {
        let csv = profile_csv("cost", &[5, 7]);
        assert_eq!(csv, "index,cost\n0,5\n1,7\n");
    }

    #[test]
    fn downsample_keeps_maxima() {
        let profile: Vec<u64> = (0..100).collect();
        let pts = downsample_max(&profile, 10);
        assert_eq!(pts.len(), 10);
        assert_eq!(pts[9].1, 99.0);
    }

    #[test]
    fn ppm_has_header_and_size() {
        let img = ppm_image(&[0, 1, 2, 3], 2, 2);
        assert!(img.starts_with(b"P6\n2 2\n255\n"));
        assert_eq!(img.len(), 11 + 12);
    }

    #[test]
    fn ascii_image_dims() {
        let values = vec![0u32; 64 * 32];
        let art = ascii_image(&values, 64, 32, 32);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 8); // 32 cols * 32/64 / 2
        assert!(lines.iter().all(|l| l.len() == 32));
    }

    #[test]
    #[should_panic]
    fn ppm_size_mismatch_rejected() {
        ppm_image(&[0, 1, 2], 2, 2);
    }
}

/// Renders a per-PE Gantt chart from `(pe, start, end)` spans.
///
/// Alternating glyphs make chunk boundaries visible; `.` marks idle
/// (waiting/communicating) time. `t_end` sets the axis range.
pub fn gantt_ascii(
    title: &str,
    spans: &[(usize, f64, f64)],
    num_pes: usize,
    t_end: f64,
    width: usize,
) -> String {
    assert!(width >= 16, "chart too narrow");
    assert!(t_end > 0.0, "empty time axis");
    let glyphs = ['#', '='];
    let mut rows = vec![vec!['.'; width]; num_pes];
    let mut counts = vec![0usize; num_pes];
    let col = |t: f64| ((t / t_end * width as f64) as usize).min(width - 1);
    let mut sorted: Vec<_> = spans.to_vec();
    sorted.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    for &(pe, start, end) in &sorted {
        assert!(pe < num_pes, "span for unknown PE {pe}");
        let g = glyphs[counts[pe] % glyphs.len()];
        counts[pe] += 1;
        let (c0, c1) = (col(start), col(end.min(t_end)));
        for cell in &mut rows[pe][c0..=c1] {
            *cell = g;
        }
    }
    let mut out = format!("{title}\n");
    for (pe, row) in rows.iter().enumerate() {
        out.push_str(&format!("PE{:<2}|", pe + 1));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("    +{}\n     0s{:>w$.1}s\n", "-".repeat(width), t_end, w = width - 3));
    out
}

#[cfg(test)]
mod gantt_tests {
    use super::gantt_ascii;

    #[test]
    fn gantt_draws_spans_and_idle() {
        let spans = vec![(0usize, 0.0, 5.0), (0, 6.0, 8.0), (1, 0.0, 10.0)];
        let g = gantt_ascii("run", &spans, 2, 10.0, 40);
        let lines: Vec<&str> = g.lines().collect();
        assert!(lines[1].starts_with("PE1 |#"));
        assert!(lines[1].contains('.'), "idle gap visible");
        assert!(lines[1].contains('='), "second chunk alternates glyph");
        assert!(lines[2].starts_with("PE2 |#"));
        assert!(!lines[2][5..].contains('.'), "PE2 fully busy");
    }

    #[test]
    #[should_panic]
    fn gantt_rejects_unknown_pe() {
        gantt_ascii("x", &[(5, 0.0, 1.0)], 2, 10.0, 40);
    }
}
