//! Per-PE time breakdowns — the unit of Tables 2 and 3.
//!
//! The paper tabulates, for every slave `PE_i`, the triple
//! `T_com / T_wait / T_comp` (seconds spent communicating, waiting for
//! the master, and computing), plus `T_p`, "the total time measured on
//! the Master PE".

use crate::fault::FaultLog;
use crate::stats;

/// One slave's accumulated times, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TimeBreakdown {
    /// Time spent transferring requests, replies and (piggy-backed)
    /// result data.
    pub t_com: f64,
    /// Time spent idle, waiting for the master to service a request
    /// (queueing at the master) or waiting for work to appear.
    pub t_wait: f64,
    /// Time spent computing loop iterations.
    pub t_comp: f64,
}

impl TimeBreakdown {
    /// A zeroed breakdown.
    pub fn zero() -> Self {
        Self::default()
    }

    /// The slave's busy-or-blocked wall time `t_j`.
    pub fn total(&self) -> f64 {
        self.t_com + self.t_wait + self.t_comp
    }

    /// Formats as the paper's `com/wait/comp` cell, e.g. `2.7/17.5/3.5`.
    pub fn cell(&self) -> String {
        format!("{:.1}/{:.1}/{:.1}", self.t_com, self.t_wait, self.t_comp)
    }

    /// Rebuilds one worker's breakdown from a trace's accounting
    /// deltas (`comm`/`wait`/`comp` events).
    ///
    /// Both engines attribute every accounted nanosecond to exactly one
    /// delta event, so each component is an exact integer-nanosecond
    /// sum converted to seconds once — a traced run's breakdown equals
    /// the engine's own `TimeBreakdown` to the last bit (the engines
    /// accumulate in integer nanoseconds too), not merely within
    /// floating-point noise.
    pub fn from_trace(trace: &lss_trace::Trace, worker: usize) -> Self {
        let per_worker = lss_trace::breakdowns(trace);
        let b = per_worker.get(worker).copied().unwrap_or_default();
        // `/ 1e9`, not `* 1e-9`: the same rounding the engines use to
        // convert their own integer-nanosecond accumulators.
        TimeBreakdown {
            t_com: b.com_ns as f64 / 1e9,
            t_wait: b.wait_ns as f64 / 1e9,
            t_comp: b.comp_ns as f64 / 1e9,
        }
    }

    /// [`TimeBreakdown::from_trace`] for every worker in the trace.
    pub fn all_from_trace(trace: &lss_trace::Trace) -> Vec<Self> {
        lss_trace::breakdowns(trace)
            .into_iter()
            .map(|b| TimeBreakdown {
                t_com: b.com_ns as f64 / 1e9,
                t_wait: b.wait_ns as f64 / 1e9,
                t_comp: b.comp_ns as f64 / 1e9,
            })
            .collect()
    }
}

/// The outcome of one scheduled loop execution: what one column of
/// Table 2/3 contains, plus derived statistics.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Scheme name (table column header).
    pub scheme: String,
    /// Per-slave breakdowns, index = `PE_i - 1`.
    pub per_pe: Vec<TimeBreakdown>,
    /// Parallel execution time measured at the master.
    pub t_p: f64,
    /// Total number of scheduling steps (chunks) the master served.
    pub scheduling_steps: u64,
    /// Iterations executed by each slave.
    pub iterations: Vec<u64>,
    /// Plans made by a distributed master (0 = non-distributed scheme,
    /// 1 = only the initial plan, >1 = re-planning fired).
    pub plans: u32,
    /// Fault activity during the run (empty when nothing failed).
    pub faults: FaultLog,
}

impl RunReport {
    /// Creates a report; `t_p` should be the master-observed makespan.
    pub fn new(
        scheme: impl Into<String>,
        per_pe: Vec<TimeBreakdown>,
        t_p: f64,
        scheduling_steps: u64,
        iterations: Vec<u64>,
    ) -> Self {
        let r = RunReport {
            scheme: scheme.into(),
            per_pe,
            t_p,
            scheduling_steps,
            iterations,
            plans: 0,
            faults: FaultLog::new(),
        };
        assert_eq!(r.per_pe.len(), r.iterations.len(), "per-PE vectors disagree");
        r
    }

    /// Records the number of plans a distributed master made.
    pub fn with_plans(mut self, plans: u32) -> Self {
        self.plans = plans;
        self
    }

    /// Attaches the run's fault-event log.
    pub fn with_faults(mut self, faults: FaultLog) -> Self {
        self.faults = faults;
        self
    }

    /// Whether any fault activity was observed.
    pub fn had_faults(&self) -> bool {
        !self.faults.is_empty()
    }

    /// Number of slaves.
    pub fn num_pes(&self) -> usize {
        self.per_pe.len()
    }

    /// Mean computation time across PEs.
    pub fn mean_comp(&self) -> f64 {
        stats::mean(&self.comp_times())
    }

    /// Coefficient of variation of the *computation* times — the
    /// paper's informal "the execution is (not) well-balanced, in terms
    /// of the computation times" made quantitative. 0 = perfect.
    pub fn comp_imbalance(&self) -> f64 {
        stats::cov(&self.comp_times())
    }

    /// max/min ratio of computation times (1.0 = perfectly even).
    pub fn comp_spread(&self) -> f64 {
        let c = self.comp_times();
        let max = c.iter().cloned().fold(f64::MIN, f64::max);
        let min = c.iter().cloned().fold(f64::MAX, f64::min).max(1e-12);
        max / min
    }

    /// Total communication + waiting time summed over PEs — the
    /// overhead the distributed schemes are meant to shrink.
    pub fn total_overhead(&self) -> f64 {
        self.per_pe.iter().map(|b| b.t_com + b.t_wait).sum()
    }

    /// Per-PE computation times.
    pub fn comp_times(&self) -> Vec<f64> {
        self.per_pe.iter().map(|b| b.t_comp).collect()
    }

    /// The largest per-slave wall time (a lower bound on `t_p`).
    pub fn max_slave_time(&self) -> f64 {
        self.per_pe.iter().map(|b| b.total()).fold(0.0, f64::max)
    }
}

/// Averages several replicas of the same experiment (e.g. runs with
/// different LAN-noise seeds) into one report. All replicas must cover
/// the same number of PEs; the scheme name is taken from the first.
pub fn average_reports(reports: &[RunReport]) -> RunReport {
    assert!(!reports.is_empty(), "need at least one report");
    let pes = reports[0].num_pes();
    assert!(
        reports.iter().all(|r| r.num_pes() == pes),
        "replicas cover different PE counts"
    );
    let n = reports.len() as f64;
    let per_pe = (0..pes)
        .map(|i| TimeBreakdown {
            t_com: reports.iter().map(|r| r.per_pe[i].t_com).sum::<f64>() / n,
            t_wait: reports.iter().map(|r| r.per_pe[i].t_wait).sum::<f64>() / n,
            t_comp: reports.iter().map(|r| r.per_pe[i].t_comp).sum::<f64>() / n,
        })
        .collect();
    let iterations = (0..pes)
        .map(|i| {
            (reports.iter().map(|r| r.iterations[i]).sum::<u64>() as f64 / n).round() as u64
        })
        .collect();
    RunReport {
        scheme: reports[0].scheme.clone(),
        per_pe,
        t_p: reports.iter().map(|r| r.t_p).sum::<f64>() / n,
        scheduling_steps: (reports.iter().map(|r| r.scheduling_steps).sum::<u64>() as f64 / n)
            .round() as u64,
        iterations,
        plans: (reports.iter().map(|r| r.plans as u64).sum::<u64>() as f64 / n).round() as u32,
        // Averaging replica times makes sense; averaging event logs
        // does not — keep the first replica's log for reference.
        faults: reports[0].faults.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport::new(
            "TSS",
            vec![
                TimeBreakdown { t_com: 1.0, t_wait: 2.0, t_comp: 4.0 },
                TimeBreakdown { t_com: 0.5, t_wait: 1.0, t_comp: 8.0 },
            ],
            10.0,
            37,
            vec![400, 600],
        )
    }

    #[test]
    fn cell_formats_like_paper() {
        let b = TimeBreakdown { t_com: 2.7, t_wait: 17.5, t_comp: 3.5 };
        assert_eq!(b.cell(), "2.7/17.5/3.5");
        assert!((b.total() - 23.7).abs() < 1e-9);
    }

    #[test]
    fn spread_and_imbalance() {
        let r = report();
        assert!((r.comp_spread() - 2.0).abs() < 1e-9);
        assert!(r.comp_imbalance() > 0.0);
        assert!((r.mean_comp() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn perfectly_balanced_has_zero_imbalance() {
        let b = TimeBreakdown { t_com: 0.0, t_wait: 0.0, t_comp: 5.0 };
        let r = RunReport::new("X", vec![b; 4], 5.0, 4, vec![25; 4]);
        assert_eq!(r.comp_imbalance(), 0.0);
        assert_eq!(r.comp_spread(), 1.0);
    }

    #[test]
    fn overhead_sums_com_and_wait() {
        assert!((report().total_overhead() - 4.5).abs() < 1e-9);
    }

    #[test]
    fn max_slave_time_bounds_tp() {
        let r = report();
        assert!(r.max_slave_time() <= r.t_p + 1e-9);
    }

    #[test]
    #[should_panic]
    fn mismatched_vectors_rejected() {
        RunReport::new("X", vec![TimeBreakdown::zero()], 1.0, 1, vec![1, 2]);
    }

    #[test]
    fn averaging_reports() {
        let a = RunReport::new(
            "TSS",
            vec![TimeBreakdown { t_com: 1.0, t_wait: 2.0, t_comp: 3.0 }],
            10.0,
            4,
            vec![100],
        );
        let b = RunReport::new(
            "TSS",
            vec![TimeBreakdown { t_com: 3.0, t_wait: 4.0, t_comp: 5.0 }],
            20.0,
            6,
            vec![200],
        );
        let avg = average_reports(&[a, b]);
        assert_eq!(avg.t_p, 15.0);
        assert_eq!(avg.per_pe[0].t_com, 2.0);
        assert_eq!(avg.scheduling_steps, 5);
        assert_eq!(avg.iterations, vec![150]);
    }

    #[test]
    fn from_trace_sums_accounting_deltas_exactly() {
        use lss_trace::{ClockDomain, EventKind, Trace, TraceEvent, TraceMeta};
        let events = vec![
            TraceEvent::new(10, EventKind::Comm { ns: 1_000_000_001 }).on_worker(0),
            TraceEvent::new(20, EventKind::Comm { ns: 2 }).on_worker(0),
            TraceEvent::new(30, EventKind::Wait { ns: 500_000_000 }).on_worker(0),
            TraceEvent::new(40, EventKind::Comp { ns: 250 }).on_worker(1),
        ];
        let trace = Trace::new(
            TraceMeta {
                scheme: "GSS".into(),
                workers: 2,
                total_iterations: 10,
                clock: ClockDomain::Logical,
            },
            events,
            0,
        );
        let b0 = TimeBreakdown::from_trace(&trace, 0);
        assert_eq!(b0.t_com, 1_000_000_003_f64 / 1e9);
        assert_eq!(b0.t_wait, 0.5);
        assert_eq!(b0.t_comp, 0.0);
        let all = TimeBreakdown::all_from_trace(&trace);
        assert_eq!(all.len(), 2);
        assert_eq!(all[1].t_comp, 250_f64 / 1e9);
        // Out-of-range worker yields a zero breakdown.
        assert_eq!(TimeBreakdown::from_trace(&trace, 9), TimeBreakdown::zero());
    }

    #[test]
    #[should_panic]
    fn averaging_rejects_uneven_pe_counts() {
        let a = RunReport::new("X", vec![TimeBreakdown::zero()], 1.0, 1, vec![1]);
        let b = RunReport::new("X", vec![TimeBreakdown::zero(); 2], 1.0, 1, vec![1, 1]);
        average_reports(&[a, b]);
    }
}
