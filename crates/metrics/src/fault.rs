//! Typed fault-event log — the observability side of the
//! fault-tolerance layer.
//!
//! Both execution engines (the threaded runtime and the discrete-event
//! simulator) emit a [`FaultEvent`] whenever the self-healing machinery
//! acts: a lease expires, a chunk is requeued or speculatively
//! re-executed, a worker crashes, hangs, reconnects, or a duplicate
//! result is dropped by the first-result-wins dedup. A run's ordered
//! [`FaultLog`] is attached to its [`crate::RunReport`], so chaos
//! experiments can assert on *how* a run survived, not just that it
//! produced correct results.

use std::fmt;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A chunk lease outlived its deadline.
    LeaseExpired,
    /// A chunk went back to the master's pool for re-execution.
    Requeued,
    /// A speculative duplicate of an outstanding chunk was granted.
    Speculated,
    /// A duplicate result was discarded by first-result-wins dedup.
    DuplicateDropped,
    /// A worker's transport disconnected.
    Disconnected,
    /// A worker was declared dead (lease expiry + silence, or an
    /// unrecoverable disconnect).
    WorkerDead,
    /// A previously dead or disconnected worker was heard from again.
    Recovered,
    /// An injected fault fired (chaos plan: crash, hang, slowdown,
    /// message drop/duplication/delay).
    Injected,
}

impl FaultKind {
    /// Short lowercase label, stable for logs and table output.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::LeaseExpired => "lease-expired",
            FaultKind::Requeued => "requeued",
            FaultKind::Speculated => "speculated",
            FaultKind::DuplicateDropped => "dup-dropped",
            FaultKind::Disconnected => "disconnected",
            FaultKind::WorkerDead => "worker-dead",
            FaultKind::Recovered => "recovered",
            FaultKind::Injected => "injected",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One entry in the fault log.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Seconds since the start of the run (wall clock in the runtime,
    /// virtual time in the simulator).
    pub at: f64,
    /// The worker involved, if the event concerns one.
    pub worker: Option<usize>,
    /// The iteration interval involved as `(start, len)`, if any.
    pub chunk: Option<(u64, u64)>,
    /// What happened.
    pub kind: FaultKind,
    /// Free-form detail (e.g. `"crash-after-2"`, `"outage 50ms"`).
    pub detail: String,
}

impl FaultEvent {
    /// Builds an event with no worker/chunk attribution.
    pub fn new(at: f64, kind: FaultKind, detail: impl Into<String>) -> Self {
        FaultEvent { at, worker: None, chunk: None, kind, detail: detail.into() }
    }

    /// Attributes the event to a worker.
    pub fn on_worker(mut self, worker: usize) -> Self {
        self.worker = Some(worker);
        self
    }

    /// Attributes the event to a chunk.
    pub fn on_chunk(mut self, start: u64, len: u64) -> Self {
        self.chunk = Some((start, len));
        self
    }

    /// Folds this fault-log entry onto a trace timeline, or `None` for
    /// kinds the traced master already emits as first-class lifecycle
    /// events ([`FaultKind::LeaseExpired`], [`FaultKind::Requeued`],
    /// [`FaultKind::Speculated`], [`FaultKind::DuplicateDropped`],
    /// [`FaultKind::WorkerDead`]) — mapping those too would double
    /// every lapse and requeue on the timeline.
    pub fn to_trace(&self) -> Option<lss_trace::TraceEvent> {
        use lss_trace::EventKind;
        let kind = match self.kind {
            FaultKind::Disconnected => EventKind::WorkerDisconnected,
            FaultKind::Recovered => EventKind::WorkerRecovered,
            FaultKind::Injected => EventKind::Fault { label: self.kind.label() },
            FaultKind::LeaseExpired
            | FaultKind::Requeued
            | FaultKind::Speculated
            | FaultKind::DuplicateDropped
            | FaultKind::WorkerDead => return None,
        };
        let at_ns = (self.at.max(0.0) * 1e9).round() as u64;
        let mut ev = lss_trace::TraceEvent::new(at_ns, kind);
        if let Some(w) = self.worker {
            ev = ev.on_worker(w);
        }
        if let Some((s, l)) = self.chunk {
            ev = ev.on_chunk(s, l);
        }
        Some(ev)
    }
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>10.6}s] {:<13}", self.at, self.kind.label())?;
        if let Some(w) = self.worker {
            write!(f, " worker={w}")?;
        }
        if let Some((s, l)) = self.chunk {
            write!(f, " chunk={s}+{l}")?;
        }
        if !self.detail.is_empty() {
            write!(f, " {}", self.detail)?;
        }
        Ok(())
    }
}

/// An ordered log of fault events for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultLog {
    events: Vec<FaultEvent>,
}

impl FaultLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: FaultEvent) {
        self.events.push(event);
    }

    /// All events, in emission order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the run saw no fault activity at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events of `kind`.
    pub fn count(&self, kind: FaultKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Events concerning `worker`.
    pub fn for_worker(&self, worker: usize) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(move |e| e.worker == Some(worker))
    }

    /// Whether the log contains, in order (not necessarily adjacent),
    /// the given kinds — the shape assertions chaos tests make, e.g.
    /// lease expiry → requeue → recovery.
    pub fn contains_sequence(&self, kinds: &[FaultKind]) -> bool {
        let mut want = kinds.iter();
        let mut next = want.next();
        for e in &self.events {
            match next {
                None => return true,
                Some(k) if *k == e.kind => next = want.next(),
                Some(_) => {}
            }
        }
        next.is_none()
    }

    /// Merges another log, keeping global time order.
    pub fn merge(&mut self, other: FaultLog) {
        self.events.extend(other.events);
        self.events
            .sort_by(|a, b| a.at.partial_cmp(&b.at).unwrap_or(std::cmp::Ordering::Equal));
    }

    /// Renders the log as one line per event.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FaultLog {
        let mut log = FaultLog::new();
        log.push(FaultEvent::new(0.5, FaultKind::Injected, "crash-after-1").on_worker(2));
        log.push(FaultEvent::new(1.0, FaultKind::LeaseExpired, "").on_worker(2).on_chunk(10, 5));
        log.push(FaultEvent::new(1.0, FaultKind::Requeued, "").on_chunk(10, 5));
        log.push(FaultEvent::new(2.0, FaultKind::Recovered, "").on_worker(2));
        log
    }

    #[test]
    fn counts_and_filters() {
        let log = sample();
        assert_eq!(log.len(), 4);
        assert_eq!(log.count(FaultKind::Requeued), 1);
        assert_eq!(log.for_worker(2).count(), 3);
        assert!(!log.is_empty());
    }

    #[test]
    fn sequence_matching() {
        let log = sample();
        assert!(log.contains_sequence(&[
            FaultKind::LeaseExpired,
            FaultKind::Requeued,
            FaultKind::Recovered,
        ]));
        assert!(!log.contains_sequence(&[FaultKind::Requeued, FaultKind::LeaseExpired]));
        assert!(log.contains_sequence(&[]));
    }

    #[test]
    fn display_renders_attribution() {
        let e = FaultEvent::new(1.25, FaultKind::Speculated, "copy 2").on_worker(3).on_chunk(0, 7);
        let s = e.to_string();
        assert!(s.contains("speculated"), "{s}");
        assert!(s.contains("worker=3"), "{s}");
        assert!(s.contains("chunk=0+7"), "{s}");
        assert!(s.contains("copy 2"), "{s}");
    }

    #[test]
    fn merge_keeps_time_order() {
        let mut a = FaultLog::new();
        a.push(FaultEvent::new(3.0, FaultKind::Requeued, ""));
        let mut b = FaultLog::new();
        b.push(FaultEvent::new(1.0, FaultKind::Injected, ""));
        a.merge(b);
        assert_eq!(a.events()[0].kind, FaultKind::Injected);
        assert_eq!(a.events()[1].kind, FaultKind::Requeued);
    }

    #[test]
    fn folding_onto_trace_maps_membership_and_injections() {
        use lss_trace::EventKind;
        let ev = FaultEvent::new(0.5, FaultKind::Disconnected, "").on_worker(2);
        let t = ev.to_trace().unwrap();
        assert_eq!(t.kind, EventKind::WorkerDisconnected);
        assert_eq!(t.at_ns, 500_000_000);
        assert_eq!(t.worker, Some(2));

        let t = FaultEvent::new(1.0, FaultKind::Injected, "crash").to_trace().unwrap();
        assert_eq!(t.kind, EventKind::Fault { label: "injected" });

        let t = FaultEvent::new(2.0, FaultKind::Recovered, "").on_worker(1).to_trace().unwrap();
        assert_eq!(t.kind, EventKind::WorkerRecovered);

        // Kinds the traced master already emits are not re-mapped.
        for kind in [
            FaultKind::LeaseExpired,
            FaultKind::Requeued,
            FaultKind::Speculated,
            FaultKind::DuplicateDropped,
            FaultKind::WorkerDead,
        ] {
            assert!(FaultEvent::new(1.0, kind, "").to_trace().is_none(), "{kind:?}");
        }
    }
}
