//! Paper-style text tables.
//!
//! Renders Tables 1–3 (and the ablation tables) as fixed-width text:
//! one row per PE, one column per scheme, `com/wait/comp` cells, and a
//! final `T_p` row — the exact layout of the paper's Tables 2 and 3.

use crate::breakdown::RunReport;

/// A generic fixed-width text table builder.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        TextTable {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn push_row(&mut self, mut row: Vec<String>) {
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Renders the table with aligned columns and a separator line.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Renders a Table 2/3-style breakdown table: one column per scheme,
/// one row per PE with `T_com/T_wait/T_comp` cells, and a `T_p` footer.
///
/// All reports must cover the same number of PEs.
pub fn breakdown_table(title: &str, reports: &[RunReport]) -> String {
    assert!(!reports.is_empty(), "need at least one report");
    let pes = reports[0].num_pes();
    assert!(
        reports.iter().all(|r| r.num_pes() == pes),
        "reports cover different PE counts"
    );
    let mut header = vec!["PE".to_string()];
    header.extend(reports.iter().map(|r| r.scheme.clone()));
    let mut t = TextTable::new(header);
    for pe in 0..pes {
        let mut row = vec![format!("{}", pe + 1)];
        row.extend(reports.iter().map(|r| r.per_pe[pe].cell()));
        t.push_row(row);
    }
    let mut tp_row = vec!["T_p".to_string()];
    tp_row.extend(reports.iter().map(|r| format!("{:.1}", r.t_p)));
    t.push_row(tp_row);
    let mut steps_row = vec!["steps".to_string()];
    steps_row.extend(reports.iter().map(|r| r.scheduling_steps.to_string()));
    t.push_row(steps_row);
    format!("{title}\n{}", t.render())
}

/// Renders Table 1-style chunk listings: scheme name → size sequence.
pub fn chunk_table(title: &str, rows: &[(String, Vec<u64>)]) -> String {
    let mut out = format!("{title}\n");
    let name_w = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(6).max(6);
    for (name, sizes) in rows {
        let seq = sizes
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(" ");
        out.push_str(&format!("{:<name_w$}  {}\n", name, seq));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breakdown::TimeBreakdown;

    fn rep(name: &str, comp: f64) -> RunReport {
        let b = TimeBreakdown { t_com: 1.0, t_wait: 2.0, t_comp: comp };
        RunReport::new(name, vec![b; 2], comp + 3.0, 10, vec![50, 50])
    }

    #[test]
    fn text_table_aligns() {
        let mut t = TextTable::new(vec!["a".into(), "bee".into()]);
        t.push_row(vec!["xxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a   "));
        assert!(lines[2].starts_with("xxxx"));
    }

    #[test]
    fn short_rows_padded() {
        let mut t = TextTable::new(vec!["a".into(), "b".into(), "c".into()]);
        t.push_row(vec!["1".into()]);
        assert!(t.render().contains('1'));
    }

    #[test]
    fn breakdown_table_has_all_schemes_and_tp() {
        let s = breakdown_table("Table 2", &[rep("TSS", 4.0), rep("FSS", 6.0)]);
        assert!(s.contains("TSS"));
        assert!(s.contains("FSS"));
        assert!(s.contains("T_p"));
        assert!(s.contains("1.0/2.0/4.0"));
        assert!(s.contains("7.0")); // T_p of TSS
    }

    #[test]
    #[should_panic]
    fn breakdown_table_rejects_uneven_pes() {
        let a = rep("A", 1.0);
        let b = RunReport::new(
            "B",
            vec![TimeBreakdown::zero()],
            1.0,
            1,
            vec![1],
        );
        breakdown_table("x", &[a, b]);
    }

    #[test]
    fn chunk_table_lists_sequences() {
        let s = chunk_table(
            "Table 1",
            &[("GSS".into(), vec![250, 188]), ("TSS".into(), vec![125, 117])],
        );
        assert!(s.contains("GSS     250 188") || s.contains("GSS   250 188"));
        assert!(s.contains("125 117"));
    }
}
