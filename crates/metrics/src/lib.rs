//! # lss-metrics — measurement, statistics and reporting
//!
//! The paper reports three families of numbers, all reproduced here:
//!
//! - **per-PE time breakdowns** `T_com / T_wait / T_comp` and the
//!   parallel time `T_p = max_j t_j` (Tables 2 and 3) —
//!   [`breakdown::TimeBreakdown`] / [`breakdown::RunReport`];
//! - **speedup curves** `S_p` over `p = 1..8` (Figures 4–7) —
//!   [`speedup::SpeedupSeries`];
//! - **cost profiles** (Figure 1) and the fractal itself (Figure 2),
//!   rendered as CSV series and ASCII/PPM art — [`plot`].
//!
//! [`stats`] supplies the summary statistics (imbalance coefficients,
//! means) used to judge "the execution is well-balanced" claims, and
//! [`table`] renders paper-style fixed-width text tables.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod breakdown;
pub mod fault;
pub mod plot;
pub mod speedup;
pub mod stats;
pub mod table;

pub use breakdown::{RunReport, TimeBreakdown};
pub use fault::{FaultEvent, FaultKind, FaultLog};
pub use speedup::SpeedupSeries;
