//! Speedup series — the data behind Figures 4–7.
//!
//! The paper plots `S_p = T_1 / T_p` for `p = 1..8` slaves, where `T_1`
//! is the time of the loop on a single *fast*, dedicated PE. On a
//! heterogeneous cluster the attainable speedup is bounded by the total
//! relative power: with 3 fast (≈3× a slow) and 5 slow PEs the paper
//! expects `S_p ≤ (3·3 + 5·1)/3 ≈ 4.5` even with zero overhead (§6.1).

/// A named speedup curve: `(p, S_p)` points for one scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupSeries {
    /// Scheme name (legend entry).
    pub scheme: String,
    /// Worker counts, ascending.
    pub p_values: Vec<u32>,
    /// Speedups, same length as `p_values`.
    pub speedups: Vec<f64>,
}

impl SpeedupSeries {
    /// Builds a series from matching vectors.
    pub fn new(scheme: impl Into<String>, p_values: Vec<u32>, speedups: Vec<f64>) -> Self {
        assert_eq!(p_values.len(), speedups.len(), "length mismatch");
        SpeedupSeries {
            scheme: scheme.into(),
            p_values,
            speedups,
        }
    }

    /// Builds a series from `(p, T_p)` pairs given the sequential time.
    pub fn from_times(scheme: impl Into<String>, t1: f64, runs: &[(u32, f64)]) -> Self {
        assert!(t1 > 0.0, "sequential time must be positive");
        let p_values = runs.iter().map(|&(p, _)| p).collect();
        let speedups = runs.iter().map(|&(_, tp)| t1 / tp).collect();
        Self::new(scheme, p_values, speedups)
    }

    /// The speedup at a given `p`, if present.
    pub fn at(&self, p: u32) -> Option<f64> {
        self.p_values.iter().position(|&x| x == p).map(|i| self.speedups[i])
    }

    /// Peak speedup over the series.
    pub fn peak(&self) -> f64 {
        self.speedups.iter().cloned().fold(0.0, f64::max)
    }

    /// Whether the curve "dips" (a point lower than its predecessor) —
    /// the paper's observed dip at `p = 2` caused by communication cost
    /// and the added slow PE.
    pub fn has_dip(&self) -> bool {
        self.speedups.windows(2).any(|w| w[1] < w[0])
    }

    /// The theoretical speedup bound given the virtual powers of the
    /// participating PEs, relative to one fast PE:
    /// `Σ V_i / V_fast` (e.g. 4.5 ≈ (3·3+5·1)/3 in Figure 6's setup).
    pub fn power_bound(powers: &[f64], fast: f64) -> f64 {
        assert!(fast > 0.0);
        powers.iter().sum::<f64>() / fast
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_times_divides() {
        let s = SpeedupSeries::from_times("TSS", 100.0, &[(1, 100.0), (2, 60.0), (4, 30.0)]);
        assert_eq!(s.at(1), Some(1.0));
        assert!((s.at(4).unwrap() - 100.0 / 30.0).abs() < 1e-12);
        assert_eq!(s.at(8), None);
    }

    #[test]
    fn peak_and_dip() {
        let s = SpeedupSeries::new("X", vec![1, 2, 4], vec![1.0, 0.8, 2.5]);
        assert_eq!(s.peak(), 2.5);
        assert!(s.has_dip());
        let mono = SpeedupSeries::new("Y", vec![1, 2], vec![1.0, 1.5]);
        assert!(!mono.has_dip());
    }

    #[test]
    fn figure6_power_bound() {
        // 3 fast (power 3) + 5 slow (power 1) → bound 14/3 ≈ 4.67;
        // the paper rounds the fast:slow ratio to "about 3" and quotes
        // S_p ≤ 4.5.
        let powers = [3.0, 3.0, 3.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let bound = SpeedupSeries::power_bound(&powers, 3.0);
        assert!((bound - 14.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_rejected() {
        SpeedupSeries::new("X", vec![1, 2], vec![1.0]);
    }
}
