//! Small statistics helpers used across reports.

/// Arithmetic mean (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Coefficient of variation `σ / μ` (0 when the mean is ~0).
pub fn cov(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m.abs() < 1e-12 {
        return 0.0;
    }
    std_dev(xs) / m
}

/// Maximum value (NaN-free input assumed; 0 for empty).
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().cloned().fold(0.0_f64, f64::max)
}

/// Minimum value (0 for empty).
pub fn min(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().cloned().fold(f64::MAX, f64::min)
}

/// Load-imbalance index `(max - mean) / mean` — the fraction of the
/// makespan attributable to imbalance (0 = perfect).
pub fn imbalance_index(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m.abs() < 1e-12 {
        return 0.0;
    }
    (max(xs) - m) / m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn std_dev_basic() {
        assert_eq!(std_dev(&[5.0, 5.0, 5.0]), 0.0);
        assert!((std_dev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn cov_scale_invariant() {
        let a = cov(&[1.0, 2.0, 3.0]);
        let b = cov(&[10.0, 20.0, 30.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn cov_zero_mean_guard() {
        assert_eq!(cov(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn minmax() {
        assert_eq!(max(&[1.0, 9.0, 4.0]), 9.0);
        assert_eq!(min(&[1.0, 9.0, 4.0]), 1.0);
        assert_eq!(min(&[]), 0.0);
    }

    #[test]
    fn imbalance_index_perfect_is_zero() {
        assert_eq!(imbalance_index(&[2.0, 2.0, 2.0]), 0.0);
        // One straggler at 2× the mean of the rest.
        let idx = imbalance_index(&[1.0, 1.0, 1.0, 2.0]);
        assert!(idx > 0.5 && idx < 0.7);
    }
}
