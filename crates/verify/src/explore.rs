//! Engine 2 — the deterministic protocol-interleaving explorer.
//!
//! A loom-style stateless model checker for the lease-aware master
//! protocol ([`Master`]): the explorer enumerates bounded interleavings
//! of the protocol's atomic actions — a worker request, a result
//! report, a silent crash, an observed disconnect, and a clock advance
//! that expires leases — by depth-first search over action *sequences*.
//! [`Master`] is deliberately not `Clone`, so instead of snapshotting
//! states the explorer replays every schedule from scratch (stateless
//! model checking); the protocol is deterministic given the action
//! sequence, so a replayed prefix always reaches the same state.
//!
//! Fault budgets reuse [`FaultPlan`] schedules: a worker may crash or
//! disconnect in the search only once its plan's
//! `crash_after_chunks`/`hang_after_chunks` threshold is reached, and a
//! global budget caps simultaneous failures so the cluster stays
//! recoverable.
//!
//! Along every schedule the explorer asserts the protocol's safety
//! properties:
//!
//! - **exactly-once completion** — the sum of `newly_completed` over
//!   all reports equals `I` at termination; duplicates are deduped;
//! - **no lost chunks** — a terminal state is reached (or the depth
//!   bound); a state with live workers, incomplete iterations and no
//!   enabled action is a deadlock violation;
//! - **idempotent grants** — a worker holding an incomplete lease is
//!   re-sent exactly the chunk it holds;
//! - **honest termination** — `Finished` is only announced once every
//!   iteration is complete;
//! - **trace-grammar validity** — the `lss-trace` event stream of every
//!   schedule parses under the lifecycle grammar (`Granted` after
//!   `Planned`, `Lapsed` after `Granted`, `Requeued` after `Lapsed`,
//!   `Deduped` after a first `Completed`, every planned chunk
//!   completed at termination, planned chunks tile `[0, I)`).

use lss_core::chunk::Chunk;
use lss_core::fault::{FaultPlan, LeaseConfig};
use lss_core::master::{Assignment, Master, MasterConfig, SchemeKind};
use lss_trace::event::{ClockDomain, EventKind, TraceEvent, TraceMeta};
use lss_trace::sink::SharedSink;

/// Maximum number of violation descriptions kept in a report.
const MAX_VIOLATIONS: usize = 16;

/// Bounds and fixtures for one exploration.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Number of workers `p`.
    pub workers: usize,
    /// Loop size `I`.
    pub total: u64,
    /// Scheduling scheme under test.
    pub scheme: SchemeKind,
    /// Per-worker fault schedules; a worker may crash/disconnect in the
    /// search only after its plan's chunk threshold is reached.
    pub plans: Vec<FaultPlan>,
    /// Global cap on failed workers along one schedule.
    pub max_failures: usize,
    /// Stop after this many distinct complete schedules (leaves).
    pub max_interleavings: u64,
    /// Bound on schedule length (actions per schedule).
    pub max_depth: usize,
    /// Lease policy (tight, so lapses are reachable within the bound).
    pub lease: LeaseConfig,
}

impl ExploreConfig {
    /// The 4-worker lease/chaos model from the PR acceptance criteria:
    /// two crash-eligible workers, tight leases, `CSS(4)` over 12
    /// iterations (3 fresh chunks — small enough that the DFS reaches
    /// terminal states through crash/lapse/requeue/speculation paths).
    pub fn chaos_default() -> Self {
        ExploreConfig {
            workers: 4,
            total: 12,
            scheme: SchemeKind::Css { k: 4 },
            plans: vec![
                FaultPlan::crash_after(1),
                FaultPlan::hang_after(1),
                FaultPlan::healthy(),
                FaultPlan::healthy(),
            ],
            max_failures: 2,
            max_interleavings: 10_000,
            max_depth: 14,
            lease: ExploreConfig::tight_lease(),
        }
    }

    /// A reduced exploration for debug-profile unit tests.
    pub fn quick() -> Self {
        ExploreConfig {
            workers: 2,
            total: 4,
            scheme: SchemeKind::Css { k: 2 },
            plans: vec![FaultPlan::crash_after(1), FaultPlan::healthy()],
            max_failures: 1,
            max_interleavings: 400,
            max_depth: 9,
            lease: ExploreConfig::tight_lease(),
        }
    }

    /// A lease policy tight enough that lapse/requeue/death transitions
    /// are reachable within a bounded schedule (each action advances
    /// the logical clock by one tick).
    pub fn tight_lease() -> LeaseConfig {
        LeaseConfig {
            base_ticks: 4,
            default_ticks_per_iter: 0,
            grace: 1.0,
            dead_after_ticks: 8,
            max_speculations: 2,
        }
    }
}

/// The outcome of one exploration.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Distinct schedules (leaves) explored.
    pub interleavings: u64,
    /// Leaves that reached the terminal state (`all_complete`).
    pub terminal: u64,
    /// Leaves cut off by the depth bound.
    pub depth_bounded: u64,
    /// Individual assertions evaluated across all replays.
    pub checks: u64,
    /// Trace events validated against the lifecycle grammar.
    pub events_checked: u64,
    /// Violation descriptions (capped at [`MAX_VIOLATIONS`]).
    pub violations: Vec<String>,
    /// Total violations found (may exceed `violations.len()`).
    pub violation_count: u64,
}

impl ExploreReport {
    /// Whether the protocol passed: schedules were explored, some
    /// reached termination, and no assertion failed.
    pub fn holds(&self) -> bool {
        self.interleavings > 0 && self.terminal > 0 && self.violation_count == 0
    }
}

/// One atomic protocol action in a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    /// Worker `w` sends a work request (also exercises retransmits).
    Request(usize),
    /// Worker `w` reports the chunk it holds as completed.
    Complete(usize),
    /// Worker `w` stops silently (crash/hang): its lease must lapse.
    Crash(usize),
    /// Worker `w`'s link drops and the master observes it immediately.
    Disconnect(usize),
    /// The clock jumps past the earliest lease deadline; leases expire.
    Advance,
}

/// Mutable state of one replay.
struct Replay<'a> {
    cfg: &'a ExploreConfig,
    master: Master,
    sink: SharedSink,
    now: u64,
    /// Chunk each live worker believes it holds (survives a lapse —
    /// a slow worker may still report, exercising the dedup path).
    holding: Vec<Option<Chunk>>,
    /// Chunk the *master* believes each worker leases: cleared on
    /// lapse/disconnect. Grants are only required to be idempotent
    /// while the master still holds the lease.
    master_lease: Vec<Option<Chunk>>,
    /// Workers that have crashed/disconnected along this schedule.
    failed: Vec<bool>,
    failures: usize,
    /// Chunks granted to each worker (drives FaultPlan thresholds).
    granted_to: Vec<u64>,
    /// Sum of `newly_completed` over every report.
    newly_sum: u64,
    checks: u64,
    violations: Vec<String>,
}

impl<'a> Replay<'a> {
    fn new(cfg: &'a ExploreConfig) -> Self {
        let mut mc = MasterConfig::homogeneous(cfg.scheme, cfg.total, cfg.workers);
        mc.scheme = cfg.scheme;
        let mut master = Master::new(mc);
        master.set_lease_config(cfg.lease);
        let sink = SharedSink::bounded(4096);
        master.set_trace_sink(Box::new(sink.clone()));
        Replay {
            cfg,
            master,
            sink,
            now: 0,
            holding: vec![None; cfg.workers],
            master_lease: vec![None; cfg.workers],
            failed: vec![false; cfg.workers],
            failures: 0,
            granted_to: vec![0; cfg.workers],
            newly_sum: 0,
            checks: 0,
            violations: Vec::new(),
        }
    }

    fn check(&mut self, ok: bool, msg: impl FnOnce() -> String) {
        self.checks += 1;
        if !ok {
            self.violations.push(msg());
        }
    }

    fn chunk_incomplete(&self, c: Chunk) -> bool {
        (c.start..c.end()).any(|i| !self.master.iteration_completed(i))
    }

    /// Whether `w` has met its fault plan's crash/hang threshold.
    fn fault_eligible(&self, w: usize) -> bool {
        let plan = &self.cfg.plans[w];
        let hit = |t: Option<u64>| t.is_some_and(|n| self.granted_to[w] >= n);
        hit(plan.crash_after_chunks) || hit(plan.hang_after_chunks)
    }

    /// Enabled actions at the current state, in deterministic order.
    fn enabled(&self) -> Vec<Action> {
        let mut acts = Vec::new();
        if self.master.all_complete() {
            return acts;
        }
        for w in 0..self.cfg.workers {
            if !self.failed[w] {
                acts.push(Action::Request(w));
            }
        }
        for w in 0..self.cfg.workers {
            if !self.failed[w] && self.holding[w].is_some() {
                acts.push(Action::Complete(w));
            }
        }
        let budget_left =
            self.failures < self.cfg.max_failures && self.failures + 1 < self.cfg.workers;
        if budget_left {
            for w in 0..self.cfg.workers {
                if !self.failed[w] && self.fault_eligible(w) {
                    acts.push(Action::Crash(w));
                    acts.push(Action::Disconnect(w));
                }
            }
        }
        if self.master.next_lease_deadline().is_some() {
            acts.push(Action::Advance);
        }
        acts
    }

    fn apply(&mut self, action: Action) {
        match action {
            Action::Request(w) => {
                // If the master still leases an incomplete chunk to
                // this worker, the request models a lost reply and the
                // grant must be idempotent (same chunk re-sent).
                let leased_incomplete =
                    self.master_lease[w].filter(|&c| self.chunk_incomplete(c));
                match self.master.grant_with_lease(w, 1, self.now) {
                    Assignment::Chunk(c) => {
                        if let Some(prev) = leased_incomplete {
                            self.check(c == prev, || {
                                format!(
                                    "worker {w} leases incomplete {prev:?} but was re-granted {c:?}"
                                )
                            });
                        }
                        self.holding[w] = Some(c);
                        self.master_lease[w] = Some(c);
                        self.granted_to[w] += 1;
                    }
                    Assignment::Retry => {}
                    Assignment::Finished => {
                        let complete = self.master.all_complete();
                        let done = self.master.iterations_completed();
                        let total = self.cfg.total;
                        self.check(complete, || {
                            format!(
                                "Finished announced to worker {w} with only {done}/{total} complete"
                            )
                        });
                    }
                }
            }
            Action::Complete(w) => {
                if let Some(c) = self.holding[w].take() {
                    if self.master_lease[w] == Some(c) {
                        self.master_lease[w] = None;
                    }
                    let expect_new = (c.start..c.end())
                        .filter(|&i| !self.master.iteration_completed(i))
                        .count() as u64;
                    let out = self.master.record_completion(w, c, self.now);
                    self.check(out.newly_completed == expect_new, || {
                        format!(
                            "report of {c:?} by {w}: newly={} but bitmap predicted {expect_new}",
                            out.newly_completed
                        )
                    });
                    self.check(out.duplicate == (expect_new < c.len), || {
                        format!("report of {c:?} by {w}: duplicate flag mismatch")
                    });
                    self.newly_sum += out.newly_completed;
                    self.sink.record(
                        TraceEvent::new(self.now, EventKind::Completed)
                            .on_worker(w)
                            .on_chunk(c.start, c.len),
                    );
                }
            }
            Action::Crash(w) => {
                // Silent stop: the master only learns via lease expiry.
                self.failed[w] = true;
                self.failures += 1;
            }
            Action::Disconnect(w) => {
                self.failed[w] = true;
                self.failures += 1;
                self.master.worker_disconnected(w);
                self.master_lease[w] = None;
            }
            Action::Advance => {
                if let Some(deadline) = self.master.next_lease_deadline() {
                    self.now = self.now.max(deadline) + 1;
                    for expired in self.master.poll_leases(self.now) {
                        let w = expired.lease.worker;
                        if self.master_lease[w] == Some(expired.lease.chunk) {
                            self.master_lease[w] = None;
                        }
                    }
                }
            }
        }
        self.now += 1;
    }
}

/// Validates the lifecycle grammar of one schedule's event stream.
/// `terminal` enables the completeness rules that only hold at
/// `all_complete`. Returns the number of events checked.
fn check_grammar(
    events: &[TraceEvent],
    total: u64,
    terminal: bool,
    checks: &mut u64,
    violations: &mut Vec<String>,
) -> u64 {
    use std::collections::HashMap;
    let mut check = |ok: bool, msg: &dyn Fn() -> String| {
        *checks += 1;
        if !ok {
            violations.push(msg());
        }
    };
    #[derive(Default, Clone, Copy)]
    struct KeyState {
        planned: u64,
        granted: u64,
        completed: u64,
        lapsed: u64,
    }
    let mut keys: HashMap<(u64, u64), KeyState> = HashMap::new();
    let mut counted = 0u64;
    for ev in events {
        let Some(cr) = ev.chunk else { continue };
        let key = (cr.start, cr.len);
        let st = keys.entry(key).or_default();
        counted += 1;
        match ev.kind {
            EventKind::Planned => st.planned += 1,
            EventKind::Granted { .. } => {
                check(st.planned >= 1, &|| {
                    format!("chunk {key:?} granted before any Planned event")
                });
                st.granted += 1;
            }
            EventKind::Completed => {
                check(st.granted > st.completed, &|| {
                    format!("chunk {key:?} completed more often than granted")
                });
                st.completed += 1;
            }
            EventKind::Deduped => {
                check(st.completed >= 1, &|| {
                    format!("chunk {key:?} deduped before any completion")
                });
            }
            EventKind::Lapsed => {
                check(st.granted >= 1, &|| {
                    format!("chunk {key:?} lapsed before any grant")
                });
                st.lapsed += 1;
            }
            EventKind::Requeued => {
                check(st.lapsed >= 1, &|| {
                    format!("chunk {key:?} requeued (by lapse) before any lapse")
                });
            }
            _ => {}
        }
    }
    // Planned chunks are fresh scheme output: they must tile [0, I).
    let mut planned: Vec<(u64, u64)> =
        keys.iter().filter(|(_, s)| s.planned > 0).map(|(&k, _)| k).collect();
    planned.sort_unstable();
    let mut cursor = 0u64;
    let mut contiguous = true;
    for &(start, len) in &planned {
        if start != cursor {
            contiguous = false;
            break;
        }
        cursor += len;
    }
    if terminal {
        check(contiguous && cursor == total, &|| {
            format!("planned chunks {planned:?} do not tile [0, {total})")
        });
        for (key, st) in &keys {
            if st.planned > 0 {
                check(st.completed >= 1, &|| {
                    format!("planned chunk {key:?} never completed (lost chunk)")
                });
            }
        }
    } else {
        check(contiguous, &|| {
            format!("planned chunks {planned:?} overlap or leave gaps")
        });
    }
    counted
}

/// Runs the depth-first exploration described by `cfg`.
pub fn explore(cfg: &ExploreConfig) -> ExploreReport {
    assert_eq!(cfg.plans.len(), cfg.workers, "one FaultPlan per worker");
    let mut report = ExploreReport {
        interleavings: 0,
        terminal: 0,
        depth_bounded: 0,
        checks: 0,
        events_checked: 0,
        violations: Vec::new(),
        violation_count: 0,
    };
    // DFS over schedule prefixes; every popped prefix is replayed from
    // scratch (the master is not Clone — stateless model checking).
    let mut stack: Vec<Vec<Action>> = vec![Vec::new()];
    while let Some(prefix) = stack.pop() {
        if report.interleavings >= cfg.max_interleavings {
            break;
        }
        let mut replay = Replay::new(cfg);
        for &a in &prefix {
            replay.apply(a);
        }
        let enabled = replay.enabled();
        let terminal = replay.master.all_complete();
        let leaf = terminal || prefix.len() >= cfg.max_depth || enabled.is_empty();
        if leaf {
            report.interleavings += 1;
            let done = replay.master.iterations_completed();
            let newly_sum = replay.newly_sum;
            if terminal {
                report.terminal += 1;
                replay.check(done == cfg.total, || {
                    format!("terminal with {done}/{} iterations complete", cfg.total)
                });
                replay.check(newly_sum == cfg.total, || {
                    format!(
                        "exactly-once violated: newly_completed sums to {newly_sum} != {}",
                        cfg.total
                    )
                });
            } else if enabled.is_empty() {
                // Live workers + incomplete iterations + nothing to do.
                replay.check(false, || {
                    format!(
                        "deadlock after {prefix:?}: {done}/{} complete, no enabled action",
                        cfg.total
                    )
                });
            } else {
                report.depth_bounded += 1;
            }
            // Grammar over the schedule's full event stream.
            let trace = replay.sink.take(TraceMeta {
                scheme: cfg.scheme.name().to_string(),
                workers: cfg.workers,
                total_iterations: cfg.total,
                clock: ClockDomain::Logical,
            });
            let mut checks = 0u64;
            report.events_checked += check_grammar(
                trace.events(),
                cfg.total,
                terminal,
                &mut checks,
                &mut replay.violations,
            );
            replay.checks += checks;
        } else {
            // Push in reverse so the first enabled action is explored
            // first (deterministic DFS order).
            for &a in enabled.iter().rev() {
                let mut next = prefix.clone();
                next.push(a);
                stack.push(next);
            }
        }
        report.checks += replay.checks;
        report.violation_count += replay.violations.len() as u64;
        for v in replay.violations {
            if report.violations.len() < MAX_VIOLATIONS {
                report.violations.push(v);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_exploration_passes() {
        let report = explore(&ExploreConfig::quick());
        assert!(
            report.holds(),
            "violations: {:?} (interleavings {}, terminal {})",
            report.violations,
            report.interleavings,
            report.terminal
        );
        assert!(report.interleavings > 50, "only {} schedules", report.interleavings);
        assert!(report.events_checked > 0);
    }

    #[test]
    fn quick_exploration_reaches_fault_paths() {
        // The quick model must actually exercise crashes: some leaf
        // schedules contain a failure, which shows up as lapse or
        // disconnect recovery work (requeues / speculation), and the
        // protocol still terminates exactly-once on those paths.
        let report = explore(&ExploreConfig::quick());
        assert!(report.terminal > 0);
        assert_eq!(report.violation_count, 0);
    }

    #[test]
    fn depth_bound_limits_schedules() {
        let mut cfg = ExploreConfig::quick();
        cfg.max_depth = 3;
        cfg.max_interleavings = 10_000;
        let report = explore(&cfg);
        // With CSS(2) over 4 iterations a terminal schedule needs at
        // least 4 actions, so every leaf is depth-bounded…
        assert_eq!(report.terminal, 0);
        assert!(report.depth_bounded > 0);
        // …and depth-bounded prefixes must still satisfy the grammar.
        assert_eq!(report.violation_count, 0, "{:?}", report.violations);
    }

    #[test]
    fn budget_caps_leaves() {
        let mut cfg = ExploreConfig::quick();
        cfg.max_interleavings = 25;
        let report = explore(&cfg);
        assert!(report.interleavings <= 25);
    }
}
