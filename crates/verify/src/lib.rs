//! # lss-verify — static analysis for the scheduling stack
//!
//! Six engines that *certify* properties of the codebase without
//! running the simulator or the real runtime:
//!
//! 1. [`certify`] — an exhaustive **scheme certifier**: every
//!    [`ChunkSizer`](lss_core::scheme::ChunkSizer) configuration is
//!    evaluated over a bounded parameter domain (`I ≤ 4096`, `p ≤ 16`,
//!    heterogeneous ACP vectors) and the chunk algebra of eq. 1 is
//!    proved chunk by chunk: exact iteration coverage with no overlap,
//!    clamping `1 ≤ C_i ≤ R_{i-1}`, TSS/GSS monotone non-increase,
//!    FSS/TFSS/FISS stage structure, TFSS stage totals equal to the
//!    sum of the next `p` TSS chunks, DTSS/DFSS/DTFSS per-worker
//!    shares within rounding of `SC_k · A_j/A`, and the §5.2
//!    fractional-ACP fix never collapsing to zero. Each scheme gets a
//!    machine-readable [`certify::Certificate`].
//! 2. [`explore`] — a deterministic **interleaving explorer** over the
//!    lease-aware master protocol: a loom-style depth-first search
//!    over bounded message / lease-lapse / crash interleavings of
//!    [`Master`](lss_core::master::Master), replayed from scratch per
//!    schedule (stateless model checking), asserting exactly-once
//!    completion, no lost chunks and trace-grammar validity via
//!    `lss-trace` events. Fault budgets reuse
//!    [`FaultPlan`](lss_core::fault::FaultPlan) schedules.
//! 3. [`lint`] — the repo's **custom lint rules** (shared with
//!    `scripts/lint.rs`): schemes stay pure formulas, `core`/`sim`
//!    never touch wall clocks, runtime hot paths carry no `unwrap()`,
//!    every `ServeLink` request carries a deadline, and the serve
//!    scheduler's decision functions take time as a parameter.
//! 4. [`crashpoints`] — a **journal crash-point enumerator** over the
//!    serve daemon's write-ahead log: generated job histories are
//!    rendered to byte-exact journal images and a crash is simulated
//!    at every record and byte boundary (torn tails, single-bit
//!    corruptions, corrupted checkpoints), asserting the pure
//!    [`replay`](lss_serve::journal::replay) path recovers an exact
//!    partition of every job and never loses an acknowledged fact.
//! 5. [`serve_explore`] — a stateless **interleaving explorer for the
//!    multi-job scheduler**: drives the real
//!    [`MultiJobScheduler`](lss_serve::MultiJobScheduler) with logical
//!    time through admit/grant/complete/strike/quarantine/canary/
//!    readmit/crash/recover schedules, asserting exactly-once per job,
//!    no lost chunks, and that every schedule drains.
//! 6. [`fuzz`] — a **seeded protocol decode fuzzer**: structured
//!    mutations and arbitrary bytes into the serve frame decoder,
//!    journal record parser and checkpoint decoder; every input must
//!    yield a typed error, never a panic or unbounded allocation.
//!
//! The `lss verify` CLI subcommand drives all six (`--serve` runs the
//! three serve-layer engines).

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod certify;
pub mod crashpoints;
pub mod explore;
pub mod fuzz;
pub mod lint;
pub mod report;
pub mod serve_explore;

pub use certify::{certify_all, certify_scheme, Certificate, Domain, SchemeFamily};
pub use crashpoints::{enumerate_crash_points, CrashConfig, CrashReport, Discipline, RecoveryImpl};
pub use explore::{explore, ExploreConfig, ExploreReport};
pub use fuzz::{fuzz_decoders, FuzzConfig, FuzzReport};
pub use lint::{lint_repo, LintReport};
pub use report::{
    json_certificates, json_crash_points, json_exploration, json_fuzz, json_lint, json_serve,
    json_serve_explore,
};
pub use serve_explore::{explore_serve, ServeExploreConfig, ServeExploreReport};
