//! Engine 3 — repo-specific lint rules.
//!
//! The rules themselves live in `scripts/lint.rs` (also compilable as a
//! standalone script with plain `rustc`); this module includes that
//! file and wraps it in a library API. See the rule docs there:
//! scheme-purity, no-wall-clock, no-unwrap-runtime,
//! serve-link-deadline, serve-scheduler-pure-time.

#[allow(dead_code, clippy::unwrap_used)]
#[path = "../../../scripts/lint.rs"]
mod rules;

use std::path::Path;

pub use rules::{rule_names, run_lints, LintFinding};

/// Outcome of running all repo lint rules.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Rules that were evaluated.
    pub rules: Vec<&'static str>,
    /// Violations found (empty when clean).
    pub findings: Vec<LintFinding>,
}

impl LintReport {
    /// Whether every rule passed.
    pub fn holds(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Runs every rule against the repo rooted at `repo_root`.
pub fn lint_repo(repo_root: &Path) -> Result<LintReport, String> {
    let findings = run_lints(repo_root)?;
    Ok(LintReport {
        rules: rule_names(),
        findings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    /// Walks up from this crate's manifest dir to the workspace root.
    fn repo_root() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap()
    }

    #[test]
    fn repo_is_lint_clean() {
        let report = lint_repo(&repo_root()).unwrap();
        assert!(
            report.holds(),
            "lint violations:\n{}",
            report
                .findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert_eq!(report.rules.len(), 5);
    }

    #[test]
    fn missing_root_is_an_error() {
        assert!(lint_repo(Path::new("/nonexistent/definitely-not-a-repo")).is_err());
    }
}
