//! Engine 6 — the seeded protocol decode fuzzer.
//!
//! Everything that crosses a process boundary in the serve layer goes
//! through three parsers: the versioned frame decoder
//! ([`ServeFrame::decode`]), the journal record reader
//! ([`lss_serve::journal::replay`]) and the checkpoint decoder
//! ([`lss_serve::journal::decode_checkpoint`]). Their contract is
//! total: **every** byte string yields a typed result — a frame, a
//! typed [`ServeDecodeError`] (`Legacy` / `Version` / `Malformed`), or
//! a truncated-at-the-torn-tail recovery state — never a panic and
//! never an allocation the input length does not justify.
//!
//! This engine attacks that contract with a deterministic, seeded
//! corpus (no external fuzzing framework, per the repo's no-deps
//! rule): arbitrary byte strings, plus *structured* mutations — valid
//! frames, journal logs and checkpoint images with bit flips,
//! truncations, junk extensions and magic/version/tag rewrites — which
//! reach far deeper into the parsers than noise alone. Every decoder
//! call runs under [`std::panic::catch_unwind`]; a panic is a counted
//! violation, as is a mis-classified error (wrong magic must be
//! `Legacy`, wrong version must be `Version(v)`), an unjustified
//! allocation, a failed re-encode round trip on pristine inputs, or a
//! structurally invalid recovered state.

use std::panic::{catch_unwind, AssertUnwindSafe};

use lss_core::fault::ChaosRng;
use lss_core::master::SchemeKind;
use lss_core::Chunk;
use lss_runtime::protocol::serve::{
    JobChunkResult, JobGrant, JobSpec, ServeDecodeError, ServeFrame, ServeRequest, WorkloadSpec,
    SERVE_MAGIC, SERVE_PROTOCOL_VERSION,
};
use lss_runtime::protocol::ChunkResult;
use lss_serve::journal::{
    decode_checkpoint, encode_admit, encode_checkpoint, encode_complete, encode_finish,
    frame_record, replay, JobSnapshot, RecoveredState,
};

/// Maximum violation descriptions kept in a report.
const MAX_VIOLATIONS: usize = 16;

/// Bounds and seed of one fuzzing run.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Decoder invocations to perform (each counted input is one call
    /// into one of the three parsers).
    pub inputs: u64,
    /// RNG seed; the corpus is a pure function of it.
    pub seed: u64,
    /// Length cap for arbitrary-bytes inputs.
    pub max_len: usize,
}

impl FuzzConfig {
    /// The full corpus the CI acceptance bar uses (≥ 50k inputs).
    pub fn full() -> Self {
        FuzzConfig { inputs: 60_000, seed: 0xF022_ED01, max_len: 256 }
    }

    /// A reduced corpus for debug-profile unit tests and `--quick`.
    pub fn quick() -> Self {
        FuzzConfig { inputs: 4_000, ..FuzzConfig::full() }
    }
}

/// The outcome of one fuzzing run.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Decoder invocations performed.
    pub inputs: u64,
    /// Panics caught (each is also a violation).
    pub panics: u64,
    /// Individual assertions evaluated.
    pub checks: u64,
    /// Violation descriptions (capped at [`MAX_VIOLATIONS`]).
    pub violations: Vec<String>,
    /// Total violations found (may exceed `violations.len()`).
    pub violation_count: u64,
}

impl FuzzReport {
    /// Whether the decoders passed: inputs were fuzzed and no
    /// assertion failed.
    pub fn holds(&self) -> bool {
        self.inputs > 0 && self.violation_count == 0
    }

    fn check(&mut self, ok: bool, msg: impl FnOnce() -> String) {
        self.checks += 1;
        if !ok {
            self.violation_count += 1;
            if self.violations.len() < MAX_VIOLATIONS {
                self.violations.push(msg());
            }
        }
    }
}

/// A seeded pristine frame — one of every wire shape, parameters drawn
/// from the RNG so repeated visits exercise different field values.
fn seed_frame(rng: &mut ChaosRng) -> ServeFrame {
    let spec = JobSpec {
        workload: if rng.chance(0.5) {
            WorkloadSpec::Uniform { iters: rng.below(10_000), cost: rng.below(100) }
        } else {
            WorkloadSpec::Mandelbrot {
                width: rng.below(2_000) as u32,
                height: rng.below(2_000) as u32,
                sf: 1 + rng.below(8),
            }
        },
        scheme: match rng.below(5) {
            0 => SchemeKind::Css { k: 1 + rng.below(64) },
            1 => SchemeKind::Tss,
            2 => SchemeKind::Gss { min_chunk: 1 + rng.below(16) },
            3 => SchemeKind::Dtss,
            _ => SchemeKind::Fiss { sigma: rng.below(1_000) as u32 },
        },
        priority: 1 + rng.below(8) as u32,
    };
    match rng.below(10) {
        0 => ServeFrame::HelloWorker { worker: rng.below(64) as usize, q: rng.below(8) as u32 },
        1 => ServeFrame::HelloClient,
        2 => {
            let results = (0..rng.below(4))
                .map(|_| JobChunkResult {
                    job: rng.below(16),
                    result: ChunkResult::zeroed(Chunk::new(rng.below(512), 1 + rng.below(32))),
                })
                .collect();
            ServeFrame::Request(ServeRequest {
                worker: rng.below(64) as usize,
                q: rng.below(8) as u32,
                results,
            })
        }
        3 => ServeFrame::Heartbeat { worker: rng.below(64) as usize },
        4 => {
            let grants = (0..rng.below(4))
                .map(|_| JobGrant {
                    job: rng.below(16),
                    workload: spec.workload,
                    chunk: Chunk::new(rng.below(512), 1 + rng.below(32)),
                })
                .collect();
            ServeFrame::Grants(grants)
        }
        5 => ServeFrame::Retry,
        6 => ServeFrame::Rejected { reason: "q".repeat(rng.below(40) as usize) },
        7 => ServeFrame::Submit(spec),
        8 => ServeFrame::Accepted { job: rng.below(1 << 20) },
        _ => ServeFrame::Drain,
    }
}

/// Applies a seeded mutation in place: bit flips, truncation, junk
/// extension, or a header rewrite.
fn mutate(bytes: &mut Vec<u8>, rng: &mut ChaosRng) {
    if bytes.is_empty() {
        bytes.push(rng.next_u64() as u8);
        return;
    }
    match rng.below(4) {
        0 => {
            for _ in 0..1 + rng.below(8) {
                let bit = rng.below(bytes.len() as u64 * 8);
                bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
            }
        }
        1 => {
            let keep = rng.below(bytes.len() as u64) as usize;
            bytes.truncate(keep);
        }
        2 => {
            for _ in 0..1 + rng.below(16) {
                bytes.push(rng.next_u64() as u8);
            }
        }
        _ => {
            let idx = rng.below(3.min(bytes.len() as u64)) as usize;
            bytes[idx] = rng.next_u64() as u8;
        }
    }
}

/// The number of heap items a decoded frame holds — must be justified
/// by the input length (the decoder caps pre-allocation, and every
/// collection element consumes at least one input byte).
fn frame_items(frame: &ServeFrame) -> usize {
    match frame {
        ServeFrame::Request(req) => {
            req.results.len()
                + req.results.iter().map(|r| r.result.values.len()).sum::<usize>()
        }
        ServeFrame::Grants(grants) => grants.len(),
        ServeFrame::JobList(jobs) => jobs.len(),
        ServeFrame::Rejected { reason } => reason.len(),
        _ => 0,
    }
}

/// Feeds one byte string to the frame decoder and checks the total
/// contract: no panic, typed classification, bounded allocation, and
/// (for `pristine` inputs) an exact re-encode round trip.
fn fuzz_frame(bytes: &[u8], pristine: bool, report: &mut FuzzReport) {
    report.inputs += 1;
    let outcome = catch_unwind(AssertUnwindSafe(|| ServeFrame::decode(bytes)));
    let Ok(result) = outcome else {
        report.panics += 1;
        report.check(false, || format!("frame decoder panicked on {} bytes", bytes.len()));
        return;
    };
    match (bytes.first(), bytes.get(1), &result) {
        (None, _, got) => {
            report.check(matches!(got, Err(ServeDecodeError::Malformed)), || {
                format!("empty input decoded as {got:?}, want Malformed")
            });
        }
        (Some(&m), _, got) if m != SERVE_MAGIC => {
            report.check(matches!(got, Err(ServeDecodeError::Legacy)), || {
                format!("magic byte {m:#04x} decoded as {got:?}, want Legacy")
            });
        }
        (Some(_), Some(&v), got) if v != SERVE_PROTOCOL_VERSION => {
            report.check(matches!(got, Err(ServeDecodeError::Version(x)) if *x == v), || {
                format!("version byte {v} decoded as {got:?}, want Version({v})")
            });
        }
        _ => {}
    }
    if let Ok(frame) = &result {
        report.check(frame_items(frame) <= bytes.len(), || {
            format!(
                "frame holds {} items decoded from only {} bytes (unjustified allocation)",
                frame_items(frame),
                bytes.len()
            )
        });
        if pristine {
            report.check(frame.encode() == bytes, || {
                "pristine frame did not re-encode to its own bytes".to_string()
            });
        }
    } else if pristine {
        report.check(false, || format!("pristine frame failed to decode: {result:?}"));
    }
}

/// Structural sanity of a recovered state, whatever bytes produced it.
fn check_state(state: &RecoveredState, input_len: usize, report: &mut FuzzReport) {
    report.check(state.next_job >= 1, || {
        format!("recovered next_job {} below 1", state.next_job)
    });
    report.check(state.jobs.len() <= input_len + 1, || {
        format!("{} jobs recovered from {input_len} bytes", state.jobs.len())
    });
    let mut prev: Option<u64> = None;
    for job in &state.jobs {
        report.check(prev.is_none_or(|p| p < job.id), || {
            format!("recovered jobs not strictly ascending at id {}", job.id)
        });
        prev = Some(job.id);
        report.check(job.id < state.next_job, || {
            format!("job {} not below next_job {}", job.id, state.next_job)
        });
        report.check(job.words.len() as u64 == job.total().div_ceil(64), || {
            format!("job {} bitmap has {} words for {} iterations", job.id, job.words.len(), job.total())
        });
        report.check(job.completed_count() <= job.total(), || {
            format!("job {} completed {} of {}", job.id, job.completed_count(), job.total())
        });
    }
}

/// Feeds one (checkpoint, log) pair to the journal replay path.
fn fuzz_replay(checkpoint: Option<&[u8]>, log: &[u8], report: &mut FuzzReport) {
    report.inputs += 1;
    let outcome = catch_unwind(AssertUnwindSafe(|| replay(checkpoint, log)));
    match outcome {
        Ok(state) => {
            let len = log.len() + checkpoint.map_or(0, <[u8]>::len);
            check_state(&state, len, report);
        }
        Err(_) => {
            report.panics += 1;
            report.check(false, || {
                format!("journal replay panicked on {} log bytes", log.len())
            });
        }
    }
}

/// Feeds one byte string to the checkpoint decoder.
fn fuzz_checkpoint(bytes: &[u8], report: &mut FuzzReport) {
    report.inputs += 1;
    let outcome = catch_unwind(AssertUnwindSafe(|| decode_checkpoint(bytes)));
    match outcome {
        Ok(Some(state)) => check_state(&state, bytes.len(), report),
        Ok(None) => {}
        Err(_) => {
            report.panics += 1;
            report.check(false, || {
                format!("checkpoint decoder panicked on {} bytes", bytes.len())
            });
        }
    }
}

/// A seeded valid journal log (a few records) and checkpoint image.
fn seed_journal(rng: &mut ChaosRng) -> (Vec<u8>, Vec<u8>) {
    let spec = |iters: u64| JobSpec {
        workload: WorkloadSpec::Uniform { iters, cost: 5 },
        scheme: SchemeKind::Dtss,
        priority: 1,
    };
    let mut log = Vec::new();
    let records = 1 + rng.below(5);
    for r in 0..records {
        let payload = match rng.below(3) {
            0 => encode_admit(1 + r, rng.below(1 << 20), &spec(8 + rng.below(64))),
            1 => encode_complete(1 + rng.below(records), Chunk::new(rng.below(32), 1 + rng.below(16))),
            _ => encode_finish(1 + rng.below(records)),
        };
        log.extend_from_slice(&frame_record(&payload));
    }
    let mut snap = JobSnapshot::empty(1, spec(16 + rng.below(48)), 7);
    if let Some(w) = snap.words.first_mut() {
        *w = rng.next_u64();
    }
    let state = RecoveredState { next_job: 2 + rng.below(8), jobs: vec![snap] };
    (log, encode_checkpoint(&state))
}

/// Runs the seeded fuzzing campaign described by `cfg`.
pub fn fuzz_decoders(cfg: &FuzzConfig) -> FuzzReport {
    let mut report = FuzzReport {
        inputs: 0,
        panics: 0,
        checks: 0,
        violations: Vec::new(),
        violation_count: 0,
    };
    let mut rng = ChaosRng::new(cfg.seed);
    while report.inputs < cfg.inputs {
        match rng.below(5) {
            // Arbitrary bytes into the frame decoder.
            0 => {
                let len = rng.below(cfg.max_len as u64) as usize;
                let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
                fuzz_frame(&bytes, false, &mut report);
            }
            // A pristine frame (exact round trip), then its mutant.
            1 => {
                let frame = seed_frame(&mut rng);
                let mut bytes = frame.encode();
                fuzz_frame(&bytes, true, &mut report);
                mutate(&mut bytes, &mut rng);
                fuzz_frame(&bytes, false, &mut report);
            }
            // A valid journal log, pristine then mutated, replayed with
            // and without its checkpoint.
            2 => {
                let (mut log, checkpoint) = seed_journal(&mut rng);
                fuzz_replay(Some(&checkpoint), &log, &mut report);
                mutate(&mut log, &mut rng);
                fuzz_replay(None, &log, &mut report);
                fuzz_replay(Some(&checkpoint), &log, &mut report);
            }
            // A checkpoint image, pristine then mutated.
            3 => {
                let (_, mut checkpoint) = seed_journal(&mut rng);
                fuzz_checkpoint(&checkpoint, &mut report);
                mutate(&mut checkpoint, &mut rng);
                fuzz_checkpoint(&checkpoint, &mut report);
            }
            // Arbitrary bytes into the journal reader and checkpoint
            // decoder.
            _ => {
                let len = rng.below(cfg.max_len as u64) as usize;
                let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
                fuzz_replay(None, &bytes, &mut report);
                fuzz_checkpoint(&bytes, &mut report);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fuzzing_is_clean() {
        let report = fuzz_decoders(&FuzzConfig::quick());
        assert!(
            report.holds(),
            "violations: {:?} ({} inputs, {} panics)",
            report.violations,
            report.inputs,
            report.panics
        );
        assert!(report.inputs >= FuzzConfig::quick().inputs);
        assert!(report.checks > report.inputs, "each input should add checks");
    }

    #[test]
    fn fuzzing_is_deterministic() {
        let a = fuzz_decoders(&FuzzConfig::quick());
        let b = fuzz_decoders(&FuzzConfig::quick());
        assert_eq!(a.inputs, b.inputs);
        assert_eq!(a.checks, b.checks);
        assert_eq!(a.violation_count, b.violation_count);
    }

    #[test]
    fn misclassified_error_would_be_caught() {
        // Sanity-check the oracle: a frame with a foreign magic byte
        // must be classified Legacy, and the checker must notice if it
        // is not. Feed a crafted input whose classification we know
        // and assert the check counts stay honest.
        let mut report = FuzzReport {
            inputs: 0,
            panics: 0,
            checks: 0,
            violations: Vec::new(),
            violation_count: 0,
        };
        fuzz_frame(&[0x00, 0x03, 0x01], false, &mut report);
        assert_eq!(report.violation_count, 0, "Legacy classification holds");
        // A version mismatch must surface the offending byte.
        fuzz_frame(&[SERVE_MAGIC, 0xFF, 0x01], false, &mut report);
        assert_eq!(report.violation_count, 0, "Version classification holds");
    }
}
