//! Engine 4 — the journal crash-point enumerator.
//!
//! The serve daemon's crash story rests on one pure function:
//! [`lss_serve::journal::replay`], which rebuilds scheduling state from
//! a checkpoint image plus a write-ahead log suffix. This engine makes
//! that story exhaustive instead of anecdotal: it generates job
//! histories (admissions, chunk completions, finishes, compactions)
//! with a seeded RNG, renders them to byte-exact journal images via the
//! journal's own pure encoders, and then simulates a crash at **every
//! byte boundary** of the log — between records, inside records (torn
//! tails), after single-bit corruptions of the CRC-framed records, and
//! with a corrupted checkpoint image.
//!
//! At every crash point the recovered state must satisfy:
//!
//! - **prefix exactness** — replay of `k` durable records equals an
//!   independently maintained reference state after `k` operations
//!   (torn or corrupt record `k+1` is ignored entirely, never half
//!   applied);
//! - **exact partition** — each recovered job's completed ranges are
//!   disjoint, in bounds, and together with the re-admitted remainder
//!   tile `[0, total)` exactly once;
//! - **admission-before-reply** — any admission the service could have
//!   acknowledged before the crash is recoverable (the job id is known
//!   and, unless its finish record is also durable, the job is
//!   re-admitted);
//! - **completion-before-dedup** — any completion folded into the
//!   dedup bitmap before the crash has its bits set after recovery.
//!
//! The last two are *observational*: what the service may have told
//! the outside world is derived from the crash byte and the journaling
//! [`Discipline`]. Under the production [`Discipline::WriteAhead`]
//! (journal first, then reply) they always hold; flipping the seam to
//! [`Discipline::ReplyBeforeJournal`] or replacing recovery with the
//! deliberately buggy [`RecoveryImpl::DropPartialJobs`] must make the
//! checker fail — the unit tests pin both.

use lss_core::Chunk;
use lss_core::fault::ChaosRng;
use lss_core::master::SchemeKind;
use lss_runtime::protocol::serve::{JobSpec, WorkloadSpec};
use lss_serve::journal::{
    encode_admit, encode_checkpoint, encode_complete, encode_finish, frame_record, replay,
    JobSnapshot, RecoveredState,
};

/// Maximum violation descriptions kept in a report.
const MAX_VIOLATIONS: usize = 16;

/// When the service acknowledges an operation relative to journaling
/// it — the seam the enumerator checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discipline {
    /// Production order: the record is durable before the reply (an
    /// acknowledged fact is always recoverable).
    WriteAhead,
    /// The injected ordering bug: the reply goes out before the append
    /// — a crash in the window loses acknowledged state. The checker
    /// must catch this.
    ReplyBeforeJournal,
}

/// Which recovery implementation replays the journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryImpl {
    /// The real pure replay path.
    Production,
    /// The injected dropped-readmit bug: recovery forgets to re-admit
    /// jobs that were partially complete at the crash. The partition
    /// checker must catch this.
    DropPartialJobs,
}

/// Bounds and seeds for one enumeration.
#[derive(Debug, Clone)]
pub struct CrashConfig {
    /// Number of generated job histories.
    pub histories: u64,
    /// Operations per history (admit/complete/finish/checkpoint).
    pub max_ops: usize,
    /// Maximum concurrently live jobs per history.
    pub max_jobs: usize,
    /// Maximum loop size per job.
    pub max_iters: u64,
    /// Sample every `flip_stride`-th bit position for record
    /// corruptions (1 = every bit).
    pub flip_stride: usize,
    /// Base RNG seed (each history derives its own stream).
    pub seed: u64,
    /// Acknowledgement ordering under test.
    pub discipline: Discipline,
    /// Recovery implementation under test.
    pub recovery: RecoveryImpl,
}

impl CrashConfig {
    /// The full grid the CI acceptance bar uses: ≥ 100k crash points.
    pub fn full() -> Self {
        CrashConfig {
            histories: 64,
            max_ops: 48,
            max_jobs: 4,
            max_iters: 96,
            flip_stride: 32,
            seed: 0xC4A5_4001,
            discipline: Discipline::WriteAhead,
            recovery: RecoveryImpl::Production,
        }
    }

    /// A reduced grid for debug-profile unit tests and `--quick`.
    pub fn quick() -> Self {
        CrashConfig {
            histories: 6,
            max_ops: 18,
            max_jobs: 3,
            max_iters: 48,
            flip_stride: 128,
            ..CrashConfig::full()
        }
    }
}

/// The outcome of one enumeration.
#[derive(Debug, Clone)]
pub struct CrashReport {
    /// Histories generated.
    pub histories: u64,
    /// Journal records rendered across all histories.
    pub records: u64,
    /// Total crash points simulated (boundaries + torn + corrupted).
    pub crash_points: u64,
    /// Crash points that landed strictly inside a record (torn tails).
    pub torn_points: u64,
    /// Single-bit corruptions applied (records and checkpoints).
    pub bit_flips: u64,
    /// Individual assertions evaluated.
    pub checks: u64,
    /// Violation descriptions (capped at [`MAX_VIOLATIONS`]).
    pub violations: Vec<String>,
    /// Total violations found (may exceed `violations.len()`).
    pub violation_count: u64,
}

impl CrashReport {
    /// Whether the journal passed: crash points were enumerated and no
    /// assertion failed.
    pub fn holds(&self) -> bool {
        self.crash_points > 0 && self.torn_points > 0 && self.violation_count == 0
    }

    fn violation(&mut self, msg: String) {
        self.violation_count += 1;
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(msg);
        }
    }

    fn check(&mut self, ok: bool, msg: impl FnOnce() -> String) {
        self.checks += 1;
        if !ok {
            self.violation(msg());
        }
    }
}

/// One journaled operation of a history.
#[derive(Debug, Clone, Copy)]
enum OpKind {
    Admit(u64),
    Complete(u64, Chunk),
    Finish(u64),
}

/// Byte span of one record in the current log segment.
#[derive(Debug, Clone, Copy)]
struct RecSpan {
    start: usize,
    end: usize,
    op: OpKind,
}

/// Independent reference semantics of the journal — deliberately *not*
/// implemented via `replay`, so the equality check compares two
/// implementations instead of one against itself.
#[derive(Debug, Clone, Default)]
struct Mirror {
    next_job: u64,
    jobs: Vec<(u64, JobSpec, u64, Vec<bool>)>,
}

impl Mirror {
    fn new() -> Self {
        Mirror { next_job: 1, jobs: Vec::new() }
    }

    fn admit(&mut self, id: u64, spec: JobSpec, submitted_ns: u64) {
        if id >= self.next_job {
            self.next_job = id + 1;
            let bits = vec![false; spec.workload.len() as usize];
            self.jobs.push((id, spec, submitted_ns, bits));
        }
    }

    fn complete(&mut self, job: u64, chunk: Chunk) {
        if let Some((_, spec, _, bits)) = self.jobs.iter_mut().find(|(id, ..)| *id == job) {
            let end = chunk.end().min(spec.workload.len());
            for i in chunk.start..end {
                bits[i as usize] = true;
            }
        }
    }

    fn finish(&mut self, job: u64) {
        self.jobs.retain(|(id, ..)| *id != job);
    }

    fn to_state(&self) -> RecoveredState {
        let jobs = self
            .jobs
            .iter()
            .map(|(id, spec, submitted_ns, bits)| {
                let mut snap = JobSnapshot::empty(*id, spec.clone(), *submitted_ns);
                for (i, &set) in bits.iter().enumerate() {
                    if set {
                        snap.words[i / 64] |= 1u64 << (i % 64);
                    }
                }
                snap
            })
            .collect();
        RecoveredState { next_job: self.next_job, jobs }
    }
}

/// Applies the recovery implementation under test.
fn recover(
    checkpoint: Option<&[u8]>,
    log: &[u8],
    recovery: RecoveryImpl,
) -> RecoveredState {
    let mut state = replay(checkpoint, log);
    if recovery == RecoveryImpl::DropPartialJobs {
        // The injected bug: a partially complete job is silently not
        // re-admitted, so its remaining iterations are never run.
        state.jobs.retain(|j| j.completed_count() == 0 || j.is_complete());
    }
    state
}

/// The exact-partition invariant over one recovered state: each job's
/// completed ranges are disjoint, in bounds, and together with the
/// re-admitted remainder tile `[0, total)` exactly once.
fn check_partition(state: &RecoveredState, at: &str, report: &mut CrashReport) {
    for job in &state.jobs {
        let total = job.total();
        let ranges = job.completed_ranges();
        let mut cursor = 0u64;
        let mut covered = 0u64;
        let mut ordered = true;
        for r in &ranges {
            if r.start < cursor {
                ordered = false;
            }
            cursor = r.end();
            covered += r.len;
        }
        report.check(ordered && cursor <= total, || {
            format!("{at}: job {} recovered ranges {ranges:?} overlap or exceed [0, {total})", job.id)
        });
        let completed = job.completed_count();
        report.check(covered == completed, || {
            format!(
                "{at}: job {} ranges cover {covered} iterations but bitmap holds {completed}",
                job.id
            )
        });
        // The re-admitted remainder is the bitmap complement, so with
        // disjoint in-bounds ranges, completions + remainder tile
        // [0, total) exactly iff the bitmap never exceeds the loop.
        report.check(completed <= total, || {
            format!("{at}: job {} bitmap holds {completed} > total {total}", job.id)
        });
    }
}

/// The observational ordering invariants at one crash point: `k`
/// records of the segment are durable, the crash byte is `c`, and the
/// discipline decides which operations the service may have already
/// acknowledged.
fn check_acked(
    spans: &[RecSpan],
    k: usize,
    c: usize,
    discipline: Discipline,
    recovered: &RecoveredState,
    report: &mut CrashReport,
) {
    let acked = |idx: usize, span: &RecSpan| -> bool {
        match discipline {
            // Journal-first: only fully durable records were acked.
            Discipline::WriteAhead => idx < k,
            // Reply-first: the ack may precede every byte of the
            // record, so any record that *started* by `c` (including
            // one with zero bytes written at exactly `c`) counts.
            Discipline::ReplyBeforeJournal => span.start <= c,
        }
    };
    for (idx, span) in spans.iter().enumerate() {
        if !acked(idx, span) {
            break;
        }
        match span.op {
            OpKind::Admit(id) => {
                report.check(recovered.next_job > id, || {
                    format!(
                        "acknowledged admission of job {id} lost: next_job {} after crash at byte {c}",
                        recovered.next_job
                    )
                });
                let finish_durable = spans[..k.min(spans.len())]
                    .iter()
                    .any(|s| matches!(s.op, OpKind::Finish(j) if j == id));
                if !finish_durable {
                    report.check(recovered.jobs.iter().any(|j| j.id == id), || {
                        format!(
                            "acknowledged admission of job {id} not re-admitted after crash at byte {c}"
                        )
                    });
                }
            }
            OpKind::Complete(job, chunk) => {
                if let Some(j) = recovered.jobs.iter().find(|j| j.id == job) {
                    let end = chunk.end().min(j.total());
                    let set = (chunk.start..end).all(|i| {
                        j.words
                            .get((i / 64) as usize)
                            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
                    });
                    report.check(set, || {
                        format!(
                            "acknowledged completion {chunk:?} of job {job} lost across crash at byte {c}"
                        )
                    });
                }
            }
            OpKind::Finish(_) => {}
        }
    }
}

/// Enumerates every crash point of one closed log segment.
#[allow(clippy::too_many_arguments)]
fn enumerate_segment(
    cfg: &CrashConfig,
    checkpoint: Option<&[u8]>,
    log: &[u8],
    boundaries: &[usize],
    states: &[RecoveredState],
    spans: &[RecSpan],
    report: &mut CrashReport,
) {
    let production = cfg.recovery == RecoveryImpl::Production;
    // Crash at every byte boundary of the segment: boundary bytes are
    // clean prefixes of k records; interior bytes are torn tails of
    // record k+1 and must be ignored entirely.
    for (k, window) in boundaries.windows(2).enumerate() {
        let (b_lo, b_hi) = (window[0], window[1]);
        for c in b_lo..b_hi {
            report.crash_points += 1;
            if c > b_lo {
                report.torn_points += 1;
            }
            let recovered = recover(checkpoint, &log[..c], cfg.recovery);
            if production {
                report.check(recovered == states[k], || {
                    format!(
                        "crash at byte {c} (record {k} torn): recovered state diverges from reference"
                    )
                });
            }
            check_partition(&recovered, "torn", report);
            check_acked(spans, k, c, cfg.discipline, &recovered, report);
        }
    }
    // The clean boundary after the final record.
    if let (Some(&end), Some(last_state)) = (boundaries.last(), states.last()) {
        report.crash_points += 1;
        let recovered = recover(checkpoint, &log[..end], cfg.recovery);
        if production {
            report.check(recovered == *last_state, || {
                "complete-log replay diverges from reference".to_string()
            });
        }
        check_partition(&recovered, "boundary", report);
        check_acked(spans, spans.len(), end, cfg.discipline, &recovered, report);
    }
    // Single-bit corruptions: a flipped record must be rejected whole,
    // degrading recovery to the state before it — never a panic, never
    // a half-applied record.
    let stride = cfg.flip_stride.max(1);
    for (r, span) in spans.iter().enumerate() {
        let bits = (span.end - span.start) * 8;
        for bit in (0..bits).step_by(stride) {
            report.crash_points += 1;
            report.bit_flips += 1;
            let mut corrupt = log.to_vec();
            corrupt[span.start + bit / 8] ^= 1 << (bit % 8);
            let recovered = recover(checkpoint, &corrupt, cfg.recovery);
            if production {
                report.check(recovered == states[r], || {
                    format!(
                        "bit {bit} of record {r} flipped: replay did not stop at the corrupt record"
                    )
                });
            }
            check_partition(&recovered, "bit-flip", report);
        }
    }
    // Checkpoint corruption: a flipped checkpoint must behave exactly
    // as an absent one (all-or-nothing decode), never partially apply.
    if let Some(cp) = checkpoint {
        if !cp.is_empty() {
            let baseline = recover(None, log, cfg.recovery);
            for bit in (0..cp.len() * 8).step_by(stride) {
                report.crash_points += 1;
                report.bit_flips += 1;
                let mut corrupt = cp.to_vec();
                corrupt[bit / 8] ^= 1 << (bit % 8);
                let recovered = recover(Some(&corrupt), log, cfg.recovery);
                report.check(recovered == baseline, || {
                    format!("bit {bit} of checkpoint flipped: partial checkpoint applied")
                });
            }
        }
    }
}

/// Runs the crash-point enumeration described by `cfg`.
pub fn enumerate_crash_points(cfg: &CrashConfig) -> CrashReport {
    let mut report = CrashReport {
        histories: 0,
        records: 0,
        crash_points: 0,
        torn_points: 0,
        bit_flips: 0,
        checks: 0,
        violations: Vec::new(),
        violation_count: 0,
    };
    for h in 0..cfg.histories {
        report.histories += 1;
        let mut rng = ChaosRng::new(cfg.seed.wrapping_add(h.wrapping_mul(0x9E37_79B9)));
        let mut mirror = Mirror::new();
        let mut checkpoint: Option<Vec<u8>> = None;
        let mut log: Vec<u8> = Vec::new();
        let mut boundaries: Vec<usize> = vec![0];
        let mut states: Vec<RecoveredState> = vec![mirror.to_state()];
        let mut spans: Vec<RecSpan> = Vec::new();
        let push_record = |payload: Vec<u8>,
                               op: OpKind,
                               log: &mut Vec<u8>,
                               boundaries: &mut Vec<usize>,
                               states: &mut Vec<RecoveredState>,
                               spans: &mut Vec<RecSpan>,
                               mirror: &Mirror,
                               report: &mut CrashReport| {
            let record = frame_record(&payload);
            let start = log.len();
            log.extend_from_slice(&record);
            boundaries.push(log.len());
            states.push(mirror.to_state());
            spans.push(RecSpan { start, end: log.len(), op });
            report.records += 1;
        };
        for _ in 0..cfg.max_ops {
            let live = mirror.jobs.len();
            let roll = rng.below(100);
            if roll < 12 && !log.is_empty() {
                // Compaction: close the segment (enumerating all of its
                // crash points first), fold state into a new checkpoint,
                // and check the crash window between checkpoint-rename
                // and log-truncate — replaying the *old* log on the new
                // checkpoint must be a no-op.
                enumerate_segment(
                    cfg,
                    checkpoint.as_deref(),
                    &log,
                    &boundaries,
                    &states,
                    &spans,
                    &mut report,
                );
                let folded = mirror.to_state();
                let image = encode_checkpoint(&folded);
                let window = recover(Some(&image), &log, cfg.recovery);
                if cfg.recovery == RecoveryImpl::Production {
                    report.check(window == folded, || {
                        "checkpoint crash window: replaying folded records is not idempotent"
                            .to_string()
                    });
                }
                checkpoint = Some(image);
                log.clear();
                boundaries = vec![0];
                states = vec![folded];
                spans.clear();
            } else if live < cfg.max_jobs && (live == 0 || roll < 40) {
                let id = mirror.next_job;
                let iters = 8 + rng.below(cfg.max_iters.saturating_sub(8).max(1));
                let spec = JobSpec {
                    workload: WorkloadSpec::Uniform { iters, cost: 5 },
                    scheme: SchemeKind::Dtss,
                    priority: 1 + rng.below(4) as u32,
                };
                let submitted_ns = rng.below(1 << 30);
                mirror.admit(id, spec.clone(), submitted_ns);
                push_record(
                    encode_admit(id, submitted_ns, &spec),
                    OpKind::Admit(id),
                    &mut log,
                    &mut boundaries,
                    &mut states,
                    &mut spans,
                    &mirror,
                    &mut report,
                );
            } else if live > 0 {
                let pick = rng.below(live as u64) as usize;
                let (id, total) = {
                    let (id, spec, ..) = &mirror.jobs[pick];
                    (*id, spec.workload.len())
                };
                let done = mirror.jobs[pick].3.iter().all(|&b| b);
                if done && rng.chance(0.8) {
                    mirror.finish(id);
                    push_record(
                        encode_finish(id),
                        OpKind::Finish(id),
                        &mut log,
                        &mut boundaries,
                        &mut states,
                        &mut spans,
                        &mirror,
                        &mut report,
                    );
                } else {
                    // Overlapping and duplicate ranges on purpose: the
                    // journal's OR semantics must absorb them.
                    let start = rng.below(total);
                    let len = 1 + rng.below((total / 3).max(1));
                    let chunk = Chunk::new(start, len.min(total - start));
                    mirror.complete(id, chunk);
                    push_record(
                        encode_complete(id, chunk),
                        OpKind::Complete(id, chunk),
                        &mut log,
                        &mut boundaries,
                        &mut states,
                        &mut spans,
                        &mirror,
                        &mut report,
                    );
                }
            }
        }
        enumerate_segment(
            cfg,
            checkpoint.as_deref(),
            &log,
            &boundaries,
            &states,
            &spans,
            &mut report,
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_enumeration_is_clean() {
        let report = enumerate_crash_points(&CrashConfig::quick());
        assert!(
            report.holds(),
            "violations: {:?} ({} crash points)",
            report.violations,
            report.crash_points
        );
        assert!(report.crash_points > 1_000, "only {} crash points", report.crash_points);
        assert!(report.torn_points > 0);
        assert!(report.bit_flips > 0);
    }

    #[test]
    fn reply_before_journal_is_caught() {
        // Flip the write-ahead seam: acknowledging before journaling
        // must lose acknowledged state at some crash point, and the
        // ordering checker must see it.
        let cfg = CrashConfig {
            discipline: Discipline::ReplyBeforeJournal,
            ..CrashConfig::quick()
        };
        let report = enumerate_crash_points(&cfg);
        assert!(report.violation_count > 0, "ordering bug was not detected");
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("acknowledged")),
            "violations should name a lost acknowledged fact: {:?}",
            report.violations
        );
    }

    #[test]
    fn dropped_readmit_is_caught() {
        // A recovery that forgets partially complete jobs breaks the
        // exact-partition/ordering invariants.
        let cfg = CrashConfig {
            recovery: RecoveryImpl::DropPartialJobs,
            ..CrashConfig::quick()
        };
        let report = enumerate_crash_points(&cfg);
        assert!(report.violation_count > 0, "dropped-readmit bug was not detected");
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("not re-admitted")),
            "violations should name the missing re-admission: {:?}",
            report.violations
        );
    }

    #[test]
    fn enumeration_is_deterministic() {
        let a = enumerate_crash_points(&CrashConfig::quick());
        let b = enumerate_crash_points(&CrashConfig::quick());
        assert_eq!(a.crash_points, b.crash_points);
        assert_eq!(a.checks, b.checks);
        assert_eq!(a.violation_count, b.violation_count);
    }
}
