//! Machine-readable reports: hand-rolled JSON serialisation for
//! certificates, exploration reports, lint findings and the three
//! serve-layer engines (the workspace carries no serde dependency by
//! design).

use crate::certify::Certificate;
use crate::crashpoints::CrashReport;
use crate::explore::ExploreReport;
use crate::fuzz::FuzzReport;
use crate::lint::LintReport;
use crate::serve_explore::ServeExploreReport;

/// Escapes a string for inclusion in a JSON document.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialises certificates as a JSON array, one object per scheme with
/// per-property check/violation counts and sampled counterexamples.
pub fn json_certificates(certs: &[Certificate]) -> String {
    let mut out = String::from("[\n");
    for (i, cert) in certs.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "  {{\"scheme\": \"{}\", \"variant\": \"{}\", \"holds\": {}, \
             \"configs\": {}, \"chunks\": {}, \"properties\": [",
            esc(cert.scheme),
            esc(&cert.variant),
            cert.holds(),
            cert.configs,
            cert.chunks
        ));
        for (j, p) in cert.properties.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"name\": \"{}\", \"checks\": {}, \"violations\": {}, \"samples\": [{}]}}",
                esc(p.name),
                p.checks,
                p.violations,
                p.samples
                    .iter()
                    .map(|s| format!("\"{}\"", esc(s)))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        out.push_str("]}");
    }
    out.push_str("\n]\n");
    out
}

/// Serialises an exploration report as a JSON object.
pub fn json_exploration(report: &ExploreReport) -> String {
    format!(
        "{{\"holds\": {}, \"interleavings\": {}, \"terminal\": {}, \
         \"depth_bounded\": {}, \"checks\": {}, \"events_checked\": {}, \
         \"violation_count\": {}, \"violations\": [{}]}}\n",
        report.holds(),
        report.interleavings,
        report.terminal,
        report.depth_bounded,
        report.checks,
        report.events_checked,
        report.violation_count,
        report
            .violations
            .iter()
            .map(|v| format!("\"{}\"", esc(v)))
            .collect::<Vec<_>>()
            .join(", ")
    )
}

/// Serialises a lint report as a JSON object.
pub fn json_lint(report: &LintReport) -> String {
    format!(
        "{{\"holds\": {}, \"rules\": [{}], \"findings\": [{}]}}\n",
        report.holds(),
        report
            .rules
            .iter()
            .map(|r| format!("\"{}\"", esc(r)))
            .collect::<Vec<_>>()
            .join(", "),
        report
            .findings
            .iter()
            .map(|f| format!(
                "{{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"pattern\": \"{}\"}}",
                esc(f.rule),
                esc(&f.file),
                f.line,
                esc(f.pattern)
            ))
            .collect::<Vec<_>>()
            .join(", ")
    )
}

fn json_violations(violations: &[String]) -> String {
    violations
        .iter()
        .map(|v| format!("\"{}\"", esc(v)))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Serialises a crash-point enumeration report as a JSON object.
pub fn json_crash_points(report: &CrashReport) -> String {
    format!(
        "{{\"holds\": {}, \"histories\": {}, \"records\": {}, \
         \"crash_points\": {}, \"torn_points\": {}, \"bit_flips\": {}, \
         \"checks\": {}, \"violation_count\": {}, \"violations\": [{}]}}\n",
        report.holds(),
        report.histories,
        report.records,
        report.crash_points,
        report.torn_points,
        report.bit_flips,
        report.checks,
        report.violation_count,
        json_violations(&report.violations)
    )
}

/// Serialises a serve-scheduler exploration report as a JSON object.
pub fn json_serve_explore(report: &ServeExploreReport) -> String {
    format!(
        "{{\"holds\": {}, \"interleavings\": {}, \"terminal\": {}, \
         \"depth_bounded\": {}, \"checks\": {}, \"events_checked\": {}, \
         \"violation_count\": {}, \"violations\": [{}]}}\n",
        report.holds(),
        report.interleavings,
        report.terminal,
        report.depth_bounded,
        report.checks,
        report.events_checked,
        report.violation_count,
        json_violations(&report.violations)
    )
}

/// Serialises a decoder-fuzzing report as a JSON object.
pub fn json_fuzz(report: &FuzzReport) -> String {
    format!(
        "{{\"holds\": {}, \"inputs\": {}, \"panics\": {}, \"checks\": {}, \
         \"violation_count\": {}, \"violations\": [{}]}}\n",
        report.holds(),
        report.inputs,
        report.panics,
        report.checks,
        report.violation_count,
        json_violations(&report.violations)
    )
}

/// Serialises the combined serve-layer verification (`lss verify
/// --serve --json`) as one JSON object with a top-level verdict.
pub fn json_serve(
    crash: &CrashReport,
    explore: &ServeExploreReport,
    fuzz: &FuzzReport,
) -> String {
    format!(
        "{{\"holds\": {}, \"crash_points\": {}, \"interleavings\": {}, \"fuzz\": {}}}\n",
        crash.holds() && explore.holds() && fuzz.holds(),
        json_crash_points(crash).trim_end(),
        json_serve_explore(explore).trim_end(),
        json_fuzz(fuzz).trim_end()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certify::{certify_scheme, Domain, SchemeFamily};
    use crate::crashpoints::CrashConfig;
    use crate::fuzz::FuzzConfig;
    use crate::serve_explore::ServeExploreConfig;

    #[test]
    fn certificate_json_is_well_formed() {
        let cert = certify_scheme(SchemeFamily::Pure, &Domain::quick());
        let json = json_certificates(&[cert]);
        assert!(json.starts_with("[\n"));
        assert!(json.contains("\"scheme\": \"SS\""));
        assert!(json.contains("\"holds\": true"));
        // Balanced braces/brackets is a cheap structural smoke check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count()
        );
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count()
        );
    }

    #[test]
    fn escaping_handles_quotes_and_controls() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn combined_serve_json_parses_with_the_trace_parser() {
        // Tiny runs of all three serve engines, serialized together,
        // must survive the strict mini JSON parser the trace crate
        // ships — the same validation CI applies to the artifact.
        let crash = crate::crashpoints::enumerate_crash_points(&CrashConfig {
            histories: 1,
            max_ops: 6,
            ..CrashConfig::quick()
        });
        let explore = crate::serve_explore::explore_serve(&ServeExploreConfig {
            max_interleavings: 5,
            ..ServeExploreConfig::quick()
        });
        let fuzz = crate::fuzz::fuzz_decoders(&FuzzConfig { inputs: 50, ..FuzzConfig::quick() });
        let json = json_serve(&crash, &explore, &fuzz);
        let parsed = lss_trace::chrome::parse_json(&json).expect("valid JSON");
        let _ = parsed;
        assert!(json.contains("\"crash_points\""));
        assert!(json.contains("\"interleavings\""));
        assert!(json.contains("\"fuzz\""));
        for part in [
            json_crash_points(&crash),
            json_serve_explore(&explore),
            json_fuzz(&fuzz),
        ] {
            lss_trace::chrome::parse_json(&part).expect("engine JSON parses");
        }
    }
}
