//! Engine 1 — the exhaustive scheme certifier.
//!
//! Every chunk-size rule in `lss-core` is re-implemented here as an
//! *independent* replica of its published formula, then both the
//! replica and the real scheme are swept over a bounded parameter
//! domain ([`Domain`]): every loop size `I ≤ max_iters`, every PE count
//! `p ≤ max_p`, and (for the distributed schemes) a fixed set of
//! heterogeneous power/run-queue vectors. For every configuration the
//! certifier checks, chunk by chunk:
//!
//! - **clamping** — `1 ≤ C_i ≤ R_{i-1}` (eq. 1's accounting),
//! - **coverage** — the chunks tile `[0, I)` contiguously, no overlap,
//!   no gap, no stranded tail,
//! - **formula fidelity** — the dispensed sequence equals the replica's
//!   prediction exactly (not statistically),
//! - scheme-specific structure — TSS/GSS monotone non-increase,
//!   FSS/FISS/TFSS stage structure (groups of `p` equal chunks), TFSS
//!   stage totals equal to the mean of the next `p` TSS formula chunks,
//!   DTSS's closed form, DFSS/DFISS/DTFSS per-worker shares within
//!   rounding of `SC_k · A_j / A`, and the §5.2 fractional-ACP fix.
//!
//! The output is a machine-readable [`Certificate`] per scheme family:
//! how many configurations and chunks were checked, and per property
//! the check/violation counts with up to eight violation samples.

use lss_core::chunk::{Chunk, ChunkDispenser};
use lss_core::distributed::{DistKind, DistributedScheduler, Grant};
use lss_core::master::SchemeKind;
use lss_core::power::{AcpConfig, VirtualPower};
use lss_core::scheme::{
    ChunkSelfSched, ChunkSizer, FactoringSelfSched, FixedIncreaseSelfSched, GuidedSelfSched,
    PureSelfSched, StaticSched, TrapezoidFactoringSelfSched, TrapezoidSelfSched, WeightedFactoring,
};
use lss_shard::{partition, FormulaReplica};

/// Maximum number of violation samples kept per property.
const MAX_SAMPLES: usize = 8;

/// Rounds to nearest, ties to even — an independent copy of the
/// rounding mode `lss-core` uses for FSS (kept local so the certifier
/// does not certify a formula against itself).
fn round_half_even(x: f64) -> u64 {
    let floor = x.floor();
    let frac = x - floor;
    let f = floor as u64;
    if frac > 0.5 || (frac == 0.5 && !f.is_multiple_of(2)) {
        f + 1
    } else {
        f
    }
}

/// The bounded parameter domain a certificate quantifies over.
#[derive(Debug, Clone, Copy)]
pub struct Domain {
    /// Largest loop size `I` swept (every `1..=max_iters` is checked).
    pub max_iters: u64,
    /// Largest PE count `p` swept (every `1..=max_p` is checked).
    pub max_p: u32,
}

impl Domain {
    /// The domain from the PR acceptance criteria: `I ≤ 4096`, `p ≤ 16`.
    pub const PAPER: Domain = Domain { max_iters: 4096, max_p: 16 };

    /// A small domain for debug-profile unit tests.
    pub fn quick() -> Domain {
        Domain { max_iters: 160, max_p: 5 }
    }
}

/// One verified property inside a [`Certificate`]: a named claim, how
/// many times it was checked, and how often it failed.
#[derive(Debug, Clone)]
pub struct Property {
    /// Human-readable name of the claim.
    pub name: &'static str,
    /// Number of individual checks performed.
    pub checks: u64,
    /// Number of failed checks.
    pub violations: u64,
    /// Up to [`MAX_SAMPLES`] descriptions of failing configurations.
    pub samples: Vec<String>,
}

impl Property {
    fn new(name: &'static str) -> Self {
        Property { name, checks: 0, violations: 0, samples: Vec::new() }
    }

    /// Records one check; `detail` is only rendered on failure.
    fn check<F: FnOnce() -> String>(&mut self, ok: bool, detail: F) {
        self.checks += 1;
        if !ok {
            if self.samples.len() < MAX_SAMPLES {
                self.samples.push(detail());
            }
            self.violations += 1;
        }
    }

    /// Whether the property held over every check.
    pub fn holds(&self) -> bool {
        self.violations == 0 && self.checks > 0
    }
}

/// The machine-readable result of certifying one scheme family.
#[derive(Debug, Clone)]
pub struct Certificate {
    /// Scheme label, e.g. `"TSS"` or `"DTSS"`.
    pub scheme: &'static str,
    /// Description of the parameter sweep this certificate covers.
    pub variant: String,
    /// Number of `(I, p, params)` configurations evaluated.
    pub configs: u64,
    /// Total chunks dispensed and checked across all configurations.
    pub chunks: u64,
    /// The individual properties proved (or refuted).
    pub properties: Vec<Property>,
}

impl Certificate {
    /// Whether every property held over a non-empty sweep.
    pub fn holds(&self) -> bool {
        self.configs > 0 && self.properties.iter().all(Property::holds)
    }

    /// Sum of individual checks across all properties.
    pub fn total_checks(&self) -> u64 {
        self.properties.iter().map(|p| p.checks).sum()
    }
}

/// The scheme families the certifier knows how to certify.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeFamily {
    /// Static scheduling `S`: one `⌈I/p⌉` block per PE.
    Static,
    /// Pure self-scheduling `SS`: one iteration per request.
    Pure,
    /// Chunk self-scheduling `CSS(k)`: fixed chunk size.
    Css,
    /// Guided self-scheduling `GSS`.
    Gss,
    /// Guided self-scheduling with a minimum chunk, `GSS(k)`.
    GssMin,
    /// Trapezoid self-scheduling with default bounds.
    Tss,
    /// Trapezoid self-scheduling with explicit `(F, L)` bounds.
    TssBounds,
    /// Factoring self-scheduling with fixed `α = 2`.
    Fss,
    /// Factoring with the Hummel–Schonberg–Flynn adaptive `α`.
    FssAdaptive,
    /// Fixed-increase self-scheduling `FISS(σ)`.
    Fiss,
    /// The paper's trapezoid-factoring scheme `TFSS`.
    Tfss,
    /// Weighted factoring `WF` (per-worker static weights).
    Wf,
    /// Distributed trapezoid self-scheduling (closed form over ACP).
    Dtss,
    /// Distributed factoring self-scheduling.
    Dfss,
    /// Distributed fixed-increase self-scheduling.
    Dfiss,
    /// Distributed trapezoid-factoring self-scheduling.
    Dtfss,
    /// The §5.2 fractional-ACP `×10` fix.
    FractionalAcp,
    /// Shard-offset replay: dispensers restarted from arbitrary range
    /// offsets and worker-local formula replicas agree at every shard
    /// boundary, not just from chunk 0.
    OffsetReplay,
}

impl SchemeFamily {
    /// The 11 `ChunkSizer` configurations named by the PR acceptance
    /// criteria.
    pub const CORE: [SchemeFamily; 11] = [
        SchemeFamily::Static,
        SchemeFamily::Pure,
        SchemeFamily::Css,
        SchemeFamily::Gss,
        SchemeFamily::GssMin,
        SchemeFamily::Tss,
        SchemeFamily::TssBounds,
        SchemeFamily::Fss,
        SchemeFamily::FssAdaptive,
        SchemeFamily::Fiss,
        SchemeFamily::Tfss,
    ];

    /// The auxiliary certificates: the per-worker schemes (WF, the
    /// distributed family), the ACP arithmetic itself, and the
    /// shard-offset replay soundness of `lss-shard`.
    pub const AUXILIARY: [SchemeFamily; 7] = [
        SchemeFamily::Wf,
        SchemeFamily::Dtss,
        SchemeFamily::Dfss,
        SchemeFamily::Dfiss,
        SchemeFamily::Dtfss,
        SchemeFamily::FractionalAcp,
        SchemeFamily::OffsetReplay,
    ];

    /// Display label used in certificates and CLI tables.
    pub fn label(self) -> &'static str {
        match self {
            SchemeFamily::Static => "S",
            SchemeFamily::Pure => "SS",
            SchemeFamily::Css => "CSS(k)",
            SchemeFamily::Gss => "GSS",
            SchemeFamily::GssMin => "GSS(k)",
            SchemeFamily::Tss => "TSS",
            SchemeFamily::TssBounds => "TSS(F,L)",
            SchemeFamily::Fss => "FSS",
            SchemeFamily::FssAdaptive => "FSS(adaptive)",
            SchemeFamily::Fiss => "FISS",
            SchemeFamily::Tfss => "TFSS",
            SchemeFamily::Wf => "WF",
            SchemeFamily::Dtss => "DTSS",
            SchemeFamily::Dfss => "DFSS",
            SchemeFamily::Dfiss => "DFISS",
            SchemeFamily::Dtfss => "DTFSS",
            SchemeFamily::FractionalAcp => "ACP(x10)",
            SchemeFamily::OffsetReplay => "OFFSET(shard)",
        }
    }

    /// Whether this family is one of the 11 core `ChunkSizer` configs.
    pub fn is_core(self) -> bool {
        SchemeFamily::CORE.contains(&self)
    }
}

/// Streams a dispenser, checking the clamp and coverage invariants and
/// collecting the dispensed sizes into `sizes` (cleared first).
fn stream<S: ChunkSizer>(
    total: u64,
    sizer: S,
    clamp: &mut Property,
    cover: &mut Property,
    sizes: &mut Vec<u64>,
) {
    sizes.clear();
    let mut d = ChunkDispenser::new(total, sizer);
    let mut cursor = 0u64;
    let mut remaining_before = total;
    let mut count = 0u64;
    while let Some(c) = d.next_chunk() {
        count += 1;
        if count > total {
            // More chunks than iterations is unreachable if clamping
            // holds; guard against a non-terminating formula anyway.
            cover.check(false, || format!("I={total}: dispensed more chunks than iterations"));
            return;
        }
        clamp.check(c.len >= 1 && c.len <= remaining_before, || {
            format!("I={total}: chunk #{count} len {} outside 1..={remaining_before}", c.len)
        });
        cover.check(c.start == cursor, || {
            format!("I={total}: chunk #{count} starts at {} but cursor is {cursor}", c.start)
        });
        cursor = c.end();
        remaining_before = remaining_before.saturating_sub(c.len);
        sizes.push(c.len);
    }
    cover.check(cursor == total, || format!("I={total}: chunks cover [0,{cursor}) of {total}"));
}

/// Applies the dispenser clamp to a replica's proposal stream,
/// producing the predicted dispensed sequence.
fn clamp_replay<F: FnMut(u64) -> u64>(total: u64, mut propose: F) -> Vec<u64> {
    let mut out = Vec::new();
    let mut rem = total;
    while rem > 0 {
        let len = propose(rem).clamp(1, rem);
        out.push(len);
        rem -= len;
    }
    out
}

fn certify_static(d: &Domain) -> Certificate {
    let mut clamp = Property::new("clamp 1 <= C_i <= R_{i-1}");
    let mut cover = Property::new("exact coverage, no overlap");
    let mut formula = Property::new("C_i = ceil(I/p) for exactly p proposals, then exhausted");
    let mut count = Property::new("chunk count = ceil(I / ceil(I/p)) <= p");
    let (mut configs, mut chunks) = (0u64, 0u64);
    let mut sizes = Vec::new();
    for p in 1..=d.max_p {
        for total in 1..=d.max_iters {
            configs += 1;
            stream(total, StaticSched::new(total, p), &mut clamp, &mut cover, &mut sizes);
            chunks += sizes.len() as u64;
            let ceil = total.div_ceil(p as u64);
            let mut handed = 0u32;
            let expect = clamp_replay(total, |_| {
                let c = if handed < p { ceil } else { 0 };
                handed += 1;
                c
            });
            formula.check(sizes == expect, || {
                format!("I={total},p={p}: dispensed {sizes:?} != replica {expect:?}")
            });
            count.check(sizes.len() as u64 == total.div_ceil(ceil), || {
                format!("I={total},p={p}: {} chunks", sizes.len())
            });
        }
    }
    Certificate {
        scheme: "S",
        variant: format!("I in 1..={}, p in 1..={}", d.max_iters, d.max_p),
        configs,
        chunks,
        properties: vec![clamp, cover, formula, count],
    }
}

fn certify_pure(d: &Domain) -> Certificate {
    let mut clamp = Property::new("clamp 1 <= C_i <= R_{i-1}");
    let mut cover = Property::new("exact coverage, no overlap");
    let mut formula = Property::new("every chunk is a singleton; exactly I chunks");
    let (mut configs, mut chunks) = (0u64, 0u64);
    let mut sizes = Vec::new();
    for total in 1..=d.max_iters {
        configs += 1;
        stream(total, PureSelfSched::new(), &mut clamp, &mut cover, &mut sizes);
        chunks += sizes.len() as u64;
        formula.check(sizes.len() as u64 == total && sizes.iter().all(|&s| s == 1), || {
            format!("I={total}: {} chunks, max {}", sizes.len(), sizes.iter().max().copied().unwrap_or(0))
        });
    }
    Certificate {
        scheme: "SS",
        variant: format!("I in 1..={} (p-independent)", d.max_iters),
        configs,
        chunks,
        properties: vec![clamp, cover, formula],
    }
}

fn certify_css(d: &Domain) -> Certificate {
    let mut clamp = Property::new("clamp 1 <= C_i <= R_{i-1}");
    let mut cover = Property::new("exact coverage, no overlap");
    let mut formula = Property::new("C_i = k except a final clamped tail of I mod k");
    let (mut configs, mut chunks) = (0u64, 0u64);
    let mut sizes = Vec::new();
    let ks: Vec<u64> = (1..=d.max_p as u64).chain([64, 1000]).collect();
    for &k in &ks {
        for total in 1..=d.max_iters {
            configs += 1;
            stream(total, ChunkSelfSched::new(k), &mut clamp, &mut cover, &mut sizes);
            chunks += sizes.len() as u64;
            let expect = clamp_replay(total, |_| k);
            formula.check(sizes == expect, || {
                format!("I={total},k={k}: dispensed {sizes:?} != replica {expect:?}")
            });
        }
    }
    Certificate {
        scheme: "CSS(k)",
        variant: format!("I in 1..={}, k in {ks:?}", d.max_iters),
        configs,
        chunks,
        properties: vec![clamp, cover, formula],
    }
}

fn certify_gss(d: &Domain, min_chunk: bool) -> Certificate {
    let mut clamp = Property::new("clamp 1 <= C_i <= R_{i-1}");
    let mut cover = Property::new("exact coverage, no overlap");
    let mut formula = Property::new("C_i = max(ceil(R/p), k)");
    let mut mono = Property::new("chunk sizes monotone non-increasing");
    let mut floor = Property::new("all but the final chunk >= k");
    let (mut configs, mut chunks) = (0u64, 0u64);
    let mut sizes = Vec::new();
    let ks: &[u64] = if min_chunk { &[2, 4, 8] } else { &[1] };
    for &k in ks {
        for p in 1..=d.max_p {
            for total in 1..=d.max_iters {
                configs += 1;
                let sizer = if min_chunk {
                    GuidedSelfSched::with_min_chunk(p, k)
                } else {
                    GuidedSelfSched::new(p)
                };
                stream(total, sizer, &mut clamp, &mut cover, &mut sizes);
                chunks += sizes.len() as u64;
                let expect = clamp_replay(total, |rem| rem.div_ceil(p as u64).max(k));
                formula.check(sizes == expect, || {
                    format!("I={total},p={p},k={k}: dispensed {sizes:?} != replica {expect:?}")
                });
                mono.check(sizes.windows(2).all(|w| w[0] >= w[1]), || {
                    format!("I={total},p={p},k={k}: sizes increased: {sizes:?}")
                });
                if min_chunk && sizes.len() > 1 {
                    floor.check(sizes[..sizes.len() - 1].iter().all(|&s| s >= k), || {
                        format!("I={total},p={p},k={k}: non-final chunk below k: {sizes:?}")
                    });
                }
            }
        }
    }
    let mut properties = vec![clamp, cover, formula, mono];
    if min_chunk {
        properties.push(floor);
    }
    Certificate {
        scheme: if min_chunk { "GSS(k)" } else { "GSS" },
        variant: format!("I in 1..={}, p in 1..={}, k in {ks:?}", d.max_iters, d.max_p),
        configs,
        chunks,
        properties,
    }
}

/// Independent replica of the TSS parameter derivation (`Tzen & Ni`,
/// with the ceil reading of `N` documented in `scheme::tss`).
fn tss_params(total: u64, first: u64, last: u64) -> (u64, u64, u64) {
    let first = first.max(last);
    let steps = (2 * total).div_ceil(first + last).max(2);
    let decrement = (first - last) / (steps - 1);
    (first, steps, decrement)
}

/// Independent replica of the TSS formula sequence `F, F-D, …`.
fn tss_formula(first: u64, last: u64, decrement: u64) -> Vec<u64> {
    let mut v = Vec::new();
    let mut c = first;
    let floor = last.max(1);
    loop {
        v.push(c);
        if decrement == 0 || c < floor + decrement {
            break;
        }
        c -= decrement;
    }
    v
}

fn certify_tss(d: &Domain, explicit_bounds: bool) -> Certificate {
    let mut clamp = Property::new("clamp 1 <= C_i <= R_{i-1}");
    let mut cover = Property::new("exact coverage, no overlap");
    let mut params = Property::new("F, N, D match the Tzen-Ni derivation");
    let mut formula = Property::new("C_{i+1} = max(C_i - D, L) until the clamped tail");
    let mut mono = Property::new("chunk sizes monotone non-increasing (linear decrease)");
    let mut floor = Property::new("all but the final chunk >= L");
    let (mut configs, mut chunks) = (0u64, 0u64);
    let mut sizes = Vec::new();
    let ls: &[u64] = if explicit_bounds { &[2, 5] } else { &[1] };
    for &l in ls {
        for p in 1..=d.max_p {
            for total in 1..=d.max_iters {
                configs += 1;
                let (sizer, f0) = if explicit_bounds {
                    let f = (total / p as u64).max(1);
                    (TrapezoidSelfSched::with_bounds(total, f, l), f)
                } else {
                    (TrapezoidSelfSched::new(total, p), (total / (2 * p as u64)).max(1))
                };
                let (first, steps, decr) = tss_params(total, f0, l);
                params.check(
                    sizer.first() == first
                        && sizer.last() == l
                        && sizer.planned_steps() == steps
                        && sizer.decrement() == decr,
                    || {
                        format!(
                            "I={total},p={p},L={l}: scheme (F={},N={},D={}) vs replica (F={first},N={steps},D={decr})",
                            sizer.first(), sizer.planned_steps(), sizer.decrement()
                        )
                    },
                );
                stream(total, sizer, &mut clamp, &mut cover, &mut sizes);
                chunks += sizes.len() as u64;
                let mut current = first;
                let expect = clamp_replay(total, |_| {
                    let c = current;
                    current = current.saturating_sub(decr).max(l).max(1);
                    c
                });
                formula.check(sizes == expect, || {
                    format!("I={total},p={p},L={l}: dispensed {sizes:?} != replica {expect:?}")
                });
                mono.check(sizes.windows(2).all(|w| w[0] >= w[1]), || {
                    format!("I={total},p={p},L={l}: sizes increased: {sizes:?}")
                });
                if sizes.len() > 1 {
                    floor.check(sizes[..sizes.len() - 1].iter().all(|&s| s >= l), || {
                        format!("I={total},p={p},L={l}: non-final chunk below L: {sizes:?}")
                    });
                }
            }
        }
    }
    Certificate {
        scheme: if explicit_bounds { "TSS(F,L)" } else { "TSS" },
        variant: if explicit_bounds {
            format!("I in 1..={}, p in 1..={}, F=I/p, L in {ls:?}", d.max_iters, d.max_p)
        } else {
            format!("I in 1..={}, p in 1..={}, F=I/2p, L=1", d.max_iters, d.max_p)
        },
        configs,
        chunks,
        properties: vec![clamp, cover, params, formula, mono, floor],
    }
}

/// Checks the FSS-style stage structure of a dispensed sequence:
/// every group of `p` consecutive chunks not touching the final
/// (possibly clamped) chunk is uniform, and stage sizes are monotone —
/// non-increasing (`increasing = false`) or non-decreasing.
fn check_stages<F: Fn() -> String>(
    sizes: &[u64],
    p: u32,
    increasing: bool,
    stage: &mut Property,
    mono: &mut Property,
    ctx: F,
) {
    let n = sizes.len();
    let p = p as usize;
    let mut prev: Option<u64> = None;
    let mut k = 0usize;
    while (k + 1) * p < n {
        let g = &sizes[k * p..(k + 1) * p];
        stage.check(g.windows(2).all(|w| w[0] == w[1]), || {
            format!("{}: uneven stage #{k}: {g:?}", ctx())
        });
        if let Some(prev) = prev {
            let cur = g[0];
            let ok = if increasing { prev <= cur } else { prev >= cur };
            mono.check(ok, || format!("{}: stage size {prev} -> {cur} breaks monotonicity", ctx()));
        }
        prev = Some(g[0]);
        k += 1;
    }
}

fn certify_fss(d: &Domain, adaptive: bool) -> Certificate {
    let mut clamp = Property::new("clamp 1 <= C_i <= R_{i-1}");
    let mut cover = Property::new("exact coverage, no overlap");
    let mut formula = Property::new("stage chunk = round_half_even(R / (alpha p)), held for p chunks");
    let mut stage = Property::new("stage structure: p equal chunks per full stage");
    let mut mono = Property::new("stage chunks monotone non-increasing");
    let mut alpha_ok = Property::new("factoring parameter alpha >= 1 at every stage");
    let (mut configs, mut chunks) = (0u64, 0u64);
    let mut sizes = Vec::new();
    // (mean, sigma) pairs for the adaptive variant; alpha values for
    // the fixed variant.
    let fixed_alphas: &[f64] = &[2.0, 4.0];
    let dists: &[(f64, f64)] = &[(10.0, 4.0), (10.0, 12.0)];
    let variants = if adaptive { dists.len() } else { fixed_alphas.len() };
    for v in 0..variants {
        for p in 1..=d.max_p {
            for total in 1..=d.max_iters {
                configs += 1;
                let sizer = if adaptive {
                    FactoringSelfSched::adaptive(p, dists[v].0, dists[v].1)
                } else {
                    FactoringSelfSched::with_alpha(p, fixed_alphas[v])
                };
                stream(total, sizer, &mut clamp, &mut cover, &mut sizes);
                chunks += sizes.len() as u64;
                // Replica of the stage machine with an independent
                // alpha computation.
                let mut in_stage = 0u32;
                let mut stage_chunk = 0u64;
                let expect = clamp_replay(total, |rem| {
                    if in_stage == 0 {
                        let alpha = if adaptive {
                            let (mean, sd) = dists[v];
                            let b = p as f64 * sd / (2.0 * (rem as f64).sqrt() * mean);
                            1.0 + b * b + b * (b * b + 2.0).sqrt()
                        } else {
                            fixed_alphas[v]
                        };
                        alpha_ok.check(alpha >= 1.0, || {
                            format!("I={total},p={p}: alpha {alpha} < 1 at R={rem}")
                        });
                        stage_chunk = round_half_even(rem as f64 / (alpha * p as f64)).max(1);
                    }
                    in_stage += 1;
                    if in_stage == p {
                        in_stage = 0;
                    }
                    stage_chunk
                });
                formula.check(sizes == expect, || {
                    format!("I={total},p={p},v={v}: dispensed {sizes:?} != replica {expect:?}")
                });
                // Full stages (groups of p not touching the final,
                // possibly clamped, chunk) are uniform and their sizes
                // never increase across stage boundaries.
                check_stages(&sizes, p, false, &mut stage, &mut mono, || {
                    format!("I={total},p={p},v={v}")
                });
            }
        }
    }
    let mut properties = vec![clamp, cover, formula, stage, mono];
    if adaptive {
        properties.push(alpha_ok);
    }
    Certificate {
        scheme: if adaptive { "FSS(adaptive)" } else { "FSS" },
        variant: if adaptive {
            format!("I in 1..={}, p in 1..={}, (mu,sigma) in {dists:?}", d.max_iters, d.max_p)
        } else {
            format!("I in 1..={}, p in 1..={}, alpha in {fixed_alphas:?}", d.max_iters, d.max_p)
        },
        configs,
        chunks,
        properties,
    }
}

fn certify_fiss(d: &Domain) -> Certificate {
    let mut clamp = Property::new("clamp 1 <= C_i <= R_{i-1}");
    let mut cover = Property::new("exact coverage, no overlap");
    let mut formula = Property::new("stage k chunk = round(C_0 + k*B), C_0 = I/(Xp), X = sigma+2");
    let mut stage = Property::new("stage structure: p equal chunks per full stage");
    let mut mono = Property::new("stage chunks monotone non-decreasing (linear increase)");
    let (mut configs, mut chunks) = (0u64, 0u64);
    let mut sizes = Vec::new();
    let sigmas: &[u32] = &[2, 3, 5];
    for &sigma in sigmas {
        for p in 1..=d.max_p {
            for total in 1..=d.max_iters {
                configs += 1;
                stream(
                    total,
                    FixedIncreaseSelfSched::new(total, p, sigma),
                    &mut clamp,
                    &mut cover,
                    &mut sizes,
                );
                chunks += sizes.len() as u64;
                // Independent replica of the Philip & Das parameters.
                let x = sigma + 2;
                let c0 = (total / (x as u64 * p as u64)).max(1);
                let bump = 2.0 * total as f64 * (1.0 - sigma as f64 / x as f64)
                    / (p as f64 * sigma as f64 * (sigma as f64 - 1.0));
                let mut k = 0u32;
                let mut in_stage = 0u32;
                let expect = clamp_replay(total, |_| {
                    let c = ((c0 as f64 + k as f64 * bump).round() as u64).max(1);
                    in_stage += 1;
                    if in_stage == p {
                        in_stage = 0;
                        k += 1;
                    }
                    c
                });
                formula.check(sizes == expect, || {
                    format!("I={total},p={p},s={sigma}: dispensed {sizes:?} != replica {expect:?}")
                });
                check_stages(&sizes, p, true, &mut stage, &mut mono, || {
                    format!("I={total},p={p},s={sigma}")
                });
            }
        }
    }
    Certificate {
        scheme: "FISS",
        variant: format!("I in 1..={}, p in 1..={}, sigma in {sigmas:?}", d.max_iters, d.max_p),
        configs,
        chunks,
        properties: vec![clamp, cover, formula, stage, mono],
    }
}

fn certify_tfss(d: &Domain) -> Certificate {
    let mut clamp = Property::new("clamp 1 <= C_i <= R_{i-1}");
    let mut cover = Property::new("exact coverage, no overlap");
    let mut totals_prop =
        Property::new("stage total = round(sum of next p TSS formula chunks / p), min 1");
    let mut formula = Property::new("dispensed = stage chunks held p-wide, then guided fallback");
    let mut stage = Property::new("stage structure: p equal chunks per full stage");
    let mut mono = Property::new("stage chunks monotone non-increasing (inherits TSS decrease)");
    let (mut configs, mut chunks) = (0u64, 0u64);
    let mut sizes = Vec::new();
    for p in 1..=d.max_p {
        for total in 1..=d.max_iters {
            configs += 1;
            let tfss = TrapezoidFactoringSelfSched::new(total, p);
            // Independent replica: TSS default parameters, formula
            // sequence grouped p-at-a-time, each stage the rounded mean.
            let f0 = (total / (2 * p as u64)).max(1);
            let (first, _, decr) = tss_params(total, f0, 1);
            let seq = tss_formula(first, 1, decr);
            let stage_chunks: Vec<u64> = seq
                .chunks(p as usize)
                .map(|g| ((g.iter().sum::<u64>() as f64 / p as f64).round() as u64).max(1))
                .collect();
            totals_prop.check(tfss.stage_chunks() == stage_chunks.as_slice(), || {
                format!(
                    "I={total},p={p}: scheme stages {:?} != replica {stage_chunks:?}",
                    tfss.stage_chunks()
                )
            });
            stream(total, tfss, &mut clamp, &mut cover, &mut sizes);
            chunks += sizes.len() as u64;
            let mut k = 0usize;
            let mut in_stage = 0u32;
            let expect = clamp_replay(total, |rem| {
                let c = stage_chunks.get(k).copied().unwrap_or_else(|| rem.div_ceil(p as u64));
                in_stage += 1;
                if in_stage == p {
                    in_stage = 0;
                    k += 1;
                }
                c
            });
            formula.check(sizes == expect, || {
                format!("I={total},p={p}: dispensed {sizes:?} != replica {expect:?}")
            });
            // Stage structure only holds over the *planned* stages; the
            // guided-style fallback tail (formula exhausted early, e.g.
            // D = 0 truncates the TSS sequence) re-sizes per request.
            let planned_region = (stage_chunks.len() * p as usize).min(sizes.len());
            check_stages(&sizes[..planned_region], p, false, &mut stage, &mut mono, || {
                format!("I={total},p={p}")
            });
        }
    }
    Certificate {
        scheme: "TFSS",
        variant: format!("I in 1..={}, p in 1..={}", d.max_iters, d.max_p),
        configs,
        chunks,
        properties: vec![clamp, cover, totals_prop, formula, stage, mono],
    }
}

fn certify_wf(d: &Domain) -> Certificate {
    let mut cover = Property::new("exact coverage, no overlap (round-robin drain)");
    let mut formula = Property::new("chunk = round((R_k/alpha) * w_j/W) clamped, R_k deterministic");
    let mut geometry = Property::new("stage remaining R_{k+1} = R_k - min(round(R_k/2), R_k)");
    let (mut configs, mut chunks) = (0u64, 0u64);
    for p in 1..=d.max_p as usize {
        // Homogeneous and a deterministic heterogeneous ramp.
        let homog = vec![1.0f64; p];
        let ramp: Vec<f64> = (0..p).map(|i| 1.0 + 0.5 * (i % 4) as f64).collect();
        for weights in [&homog, &ramp] {
            let total_weight: f64 = weights.iter().sum();
            for total in 1..=d.max_iters {
                configs += 1;
                let mut wf = WeightedFactoring::new(total, weights);
                // Independent replica of the WF state machine.
                let mut stage_remaining: Vec<u64> = vec![total];
                let mut worker_stage = vec![0usize; p];
                let mut rem = total;
                let mut cursor = 0u64;
                let mut w = 0usize;
                let mut mismatch = false;
                while rem > 0 {
                    let worker = w % p;
                    w += 1;
                    let k = worker_stage[worker];
                    worker_stage[worker] += 1;
                    while stage_remaining.len() <= k {
                        let r = *stage_remaining.last().unwrap_or(&total);
                        let t = ((r as f64 / 2.0).round() as u64).min(r);
                        stage_remaining.push(r - t);
                    }
                    let r_k = stage_remaining[k];
                    let share = (r_k as f64 / 2.0) * weights[worker] / total_weight;
                    let len = (share.round() as u64).clamp(1, rem);
                    let expect = Chunk::new(cursor, len);
                    cursor += len;
                    rem -= len;
                    chunks += 1;
                    let got = wf.next_chunk(worker);
                    formula.check(got == Some(expect), || {
                        format!("I={total},p={p},w={worker}: got {got:?}, replica {expect:?}")
                    });
                    if got != Some(expect) {
                        mismatch = true;
                        break;
                    }
                }
                if !mismatch {
                    cover.check(cursor == total && wf.next_chunk(0).is_none(), || {
                        format!("I={total},p={p}: covered [0,{cursor}) of {total}")
                    });
                    geometry.check(wf.remaining() == 0, || {
                        format!("I={total},p={p}: scheme reports {} remaining", wf.remaining())
                    });
                }
            }
        }
    }
    Certificate {
        scheme: "WF",
        variant: format!(
            "I in 1..={}, p in 1..={}, homogeneous + 1/1.5/2/2.5 ramp weights",
            d.max_iters, d.max_p
        ),
        configs,
        chunks,
        properties: vec![cover, formula, geometry],
    }
}

/// The heterogeneous `(virtual power, run queue)` vectors the
/// distributed certificates sweep. Queues are fixed per drain, so the
/// plan made at construction stays valid and the closed-form replicas
/// below predict every grant exactly.
fn dist_vectors(d: &Domain) -> Vec<(Vec<f64>, Vec<u32>)> {
    let p = d.max_p as usize;
    vec![
        (vec![1.0], vec![1]),
        (vec![1.0; 4], vec![1; 4]),
        (vec![2.65, 1.0], vec![1, 1]),
        // The paper's §5.2(I) example: A_1 = 5, A_2 = 7, A = 12.
        (vec![1.0, 3.0], vec![2, 4]),
        (vec![3.0, 1.0, 1.5], vec![1, 1, 1]),
        // One overloaded worker that must be refused, never granted.
        (vec![1.0, 1.0], vec![1, 100]),
        // Full-width deterministic heterogeneous cluster.
        (
            (0..p).map(|i| 1.0 + 0.5 * (i % 4) as f64).collect(),
            (0..p).map(|i| 1 + (i % 3) as u32).collect(),
        ),
    ]
}

fn certify_distributed(d: &Domain, kind: DistKind) -> Certificate {
    let mut clamp = Property::new("clamp 1 <= C_i <= R_{i-1}");
    let mut cover = Property::new("exact coverage, no overlap (round-robin drain)");
    let mut avail = Property::new("grant is Unavailable iff A_j = 0");
    let mut share = Property::new(match kind {
        DistKind::Dtss => "chunk = floor(A_j * (F - D*(S + (A_j-1)/2))), min 1",
        _ => "chunk = round(SC_k * A_j / A), min 1",
    });
    let mut acp_prop = Property::new("planned total ACP = sum of floor(10 V_i / Q_i)");
    let (mut configs, mut chunks) = (0u64, 0u64);
    let cfg = AcpConfig::PAPER;
    for (powers_f, queues) in dist_vectors(d) {
        let powers: Vec<VirtualPower> = powers_f.iter().map(|&v| VirtualPower::new(v)).collect();
        // Independent ACP replica: floor(scale * v / q).
        let acps: Vec<u64> = powers_f
            .iter()
            .zip(&queues)
            .map(|(&v, &q)| (10.0 * v / q.max(1) as f64).floor() as u64)
            .collect();
        let a_total: u64 = acps.iter().sum();
        let p = powers.len();
        for total in 1..=d.max_iters {
            configs += 1;
            let mut s = DistributedScheduler::new(kind, total, &powers, &queues, cfg);
            acp_prop.check(s.planned_total_acp() == a_total, || {
                format!(
                    "I={total},V={powers_f:?},Q={queues:?}: scheme A={} replica A={a_total}",
                    s.planned_total_acp()
                )
            });
            // Replica plan state.
            let (f, dd) = match kind {
                DistKind::Dtss => {
                    let f = (total as f64 / (2.0 * a_total.max(1) as f64)).max(1.0);
                    let n = (2.0 * total as f64 / (f + 1.0)).max(2.0);
                    (f, (f - 1.0) / (n - 1.0))
                }
                _ => (0.0, 0.0),
            };
            let mut s_consumed = 0u64;
            let mut stage_totals: Vec<u64> = Vec::new();
            let mut worker_stage = vec![0usize; p];
            // DFISS / DTFSS fixed stage parameters.
            let (sc0, bump) = match kind {
                DistKind::Dfiss { sigma } => {
                    let sigma = sigma.max(2);
                    let x = sigma + 2;
                    let sc0 = (total / x as u64).max(1);
                    let bump = 2.0 * total as f64 * (1.0 - sigma as f64 / x as f64)
                        / (sigma as f64 * (sigma as f64 - 1.0));
                    (sc0, bump)
                }
                _ => (0, 0.0),
            };
            let groups: Vec<u64> = match kind {
                DistKind::Dtfss => {
                    let a32 = u32::try_from(a_total.max(1).min(u32::MAX as u64)).unwrap_or(1);
                    TrapezoidSelfSched::new(total, a32)
                        .formula_sequence()
                        .chunks(a_total.max(1) as usize)
                        .map(|g| g.iter().sum::<u64>())
                        .collect()
                }
                _ => Vec::new(),
            };
            let mut rem = total;
            let mut cursor = 0u64;
            let mut w = 0usize;
            let mut idle = 0usize;
            let mut ok = true;
            while ok {
                let worker = w % p;
                w += 1;
                match s.request(worker, queues[worker]) {
                    Grant::Finished => {
                        cover.check(rem == 0 && cursor == total, || {
                            format!(
                                "I={total},V={powers_f:?}: Finished with replica rem={rem}, cursor={cursor}"
                            )
                        });
                        break;
                    }
                    Grant::Unavailable => {
                        avail.check(acps[worker] == 0, || {
                            format!("I={total},V={powers_f:?},w={worker}: refused with A_j={}", acps[worker])
                        });
                        idle += 1;
                        if idle > p {
                            cover.check(false, || {
                                format!("I={total},V={powers_f:?}: all workers refused with {rem} left")
                            });
                            break;
                        }
                    }
                    Grant::Chunk(c) => {
                        idle = 0;
                        chunks += 1;
                        avail.check(acps[worker] > 0, || {
                            format!("I={total},V={powers_f:?},w={worker}: granted with A_j=0")
                        });
                        let a_j = acps[worker] as f64;
                        let proposed = match kind {
                            DistKind::Dtss => {
                                let sv = s_consumed as f64;
                                let c = a_j * (f - dd * (sv + (a_j - 1.0) / 2.0));
                                s_consumed += acps[worker];
                                c.floor().max(1.0) as u64
                            }
                            _ => {
                                let k = worker_stage[worker];
                                worker_stage[worker] += 1;
                                while stage_totals.len() <= k {
                                    let next = match kind {
                                        DistKind::Dfss => ((rem as f64 / 2.0).round() as u64)
                                            .clamp(1, rem.max(1)),
                                        DistKind::Dfiss { .. } => {
                                            let kk = stage_totals.len() as f64;
                                            ((sc0 as f64 + kk * bump).round() as u64).max(1)
                                        }
                                        DistKind::Dtfss => match groups.get(stage_totals.len()) {
                                            Some(&g) => g,
                                            None => ((rem as f64 / 2.0).round() as u64)
                                                .clamp(1, rem.max(1)),
                                        },
                                        DistKind::Dtss => unreachable!("handled above"),
                                    };
                                    stage_totals.push(next);
                                }
                                let sc_k = stage_totals[k];
                                ((sc_k as f64 * a_j / a_total.max(1) as f64).round() as u64).max(1)
                            }
                        };
                        let len = proposed.clamp(1, rem);
                        clamp.check(c.len >= 1 && c.len <= rem, || {
                            format!("I={total},V={powers_f:?}: chunk len {} with {rem} left", c.len)
                        });
                        share.check(c == Chunk::new(cursor, len), || {
                            format!(
                                "I={total},V={powers_f:?},w={worker}: got {c:?}, replica {:?}",
                                Chunk::new(cursor, len)
                            )
                        });
                        if c != Chunk::new(cursor, len) {
                            ok = false;
                        }
                        cursor += len;
                        rem -= len;
                    }
                }
            }
        }
    }
    Certificate {
        scheme: match kind {
            DistKind::Dtss => "DTSS",
            DistKind::Dfss => "DFSS",
            DistKind::Dfiss { .. } => "DFISS",
            DistKind::Dtfss => "DTFSS",
        },
        variant: format!(
            "I in 1..={}, {} power/queue vectors (fixed q, scale 10)",
            d.max_iters,
            dist_vectors(d).len()
        ),
        configs,
        chunks,
        properties: vec![clamp, cover, avail, share, acp_prop],
    }
}

/// Certifies the §5.2 fractional-ACP arithmetic. Float-safety note:
/// properties on the *tenths* grid use strict inequalities only —
/// `V = t/10` is not exactly representable in binary floating point,
/// so at the exact boundary `t = q` the implementation may legally
/// land on either side (e.g. `V = 0.3, Q = 3` floors to 0). The exact
/// iff-characterization is asserted only on integer-power grids, where
/// the boundary quotients (`10·1/10`, `10·2/20`, …) are exact.
fn certify_acp(d: &Domain) -> Certificate {
    let _ = d; // the ACP grids are fixed by the satellite spec (Q <= 32)
    let paper = AcpConfig::PAPER;
    let orig = AcpConfig::ORIGINAL_DTSS;
    let mut int_grid = Property::new("integer V grid: A >= 1 iff 10V >= Q (never starves for Q <= 10V)");
    let mut tenths = Property::new("tenths grid: t > Q => A >= 1, t < Q => A = 0 (V = t/10)");
    let mut dominance = Property::new("scale dominance: floor(10 V/Q) >= floor(V/Q), fix never loses a PE");
    let mut exact = Property::new("A = floor(10 V/Q) exactly on integer-V grids");
    let mut threshold = Property::new("A_min threshold: A < A_min reported as unavailable (0)");
    let mut examples = Property::new("paper worked examples (5.2(I): 5+7=12; 5.2(II): V=3.4,Q=4 -> 8)");
    let (mut configs, mut checks) = (0u64, 0u64);

    // Integer virtual powers 1..=32, run queues 1..=32.
    for v in 1..=32u64 {
        for q in 1..=32u32 {
            configs += 1;
            let a = paper.acp(VirtualPower::new(v as f64), q).get() as u64;
            let a1 = orig.acp(VirtualPower::new(v as f64), q).get() as u64;
            int_grid.check((a >= 1) == (10 * v >= q as u64), || {
                format!("V={v},Q={q}: A={a} vs 10V={} Q={q}", 10 * v)
            });
            exact.check(a == 10 * v / q as u64, || {
                format!("V={v},Q={q}: A={a} != floor(10V/Q)={}", 10 * v / q as u64)
            });
            dominance.check(a >= a1, || format!("V={v},Q={q}: scaled A={a} < original {a1}"));
            checks += 3;
        }
    }

    // Fractional powers on the tenths grid: V = t/10, t in 1..=320.
    for t in 1..=320u64 {
        for q in 1..=32u32 {
            configs += 1;
            let v = VirtualPower::new(t as f64 / 10.0);
            let a = paper.acp(v, q).get() as u64;
            let a1 = orig.acp(v, q).get() as u64;
            if t > q as u64 {
                tenths.check(a >= 1, || format!("V={}/10,Q={q}: A=0 though t > Q", t));
            } else if t < q as u64 {
                tenths.check(a == 0, || format!("V={}/10,Q={q}: A={a} though t < Q", t));
            } else {
                // Exact boundary t = q: either side is legal (float).
                tenths.check(a <= 1, || format!("V={}/10,Q={q}: boundary A={a} > 1", t));
            }
            dominance.check(a >= a1, || format!("V={}/10,Q={q}: scaled A={a} < original {a1}", t));
            checks += 2;
        }
    }

    // A_min threshold sweep.
    for a_min in 1..=12u32 {
        let cfg = AcpConfig::new(10, a_min);
        for v in 1..=8u64 {
            for q in 1..=16u32 {
                configs += 1;
                let raw = 10 * v / q as u64;
                let a = cfg.acp(VirtualPower::new(v as f64), q).get() as u64;
                let expect = if raw < a_min as u64 { 0 } else { raw };
                threshold.check(a == expect, || {
                    format!("V={v},Q={q},A_min={a_min}: A={a}, expected {expect}")
                });
                checks += 1;
            }
        }
    }

    // The paper's worked examples.
    examples.check(paper.acp(VirtualPower::new(1.0), 2).get() == 5, || "5.2(I) A_1".into());
    examples.check(paper.acp(VirtualPower::new(3.0), 4).get() == 7, || "5.2(I) A_2".into());
    examples.check(paper.acp(VirtualPower::new(3.4), 4).get() == 8, || "5.2(II) V=3.4".into());
    examples.check(orig.acp(VirtualPower::new(1.0), 2).get() == 0, || "original starves A_1".into());
    examples.check(orig.acp(VirtualPower::new(3.0), 4).get() == 0, || "original starves A_2".into());
    checks += 5;

    Certificate {
        scheme: "ACP(x10)",
        variant: "V in 1..=32 and t/10 (t <= 320), Q in 1..=32, A_min in 1..=12".to_string(),
        configs,
        chunks: checks,
        properties: vec![int_grid, tenths, dominance, exact, threshold, examples],
    }
}

/// The closed-form schemes whose chunk sequence can be re-derived
/// worker-side (everything [`SchemeKind::formula_sizer`] supports).
fn replicable_schemes() -> Vec<SchemeKind> {
    vec![
        SchemeKind::Static,
        SchemeKind::Pure,
        SchemeKind::Css { k: 4 },
        SchemeKind::Gss { min_chunk: 1 },
        SchemeKind::Gss { min_chunk: 4 },
        SchemeKind::Tss,
        SchemeKind::Fss,
        SchemeKind::Fiss { sigma: 3 },
        SchemeKind::Tfss,
    ]
}

/// Certifies the shard-offset algebra `lss-shard` relies on: restarting
/// a dispenser at an arbitrary range offset only translates chunk
/// starts; per-shard [`FormulaReplica`]s reproduce their shard's
/// dispenser exactly (so a worker evaluating the replicated formula at
/// a shard boundary agrees with the shard's own lease table); and
/// fast-forward replay from any chunk number lands on the same chunk
/// as stepwise enumeration.
fn certify_offset_replay(d: &Domain) -> Certificate {
    let mut shift = Property::new("base shift: with_base(b, I) = new(I) translated by b, length-for-length");
    let mut boundary = Property::new("shard boundary: per-shard replicas tile [0,I) exactly as dispensers");
    let mut replay = Property::new("seq replay: chunk_at(s) after fast-forward = stepwise enumeration");
    let (mut configs, mut chunks) = (0u64, 0u64);
    let ps: Vec<u32> = [1u32, 2, 3, d.max_p].into_iter().filter(|&p| p <= d.max_p).collect();
    let mut ps = ps;
    ps.dedup();
    for scheme in replicable_schemes() {
        for &p in &ps {
            for total in 1..=d.max_iters {
                configs += 1;
                let name = scheme.name();
                let reference: Vec<Chunk> = match scheme.formula_sizer(total, p) {
                    Some(sizer) => ChunkDispenser::new(total, sizer).collect(),
                    None => {
                        shift.check(false, || format!("{name}: no formula for I={total},p={p}"));
                        continue;
                    }
                };
                chunks += reference.len() as u64;

                // Base-shift identity at offsets a shard could start at.
                for base in [1, total / 2 + 1, 3 * total + 7] {
                    let shifted: Vec<Chunk> = match scheme.formula_sizer(total, p) {
                        Some(sizer) => ChunkDispenser::with_base(base, total, sizer).collect(),
                        None => Vec::new(),
                    };
                    let ok = shifted.len() == reference.len()
                        && shifted
                            .iter()
                            .zip(&reference)
                            .all(|(s, r)| s.len == r.len && s.start == r.start + base);
                    shift.check(ok, || {
                        format!("{name}: I={total},p={p},base={base}: {shifted:?} vs {reference:?}")
                    });
                }

                // Shard boundaries: each shard's replica must reproduce
                // that shard's dispenser, and together they tile [0,I).
                for shards in [2usize, 3, 5] {
                    let mut cursor = 0u64;
                    let mut ok = true;
                    for i in 0..shards {
                        let (b, len) = partition(total, shards, i);
                        if b != cursor {
                            ok = false;
                            break;
                        }
                        cursor += len;
                        if len == 0 {
                            continue;
                        }
                        let Some(sizer) = scheme.formula_sizer(len, p) else {
                            ok = false;
                            break;
                        };
                        let shard_ref: Vec<Chunk> =
                            ChunkDispenser::with_base(b, len, sizer).collect();
                        let Some(mut replica) = FormulaReplica::new(scheme, b, len, p) else {
                            ok = false;
                            break;
                        };
                        for (seq, want) in shard_ref.iter().enumerate() {
                            if replica.chunk_at(seq as u64) != Some(*want) {
                                ok = false;
                                break;
                            }
                        }
                        if replica.chunk_at(shard_ref.len() as u64).is_some() {
                            ok = false;
                        }
                        if shard_ref.first().map(|c| c.start) != Some(b)
                            || shard_ref.last().map(Chunk::end) != Some(b + len)
                        {
                            ok = false;
                        }
                        if !ok {
                            break;
                        }
                    }
                    boundary.check(ok && cursor == total, || {
                        format!("{name}: I={total},p={p},shards={shards}: replica/dispenser divergence")
                    });
                }

                // Sparse fast-forward: querying only every third chunk
                // number still returns the stepwise chunks.
                let mut sparse = match FormulaReplica::new(scheme, 0, total, p) {
                    Some(r) => r,
                    None => {
                        replay.check(false, || format!("{name}: no replica for I={total},p={p}"));
                        continue;
                    }
                };
                let mut ok = true;
                for (seq, want) in reference.iter().enumerate() {
                    if seq % 3 != 0 {
                        continue; // another worker's claim
                    }
                    if sparse.chunk_at(seq as u64) != Some(*want) {
                        ok = false;
                        break;
                    }
                }
                replay.check(ok, || {
                    format!("{name}: I={total},p={p}: fast-forward replay diverged")
                });
            }
        }
    }
    Certificate {
        scheme: "OFFSET(shard)",
        variant: format!(
            "9 closed-form schemes, I in 1..={}, p in {ps:?}, bases {{1, I/2+1, 3I+7}}, shards {{2,3,5}}",
            d.max_iters
        ),
        configs,
        chunks,
        properties: vec![shift, boundary, replay],
    }
}

/// Certifies one scheme family over `domain`.
pub fn certify_scheme(family: SchemeFamily, domain: &Domain) -> Certificate {
    match family {
        SchemeFamily::Static => certify_static(domain),
        SchemeFamily::Pure => certify_pure(domain),
        SchemeFamily::Css => certify_css(domain),
        SchemeFamily::Gss => certify_gss(domain, false),
        SchemeFamily::GssMin => certify_gss(domain, true),
        SchemeFamily::Tss => certify_tss(domain, false),
        SchemeFamily::TssBounds => certify_tss(domain, true),
        SchemeFamily::Fss => certify_fss(domain, false),
        SchemeFamily::FssAdaptive => certify_fss(domain, true),
        SchemeFamily::Fiss => certify_fiss(domain),
        SchemeFamily::Tfss => certify_tfss(domain),
        SchemeFamily::Wf => certify_wf(domain),
        SchemeFamily::Dtss => certify_distributed(domain, DistKind::Dtss),
        SchemeFamily::Dfss => certify_distributed(domain, DistKind::Dfss),
        SchemeFamily::Dfiss => certify_distributed(domain, DistKind::Dfiss { sigma: 4 }),
        SchemeFamily::Dtfss => certify_distributed(domain, DistKind::Dtfss),
        SchemeFamily::FractionalAcp => certify_acp(domain),
        SchemeFamily::OffsetReplay => certify_offset_replay(domain),
    }
}

/// Certifies every family — the 11 core `ChunkSizer` configurations
/// followed by the 7 auxiliary certificates — over `domain`.
pub fn certify_all(domain: &Domain) -> Vec<Certificate> {
    SchemeFamily::CORE
        .iter()
        .chain(SchemeFamily::AUXILIARY.iter())
        .map(|&f| certify_scheme(f, domain))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_families_count_is_eleven() {
        assert_eq!(SchemeFamily::CORE.len(), 11);
        assert!(SchemeFamily::CORE.iter().all(|f| f.is_core()));
        assert!(SchemeFamily::AUXILIARY.iter().all(|f| !f.is_core()));
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = SchemeFamily::CORE
            .iter()
            .chain(SchemeFamily::AUXILIARY.iter())
            .map(|f| f.label())
            .collect();
        let n = labels.len();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), n);
    }

    #[test]
    fn quick_domain_certifies_all_families() {
        let d = Domain::quick();
        for cert in certify_all(&d) {
            assert!(
                cert.holds(),
                "{} failed: {:#?}",
                cert.scheme,
                cert.properties
                    .iter()
                    .filter(|p| !p.holds())
                    .collect::<Vec<_>>()
            );
            assert!(cert.configs > 0 && cert.total_checks() > 0);
        }
    }

    #[test]
    fn certificates_cover_all_eighteen_families() {
        let d = Domain::quick();
        let certs = certify_all(&d);
        assert_eq!(certs.len(), 18);
        assert_eq!(certs.iter().filter(|c| SchemeFamily::CORE.iter().any(|f| f.label() == c.scheme)).count(), 11);
    }

    #[test]
    fn offset_replay_certificate_holds_on_quick_domain() {
        let cert = certify_scheme(SchemeFamily::OffsetReplay, &Domain::quick());
        assert!(cert.holds(), "{:#?}", cert.properties);
        assert_eq!(cert.properties.len(), 3);
        assert!(cert.total_checks() > 0);
    }

    #[test]
    fn property_records_violations_with_samples() {
        let mut p = Property::new("demo");
        p.check(true, || unreachable!());
        for i in 0..20 {
            p.check(false, || format!("failure {i}"));
        }
        assert!(!p.holds());
        assert_eq!(p.checks, 21);
        assert_eq!(p.violations, 20);
        assert_eq!(p.samples.len(), super::MAX_SAMPLES);
    }
}
