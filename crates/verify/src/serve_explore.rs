//! Engine 5 — the serve-scheduler interleaving explorer.
//!
//! [`crate::explore`] model-checks the single-job lease-aware
//! [`Master`](lss_core::master::Master); this engine climbs one layer
//! and model-checks the **multi-job scheduler** of `crates/serve` — the
//! fair-share/quarantine/canary machinery itself. Because
//! [`MultiJobScheduler`](lss_serve::MultiJobScheduler) is wall-clock
//! free (every decision takes `now` as a parameter — a property the
//! repo lint enforces), the explorer can drive the *real production
//! type* with logical time rather than a hand-written model of it.
//!
//! The exploration is stateless model checking, exactly as in
//! `explore.rs`: a depth-first search over bounded schedules of
//!
//! - `Admit` — a client submits the next job mid-flight,
//! - `Request(w)` — worker `w` asks for a grant batch,
//! - `Complete(w)` / `CompleteSlow(w)` — `w` reports its batch at a
//!   healthy pace, or pathologically late (driving strike accumulation
//!   and quarantine),
//! - `Crash(w)` / `Recover(w)` — the link drops with results in
//!   flight, then the worker reconnects,
//! - `Silence` — logical time jumps past the silence threshold and the
//!   sweep in `poll` quarantines whoever went quiet,
//!
//! with the scheduler rebuilt from scratch for every prefix (it is not
//! `Clone`). Checks at every grant: batch bound `k`, one chunk per
//! job, quarantined workers receive at most a single canary, and the
//! granted job sequence follows the deficit order recomputed
//! independently from observed completions. At every leaf the schedule
//! is **drained** — remaining jobs admitted, crashed workers
//! recovered, perfect workers run to quiescence — and the job-scoped
//! trace must show every job's `Completed` events tiling `[0, total)`
//! exactly once: exactly-once, no lost chunks, and no stuck job (a
//! quarantined-then-recovered worker always drains) in one assertion.

use lss_core::master::SchemeKind;
use lss_core::power::{AcpConfig, VirtualPower};
use lss_runtime::protocol::serve::{JobChunkResult, JobSpec, WorkloadSpec};
use lss_runtime::protocol::ChunkResult;
use lss_serve::{MultiJobScheduler, QuarantineConfig, SchedulerConfig};
use lss_trace::event::{ClockDomain, EventKind, TraceMeta};
use lss_trace::sink::SharedSink;

/// Maximum violation descriptions kept in a report.
const MAX_VIOLATIONS: usize = 16;

/// Logical-time jump used by the `Silence` action (must exceed the
/// model's `silence_ns`).
const SILENCE_NS: u64 = 1_000;

/// Bounds of one serve-scheduler exploration.
#[derive(Debug, Clone)]
pub struct ServeExploreConfig {
    /// Worker-pool size of the model.
    pub workers: usize,
    /// `(iterations, priority)` of each job, admitted in order as ids
    /// `1..=n`.
    pub jobs: Vec<(u64, u32)>,
    /// Fixed CSS chunk size every job schedules with (keeps the grant
    /// alphabet finite).
    pub chunk: u64,
    /// Grant-batch bound `k`.
    pub batch_k: usize,
    /// Leaf budget: stop after this many explored schedules.
    pub max_interleavings: u64,
    /// Schedule length bound (leaves beyond it count as depth-bounded).
    pub max_depth: usize,
    /// Crash/recover pairs allowed per schedule.
    pub max_crashes: u32,
    /// Pathologically slow completions allowed per schedule.
    pub max_slow: u32,
    /// Bound on drain-phase rounds before a schedule counts as stuck.
    pub drain_rounds: u32,
}

impl ServeExploreConfig {
    /// The full exploration the CI acceptance bar uses (≥ 10k
    /// schedules).
    pub fn full() -> Self {
        ServeExploreConfig {
            workers: 2,
            jobs: vec![(6, 1), (6, 2)],
            chunk: 3,
            batch_k: 2,
            max_interleavings: 10_000,
            max_depth: 12,
            max_crashes: 2,
            max_slow: 2,
            drain_rounds: 10_000,
        }
    }

    /// A reduced exploration for debug-profile unit tests and
    /// `--quick`.
    pub fn quick() -> Self {
        ServeExploreConfig {
            jobs: vec![(4, 1), (4, 2)],
            chunk: 2,
            max_interleavings: 600,
            max_depth: 8,
            max_crashes: 1,
            max_slow: 1,
            ..ServeExploreConfig::full()
        }
    }
}

/// The outcome of one exploration.
#[derive(Debug, Clone)]
pub struct ServeExploreReport {
    /// Schedules explored (leaves reached).
    pub interleavings: u64,
    /// Leaves where every job had retired before the drain phase.
    pub terminal: u64,
    /// Leaves cut by the depth bound (still drained and checked).
    pub depth_bounded: u64,
    /// Individual assertions evaluated.
    pub checks: u64,
    /// Trace events validated by the per-job tiling check.
    pub events_checked: u64,
    /// Violation descriptions (capped at [`MAX_VIOLATIONS`]).
    pub violations: Vec<String>,
    /// Total violations found (may exceed `violations.len()`).
    pub violation_count: u64,
}

impl ServeExploreReport {
    /// Whether the scheduler passed: schedules were explored and no
    /// assertion failed.
    pub fn holds(&self) -> bool {
        self.interleavings > 0 && self.violation_count == 0
    }
}

/// One step of a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    /// A client submits the next job.
    Admit,
    /// Worker requests a grant batch.
    Request(usize),
    /// Worker reports its batch at a healthy pace.
    Complete(usize),
    /// Worker reports its batch pathologically late (strike →
    /// quarantine fodder).
    CompleteSlow(usize),
    /// The worker's link drops; in-flight results are lost.
    Crash(usize),
    /// The crashed worker reconnects.
    Recover(usize),
    /// Logical time jumps past the silence threshold; the sweep in
    /// `poll` quarantines whoever went quiet.
    Silence,
}

/// One replayed schedule: the real scheduler plus the model's mirror
/// bookkeeping.
struct Replay<'a> {
    cfg: &'a ServeExploreConfig,
    sched: MultiJobScheduler,
    sink: SharedSink,
    now: u64,
    admitted: usize,
    /// Results granted but not yet reported, per worker.
    pending: Vec<Vec<JobChunkResult>>,
    crashed: Vec<bool>,
    crashes_used: u32,
    slow_used: u32,
    silences_used: u32,
    /// Mirror completion bitmaps per job (index = job id - 1) — the
    /// independent record the deficit-order check recomputes from.
    mirror: Vec<Vec<bool>>,
    checks: u64,
    violations: Vec<String>,
}

impl<'a> Replay<'a> {
    fn new(cfg: &'a ServeExploreConfig) -> Self {
        let sink = SharedSink::bounded(8192);
        let sched = MultiJobScheduler::new(
            SchedulerConfig {
                workers: cfg.workers,
                powers: vec![VirtualPower::new(1.0); cfg.workers],
                acp: AcpConfig::new(700, 0),
                lease: lss_core::LeaseConfig::RUNTIME_DEFAULT,
                batch_k: cfg.batch_k,
                // Hair-trigger quarantine: one violating batch is a
                // strike-out, one clean canary readmits, and a silence
                // gap of SILENCE_NS quarantines — so every transition
                // of the health machine is reachable within the depth
                // bound.
                quarantine: QuarantineConfig {
                    enabled: true,
                    latency_factor: 3.0,
                    min_samples: 1,
                    silence_ns: SILENCE_NS,
                    canary_target: 1,
                    canary_cooldown_ns: 0,
                    min_sample_iters: 1,
                    comm_slack_ns: 0,
                },
            },
            sink.clone(),
        );
        Replay {
            cfg,
            sched,
            sink,
            now: 1,
            admitted: 0,
            pending: vec![Vec::new(); cfg.workers],
            crashed: vec![false; cfg.workers],
            crashes_used: 0,
            slow_used: 0,
            silences_used: 0,
            mirror: cfg.jobs.iter().map(|&(iters, _)| vec![false; iters as usize]).collect(),
            checks: 0,
            violations: Vec::new(),
        }
    }

    fn check(&mut self, ok: bool, msg: impl FnOnce() -> String) {
        self.checks += 1;
        if !ok && self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(msg());
        } else if !ok {
            self.violations.push(String::new());
        }
    }

    /// Job ids admitted but not yet fully completed in the mirror, in
    /// the deficit order `grants_for` must follow: lowest
    /// `completed / priority` first (integer cross-multiplication),
    /// ties by job id.
    fn mirror_deficit_order(&self) -> Vec<u64> {
        let mut active: Vec<(u64, u32, u64)> = (0..self.admitted)
            .filter(|&j| !self.mirror[j].iter().all(|&b| b))
            .map(|j| {
                let completed = self.mirror[j].iter().filter(|&&b| b).count() as u64;
                (j as u64 + 1, self.cfg.jobs[j].1, completed)
            })
            .collect();
        active.sort_by(|a, b| {
            let lhs = u128::from(a.2) * u128::from(b.1);
            let rhs = u128::from(b.2) * u128::from(a.1);
            lhs.cmp(&rhs).then(a.0.cmp(&b.0))
        });
        active.into_iter().map(|(id, ..)| id).collect()
    }

    fn admit(&mut self) {
        let (iters, priority) = self.cfg.jobs[self.admitted];
        let id = self.admitted as u64 + 1;
        let spec = JobSpec {
            workload: WorkloadSpec::Uniform { iters, cost: 5 },
            scheme: SchemeKind::Css { k: self.cfg.chunk },
            priority,
        };
        self.sched.activate(id, &spec, self.now);
        self.admitted += 1;
    }

    fn request(&mut self, w: usize) {
        let was_quarantined = self.sched.is_quarantined(w);
        let order = self.mirror_deficit_order();
        let grants = self.sched.grants_for(w, 1, self.now);
        self.check(grants.len() <= self.cfg.batch_k, || {
            format!("worker {w} granted {} chunks, batch bound {}", grants.len(), 2)
        });
        if was_quarantined {
            self.check(grants.len() <= 1, || {
                format!("quarantined worker {w} granted {} chunks, canary allows 1", grants.len())
            });
        }
        let ids: Vec<u64> = grants.iter().map(|g| g.job).collect();
        let mut distinct = ids.clone();
        distinct.dedup();
        self.check(distinct.len() == ids.len(), || {
            format!("batch for worker {w} grants one job twice: {ids:?}")
        });
        // The granted job sequence must be a subsequence of the
        // deficit order computed from the mirror — the fair-share
        // bound: a job can only be skipped, never overtaken.
        let mut cursor = 0usize;
        let ordered = ids.iter().all(|id| {
            while cursor < order.len() && order[cursor] != *id {
                cursor += 1;
            }
            let hit = cursor < order.len();
            cursor += 1;
            hit
        });
        self.check(ordered, || {
            format!("grants {ids:?} for worker {w} violate deficit order {order:?}")
        });
        for g in &grants {
            self.check(
                g.chunk.len > 0 && g.chunk.end() <= self.cfg.jobs[(g.job - 1) as usize].0,
                || format!("grant {:?} outside job {} bounds", g.chunk, g.job),
            );
        }
        self.pending[w] = grants
            .iter()
            .map(|g| JobChunkResult { job: g.job, result: ChunkResult::zeroed(g.chunk) })
            .collect();
    }

    fn complete(&mut self, w: usize, slow: bool) {
        // A healthy report lands one tick after the grant; a straggler
        // shows up four orders of magnitude late — an unambiguous
        // gross violation of the latency allowance.
        self.now += if slow { 10_000 } else { 1 };
        let results = std::mem::take(&mut self.pending[w]);
        for r in &results {
            let bits = &mut self.mirror[(r.job - 1) as usize];
            let end = r.result.chunk.end().min(bits.len() as u64);
            for i in r.result.chunk.start..end {
                bits[i as usize] = true;
            }
        }
        self.sched.record_results(w, &results, self.now);
    }

    fn apply(&mut self, a: Action) {
        self.now += 1;
        match a {
            Action::Admit => self.admit(),
            Action::Request(w) => self.request(w),
            Action::Complete(w) => self.complete(w, false),
            Action::CompleteSlow(w) => {
                self.slow_used += 1;
                self.complete(w, true);
            }
            Action::Crash(w) => {
                self.crashed[w] = true;
                self.crashes_used += 1;
                // The link died: the service requeues whatever the
                // worker held, and in-flight results are lost.
                self.sched.worker_disconnected(w);
                self.pending[w].clear();
            }
            Action::Recover(w) => {
                self.crashed[w] = false;
            }
            Action::Silence => {
                self.silences_used += 1;
                self.now += SILENCE_NS + 2;
                self.sched.poll(self.now);
            }
        }
    }

    fn enabled(&self) -> Vec<Action> {
        let mut out = Vec::new();
        if self.admitted < self.cfg.jobs.len() {
            out.push(Action::Admit);
        }
        for w in 0..self.cfg.workers {
            if self.crashed[w] {
                out.push(Action::Recover(w));
                continue;
            }
            if self.pending[w].is_empty() {
                if self.sched.active_len() > 0 {
                    out.push(Action::Request(w));
                }
            } else {
                out.push(Action::Complete(w));
                // Only the last worker plays the straggler: the pool
                // needs at least one healthy peer to form a latency
                // median, and one flaky identity keeps the alphabet
                // small.
                if self.slow_used < self.cfg.max_slow && w == self.cfg.workers - 1 {
                    out.push(Action::CompleteSlow(w));
                }
            }
            if self.crashes_used < self.cfg.max_crashes {
                out.push(Action::Crash(w));
            }
        }
        if self.silences_used < 1 && self.sched.active_len() > 0 {
            out.push(Action::Silence);
        }
        out
    }

    fn terminal(&self) -> bool {
        self.admitted == self.cfg.jobs.len() && self.sched.is_idle()
    }

    /// Drives the schedule to quiescence: remaining jobs admitted,
    /// crashed workers recovered, perfect workers from there on. Every
    /// schedule must drain within the round budget — this is the
    /// no-stuck-job check (in particular: a quarantined-then-recovered
    /// worker, or a fully quarantined pool, always makes progress
    /// again).
    fn drain(&mut self) {
        while self.admitted < self.cfg.jobs.len() {
            self.admit();
        }
        for w in 0..self.cfg.workers {
            if self.crashed[w] {
                self.apply(Action::Recover(w));
            }
        }
        let mut rounds = 0u32;
        while !self.terminal() {
            rounds += 1;
            if rounds > self.cfg.drain_rounds {
                let quarantined: Vec<bool> =
                    (0..self.cfg.workers).map(|w| self.sched.is_quarantined(w)).collect();
                let budget = self.cfg.drain_rounds;
                self.check(false, || {
                    format!(
                        "stuck: jobs did not drain within {budget} rounds \
                         (quarantined: {quarantined:?})"
                    )
                });
                return;
            }
            for w in 0..self.cfg.workers {
                self.now += 1;
                if !self.pending[w].is_empty() {
                    self.complete(w, false);
                }
                if self.sched.active_len() > 0 {
                    self.request(w);
                }
            }
            self.sched.poll(self.now);
        }
    }

    /// Validates the drained schedule's job-scoped trace: per job, the
    /// `Completed` (and `RecoveredComplete`) events must tile
    /// `[0, total)` exactly once — exactly-once and no-lost-chunks in
    /// one pass. Returns the number of events inspected.
    fn check_tiling(&mut self) -> u64 {
        let trace = self.sink.take(TraceMeta {
            scheme: format!("CSS({})", self.cfg.chunk),
            workers: self.cfg.workers,
            total_iterations: self.cfg.jobs.iter().map(|&(i, _)| i).sum(),
            clock: ClockDomain::Logical,
        });
        let mut events = 0u64;
        let mut per_job: Vec<Vec<(u64, u64)>> = vec![Vec::new(); self.cfg.jobs.len()];
        for ev in trace.events() {
            events += 1;
            if !matches!(ev.kind, EventKind::Completed | EventKind::RecoveredComplete) {
                continue;
            }
            let (Some(job), Some(chunk)) = (ev.job, ev.chunk) else {
                self.check(false, || {
                    format!("{:?} event without job/chunk tags", ev.kind)
                });
                continue;
            };
            if let Some(slot) = per_job.get_mut((job - 1) as usize) {
                slot.push((chunk.start, chunk.len));
            }
        }
        for (j, completions) in per_job.iter_mut().enumerate() {
            let total = self.cfg.jobs[j].0;
            completions.sort_unstable();
            let mut cursor = 0u64;
            let tiled = completions.iter().all(|&(start, len)| {
                let ok = start == cursor;
                cursor = start + len;
                ok
            }) && cursor == total;
            self.checks += 1;
            if !tiled && self.violations.len() < MAX_VIOLATIONS {
                self.violations.push(format!(
                    "job {} completions {completions:?} do not tile [0, {total}) exactly once",
                    j + 1
                ));
            } else if !tiled {
                self.violations.push(String::new());
            }
        }
        events
    }
}

/// Runs the depth-first serve-scheduler exploration described by `cfg`.
pub fn explore_serve(cfg: &ServeExploreConfig) -> ServeExploreReport {
    let mut report = ServeExploreReport {
        interleavings: 0,
        terminal: 0,
        depth_bounded: 0,
        checks: 0,
        events_checked: 0,
        violations: Vec::new(),
        violation_count: 0,
    };
    // DFS over schedule prefixes, replayed from scratch per prefix —
    // the scheduler is not Clone (stateless model checking, as in
    // explore.rs).
    let mut stack: Vec<Vec<Action>> = vec![Vec::new()];
    while let Some(prefix) = stack.pop() {
        if report.interleavings >= cfg.max_interleavings {
            break;
        }
        let mut replay = Replay::new(cfg);
        for &a in &prefix {
            replay.apply(a);
        }
        let enabled = replay.enabled();
        let terminal = replay.terminal();
        let leaf = terminal || prefix.len() >= cfg.max_depth || enabled.is_empty();
        if leaf {
            report.interleavings += 1;
            if terminal {
                report.terminal += 1;
            } else if enabled.is_empty() {
                replay.check(false, || {
                    format!("deadlock after {prefix:?}: no enabled action")
                });
            } else {
                report.depth_bounded += 1;
            }
            replay.drain();
            report.events_checked += replay.check_tiling();
            // Every admitted job must have retired exactly once.
            let snaps = replay.sched.snapshots().to_vec();
            for id in 1..=cfg.jobs.len() as u64 {
                let n = snaps.iter().filter(|s| s.completed_job == id).count();
                replay.check(n == 1, || {
                    format!("job {id} retired {n} times after drain")
                });
            }
        } else {
            // Push in reverse so the first enabled action is explored
            // first (deterministic DFS order).
            for &a in enabled.iter().rev() {
                let mut next = prefix.clone();
                next.push(a);
                stack.push(next);
            }
        }
        report.checks += replay.checks;
        for v in replay.violations {
            report.violation_count += 1;
            if report.violations.len() < MAX_VIOLATIONS && !v.is_empty() {
                report.violations.push(v);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_exploration_is_clean() {
        let report = explore_serve(&ServeExploreConfig::quick());
        assert!(
            report.holds(),
            "violations: {:?} ({} schedules)",
            report.violations,
            report.interleavings
        );
        assert!(report.interleavings >= 100, "only {} schedules", report.interleavings);
        assert!(report.terminal > 0 || report.depth_bounded > 0);
        assert!(report.events_checked > 0);
    }

    #[test]
    fn exploration_is_deterministic() {
        let a = explore_serve(&ServeExploreConfig::quick());
        let b = explore_serve(&ServeExploreConfig::quick());
        assert_eq!(a.interleavings, b.interleavings);
        assert_eq!(a.checks, b.checks);
        assert_eq!(a.violation_count, b.violation_count);
    }

    #[test]
    fn duplicated_completion_is_caught_by_the_tiling_oracle() {
        // Flip the completion-dedup seam: a scheduler that emitted
        // `Completed` without consulting the first-result-wins bitmap
        // would put the same sub-range into the job-scoped trace
        // twice. Inject exactly that event after a clean drain and
        // assert the tiling oracle refuses the schedule.
        let cfg = ServeExploreConfig::quick();
        let mut replay = Replay::new(&cfg);
        replay.apply(Action::Admit);
        replay.drain();
        assert!(replay.violations.is_empty(), "clean drain: {:?}", replay.violations);
        replay.sink.record(
            lss_trace::event::TraceEvent::new(replay.now, EventKind::Completed)
                .on_worker(0)
                .on_chunk(0, 1)
                .on_job(1),
        );
        replay.check_tiling();
        assert!(
            replay.violations.iter().any(|v| v.contains("tile")),
            "duplicate completion must break the exact-partition check: {:?}",
            replay.violations
        );
    }

    #[test]
    fn lost_completion_is_caught_by_the_tiling_oracle() {
        // The mirror-image seam flip: a completion acknowledged to the
        // worker but never traced (the no-lost-chunks direction).
        // Drain cleanly, then check tiling against a trace with one
        // Completed event withheld.
        let cfg = ServeExploreConfig::quick();
        let mut replay = Replay::new(&cfg);
        replay.apply(Action::Admit);
        replay.drain();
        // Take the real trace, drop one Completed event, and re-run
        // the per-job tiling directly on the thinned stream.
        let trace = replay.sink.take(TraceMeta {
            scheme: "CSS".to_string(),
            workers: cfg.workers,
            total_iterations: cfg.jobs[0].0,
            clock: ClockDomain::Logical,
        });
        let mut completions: Vec<(u64, u64)> = trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Completed) && e.job == Some(1))
            .filter_map(|e| e.chunk.map(|c| (c.start, c.len)))
            .collect();
        assert!(!completions.is_empty());
        completions.sort_unstable();
        completions.remove(0);
        let mut cursor = 0u64;
        let tiled = completions.iter().all(|&(start, len)| {
            let ok = start == cursor;
            cursor = start + len;
            ok
        }) && cursor == cfg.jobs[0].0;
        assert!(!tiled, "withholding a completion must break the tiling");
    }
}
