//! Prometheus text-exposition snapshot of a finished trace.
//!
//! Renders the trace's aggregates in the classic `# HELP` / `# TYPE` /
//! sample format so a run's numbers can be pushed to a textfile
//! collector or diffed between schemes with plain text tools.

use std::fmt::Write as _;

use crate::analysis::{breakdowns, critical_path, gantt, imbalance};
use crate::event::{EventKind, Trace};

fn header(out: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Serializes a trace's aggregates into Prometheus text format.
pub fn to_prometheus_text(trace: &Trace) -> String {
    let scheme = trace.meta.scheme.replace('"', "");
    let lanes = gantt(trace);
    let per_worker = breakdowns(trace);
    let cp = critical_path(trace);
    let im = imbalance(trace);
    let mut out = String::with_capacity(2048);

    header(&mut out, "lss_trace_events_total", "Events recorded in the trace ring.", "counter");
    let _ = writeln!(
        out,
        "lss_trace_events_total{{scheme=\"{scheme}\",clock=\"{}\"}} {}",
        trace.meta.clock.label(),
        trace.len()
    );

    header(
        &mut out,
        "lss_trace_events_dropped_total",
        "Events overwritten by the bounded ring.",
        "counter",
    );
    let _ = writeln!(out, "lss_trace_events_dropped_total{{scheme=\"{scheme}\"}} {}", trace.dropped);

    let jobs = trace.job_ids();
    if !jobs.is_empty() {
        header(
            &mut out,
            "lss_job_events_total",
            "Events attributed to each job of a multi-job run.",
            "counter",
        );
        for j in jobs {
            let _ = writeln!(
                out,
                "lss_job_events_total{{scheme=\"{scheme}\",job=\"{j}\"}} {}",
                trace.for_job(j).count()
            );
        }
    }

    header(
        &mut out,
        "lss_chunks_completed_total",
        "Chunks computed to completion, per worker.",
        "counter",
    );
    for (w, lane) in lanes.iter().enumerate() {
        let _ = writeln!(
            out,
            "lss_chunks_completed_total{{scheme=\"{scheme}\",worker=\"{w}\"}} {}",
            lane.spans.len()
        );
    }

    header(
        &mut out,
        "lss_time_seconds",
        "Per-worker time decomposition (component: com|wait|comp).",
        "gauge",
    );
    for (w, b) in per_worker.iter().enumerate() {
        for (component, ns) in
            [("com", b.com_ns), ("wait", b.wait_ns), ("comp", b.comp_ns)]
        {
            let _ = writeln!(
                out,
                "lss_time_seconds{{scheme=\"{scheme}\",worker=\"{w}\",component=\"{component}\"}} {:.9}",
                ns as f64 * 1e-9
            );
        }
    }

    header(&mut out, "lss_makespan_seconds", "Latest chunk completion time.", "gauge");
    let _ = writeln!(out, "lss_makespan_seconds{{scheme=\"{scheme}\"}} {:.9}", cp.makespan_s);

    header(
        &mut out,
        "lss_serialized_seconds",
        "Time during which exactly one worker was busy.",
        "gauge",
    );
    let _ = writeln!(
        out,
        "lss_serialized_seconds{{scheme=\"{scheme}\"}} {:.9}",
        cp.serialized_ns as f64 * 1e-9
    );

    header(
        &mut out,
        "lss_busy_imbalance_cov",
        "Coefficient of variation of per-worker busy time.",
        "gauge",
    );
    let _ = writeln!(out, "lss_busy_imbalance_cov{{scheme=\"{scheme}\"}} {:.6}", im.cov);

    header(
        &mut out,
        "lss_lifecycle_events_total",
        "Lifecycle / membership / fault events by kind.",
        "counter",
    );
    let mut counts: Vec<(&'static str, usize)> = Vec::new();
    for ev in trace.events() {
        if matches!(
            ev.kind,
            EventKind::Comm { .. } | EventKind::Wait { .. } | EventKind::Comp { .. }
        ) {
            continue;
        }
        let label = ev.kind.label();
        match counts.iter_mut().find(|(l, _)| *l == label) {
            Some((_, n)) => *n += 1,
            None => counts.push((label, 1)),
        }
    }
    counts.sort_by_key(|&(l, _)| l);
    for (label, n) in counts {
        let _ = writeln!(
            out,
            "lss_lifecycle_events_total{{scheme=\"{scheme}\",kind=\"{label}\"}} {n}"
        );
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ClockDomain, EventKind, TraceEvent, TraceMeta};

    #[test]
    fn snapshot_has_expected_families() {
        let g = EventKind::Granted { speculative: false, requeued: false, retransmit: false };
        let t = Trace::new(
            TraceMeta {
                scheme: "FSS".into(),
                workers: 1,
                total_iterations: 4,
                clock: ClockDomain::Logical,
            },
            vec![
                TraceEvent::new(0, EventKind::Planned).on_chunk(0, 4),
                TraceEvent::new(0, g).on_worker(0).on_chunk(0, 4),
                TraceEvent::new(10, EventKind::Started).on_worker(0).on_chunk(0, 4),
                TraceEvent::new(50, EventKind::Completed).on_worker(0).on_chunk(0, 4),
                TraceEvent::new(50, EventKind::Comp { ns: 40 }).on_worker(0),
                TraceEvent::new(50, EventKind::Wait { ns: 10 }).on_worker(0),
            ],
            0,
        );
        let text = to_prometheus_text(&t);
        assert!(text.contains("# TYPE lss_time_seconds gauge"), "{text}");
        assert!(text.contains("clock=\"logical\""), "{text}");
        assert!(text.contains("lss_chunks_completed_total{scheme=\"FSS\",worker=\"0\"} 1"));
        assert!(text.contains("component=\"comp\"} 0.000000040"));
        assert!(text.contains("lss_makespan_seconds{scheme=\"FSS\"} 0.000000050"));
        assert!(text.contains("kind=\"planned\"} 1"));
        // Accounting deltas are aggregated, not listed by kind.
        assert!(!text.contains("kind=\"comp\""));
    }
}
