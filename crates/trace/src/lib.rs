//! # lss-trace — chunk-lifecycle tracing for loop self-scheduling
//!
//! A dependency-free observability layer shared by the discrete-event
//! simulator and the threaded/TCP runtime. Both engines emit the same
//! [`TraceEvent`] stream — `planned → granted → started → heartbeat →
//! completed | lapsed | requeued | deduped`, plus worker membership,
//! master decisions, folded fault-log entries, and exact integer-ns
//! accounting deltas — into a lock-cheap bounded ring behind the
//! zero-cost [`TraceSink`] trait.
//!
//! On top of the raw stream:
//! - [`analysis`]: per-worker Gantt lanes, idle gaps, busy-time
//!   imbalance, exact `T_com/T_wait/T_comp` reconstruction, and a
//!   critical-path summary;
//! - [`chrome`]: Chrome/Perfetto `trace.json` export plus a schema
//!   validator (used by CI and `lss trace --validate`);
//! - [`prom`]: a Prometheus text-exposition snapshot.
//!
//! The simulator stamps events with its logical clock
//! ([`ClockDomain::Logical`]); the runtime with monotonic wall-clock
//! nanoseconds from one shared epoch ([`ClockDomain::Monotonic`]) —
//! the schema is identical, so every exporter and analysis pass works
//! on either engine's output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod chrome;
pub mod event;
pub mod prom;
pub mod sink;

pub use analysis::{
    breakdowns, critical_path, gantt, idle_gaps, imbalance, render_gantt, BreakdownNs,
    CriticalPath, IdleGap, Imbalance, Lane, Span,
};
pub use chrome::{to_chrome_json, validate_chrome_trace};
pub use event::{ChunkRef, ClockDomain, EventKind, Trace, TraceEvent, TraceMeta};
pub use prom::to_prometheus_text;
pub use sink::{JobScopedSink, NoopSink, RingSink, SharedSink, TraceSink, DEFAULT_CAPACITY};
