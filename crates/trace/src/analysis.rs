//! Analysis passes over a finished [`Trace`]: Gantt reconstruction,
//! idle-gap / imbalance extraction, per-worker time breakdowns, and a
//! critical-path summary.

use std::collections::HashMap;

use crate::event::{ChunkRef, EventKind, Trace};
#[cfg(test)]
use crate::event::TraceEvent;

/// One computed interval on a worker's lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Worker that computed the chunk.
    pub worker: usize,
    /// The chunk computed.
    pub chunk: ChunkRef,
    /// `Started` timestamp.
    pub start_ns: u64,
    /// `Completed` timestamp (`>= start_ns`).
    pub end_ns: u64,
}

impl Span {
    /// Busy nanoseconds of the span.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// A worker's reconstructed lane: its spans in start order.
#[derive(Debug, Clone, Default)]
pub struct Lane {
    /// Completed spans, sorted by start time.
    pub spans: Vec<Span>,
    /// `Started` events that never saw a matching `Completed` (e.g. a
    /// worker crashed mid-chunk); reported, not silently dropped.
    pub unfinished: Vec<(ChunkRef, u64)>,
}

impl Lane {
    /// Total busy nanoseconds over all completed spans.
    pub fn busy_ns(&self) -> u64 {
        self.spans.iter().map(Span::dur_ns).sum()
    }
}

/// Per-worker Gantt lanes reconstructed from `Started`/`Completed`
/// pairs. Lane index = worker id; workers that never started a chunk
/// get an empty lane.
pub fn gantt(trace: &Trace) -> Vec<Lane> {
    let mut lanes: Vec<Lane> = (0..trace.meta.workers).map(|_| Lane::default()).collect();
    // Key on (worker, chunk) so a speculative re-execution of the same
    // chunk on another worker pairs with its own Started.
    let mut open: HashMap<(usize, ChunkRef), u64> = HashMap::new();
    for ev in trace.events() {
        let (Some(w), Some(c)) = (ev.worker, ev.chunk) else { continue };
        match ev.kind {
            EventKind::Started => {
                open.insert((w, c), ev.at_ns);
            }
            EventKind::Completed => {
                if let Some(start_ns) = open.remove(&(w, c)) {
                    if w >= lanes.len() {
                        lanes.resize_with(w + 1, Lane::default);
                    }
                    lanes[w].spans.push(Span { worker: w, chunk: c, start_ns, end_ns: ev.at_ns });
                }
            }
            _ => {}
        }
    }
    for ((w, c), start_ns) in open {
        if w >= lanes.len() {
            lanes.resize_with(w + 1, Lane::default);
        }
        lanes[w].unfinished.push((c, start_ns));
    }
    for lane in &mut lanes {
        lane.spans.sort_by_key(|s| (s.start_ns, s.chunk.start));
        lane.unfinished.sort_by_key(|&(c, at)| (at, c.start));
    }
    lanes
}

/// An idle interval on a worker's lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdleGap {
    /// The idle worker.
    pub worker: usize,
    /// Gap start (end of the previous span, or 0 for the lead-in).
    pub from_ns: u64,
    /// Gap end (start of the next span, or the trace end for tail idle).
    pub to_ns: u64,
}

impl IdleGap {
    /// Idle nanoseconds of the gap.
    pub fn dur_ns(&self) -> u64 {
        self.to_ns - self.from_ns
    }
}

/// Idle gaps per worker: the lead-in before its first span, every gap
/// between consecutive spans, and the tail after its last span up to
/// the run's makespan. Zero-length gaps are omitted.
pub fn idle_gaps(trace: &Trace) -> Vec<IdleGap> {
    let lanes = gantt(trace);
    let horizon = makespan_ns(&lanes);
    let mut gaps = Vec::new();
    for (w, lane) in lanes.iter().enumerate() {
        let mut cursor = 0u64;
        for s in &lane.spans {
            if s.start_ns > cursor {
                gaps.push(IdleGap { worker: w, from_ns: cursor, to_ns: s.start_ns });
            }
            cursor = cursor.max(s.end_ns);
        }
        if horizon > cursor {
            gaps.push(IdleGap { worker: w, from_ns: cursor, to_ns: horizon });
        }
    }
    gaps
}

/// Load-imbalance summary over the reconstructed lanes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Imbalance {
    /// Busy time of the busiest worker, seconds.
    pub max_busy_s: f64,
    /// Busy time of the least busy worker, seconds.
    pub min_busy_s: f64,
    /// Mean busy time, seconds.
    pub mean_busy_s: f64,
    /// Coefficient of variation of busy time (0 = perfectly balanced).
    pub cov: f64,
}

/// Computes busy-time imbalance across workers.
pub fn imbalance(trace: &Trace) -> Imbalance {
    let lanes = gantt(trace);
    if lanes.is_empty() {
        return Imbalance { max_busy_s: 0.0, min_busy_s: 0.0, mean_busy_s: 0.0, cov: 0.0 };
    }
    let busy: Vec<f64> = lanes.iter().map(|l| l.busy_ns() as f64 * 1e-9).collect();
    let n = busy.len() as f64;
    let mean = busy.iter().sum::<f64>() / n;
    let var = busy.iter().map(|b| (b - mean) * (b - mean)).sum::<f64>() / n;
    let cov = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
    Imbalance {
        max_busy_s: busy.iter().cloned().fold(0.0, f64::max),
        min_busy_s: busy.iter().cloned().fold(f64::INFINITY, f64::min),
        mean_busy_s: mean,
        cov,
    }
}

/// Exact per-worker time decomposition summed from the trace's
/// accounting deltas, in integer nanoseconds. Converting each total
/// once reproduces the engines' own `T_com/T_wait/T_comp` without
/// floating-point summation drift.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakdownNs {
    /// Communication nanoseconds (`Comm` deltas).
    pub com_ns: u64,
    /// Idle nanoseconds (`Wait` deltas).
    pub wait_ns: u64,
    /// Compute nanoseconds (`Comp` deltas).
    pub comp_ns: u64,
}

/// Per-worker accounting totals; index = worker id.
pub fn breakdowns(trace: &Trace) -> Vec<BreakdownNs> {
    let mut out: Vec<BreakdownNs> = vec![BreakdownNs::default(); trace.meta.workers];
    for ev in trace.events() {
        let Some(w) = ev.worker else { continue };
        if w >= out.len() {
            out.resize(w + 1, BreakdownNs::default());
        }
        match ev.kind {
            EventKind::Comm { ns } => out[w].com_ns += ns,
            EventKind::Wait { ns } => out[w].wait_ns += ns,
            EventKind::Comp { ns } => out[w].comp_ns += ns,
            _ => {}
        }
    }
    out
}

/// Critical-path summary of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Makespan: the latest `Completed` timestamp, seconds.
    pub makespan_s: f64,
    /// The last span to finish, if any chunk completed.
    pub last_span: Option<Span>,
    /// Nanoseconds during which exactly one worker was busy — the
    /// serialized tail/head a better schedule could parallelize.
    pub serialized_ns: u64,
    /// The single longest span (the chunk a finer scheme would split).
    pub longest_span: Option<Span>,
    /// Count of speculative grants on the path's run.
    pub speculative_grants: usize,
    /// Count of requeue events on the path's run.
    pub requeues: usize,
}

fn makespan_ns(lanes: &[Lane]) -> u64 {
    lanes.iter().flat_map(|l| l.spans.iter()).map(|s| s.end_ns).max().unwrap_or(0)
}

/// Summarizes the run's critical path from its Gantt lanes.
pub fn critical_path(trace: &Trace) -> CriticalPath {
    let lanes = gantt(trace);
    let spans: Vec<Span> = lanes.iter().flat_map(|l| l.spans.iter().copied()).collect();
    let last_span = spans.iter().copied().max_by_key(|s| (s.end_ns, s.start_ns));
    let longest_span = spans.iter().copied().max_by_key(|s| s.dur_ns());
    CriticalPath {
        makespan_s: makespan_ns(&lanes) as f64 * 1e-9,
        last_span,
        serialized_ns: serialized_ns(&spans),
        longest_span,
        speculative_grants: trace
            .count_kind(|k| matches!(k, EventKind::Granted { speculative: true, .. })),
        requeues: trace.count_kind(|k| matches!(k, EventKind::Requeued)),
    }
}

/// Sweep-line over span boundaries: total time with exactly one busy
/// worker.
fn serialized_ns(spans: &[Span]) -> u64 {
    let mut edges: Vec<(u64, i64)> = Vec::with_capacity(spans.len() * 2);
    for s in spans {
        if s.end_ns > s.start_ns {
            edges.push((s.start_ns, 1));
            edges.push((s.end_ns, -1));
        }
    }
    edges.sort();
    let mut busy = 0i64;
    let mut prev = 0u64;
    let mut solo = 0u64;
    for (at, d) in edges {
        if busy == 1 {
            solo += at - prev;
        }
        busy += d;
        prev = at;
    }
    solo
}

/// Renders the lanes as a fixed-width ASCII Gantt chart, one row per
/// worker — a quick terminal view before reaching for Perfetto.
pub fn render_gantt(trace: &Trace, width: usize) -> String {
    let lanes = gantt(trace);
    let horizon = makespan_ns(&lanes).max(1);
    let width = width.max(10);
    let mut out = String::new();
    for (w, lane) in lanes.iter().enumerate() {
        let mut row = vec![b'.'; width];
        for s in &lane.spans {
            let a = (s.start_ns as u128 * width as u128 / horizon as u128) as usize;
            let b = (s.end_ns as u128 * width as u128 / horizon as u128) as usize;
            for cell in row.iter_mut().take(b.min(width).max(a + 1)).skip(a.min(width - 1)) {
                *cell = b'#';
            }
        }
        out.push_str(&format!("P{w:<3} |{}|\n", String::from_utf8_lossy(&row)));
    }
    out.push_str(&format!(
        "      0{:>w$}\n",
        format!("{:.3}s", horizon as f64 * 1e-9),
        w = width
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ClockDomain, TraceMeta};

    fn granted() -> EventKind {
        EventKind::Granted { speculative: false, requeued: false, retransmit: false }
    }

    fn demo_trace() -> Trace {
        // Worker 0: [10,30] and [40,60]; worker 1: [10,50]; horizon 60.
        let events = vec![
            TraceEvent::new(0, EventKind::Planned).on_chunk(0, 4),
            TraceEvent::new(0, granted()).on_worker(0).on_chunk(0, 4),
            TraceEvent::new(10, EventKind::Started).on_worker(0).on_chunk(0, 4),
            TraceEvent::new(30, EventKind::Completed).on_worker(0).on_chunk(0, 4),
            TraceEvent::new(40, EventKind::Started).on_worker(0).on_chunk(4, 2),
            TraceEvent::new(60, EventKind::Completed).on_worker(0).on_chunk(4, 2),
            TraceEvent::new(10, EventKind::Started).on_worker(1).on_chunk(6, 4),
            TraceEvent::new(50, EventKind::Completed).on_worker(1).on_chunk(6, 4),
            TraceEvent::new(30, EventKind::Comm { ns: 5 }).on_worker(0),
            TraceEvent::new(30, EventKind::Wait { ns: 10 }).on_worker(0),
            TraceEvent::new(60, EventKind::Comp { ns: 40 }).on_worker(0),
        ];
        Trace::new(
            TraceMeta {
                scheme: "TSS".into(),
                workers: 2,
                total_iterations: 10,
                clock: ClockDomain::Logical,
            },
            events,
            0,
        )
    }

    #[test]
    fn gantt_pairs_started_completed() {
        let lanes = gantt(&demo_trace());
        assert_eq!(lanes.len(), 2);
        assert_eq!(lanes[0].spans.len(), 2);
        assert_eq!(lanes[1].spans.len(), 1);
        assert_eq!(lanes[0].busy_ns(), 40);
        assert_eq!(lanes[1].busy_ns(), 40);
        assert!(lanes[0].unfinished.is_empty());
    }

    #[test]
    fn idle_gaps_cover_leadin_between_and_tail() {
        let gaps = idle_gaps(&demo_trace());
        // Worker 0: lead-in [0,10], between [30,40]. Worker 1: lead-in
        // [0,10], tail [50,60].
        let w0: Vec<_> = gaps.iter().filter(|g| g.worker == 0).collect();
        let w1: Vec<_> = gaps.iter().filter(|g| g.worker == 1).collect();
        assert_eq!(w0.len(), 2);
        assert_eq!(w0[0].dur_ns(), 10);
        assert_eq!(w0[1].dur_ns(), 10);
        assert_eq!(w1.len(), 2);
        assert_eq!(w1[1].from_ns, 50);
        assert_eq!(w1[1].to_ns, 60);
    }

    #[test]
    fn breakdowns_sum_accounting_deltas() {
        let b = breakdowns(&demo_trace());
        assert_eq!(b[0], BreakdownNs { com_ns: 5, wait_ns: 10, comp_ns: 40 });
        assert_eq!(b[1], BreakdownNs::default());
    }

    #[test]
    fn critical_path_summary() {
        let cp = critical_path(&demo_trace());
        assert!((cp.makespan_s - 60e-9).abs() < 1e-15);
        assert_eq!(cp.last_span.unwrap().chunk, ChunkRef::new(4, 2));
        assert_eq!(cp.longest_span.unwrap().dur_ns(), 40);
        // Solo-busy time: [30,40] (w1 only) + [50,60] (w0 only) = 20.
        assert_eq!(cp.serialized_ns, 20);
        assert_eq!(cp.speculative_grants, 0);
        assert_eq!(cp.requeues, 0);
    }

    #[test]
    fn imbalance_of_balanced_lanes_is_zero() {
        let im = imbalance(&demo_trace());
        assert!(im.cov.abs() < 1e-12, "{im:?}");
        assert!((im.max_busy_s - im.min_busy_s).abs() < 1e-15);
    }

    #[test]
    fn gantt_render_has_one_row_per_worker() {
        let s = render_gantt(&demo_trace(), 40);
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains("P0"));
        assert!(s.contains('#'));
    }

    #[test]
    fn unfinished_starts_are_reported() {
        let events = vec![TraceEvent::new(5, EventKind::Started).on_worker(0).on_chunk(0, 3)];
        let t = Trace::new(
            TraceMeta {
                scheme: "SS".into(),
                workers: 1,
                total_iterations: 3,
                clock: ClockDomain::Logical,
            },
            events,
            0,
        );
        let lanes = gantt(&t);
        assert!(lanes[0].spans.is_empty());
        assert_eq!(lanes[0].unfinished, vec![(ChunkRef::new(0, 3), 5)]);
    }
}
