//! Chrome Trace Event / Perfetto exporter and schema validator.
//!
//! Emits the JSON Object Format understood by `chrome://tracing` and
//! <https://ui.perfetto.dev>: `"traceEvents"` holding `ph:"M"` thread
//! metadata, `ph:"X"` complete spans (one per computed chunk) and
//! `ph:"i"` instants (lifecycle, membership and fault marks).
//! Timestamps are microseconds (`ts = at_ns / 1000`, fractional part
//! kept), one process per run, one thread per worker.
//!
//! [`validate_chrome_trace`] re-parses an emitted file with a small
//! built-in JSON reader and checks the structural invariants the
//! viewers rely on; CI runs it against the traced-sim artifact.

use std::fmt::Write as _;

use crate::analysis::gantt;
use crate::event::{EventKind, Trace};

/// Thread id used for master-side events with no worker attribution.
const MASTER_TID: usize = 0;

fn tid_of(worker: Option<usize>) -> usize {
    // Worker w gets tid w+1; the master lane is tid 0.
    worker.map_or(MASTER_TID, |w| w + 1)
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn us(at_ns: u64) -> String {
    // Microseconds with ns precision preserved as a decimal fraction.
    format!("{}.{:03}", at_ns / 1_000, at_ns % 1_000)
}

/// Serializes a trace into Chrome Trace Event JSON.
pub fn to_chrome_json(trace: &Trace) -> String {
    let mut out = String::with_capacity(4096 + trace.len() * 96);
    out.push_str("{\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {");
    let _ = write!(
        out,
        "\"scheme\": \"{}\", \"workers\": {}, \"totalIterations\": {}, \"clock\": \"{}\", \"dropped\": {}",
        esc(&trace.meta.scheme),
        trace.meta.workers,
        trace.meta.total_iterations,
        trace.meta.clock.label(),
        trace.dropped
    );
    out.push_str("},\n\"traceEvents\": [\n");

    let mut events: Vec<String> = Vec::new();

    // Process + thread naming metadata.
    events.push(format!(
        "{{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": \"process_name\", \"args\": {{\"name\": \"lss {}\"}}}}",
        esc(&trace.meta.scheme)
    ));
    events.push(
        "{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": \"thread_name\", \"args\": {\"name\": \"master\"}}"
            .to_string(),
    );
    for w in 0..trace.meta.workers {
        events.push(format!(
            "{{\"ph\": \"M\", \"pid\": 1, \"tid\": {}, \"name\": \"thread_name\", \"args\": {{\"name\": \"worker {w}\"}}}}",
            w + 1
        ));
    }

    // One complete (ph:"X") span per computed chunk.
    for lane in gantt(trace) {
        for s in &lane.spans {
            events.push(format!(
                "{{\"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"ts\": {}, \"dur\": {}, \"name\": \"chunk {}\", \"args\": {{\"start\": {}, \"len\": {}}}}}",
                tid_of(Some(s.worker)),
                us(s.start_ns),
                us(s.dur_ns()),
                s.chunk,
                s.chunk.start,
                s.chunk.len
            ));
        }
    }

    // Instants for everything except the span-forming pair and the
    // high-volume accounting deltas (those stay analysis-only).
    for ev in trace.events() {
        match ev.kind {
            EventKind::Started
            | EventKind::Completed
            | EventKind::Comm { .. }
            | EventKind::Wait { .. }
            | EventKind::Comp { .. } => continue,
            _ => {}
        }
        let mut args = String::new();
        if let Some(c) = ev.chunk {
            let _ = write!(args, "\"start\": {}, \"len\": {}", c.start, c.len);
        }
        if let Some(j) = ev.job {
            if !args.is_empty() {
                args.push_str(", ");
            }
            let _ = write!(args, "\"job\": {j}");
        }
        if let EventKind::Replanned { plan } = ev.kind {
            if !args.is_empty() {
                args.push_str(", ");
            }
            let _ = write!(args, "\"plan\": {plan}");
        }
        events.push(format!(
            "{{\"ph\": \"i\", \"pid\": 1, \"tid\": {}, \"ts\": {}, \"s\": \"t\", \"name\": \"{}\", \"args\": {{{args}}}}}",
            tid_of(ev.worker),
            us(ev.at_ns),
            esc(ev.kind.label())
        ));
    }

    out.push_str(&events.join(",\n"));
    out.push_str("\n]\n}\n");
    out
}

// --------------------------------------------------------------------
// Minimal JSON reader — only what the validator needs.
// --------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered pairs; duplicate keys keep last).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json error at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E') | Some(b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole run up to the next quote or
                    // escape in one step. Validating per character
                    // re-scans the remaining input each time and goes
                    // quadratic on megabyte-scale traces. The run
                    // boundary cannot split a multi-byte scalar: '"'
                    // and '\\' are ASCII, and UTF-8 continuation
                    // bytes are never ASCII.
                    let start = self.pos;
                    while !matches!(self.peek(), None | Some(b'"' | b'\\')) {
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a JSON document.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

/// Validates that `text` is a structurally sound Chrome trace as this
/// crate emits it. Returns the number of `traceEvents` on success.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let root = parse_json(text)?;
    let events = root
        .get("traceEvents")
        .ok_or("missing traceEvents")?
        .as_arr()
        .ok_or("traceEvents is not an array")?;
    if events.is_empty() {
        return Err("traceEvents is empty".into());
    }
    let other = root.get("otherData").ok_or("missing otherData")?;
    for key in ["scheme", "clock"] {
        if other.get(key).and_then(Json::as_str).is_none() {
            return Err(format!("otherData.{key} missing or not a string"));
        }
    }
    if other.get("workers").and_then(Json::as_num).is_none() {
        return Err("otherData.workers missing or not a number".into());
    }
    let mut named_threads = false;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let need_name = ev.get("name").and_then(Json::as_str).is_none();
        if need_name {
            return Err(format!("event {i}: missing name"));
        }
        if ev.get("pid").and_then(Json::as_num).is_none()
            || ev.get("tid").and_then(Json::as_num).is_none()
        {
            return Err(format!("event {i}: missing pid/tid"));
        }
        match ph {
            "M" => {
                named_threads = true;
            }
            "X" => {
                let ts = ev.get("ts").and_then(Json::as_num);
                let dur = ev.get("dur").and_then(Json::as_num);
                match (ts, dur) {
                    (Some(ts), Some(dur)) if ts >= 0.0 && dur >= 0.0 => {}
                    _ => return Err(format!("event {i}: X event needs ts/dur >= 0")),
                }
            }
            "i" => {
                if ev.get("ts").and_then(Json::as_num).is_none() {
                    return Err(format!("event {i}: i event needs ts"));
                }
            }
            other => return Err(format!("event {i}: unexpected ph {other:?}")),
        }
    }
    if !named_threads {
        return Err("no thread_name metadata events".into());
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ClockDomain, EventKind, TraceEvent, TraceMeta};

    fn demo() -> Trace {
        let g = EventKind::Granted { speculative: false, requeued: false, retransmit: false };
        Trace::new(
            TraceMeta {
                scheme: "GSS".into(),
                workers: 1,
                total_iterations: 8,
                clock: ClockDomain::Logical,
            },
            vec![
                TraceEvent::new(0, EventKind::Planned).on_chunk(0, 8),
                TraceEvent::new(0, g).on_worker(0).on_chunk(0, 8),
                TraceEvent::new(1_500, EventKind::Started).on_worker(0).on_chunk(0, 8),
                TraceEvent::new(9_000, EventKind::Completed).on_worker(0).on_chunk(0, 8),
                TraceEvent::new(9_500, EventKind::Fault { label: "injected" }).on_worker(0),
            ],
            0,
        )
    }

    #[test]
    fn export_roundtrips_through_validator() {
        let json = to_chrome_json(&demo());
        let n = validate_chrome_trace(&json).expect("valid trace");
        // 2 meta (process+master) + 1 worker meta + 1 X span + 3 instants.
        assert_eq!(n, 7, "{json}");
    }

    #[test]
    fn spans_use_microseconds() {
        let json = to_chrome_json(&demo());
        // start 1500ns -> ts 1.500us; dur 7500ns -> 7.500us.
        assert!(json.contains("\"ts\": 1.500"), "{json}");
        assert!(json.contains("\"dur\": 7.500"), "{json}");
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": []}").is_err());
        assert!(validate_chrome_trace("not json").is_err());
        assert!(
            validate_chrome_trace(
                "{\"otherData\": {\"scheme\": \"x\", \"clock\": \"logical\", \"workers\": 1},
                  \"traceEvents\": [{\"ph\": \"X\", \"pid\": 1, \"tid\": 0, \"name\": \"c\"}]}"
            )
            .is_err()
        );
    }

    #[test]
    fn json_parser_handles_escapes_and_nesting() {
        let v = parse_json(r#"{"a": [1, -2.5e1, "x\nyA"], "b": {"c": true, "d": null}}"#)
            .unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_num(), Some(-25.0));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_str(), Some("x\nyA"));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{\"a\": 1} trailing").is_err());
    }
}
