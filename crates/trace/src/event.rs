//! The trace schema: one event type shared by both execution engines.
//!
//! A trace is a time-ordered stream of [`TraceEvent`]s over one run.
//! Timestamps are `u64` nanoseconds in a per-run [`ClockDomain`]: the
//! simulator stamps events with its virtual clock, the threaded/TCP
//! runtime with a monotonic wall clock anchored at the run's epoch —
//! so the *same* schema (and the same exporters and analysis passes)
//! comes out of both engines.

use std::fmt;

/// Which clock produced a trace's timestamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockDomain {
    /// The simulator's virtual clock ([`SimTime`] nanoseconds).
    ///
    /// [`SimTime`]: https://docs.rs/lss-sim
    Logical,
    /// Monotonic wall-clock nanoseconds since the run's epoch.
    Monotonic,
}

impl ClockDomain {
    /// Stable lowercase label for exporters.
    pub fn label(&self) -> &'static str {
        match self {
            ClockDomain::Logical => "logical",
            ClockDomain::Monotonic => "monotonic",
        }
    }
}

/// An iteration interval, decoupled from `lss-core`'s `Chunk` so this
/// crate sits below every other workspace member.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChunkRef {
    /// First iteration of the interval.
    pub start: u64,
    /// Number of iterations.
    pub len: u64,
}

impl ChunkRef {
    /// Builds a reference to `[start, start + len)`.
    pub fn new(start: u64, len: u64) -> Self {
        ChunkRef { start, len }
    }
}

impl fmt::Display for ChunkRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{}", self.start, self.len)
    }
}

/// What happened at one instant of a run.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    // ---- chunk lifecycle -------------------------------------------
    /// The master's scheme decided this fresh chunk's boundaries.
    Planned,
    /// The chunk was handed to a worker. `speculative` marks an
    /// end-of-loop duplicate of a straggler's chunk; `requeued` a
    /// re-grant of work reclaimed from a failed worker; `retransmit`
    /// an idempotent re-send after a lost reply.
    Granted {
        /// End-of-loop duplicate of an outstanding chunk.
        speculative: bool,
        /// Re-grant of a chunk reclaimed from a failed worker.
        requeued: bool,
        /// Idempotent re-send of a grant whose reply was lost.
        retransmit: bool,
    },
    /// The worker began computing the chunk.
    Started,
    /// A liveness heartbeat from a worker holding a chunk.
    Heartbeat,
    /// The worker finished computing the chunk.
    Completed,
    /// A reported result whose iterations were already complete was
    /// discarded by first-result-wins dedup.
    Deduped,
    /// The chunk's lease outlived its deadline.
    Lapsed,
    /// The chunk went back to the master's pool for re-execution.
    Requeued,
    // ---- worker membership -----------------------------------------
    /// A worker joined the run.
    WorkerConnected,
    /// A worker's link dropped.
    WorkerDisconnected,
    /// A worker was declared dead (silent past the grace window).
    WorkerDead,
    /// A dead or disconnected worker was heard from again.
    WorkerRecovered,
    // ---- master decisions ------------------------------------------
    /// A distributed master recomputed its plan (`plan` = new count).
    Replanned {
        /// Total plans made so far, including the initial one.
        plan: u32,
    },
    // ---- accounting deltas -----------------------------------------
    /// `ns` nanoseconds spent on the wire (requests, replies,
    /// piggy-backed results). Sums to the worker's `T_com` exactly.
    Comm {
        /// Wire nanoseconds attributed at this instant.
        ns: u64,
    },
    /// `ns` nanoseconds spent idle (master queueing, retry back-off,
    /// startup, terminal idling). Sums to `T_wait` exactly.
    Wait {
        /// Idle nanoseconds attributed at this instant.
        ns: u64,
    },
    /// `ns` nanoseconds spent computing iterations. Sums to `T_comp`
    /// exactly.
    Comp {
        /// Compute nanoseconds attributed at this instant.
        ns: u64,
    },
    // ---- folded fault-log entries ----------------------------------
    /// A fault-log entry with no dedicated lifecycle kind (e.g. an
    /// injected chaos fault), folded onto the same timeline.
    Fault {
        /// The fault kind's stable label (e.g. `"injected"`).
        label: &'static str,
    },
    // ---- job lifecycle (the multi-job serving layer) ---------------
    /// A job arrived at the service and entered the queue.
    JobSubmitted,
    /// A queued job was activated and began receiving grants.
    JobAdmitted,
    /// A job was refused admission (queue full / service draining).
    JobRejected,
    /// Every iteration of a job has been completed at least once.
    JobCompleted,
    // ---- crash recovery and worker health (the serve daemon) -------
    /// An unfinished job was re-admitted from the durable journal after
    /// a daemon restart.
    JobRecovered,
    /// A chunk interval whose completion was recorded in the journal
    /// before the crash; emitted at recovery so the post-restart trace
    /// alone still covers `[0, total)`.
    RecoveredComplete,
    /// A worker's health score degraded past the quarantine threshold;
    /// its outstanding grants are reclaimed and it only receives
    /// single-chunk canary grants until readmitted.
    WorkerQuarantined,
    /// A quarantined worker answered a canary grant at a healthy
    /// latency and rejoined the grant pool.
    WorkerReadmitted,
    // ---- sharded masters (lss-shard) --------------------------------
    /// A master shard came online owning an iteration range (the
    /// event's chunk field). `shard` is the shard index.
    ShardJoined {
        /// Index of the shard that joined.
        shard: usize,
    },
    /// A contiguous undispensed range (the event's chunk field) moved
    /// between shards — work stealing when one shard drained early.
    ShardStole {
        /// Shard the range was taken from.
        from: usize,
        /// Shard that received the range.
        to: usize,
    },
    /// A worker computed its own chunk from the shared atomic counter
    /// plus the replicated scheme formula — no master round trip.
    /// `seq` is the claimed position in the shard's chunk sequence.
    SelfGranted {
        /// Position claimed from the shard's atomic chunk counter.
        seq: u64,
    },
}

impl EventKind {
    /// Short stable name for exporters and rendering.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::Planned => "planned",
            EventKind::Granted { speculative: true, .. } => "granted-speculative",
            EventKind::Granted { requeued: true, .. } => "granted-requeued",
            EventKind::Granted { retransmit: true, .. } => "granted-retransmit",
            EventKind::Granted { .. } => "granted",
            EventKind::Started => "started",
            EventKind::Heartbeat => "heartbeat",
            EventKind::Completed => "completed",
            EventKind::Deduped => "deduped",
            EventKind::Lapsed => "lapsed",
            EventKind::Requeued => "requeued",
            EventKind::WorkerConnected => "worker-connected",
            EventKind::WorkerDisconnected => "worker-disconnected",
            EventKind::WorkerDead => "worker-dead",
            EventKind::WorkerRecovered => "worker-recovered",
            EventKind::Replanned { .. } => "replanned",
            EventKind::Comm { .. } => "comm",
            EventKind::Wait { .. } => "wait",
            EventKind::Comp { .. } => "comp",
            EventKind::Fault { label } => label,
            EventKind::JobSubmitted => "job-submitted",
            EventKind::JobAdmitted => "job-admitted",
            EventKind::JobRejected => "job-rejected",
            EventKind::JobCompleted => "job-completed",
            EventKind::JobRecovered => "job-recovered",
            EventKind::RecoveredComplete => "recovered-complete",
            EventKind::WorkerQuarantined => "worker-quarantined",
            EventKind::WorkerReadmitted => "worker-readmitted",
            EventKind::ShardJoined { .. } => "shard-joined",
            EventKind::ShardStole { .. } => "shard-stole",
            EventKind::SelfGranted { .. } => "self-granted",
        }
    }

    /// Whether this kind is part of the chunk lifecycle (as opposed to
    /// membership, decisions or accounting).
    pub fn is_lifecycle(&self) -> bool {
        matches!(
            self,
            EventKind::Planned
                | EventKind::Granted { .. }
                | EventKind::Started
                | EventKind::Heartbeat
                | EventKind::Completed
                | EventKind::Deduped
                | EventKind::Lapsed
                | EventKind::Requeued
        )
    }
}

/// One timestamped event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Nanoseconds since the run's epoch, in the trace's clock domain.
    pub at_ns: u64,
    /// The worker involved, if any.
    pub worker: Option<usize>,
    /// The chunk involved, if any.
    pub chunk: Option<ChunkRef>,
    /// The job this event belongs to, if the run multiplexes several
    /// loop jobs (the serving layer); `None` for single-loop runs.
    pub job: Option<u64>,
    /// What happened.
    pub kind: EventKind,
}

impl TraceEvent {
    /// Builds an unattributed event.
    pub fn new(at_ns: u64, kind: EventKind) -> Self {
        TraceEvent { at_ns, worker: None, chunk: None, job: None, kind }
    }

    /// Attributes the event to a worker.
    pub fn on_worker(mut self, worker: usize) -> Self {
        self.worker = Some(worker);
        self
    }

    /// Attributes the event to a chunk.
    pub fn on_chunk(mut self, start: u64, len: u64) -> Self {
        self.chunk = Some(ChunkRef::new(start, len));
        self
    }

    /// Attributes the event to a job.
    pub fn on_job(mut self, job: u64) -> Self {
        self.job = Some(job);
        self
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>14}ns] {:<20}", self.at_ns, self.kind.label())?;
        if let Some(w) = self.worker {
            write!(f, " worker={w}")?;
        }
        if let Some(c) = self.chunk {
            write!(f, " chunk={c}")?;
        }
        if let Some(j) = self.job {
            write!(f, " job={j}")?;
        }
        match self.kind {
            EventKind::Comm { ns } | EventKind::Wait { ns } | EventKind::Comp { ns } => {
                write!(f, " {ns}ns")?
            }
            EventKind::Replanned { plan } => write!(f, " plan={plan}")?,
            EventKind::ShardJoined { shard } => write!(f, " shard={shard}")?,
            EventKind::ShardStole { from, to } => write!(f, " {from}->{to}")?,
            EventKind::SelfGranted { seq } => write!(f, " seq={seq}")?,
            _ => {}
        }
        Ok(())
    }
}

/// Immutable metadata describing one run's trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMeta {
    /// Scheme name as used in the paper's tables (e.g. `"TFSS"`).
    pub scheme: String,
    /// Number of workers (slaves) in the run.
    pub workers: usize,
    /// Total loop size `I`.
    pub total_iterations: u64,
    /// Which clock stamped the events.
    pub clock: ClockDomain,
}

/// A finished run's event stream, sorted by timestamp.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Run metadata.
    pub meta: TraceMeta,
    /// Events overwritten by the bounded ring before the run finished.
    pub dropped: u64,
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Builds a trace, sorting events by time (ties keep emission
    /// order, so causally ordered same-instant events stay ordered).
    pub fn new(meta: TraceMeta, mut events: Vec<TraceEvent>, dropped: u64) -> Self {
        events.sort_by_key(|e| e.at_ns);
        Trace { meta, dropped, events }
    }

    /// The events, in time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The latest timestamp in the trace (0 for an empty trace).
    pub fn span_ns(&self) -> u64 {
        self.events.last().map_or(0, |e| e.at_ns)
    }

    /// Events of the chunk lifecycle only.
    pub fn lifecycle(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(|e| e.kind.is_lifecycle())
    }

    /// Events concerning `worker`.
    pub fn for_worker(&self, worker: usize) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.worker == Some(worker))
    }

    /// Events concerning `job` (the multi-job serving layer stamps
    /// every per-job event with its job id).
    pub fn for_job(&self, job: u64) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.job == Some(job))
    }

    /// The distinct job ids appearing in the trace, ascending.
    pub fn job_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.events.iter().filter_map(|e| e.job).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Number of events matching a predicate on the kind.
    pub fn count_kind(&self, pred: impl Fn(&EventKind) -> bool) -> usize {
        self.events.iter().filter(|e| pred(&e.kind)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> TraceMeta {
        TraceMeta {
            scheme: "TFSS".into(),
            workers: 2,
            total_iterations: 100,
            clock: ClockDomain::Logical,
        }
    }

    #[test]
    fn trace_sorts_by_time_stably() {
        let events = vec![
            TraceEvent::new(5, EventKind::Completed).on_worker(0).on_chunk(0, 10),
            TraceEvent::new(1, EventKind::Planned).on_chunk(0, 10),
            TraceEvent::new(1, EventKind::Granted {
                speculative: false,
                requeued: false,
                retransmit: false,
            })
            .on_worker(0)
            .on_chunk(0, 10),
        ];
        let t = Trace::new(meta(), events, 0);
        assert_eq!(t.len(), 3);
        assert_eq!(t.events()[0].kind, EventKind::Planned);
        assert!(matches!(t.events()[1].kind, EventKind::Granted { .. }));
        assert_eq!(t.span_ns(), 5);
        assert_eq!(t.for_worker(0).count(), 2);
        assert_eq!(t.count_kind(|k| matches!(k, EventKind::Planned)), 1);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(EventKind::Planned.label(), "planned");
        assert_eq!(
            EventKind::Granted { speculative: true, requeued: false, retransmit: false }.label(),
            "granted-speculative"
        );
        assert_eq!(EventKind::Fault { label: "injected" }.label(), "injected");
        assert!(EventKind::Lapsed.is_lifecycle());
        assert!(!EventKind::WorkerDead.is_lifecycle());
        assert_eq!(ClockDomain::Logical.label(), "logical");
        assert_eq!(EventKind::JobSubmitted.label(), "job-submitted");
        assert_eq!(EventKind::JobCompleted.label(), "job-completed");
        assert!(!EventKind::JobAdmitted.is_lifecycle());
        assert_eq!(EventKind::JobRecovered.label(), "job-recovered");
        assert_eq!(EventKind::RecoveredComplete.label(), "recovered-complete");
        assert_eq!(EventKind::WorkerQuarantined.label(), "worker-quarantined");
        assert_eq!(EventKind::WorkerReadmitted.label(), "worker-readmitted");
        assert!(!EventKind::WorkerQuarantined.is_lifecycle());
        assert!(!EventKind::RecoveredComplete.is_lifecycle());
        assert_eq!(EventKind::ShardJoined { shard: 2 }.label(), "shard-joined");
        assert_eq!(EventKind::ShardStole { from: 1, to: 0 }.label(), "shard-stole");
        assert_eq!(EventKind::SelfGranted { seq: 9 }.label(), "self-granted");
        assert!(!EventKind::ShardJoined { shard: 0 }.is_lifecycle());
        assert!(!EventKind::ShardStole { from: 0, to: 1 }.is_lifecycle());
        assert!(!EventKind::SelfGranted { seq: 0 }.is_lifecycle());
    }

    #[test]
    fn shard_events_render_attribution() {
        let s = TraceEvent::new(5, EventKind::ShardStole { from: 1, to: 0 })
            .on_chunk(64, 32)
            .to_string();
        assert!(s.contains("shard-stole"), "{s}");
        assert!(s.contains("1->0"), "{s}");
        let g = TraceEvent::new(7, EventKind::SelfGranted { seq: 41 })
            .on_worker(3)
            .on_chunk(0, 8)
            .to_string();
        assert!(g.contains("seq=41"), "{s}");
    }

    #[test]
    fn job_attribution_filters_and_renders() {
        let events = vec![
            TraceEvent::new(0, EventKind::JobSubmitted).on_job(1),
            TraceEvent::new(1, EventKind::Planned).on_job(1).on_chunk(0, 10),
            TraceEvent::new(2, EventKind::Planned).on_job(2).on_chunk(0, 10),
            TraceEvent::new(3, EventKind::Heartbeat).on_worker(0),
        ];
        let t = Trace::new(meta(), events, 0);
        assert_eq!(t.for_job(1).count(), 2);
        assert_eq!(t.for_job(2).count(), 1);
        assert_eq!(t.job_ids(), vec![1, 2]);
        let s = t.events()[0].to_string();
        assert!(s.contains("job=1"), "{s}");
    }

    #[test]
    fn display_renders_attribution() {
        let e = TraceEvent::new(1_000, EventKind::Comm { ns: 42 }).on_worker(3).on_chunk(7, 5);
        let s = e.to_string();
        assert!(s.contains("comm"), "{s}");
        assert!(s.contains("worker=3"), "{s}");
        assert!(s.contains("chunk=7+5"), "{s}");
        assert!(s.contains("42ns"), "{s}");
    }
}
