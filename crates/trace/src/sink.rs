//! Event sinks: where instrumented code hands its events.
//!
//! The engines are instrumented against [`TraceSink`]; the default
//! [`NoopSink`] compiles to an `enabled()` check and a return, so an
//! untraced run pays (almost) nothing. [`RingSink`] is the bounded
//! in-memory recorder; [`SharedSink`] wraps it in `Arc<Mutex<..>>` so
//! worker threads, the master loop and the harness can all append to
//! one ring and share one wall-clock epoch.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::event::{Trace, TraceEvent, TraceMeta};

/// Default ring capacity: enough for every chunk of the paper-scale
/// experiments (~hundreds of chunks × ~10 events each) with headroom.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Something that accepts trace events.
///
/// Instrumented code should guard any non-trivial event construction
/// with [`TraceSink::enabled`]; `record` on a disabled sink is a no-op.
pub trait TraceSink {
    /// Whether events handed to this sink are retained. Callers use
    /// this to skip building events entirely on the hot path.
    fn enabled(&self) -> bool {
        false
    }

    /// Accepts one event. Disabled sinks discard it.
    fn record(&mut self, _ev: TraceEvent) {}
}

/// The zero-cost default sink: records nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {}

/// A bounded ring buffer of events. When full, the oldest event is
/// overwritten and [`RingSink::dropped`] counts the loss, so a runaway
/// run degrades to "recent history" instead of unbounded memory.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingSink { capacity, events: VecDeque::with_capacity(capacity.min(1024)), dropped: 0 }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events overwritten so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the ring into a finished [`Trace`].
    pub fn into_trace(self, meta: TraceMeta) -> Trace {
        Trace::new(meta, self.events.into(), self.dropped)
    }

    /// Drains the ring into a finished [`Trace`], leaving it empty and
    /// resetting the drop counter (used by the shared sink's `take`).
    pub fn drain_into_trace(&mut self, meta: TraceMeta) -> Trace {
        let events: Vec<TraceEvent> = self.events.drain(..).collect();
        let dropped = self.dropped;
        self.dropped = 0;
        Trace::new(meta, events, dropped)
    }
}

impl Default for RingSink {
    fn default() -> Self {
        RingSink::new(DEFAULT_CAPACITY)
    }
}

impl TraceSink for RingSink {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, ev: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }
}

struct SharedInner {
    /// The run's wall-clock epoch; every thread stamps events relative
    /// to this one `Instant` so timelines from different threads line
    /// up without cross-thread clock skew.
    epoch: Instant,
    ring: Mutex<RingSink>,
}

/// A cloneable handle to one shared ring, or a disabled stub.
///
/// The disabled form (`SharedSink::disabled()`, also `Default`) holds
/// no allocation and makes `enabled()` false, so configs can embed a
/// `SharedSink` field without cost when tracing is off.
#[derive(Clone, Default)]
pub struct SharedSink {
    inner: Option<Arc<SharedInner>>,
}

impl std::fmt::Debug for SharedSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "SharedSink(disabled)"),
            Some(inner) => {
                let ring = inner.ring.lock().unwrap();
                write!(f, "SharedSink(events={}, dropped={})", ring.len(), ring.dropped())
            }
        }
    }
}

impl SharedSink {
    /// A sink that records nothing (the default).
    pub fn disabled() -> Self {
        SharedSink { inner: None }
    }

    /// An enabled sink over a fresh ring of `capacity` events, with
    /// its epoch set to "now".
    pub fn bounded(capacity: usize) -> Self {
        SharedSink {
            inner: Some(Arc::new(SharedInner {
                epoch: Instant::now(),
                ring: Mutex::new(RingSink::new(capacity)),
            })),
        }
    }

    /// An enabled sink with the default capacity.
    pub fn recording() -> Self {
        SharedSink::bounded(DEFAULT_CAPACITY)
    }

    /// Whether this handle records events.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Monotonic nanoseconds since this sink's epoch (0 if disabled).
    /// All threads of one run must stamp through the same sink so
    /// their timestamps share the epoch.
    pub fn now_ns(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.epoch.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    /// Appends an event (no-op when disabled).
    pub fn record(&self, ev: TraceEvent) {
        if let Some(inner) = &self.inner {
            inner.ring.lock().unwrap().record(ev);
        }
    }

    /// Stamps and appends in one call: the event's `at_ns` is set to
    /// [`SharedSink::now_ns`] before recording.
    pub fn record_now(&self, mut ev: TraceEvent) {
        if let Some(inner) = &self.inner {
            ev.at_ns = inner.epoch.elapsed().as_nanos() as u64;
            inner.ring.lock().unwrap().record(ev);
        }
    }

    /// Whether any event recorded so far satisfies `f` (false when the
    /// sink is disabled). A live, non-draining peek: tests and
    /// monitors use it to watch for an event — a quarantine, a
    /// recovery milestone — while the run is still in flight.
    pub fn any(&self, f: impl Fn(&TraceEvent) -> bool) -> bool {
        match &self.inner {
            Some(inner) => inner.ring.lock().unwrap().events.iter().any(f),
            None => false,
        }
    }

    /// Drains everything recorded so far into a [`Trace`]. Returns an
    /// empty trace if the sink is disabled.
    pub fn take(&self, meta: TraceMeta) -> Trace {
        match &self.inner {
            Some(inner) => inner.ring.lock().unwrap().drain_into_trace(meta),
            None => Trace::new(meta, Vec::new(), 0),
        }
    }
}

impl TraceSink for SharedSink {
    fn enabled(&self) -> bool {
        SharedSink::enabled(self)
    }

    fn record(&mut self, ev: TraceEvent) {
        SharedSink::record(self, ev);
    }
}

/// A sink wrapper that stamps every event with one job id before
/// forwarding to a shared ring.
///
/// The multi-job serving layer hands each per-job master its own
/// `JobScopedSink` over the service's one [`SharedSink`], so the
/// single merged timeline stays attributable per job without the
/// instrumented code knowing jobs exist. An event that already carries
/// a job id keeps it.
#[derive(Debug, Clone)]
pub struct JobScopedSink {
    job: u64,
    inner: SharedSink,
}

impl JobScopedSink {
    /// Wraps `inner`, attributing everything recorded through this
    /// handle to `job`.
    pub fn new(job: u64, inner: SharedSink) -> Self {
        JobScopedSink { job, inner }
    }

    /// The job id this handle stamps.
    pub fn job(&self) -> u64 {
        self.job
    }
}

impl TraceSink for JobScopedSink {
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    fn record(&mut self, mut ev: TraceEvent) {
        if ev.job.is_none() {
            ev.job = Some(self.job);
        }
        self.inner.record(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ClockDomain, EventKind};

    fn meta() -> TraceMeta {
        TraceMeta {
            scheme: "GSS".into(),
            workers: 1,
            total_iterations: 10,
            clock: ClockDomain::Monotonic,
        }
    }

    #[test]
    fn noop_sink_is_disabled() {
        let mut s = NoopSink;
        assert!(!s.enabled());
        s.record(TraceEvent::new(0, EventKind::Planned));
    }

    #[test]
    fn ring_drops_oldest_when_full() {
        let mut ring = RingSink::new(3);
        for i in 0..5 {
            ring.record(TraceEvent::new(i, EventKind::Heartbeat));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let t = ring.into_trace(meta());
        assert_eq!(t.dropped, 2);
        assert_eq!(t.events()[0].at_ns, 2);
        assert_eq!(t.span_ns(), 4);
    }

    #[test]
    fn shared_sink_disabled_is_free() {
        let s = SharedSink::disabled();
        assert!(!s.enabled());
        assert_eq!(s.now_ns(), 0);
        s.record(TraceEvent::new(7, EventKind::Planned));
        assert!(s.take(meta()).is_empty());
    }

    #[test]
    fn shared_sink_clones_share_one_ring() {
        let a = SharedSink::bounded(16);
        let b = a.clone();
        a.record(TraceEvent::new(1, EventKind::Planned));
        b.record(TraceEvent::new(2, EventKind::Completed));
        let t = a.take(meta());
        assert_eq!(t.len(), 2);
        // take() drained the shared ring.
        assert!(b.take(meta()).is_empty());
    }

    #[test]
    fn job_scoped_sink_stamps_without_clobbering() {
        let shared = SharedSink::bounded(16);
        let mut scoped = JobScopedSink::new(7, shared.clone());
        assert!(scoped.enabled());
        assert_eq!(scoped.job(), 7);
        scoped.record(TraceEvent::new(1, EventKind::Planned));
        // An explicit job id wins over the scope.
        scoped.record(TraceEvent::new(2, EventKind::Planned).on_job(3));
        let t = shared.take(meta());
        assert_eq!(t.events()[0].job, Some(7));
        assert_eq!(t.events()[1].job, Some(3));
        // A disabled scope stays free.
        let mut off = JobScopedSink::new(1, SharedSink::disabled());
        assert!(!off.enabled());
        off.record(TraceEvent::new(0, EventKind::Planned));
    }

    #[test]
    fn record_now_stamps_monotonically() {
        let s = SharedSink::recording();
        s.record_now(TraceEvent::new(0, EventKind::Planned));
        s.record_now(TraceEvent::new(0, EventKind::Completed));
        let t = s.take(meta());
        assert_eq!(t.len(), 2);
        assert!(t.events()[0].at_ns <= t.events()[1].at_ns);
    }
}
