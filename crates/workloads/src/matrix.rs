//! The background load used for the *non-dedicated* experiments.
//!
//! §5.1: *"we started resource expensive processes on some slaves. Two
//! such processes are started. Each one adds two random matrices of
//! size 1000."* This module provides that exact computation — both as
//! a real, runnable hog (for `lss-runtime`'s non-dedicated mode) and as
//! an abstract cost (for `lss-sim`'s run-queue model).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A matrix-addition load generator: repeatedly adds two random
/// `n × n` matrices, exactly like the paper's background processes.
#[derive(Debug)]
pub struct MatrixAddLoad {
    n: usize,
    a: Vec<f64>,
    b: Vec<f64>,
    out: Vec<f64>,
}

impl MatrixAddLoad {
    /// Prepares a load of `n × n` random matrices (paper: `n = 1000`).
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n >= 1, "matrix dimension must be at least 1");
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        MatrixAddLoad {
            n,
            a,
            b,
            out: vec![0.0; n * n],
        }
    }

    /// The paper's configuration: two random 1000 × 1000 matrices.
    pub fn paper_load(seed: u64) -> Self {
        Self::new(1000, seed)
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Performs one full matrix addition; returns a checksum so the
    /// work cannot be optimized away.
    pub fn run_once(&mut self) -> f64 {
        for ((o, &x), &y) in self.out.iter_mut().zip(&self.a).zip(&self.b) {
            *o = x + y;
        }
        // Touch a few elements to defeat dead-code elimination.
        self.out[0] + self.out[self.n * self.n / 2] + self.out[self.n * self.n - 1]
    }

    /// Abstract cost of one addition in basic operations (one add +
    /// two loads + one store per element ≈ `n²` basic ops on the
    /// paper's machines, which the simulator charges to the run queue).
    pub fn cost(&self) -> u64 {
        (self.n * self.n) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_is_correct() {
        let mut l = MatrixAddLoad::new(8, 42);
        l.run_once();
        for i in 0..64 {
            assert!((l.out[i] - (l.a[i] + l.b[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn checksum_is_finite_and_stable() {
        let mut l = MatrixAddLoad::new(16, 1);
        let c1 = l.run_once();
        let c2 = l.run_once();
        assert!(c1.is_finite());
        assert_eq!(c1, c2, "same matrices → same sum");
    }

    #[test]
    fn cost_is_quadratic() {
        assert_eq!(MatrixAddLoad::new(10, 0).cost(), 100);
        assert_eq!(MatrixAddLoad::new(100, 0).cost(), 10_000);
    }

    #[test]
    fn seeded_reproducibility() {
        let a = MatrixAddLoad::new(4, 7);
        let b = MatrixAddLoad::new(4, 7);
        assert_eq!(a.a, b.a);
        assert_eq!(a.b, b.b);
    }

    #[test]
    #[should_panic]
    fn zero_dimension_rejected() {
        MatrixAddLoad::new(0, 0);
    }
}
