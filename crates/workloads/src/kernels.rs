//! Numerical kernels with parallel outer loops — the classic test
//! problems of the loop-scheduling literature beyond Mandelbrot.
//!
//! The paper argues (§1) its schemes "are expected to perform well on
//! other types of loop computations" because their adaptivity doesn't
//! depend on the workload; these kernels let the experiments check that
//! claim on the workload shapes the *factoring* line of work
//! (Hummel et al.) traditionally used:
//!
//! - [`AdjointConvolution`] — `a[i] = Σ_{j≥i} x[j]·y[j-i]`: iteration
//!   `i` costs `n - i` multiply-adds, a *linearly decreasing*
//!   (predictable) loop with real arithmetic behind it.
//! - [`MatVec`] — dense matrix–vector product, one row per iteration:
//!   a *uniform* loop.
//! - [`SparseMatVec`] — matrix–vector product over rows of randomly
//!   varying sparsity: an *irregular* loop whose per-row cost is the
//!   row's population count.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Workload;

/// Adjoint convolution: `a[i] = Σ_{j=i}^{n-1} x[j] · y[j-i]`.
///
/// The outer loop over `i` is parallel; iteration `i` runs `n - i`
/// multiply-adds, so costs decrease linearly from `n` to 1 — the
/// canonical *predictable decreasing* loop.
#[derive(Debug, Clone)]
pub struct AdjointConvolution {
    x: Vec<f64>,
    y: Vec<f64>,
}

impl AdjointConvolution {
    /// Builds the kernel over random input vectors of length `n`.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n >= 1, "need at least one element");
        let mut rng = StdRng::seed_from_u64(seed);
        AdjointConvolution {
            x: (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            y: (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        }
    }

    /// The exact output value for iteration `i` (for verification).
    pub fn reference(&self, i: usize) -> f64 {
        (i..self.x.len()).map(|j| self.x[j] * self.y[j - i]).sum()
    }
}

impl Workload for AdjointConvolution {
    fn len(&self) -> u64 {
        self.x.len() as u64
    }
    fn cost(&self, i: u64) -> u64 {
        (self.x.len() as u64) - i
    }
    fn execute(&self, i: u64) -> u64 {
        self.reference(i as usize).to_bits()
    }
    fn result_bytes(&self, _i: u64) -> u64 {
        8
    }
    fn name(&self) -> &'static str {
        "adjoint-convolution"
    }
}

/// Dense matrix–vector product `a = M·v`, one row per loop iteration —
/// the canonical *uniform* loop with real arithmetic.
#[derive(Debug, Clone)]
pub struct MatVec {
    n: usize,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl MatVec {
    /// Builds a random `n × n` system.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n >= 1, "need at least one row");
        let mut rng = StdRng::seed_from_u64(seed);
        MatVec {
            n,
            m: (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            v: (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        }
    }

    /// The exact output value for row `i`.
    pub fn reference(&self, i: usize) -> f64 {
        self.m[i * self.n..(i + 1) * self.n]
            .iter()
            .zip(&self.v)
            .map(|(a, b)| a * b)
            .sum()
    }
}

impl Workload for MatVec {
    fn len(&self) -> u64 {
        self.n as u64
    }
    fn cost(&self, _i: u64) -> u64 {
        self.n as u64
    }
    fn execute(&self, i: u64) -> u64 {
        self.reference(i as usize).to_bits()
    }
    fn result_bytes(&self, _i: u64) -> u64 {
        8
    }
    fn name(&self) -> &'static str {
        "matvec"
    }
}

/// Sparse matrix–vector product with randomly varying row populations —
/// an *irregular* loop (cost = the row's non-zero count).
#[derive(Debug, Clone)]
pub struct SparseMatVec {
    n: usize,
    /// Per row: (column, value) pairs.
    rows: Vec<Vec<(u32, f64)>>,
    v: Vec<f64>,
}

impl SparseMatVec {
    /// Builds an `n × n` sparse system; each row's population is drawn
    /// uniformly from `1..=max_row_nnz`.
    pub fn new(n: usize, max_row_nnz: usize, seed: u64) -> Self {
        assert!(n >= 1, "need at least one row");
        assert!(max_row_nnz >= 1, "rows need at least one entry");
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = (0..n)
            .map(|_| {
                let nnz = rng.gen_range(1..=max_row_nnz.min(n));
                (0..nnz)
                    .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(-1.0..1.0)))
                    .collect()
            })
            .collect();
        SparseMatVec {
            n,
            rows,
            v: (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        }
    }

    /// The exact output value for row `i`.
    pub fn reference(&self, i: usize) -> f64 {
        self.rows[i].iter().map(|&(c, val)| val * self.v[c as usize]).sum()
    }
}

impl Workload for SparseMatVec {
    fn len(&self) -> u64 {
        self.n as u64
    }
    fn cost(&self, i: u64) -> u64 {
        self.rows[i as usize].len() as u64
    }
    fn execute(&self, i: u64) -> u64 {
        self.reference(i as usize).to_bits()
    }
    fn result_bytes(&self, _i: u64) -> u64 {
        8
    }
    fn name(&self) -> &'static str {
        "sparse-matvec"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjoint_costs_decrease_linearly() {
        let k = AdjointConvolution::new(100, 1);
        assert_eq!(k.cost(0), 100);
        assert_eq!(k.cost(99), 1);
        assert!((0..99).all(|i| k.cost(i) == k.cost(i + 1) + 1));
        assert_eq!(k.total_cost(), 100 * 101 / 2);
    }

    #[test]
    fn adjoint_matches_naive_convolution() {
        let k = AdjointConvolution::new(8, 2);
        // i = 7: single term x[7]·y[0].
        let last = k.reference(7);
        assert!((last - k.x[7] * k.y[0]).abs() < 1e-12);
        // Checksums are bit-stable.
        assert_eq!(k.execute(3), k.execute(3));
    }

    #[test]
    fn matvec_is_uniform_and_correct() {
        let k = MatVec::new(16, 3);
        assert!((0..16).all(|i| k.cost(i) == 16));
        // Row of the identity-like check: reference equals manual dot.
        let manual: f64 = (0..16).map(|j| k.m[5 * 16 + j] * k.v[j]).sum();
        assert!((k.reference(5) - manual).abs() < 1e-12);
    }

    #[test]
    fn sparse_costs_match_row_population() {
        let k = SparseMatVec::new(50, 20, 4);
        for i in 0..50u64 {
            assert_eq!(k.cost(i), k.rows[i as usize].len() as u64);
            assert!((1..=20).contains(&(k.cost(i) as usize)));
        }
    }

    #[test]
    fn sparse_is_irregular() {
        let k = SparseMatVec::new(200, 64, 5);
        let profile = k.cost_profile();
        let min = profile.iter().min().unwrap();
        let max = profile.iter().max().unwrap();
        assert!(max > min, "profile should vary: {min}..{max}");
    }

    #[test]
    fn kernels_are_seed_deterministic() {
        let a = AdjointConvolution::new(32, 9);
        let b = AdjointConvolution::new(32, 9);
        assert_eq!(a.execute(7), b.execute(7));
        let c = SparseMatVec::new(32, 8, 9);
        let d = SparseMatVec::new(32, 8, 9);
        assert_eq!(c.cost_profile(), d.cost_profile());
    }
}
