//! The Mandelbrot set computation — the paper's test problem.
//!
//! §2.1: *"We use, in our tests, the Mandelbrot fractal computation
//! algorithm on the domain [-2.0, 1.25] × [-1.25, 1.25], for different
//! window sizes (for example 4000×2000, 5000×2000, and so on). The
//! algorithm uses unpredictable irregular loops."*
//!
//! One **column** of the image is the smallest schedulable unit (one
//! task = one loop iteration), exactly as in §5: *"The computation of
//! one column of the Mandelbrot matrix is considered the smallest
//! schedulable unit."* An iteration's cost is the total number of
//! escape-time steps performed over the column's pixels — the quantity
//! plotted on the Y axis of the paper's Figure 1 (ranging from the
//! window height, for all-escaping columns, up to tens of thousands
//! where the set's interior dominates).

use crate::Workload;

/// Parameters of a Mandelbrot computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MandelbrotParams {
    /// Image width in pixels — the number of columns, i.e. loop
    /// iterations `I`.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// Real-axis range (paper: `[-2.0, 1.25]`).
    pub x_range: (f64, f64),
    /// Imaginary-axis range (paper: `[-1.25, 1.25]`).
    pub y_range: (f64, f64),
    /// Escape-time iteration cap per pixel.
    pub max_iter: u32,
}

impl MandelbrotParams {
    /// The paper's domain with a caller-chosen window size.
    ///
    /// `max_iter = 64` reproduces Figure 1's scale: the paper's
    /// per-column basic-computation counts for a 1200×1200 window range
    /// from 1200 (all pixels escape immediately) to ~56,000 — i.e. the
    /// hottest column averages ~47 iterations per pixel, implying an
    /// escape cap of ~50–64. A larger cap would make the cost profile
    /// disproportionately spikier than the paper's workload.
    pub fn paper_domain(width: u32, height: u32) -> Self {
        MandelbrotParams {
            width,
            height,
            x_range: (-2.0, 1.25),
            y_range: (-1.25, 1.25),
            max_iter: 64,
        }
    }

    /// The Table 2/3 experiment window: 4000 × 2000.
    pub fn table23_window() -> Self {
        Self::paper_domain(4000, 2000)
    }

    /// The Figure 1/2 window: 1200 × 1200.
    pub fn figure12_window() -> Self {
        Self::paper_domain(1200, 1200)
    }
}

/// The Mandelbrot workload: `width` column-tasks over the configured
/// domain. Column costs are precomputed at construction so that
/// [`Workload::cost`] is O(1) for the simulator (the real runtime
/// recomputes columns honestly via [`Workload::execute`]).
/// # Example
///
/// ```
/// use lss_workloads::{Mandelbrot, MandelbrotParams, Workload};
///
/// let m = Mandelbrot::new(MandelbrotParams::paper_domain(64, 64));
/// assert_eq!(m.len(), 64); // one task per column
/// // Columns through the set's interior cost far more than the edge.
/// assert!(m.cost(40) > m.cost(0));
/// ```
#[derive(Debug, Clone)]
pub struct Mandelbrot {
    params: MandelbrotParams,
    column_costs: Vec<u64>,
}

impl Mandelbrot {
    /// Builds the workload, computing every column's cost once.
    pub fn new(params: MandelbrotParams) -> Self {
        assert!(params.width >= 1 && params.height >= 1, "empty window");
        assert!(params.max_iter >= 1, "max_iter must be at least 1");
        let column_costs = (0..params.width)
            .map(|c| column_iterations(&params, c).iter().map(|&n| n as u64).sum())
            .collect();
        Mandelbrot {
            params,
            column_costs,
        }
    }

    /// The parameters this workload was built with.
    pub fn params(&self) -> &MandelbrotParams {
        &self.params
    }

    /// Escape-iteration counts for every pixel of column `col`.
    pub fn compute_column(&self, col: u32) -> Vec<u32> {
        column_iterations(&self.params, col)
    }

    /// Renders the full image as row-major escape counts
    /// (`height × width`); pixel `(row, col)` is at `row·width + col`.
    pub fn render(&self) -> Vec<u32> {
        let w = self.params.width as usize;
        let h = self.params.height as usize;
        let mut img = vec![0u32; w * h];
        for col in 0..self.params.width {
            let column = self.compute_column(col);
            for (row, &v) in column.iter().enumerate() {
                img[row * w + col as usize] = v;
            }
        }
        img
    }
}

impl Workload for Mandelbrot {
    fn len(&self) -> u64 {
        self.params.width as u64
    }

    fn cost(&self, i: u64) -> u64 {
        self.column_costs[i as usize]
    }

    fn execute(&self, i: u64) -> u64 {
        // Genuinely recompute the column; fold it into a checksum.
        let column = self.compute_column(i as u32);
        column
            .iter()
            .fold(0u64, |acc, &v| acc.wrapping_mul(31).wrapping_add(v as u64))
    }

    fn result_bytes(&self, _i: u64) -> u64 {
        // One escape count per pixel, sent back as 16-bit values — the
        // payload the slaves piggy-back onto their next request.
        2 * self.params.height as u64
    }

    fn name(&self) -> &'static str {
        "mandelbrot"
    }
}

/// Escape-time computation for one column.
fn column_iterations(p: &MandelbrotParams, col: u32) -> Vec<u32> {
    let (x0, x1) = p.x_range;
    let (y0, y1) = p.y_range;
    let cx = if p.width > 1 {
        x0 + (x1 - x0) * col as f64 / (p.width - 1) as f64
    } else {
        x0
    };
    (0..p.height)
        .map(|row| {
            let cy = if p.height > 1 {
                y0 + (y1 - y0) * row as f64 / (p.height - 1) as f64
            } else {
                y0
            };
            escape_time(cx, cy, p.max_iter)
        })
        .collect()
}

/// Number of iterations of `z ← z² + c` before `|z| > 2`, capped.
#[inline]
pub fn escape_time(cx: f64, cy: f64, max_iter: u32) -> u32 {
    let mut zx = 0.0f64;
    let mut zy = 0.0f64;
    let mut iter = 0u32;
    while iter < max_iter {
        let zx2 = zx * zx;
        let zy2 = zy * zy;
        if zx2 + zy2 > 4.0 {
            break;
        }
        zy = 2.0 * zx * zy + cy;
        zx = zx2 - zy2 + cx;
        iter += 1;
    }
    iter
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Mandelbrot {
        Mandelbrot::new(MandelbrotParams::paper_domain(120, 120))
    }

    #[test]
    fn escape_time_known_points() {
        // Origin is in the set: runs to the cap.
        assert_eq!(escape_time(0.0, 0.0, 256), 256);
        // Far outside: escapes immediately-ish.
        assert!(escape_time(2.0, 2.0, 256) <= 2);
        // c = -1 is in the set (period-2 cycle).
        assert_eq!(escape_time(-1.0, 0.0, 500), 500);
    }

    #[test]
    fn column_costs_bounded() {
        let m = small();
        let h = m.params().height as u64;
        let cap = h * m.params().max_iter as u64;
        for i in 0..m.len() {
            let c = m.cost(i);
            assert!(c >= h, "every pixel needs at least 1 iteration");
            assert!(c <= cap);
        }
    }

    #[test]
    fn profile_is_irregular() {
        // The whole point of the workload: strongly non-uniform costs.
        let m = small();
        let profile = m.cost_profile();
        let min = *profile.iter().min().unwrap();
        let max = *profile.iter().max().unwrap();
        assert!(max > 10 * min, "expected irregularity, got {min}..{max}");
    }

    #[test]
    fn interior_columns_cost_most() {
        let m = small();
        // A column through the set's interior (x ≈ -0.2) beats the
        // leftmost column (x = -2, mostly escaping).
        let interior_col = ((-0.2 - -2.0) / 3.25 * 119.0) as u64;
        assert!(m.cost(interior_col) > 3 * m.cost(0));
    }

    #[test]
    fn cost_equals_executed_column_work() {
        let m = small();
        for i in [0u64, 17, 60, 119] {
            let recomputed: u64 = m.compute_column(i as u32).iter().map(|&n| n as u64).sum();
            assert_eq!(m.cost(i), recomputed);
        }
    }

    #[test]
    fn execute_checksum_stable() {
        let m = small();
        assert_eq!(m.execute(5), m.execute(5));
    }

    #[test]
    fn render_matches_columns() {
        let m = Mandelbrot::new(MandelbrotParams::paper_domain(16, 12));
        let img = m.render();
        assert_eq!(img.len(), 16 * 12);
        let col3 = m.compute_column(3);
        for row in 0..12usize {
            assert_eq!(img[row * 16 + 3], col3[row]);
        }
    }

    #[test]
    fn result_bytes_two_per_pixel() {
        let m = small();
        assert_eq!(m.result_bytes(0), 240);
    }

    #[test]
    fn figure1_scale_sanity() {
        // Paper Fig. 1: for a 1200×1200 window, per-column basic
        // computations range from 1200 to ~56,000 — a ~47× spread. A
        // scaled-down 300px window must show the same relative spread
        // (min = height, max ≈ tens of × height).
        let m = Mandelbrot::new(MandelbrotParams::paper_domain(300, 300));
        let profile = m.cost_profile();
        let min = *profile.iter().min().unwrap();
        let max = *profile.iter().max().unwrap();
        assert_eq!(min, 300); // all-escaping-in-1 columns exist at x = -2
        assert!(
            max > 20 * min && max < 64 * min,
            "spread should match Figure 1's ~47x: {min}..{max}"
        );
    }
}
