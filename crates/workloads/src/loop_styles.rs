//! The parallel-loop styles of §2.1 of the paper.
//!
//! §2.1 classifies parallel loops by the distribution of their
//! iteration execution times `L(i)`:
//!
//! - **uniformly distributed** — every iteration costs the same
//!   (`DOALL K = 1 TO I: X[K] = X[K] + A`),
//! - **linearly distributed, increasing** — iteration `K` runs an inner
//!   serial loop of `K` steps,
//! - **linearly distributed, decreasing** — inner loop of `I - K + 1`
//!   steps,
//! - **conditional** — an `IF` picks one of two blocks, so the cost is
//!   bimodal and unpredictable,
//! - **irregular** — cannot be ordered or predicted (the Mandelbrot
//!   computation of [`crate::mandelbrot`] is the paper's example).
//!
//! These synthetic loops execute real (checksummed) arithmetic so they
//! are usable both by the simulator (via `cost`) and by the real
//! runtime (via `execute`).

use crate::Workload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Cost of one "basic computation" unit: a few arithmetic ops on a
/// rolling checksum. Shared by the synthetic loops' `execute`.
#[inline]
fn burn(units: u64, seed: u64) -> u64 {
    let mut acc = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    for _ in 0..units {
        acc ^= acc >> 13;
        acc = acc.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        acc ^= acc >> 33;
    }
    acc
}

/// Uniformly distributed loop: every iteration costs `unit_cost`.
#[derive(Debug, Clone)]
pub struct UniformLoop {
    len: u64,
    unit_cost: u64,
}

impl UniformLoop {
    /// A loop of `len` iterations, each costing `unit_cost` basic ops.
    pub fn new(len: u64, unit_cost: u64) -> Self {
        assert!(unit_cost >= 1, "unit cost must be at least 1");
        UniformLoop { len, unit_cost }
    }
}

impl Workload for UniformLoop {
    fn len(&self) -> u64 {
        self.len
    }
    fn cost(&self, _i: u64) -> u64 {
        self.unit_cost
    }
    fn execute(&self, i: u64) -> u64 {
        burn(self.unit_cost, i)
    }
    fn result_bytes(&self, _i: u64) -> u64 {
        8
    }
    fn cost_range(&self, _start: u64, len: u64) -> u64 {
        len * self.unit_cost
    }
    fn result_bytes_range(&self, _start: u64, len: u64) -> u64 {
        len * 8
    }
    fn name(&self) -> &'static str {
        "uniform"
    }
}

/// Linearly increasing loop: iteration `i` costs `base + slope·i`
/// (the paper's triangular `DOALL`/serial-`DO` nest).
#[derive(Debug, Clone)]
pub struct IncreasingLoop {
    len: u64,
    base: u64,
    slope: u64,
}

impl IncreasingLoop {
    /// A loop whose `i`-th iteration costs `base + slope·i`.
    pub fn new(len: u64, base: u64, slope: u64) -> Self {
        assert!(base >= 1, "base cost must be at least 1");
        IncreasingLoop { len, base, slope }
    }
}

impl Workload for IncreasingLoop {
    fn len(&self) -> u64 {
        self.len
    }
    fn cost(&self, i: u64) -> u64 {
        self.base + self.slope * i
    }
    fn execute(&self, i: u64) -> u64 {
        burn(self.cost(i), i)
    }
    fn result_bytes(&self, _i: u64) -> u64 {
        8
    }
    fn name(&self) -> &'static str {
        "increasing"
    }
}

/// Linearly decreasing loop: iteration `i` costs
/// `base + slope·(len - 1 - i)`.
#[derive(Debug, Clone)]
pub struct DecreasingLoop {
    len: u64,
    base: u64,
    slope: u64,
}

impl DecreasingLoop {
    /// A loop whose `i`-th iteration costs `base + slope·(len-1-i)`.
    pub fn new(len: u64, base: u64, slope: u64) -> Self {
        assert!(base >= 1, "base cost must be at least 1");
        DecreasingLoop { len, base, slope }
    }
}

impl Workload for DecreasingLoop {
    fn len(&self) -> u64 {
        self.len
    }
    fn cost(&self, i: u64) -> u64 {
        self.base + self.slope * (self.len.saturating_sub(1) - i.min(self.len.saturating_sub(1)))
    }
    fn execute(&self, i: u64) -> u64 {
        burn(self.cost(i), i)
    }
    fn result_bytes(&self, _i: u64) -> u64 {
        8
    }
    fn name(&self) -> &'static str {
        "decreasing"
    }
}

/// Conditional loop: a deterministic pseudo-random predicate picks the
/// cheap (`else_cost`) or expensive (`then_cost`) branch per iteration
/// — the paper's `IF(Expression1) THEN Block1 ELSE Block2` style.
#[derive(Debug, Clone)]
pub struct ConditionalLoop {
    len: u64,
    then_cost: u64,
    else_cost: u64,
    /// Probability (in 1/256ths) of the THEN branch.
    then_p256: u8,
    seed: u64,
}

impl ConditionalLoop {
    /// A conditional loop taking the `then` branch with probability
    /// `then_probability` (clamped to `[0, 1]`).
    pub fn new(len: u64, then_cost: u64, else_cost: u64, then_probability: f64, seed: u64) -> Self {
        assert!(then_cost >= 1 && else_cost >= 1, "branch costs must be at least 1");
        let p = (then_probability.clamp(0.0, 1.0) * 256.0) as u16;
        ConditionalLoop {
            len,
            then_cost,
            else_cost,
            then_p256: p.min(255) as u8,
            seed,
        }
    }

    #[inline]
    fn takes_then(&self, i: u64) -> bool {
        // Deterministic per-iteration coin flip.
        let h = burn(1, i ^ self.seed);
        (h & 0xFF) as u8 <= self.then_p256
    }
}

impl Workload for ConditionalLoop {
    fn len(&self) -> u64 {
        self.len
    }
    fn cost(&self, i: u64) -> u64 {
        if self.takes_then(i) {
            self.then_cost
        } else {
            self.else_cost
        }
    }
    fn execute(&self, i: u64) -> u64 {
        burn(self.cost(i), i)
    }
    fn result_bytes(&self, _i: u64) -> u64 {
        8
    }
    fn name(&self) -> &'static str {
        "conditional"
    }
}

/// Irregular loop with uniformly random per-iteration cost in
/// `[min_cost, max_cost]` — a stand-in for unpredictable loops when
/// the full Mandelbrot workload is overkill.
#[derive(Debug, Clone)]
pub struct RandomLoop {
    costs: Vec<u64>,
}

impl RandomLoop {
    /// Builds a random loop; the cost vector is materialized up front
    /// so `cost` is deterministic and O(1).
    pub fn new(len: u64, min_cost: u64, max_cost: u64, seed: u64) -> Self {
        assert!(min_cost >= 1, "minimum cost must be at least 1");
        assert!(max_cost >= min_cost, "max_cost < min_cost");
        let mut rng = StdRng::seed_from_u64(seed);
        let costs = (0..len).map(|_| rng.gen_range(min_cost..=max_cost)).collect();
        RandomLoop { costs }
    }
}

impl Workload for RandomLoop {
    fn len(&self) -> u64 {
        self.costs.len() as u64
    }
    fn cost(&self, i: u64) -> u64 {
        self.costs[i as usize]
    }
    fn execute(&self, i: u64) -> u64 {
        burn(self.cost(i), i)
    }
    fn result_bytes(&self, _i: u64) -> u64 {
        8
    }
    fn name(&self) -> &'static str {
        "random"
    }
}

/// A workload with an explicit per-iteration cost vector — the
/// workhorse of unit tests and targeted simulator scenarios.
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    costs: Vec<u64>,
    bytes_per_iter: u64,
}

impl SyntheticWorkload {
    /// Builds a workload from explicit costs (8 result bytes/iter).
    pub fn new(costs: Vec<u64>) -> Self {
        Self::with_result_bytes(costs, 8)
    }

    /// Builds a workload from explicit costs and result size.
    pub fn with_result_bytes(costs: Vec<u64>, bytes_per_iter: u64) -> Self {
        assert!(costs.iter().all(|&c| c >= 1), "all costs must be at least 1");
        SyntheticWorkload {
            costs,
            bytes_per_iter,
        }
    }
}

impl Workload for SyntheticWorkload {
    fn len(&self) -> u64 {
        self.costs.len() as u64
    }
    fn cost(&self, i: u64) -> u64 {
        self.costs[i as usize]
    }
    fn execute(&self, i: u64) -> u64 {
        burn(self.cost(i), i)
    }
    fn result_bytes(&self, _i: u64) -> u64 {
        self.bytes_per_iter
    }
    fn name(&self) -> &'static str {
        "synthetic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_cost_constant() {
        let w = UniformLoop::new(100, 7);
        assert!((0..100).all(|i| w.cost(i) == 7));
        assert_eq!(w.total_cost(), 700);
    }

    #[test]
    fn increasing_is_monotone() {
        let w = IncreasingLoop::new(50, 1, 3);
        assert_eq!(w.cost(0), 1);
        assert_eq!(w.cost(49), 1 + 3 * 49);
        assert!((1..50).all(|i| w.cost(i) > w.cost(i - 1)));
    }

    #[test]
    fn decreasing_is_monotone_and_mirrors_increasing() {
        let inc = IncreasingLoop::new(50, 1, 3);
        let dec = DecreasingLoop::new(50, 1, 3);
        assert!((1..50).all(|i| dec.cost(i) < dec.cost(i - 1)));
        for i in 0..50 {
            assert_eq!(dec.cost(i), inc.cost(49 - i));
        }
    }

    #[test]
    fn conditional_is_bimodal() {
        let w = ConditionalLoop::new(1000, 100, 1, 0.3, 42);
        let profile = w.cost_profile();
        assert!(profile.iter().all(|&c| c == 100 || c == 1));
        let expensive = profile.iter().filter(|&&c| c == 100).count();
        assert!((150..450).contains(&expensive), "THEN fraction off: {expensive}");
    }

    #[test]
    fn conditional_is_deterministic() {
        let a = ConditionalLoop::new(100, 10, 1, 0.5, 7).cost_profile();
        let b = ConditionalLoop::new(100, 10, 1, 0.5, 7).cost_profile();
        assert_eq!(a, b);
    }

    #[test]
    fn random_within_bounds_and_seeded() {
        let a = RandomLoop::new(500, 10, 90, 1);
        assert!(a.cost_profile().iter().all(|&c| (10..=90).contains(&c)));
        let b = RandomLoop::new(500, 10, 90, 1);
        assert_eq!(a.cost_profile(), b.cost_profile());
        let c = RandomLoop::new(500, 10, 90, 2);
        assert_ne!(a.cost_profile(), c.cost_profile());
    }

    #[test]
    fn execute_returns_stable_checksums() {
        let w = UniformLoop::new(10, 100);
        assert_eq!(w.execute(3), w.execute(3));
        assert_ne!(w.execute(3), w.execute(4));
    }

    #[test]
    fn synthetic_reports_given_costs() {
        let w = SyntheticWorkload::new(vec![5, 1, 9]);
        assert_eq!(w.len(), 3);
        assert_eq!(w.cost(2), 9);
        assert_eq!(w.total_cost(), 15);
    }

    #[test]
    #[should_panic]
    fn synthetic_rejects_zero_cost() {
        SyntheticWorkload::new(vec![1, 0]);
    }

    #[test]
    fn burn_scales_with_units() {
        use std::time::Instant;
        let t0 = Instant::now();
        let a = burn(1_000, 1);
        let short = t0.elapsed();
        let t1 = Instant::now();
        let b = burn(1_000_000, 1);
        let long = t1.elapsed();
        assert_ne!(a, b);
        assert!(long >= short);
    }
}
