//! Iteration reordering by *sampling* (§2.1 of the paper).
//!
//! §2.1: *"For a loop with I iterations, a sampling frequency `S_f` is
//! given. We sample the loop `S_f` times, taking first the iterations
//! whose index `i` satisfies `i mod S_f = 0`, then the iterations with
//! `i mod S_f = 1`, and so on. After sampling, the `S_f` samples are
//! placed in a sequence. Since no data dependency is assumed between
//! iterations, computing the sampled loops will produce the same result
//! as the original one."*
//!
//! The effect (the paper's Figure 1): a strongly clustered cost profile
//! — like Mandelbrot's, where expensive columns sit together over the
//! set's interior — is spread out so consecutive chunks have more
//! uniform total cost. The paper's experiments all use `S_f = 4`.

use crate::Workload;

/// The sampled iteration order: position `j` of the reordered loop maps
/// to original iteration `sampled_order(I, sf)[j]`.
///
/// For `I = 10`, `S_f = 4`: `[0, 4, 8, 1, 5, 9, 2, 6, 3, 7]`.
///
/// # Panics
/// If `sf == 0`.
pub fn sampled_order(total: u64, sf: u64) -> Vec<u64> {
    assert!(sf >= 1, "sampling frequency must be at least 1");
    let mut order = Vec::with_capacity(total as usize);
    for residue in 0..sf.min(total.max(1)) {
        let mut i = residue;
        while i < total {
            order.push(i);
            i += sf;
        }
    }
    order
}

/// A [`Workload`] adapter that presents another workload in sampled
/// (reordered) iteration order.
///
/// Index `j` of the adapter corresponds to index `order[j]` of the
/// inner workload; costs, execution and result sizes all follow the
/// permutation, so schedulers see the *reordered* cost profile while
/// the computed results are those of the original loop.
/// # Example
///
/// ```
/// use lss_workloads::{sampled_order, SampledWorkload, SyntheticWorkload, Workload};
///
/// assert_eq!(sampled_order(8, 4), vec![0, 4, 1, 5, 2, 6, 3, 7]);
/// let inner = SyntheticWorkload::new(vec![1, 2, 3, 4, 5, 6, 7, 8]);
/// let sampled = SampledWorkload::new(inner, 4);
/// assert_eq!(sampled.cost(1), 5); // position 1 → original index 4
/// ```
#[derive(Debug, Clone)]
pub struct SampledWorkload<W> {
    inner: W,
    /// Permutation: reordered position → original index.
    order: Vec<u64>,
    sf: u64,
}

impl<W: Workload> SampledWorkload<W> {
    /// Wraps `inner` with sampling frequency `sf`.
    pub fn new(inner: W, sf: u64) -> Self {
        let order = sampled_order(inner.len(), sf);
        SampledWorkload { inner, order, sf }
    }

    /// The sampling frequency `S_f`.
    pub fn sampling_frequency(&self) -> u64 {
        self.sf
    }

    /// Original iteration index for reordered position `j`.
    pub fn original_index(&self, j: u64) -> u64 {
        self.order[j as usize]
    }

    /// The wrapped workload.
    pub fn inner(&self) -> &W {
        &self.inner
    }
}

impl<W: Workload> Workload for SampledWorkload<W> {
    fn len(&self) -> u64 {
        self.inner.len()
    }
    fn cost(&self, i: u64) -> u64 {
        self.inner.cost(self.order[i as usize])
    }
    fn execute(&self, i: u64) -> u64 {
        self.inner.execute(self.order[i as usize])
    }
    fn result_bytes(&self, i: u64) -> u64 {
        self.inner.result_bytes(self.order[i as usize])
    }
    fn name(&self) -> &'static str {
        "sampled"
    }
}

/// Measures how uniform a cost profile is over windows of `window`
/// consecutive iterations: the ratio `max window cost / min window
/// cost` (1.0 = perfectly uniform). Sampling should shrink this for
/// clustered profiles — the property Figure 1 illustrates.
pub fn windowed_imbalance(profile: &[u64], window: usize) -> f64 {
    assert!(window >= 1, "window must be at least 1");
    let sums: Vec<u64> = profile
        .chunks(window)
        .filter(|c| c.len() == window)
        .map(|c| c.iter().sum())
        .collect();
    if sums.is_empty() {
        return 1.0;
    }
    let max = *sums.iter().max().unwrap() as f64;
    let min = (*sums.iter().min().unwrap()).max(1) as f64;
    max / min
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loop_styles::{IncreasingLoop, SyntheticWorkload};

    #[test]
    fn order_matches_paper_description() {
        assert_eq!(sampled_order(10, 4), vec![0, 4, 8, 1, 5, 9, 2, 6, 3, 7]);
        assert_eq!(sampled_order(6, 2), vec![0, 2, 4, 1, 3, 5]);
    }

    #[test]
    fn sf_one_is_identity() {
        assert_eq!(sampled_order(5, 1), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn sf_at_least_total_is_identity() {
        assert_eq!(sampled_order(4, 4), vec![0, 1, 2, 3]);
        assert_eq!(sampled_order(4, 9), vec![0, 1, 2, 3]);
    }

    #[test]
    fn order_is_a_permutation() {
        for (total, sf) in [(100u64, 4u64), (97, 3), (1000, 7), (5, 2)] {
            let mut o = sampled_order(total, sf);
            o.sort_unstable();
            let expected: Vec<u64> = (0..total).collect();
            assert_eq!(o, expected, "I={total}, sf={sf}");
        }
    }

    #[test]
    fn empty_loop_empty_order() {
        assert!(sampled_order(0, 4).is_empty());
    }

    #[test]
    fn sampled_workload_permutes_costs() {
        let inner = SyntheticWorkload::new(vec![10, 20, 30, 40, 50, 60, 70, 80]);
        let s = SampledWorkload::new(inner, 4);
        // Order: 0 4 1 5 2 6 3 7 → costs 10 50 20 60 30 70 40 80.
        assert_eq!(s.cost_profile(), vec![10, 50, 20, 60, 30, 70, 40, 80]);
        assert_eq!(s.total_cost(), 360);
    }

    #[test]
    fn sampled_results_match_original() {
        let inner = IncreasingLoop::new(20, 1, 5);
        let s = SampledWorkload::new(inner.clone(), 4);
        let mut original: Vec<u64> = (0..20).map(|i| inner.execute(i)).collect();
        let mut sampled: Vec<u64> = (0..20).map(|j| s.execute(j)).collect();
        original.sort_unstable();
        sampled.sort_unstable();
        assert_eq!(original, sampled, "same multiset of results");
    }

    #[test]
    fn sampling_flattens_linear_profile() {
        // A linearly increasing loop is maximally clustered; S_f = 4
        // must reduce the windowed imbalance.
        let inner = IncreasingLoop::new(1000, 1, 10);
        let before = windowed_imbalance(&inner.cost_profile(), 50);
        let s = SampledWorkload::new(inner, 4);
        let after = windowed_imbalance(&s.cost_profile(), 50);
        assert!(
            after < before / 2.0,
            "sampling should flatten: before {before:.1}, after {after:.1}"
        );
    }

    #[test]
    fn windowed_imbalance_uniform_is_one() {
        let profile = vec![5u64; 100];
        assert!((windowed_imbalance(&profile, 10) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn zero_sf_rejected() {
        sampled_order(10, 0);
    }
}
