//! # lss-workloads — parallel-loop workloads for scheduling experiments
//!
//! The paper evaluates its schedulers on the **Mandelbrot set**
//! computation — chosen because it is an *unpredictable irregular
//! loop*, "the most severe test for a scheduling scheme" (§2.1). This
//! crate provides that workload plus the full taxonomy of parallel-loop
//! styles from §2.1 (uniform, linearly increasing/decreasing,
//! conditional, irregular), the iteration-reordering **sampling**
//! technique (`S_f`), and the matrix-addition background load used to
//! create the *non-dedicated* experimental condition.
//!
//! Everything is expressed through the [`Workload`] trait: a loop of
//! `len()` independent iterations, each with an abstract *cost* (basic
//! operation count — what the simulator charges) and an *execution*
//! (what the real runtime actually runs).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod kernels;
pub mod loop_styles;
pub mod mandelbrot;
pub mod matrix;
pub mod ordering;
pub mod sampling;

pub use loop_styles::{
    ConditionalLoop, DecreasingLoop, IncreasingLoop, RandomLoop, SyntheticWorkload, UniformLoop,
};
pub use kernels::{AdjointConvolution, MatVec, SparseMatVec};
pub use mandelbrot::{Mandelbrot, MandelbrotParams};
pub use ordering::SortedWorkload;
pub use matrix::MatrixAddLoad;
pub use sampling::{sampled_order, SampledWorkload};

/// A parallel loop: `len()` independent iterations that can run in any
/// order (no inter-iteration dependencies).
///
/// In the paper's terms each iteration is a *task* — for the Mandelbrot
/// experiments, the computation of one image column. `cost` is the
/// iteration's size in *basic computations* (the Y axis of the paper's
/// Figure 1); the simulator divides it by a PE's speed to get compute
/// time, while the real runtime calls [`Workload::execute`].
pub trait Workload: Send + Sync {
    /// Number of iterations `I` in the loop.
    fn len(&self) -> u64;

    /// Whether the loop has no iterations.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Abstract cost (basic-operation count) of iteration `i`.
    ///
    /// Must be deterministic: the simulator and analysis tools may call
    /// it repeatedly.
    fn cost(&self, i: u64) -> u64;

    /// Actually executes iteration `i`, returning an opaque checksum
    /// (so the optimizer cannot discard the work and tests can verify
    /// that reordered executions compute the same thing).
    fn execute(&self, i: u64) -> u64;

    /// Bytes of result data iteration `i` produces (drives the
    /// communication model: results are piggy-backed to the master).
    fn result_bytes(&self, i: u64) -> u64;

    /// Human-readable workload name for reports.
    fn name(&self) -> &'static str;

    /// Total cost of the `len` iterations starting at `start` — the
    /// simulator charges a whole chunk at a time, so workloads with a
    /// closed-form cost (uniform, linear) override this to keep chunk
    /// accounting O(1) instead of O(chunk length).
    fn cost_range(&self, start: u64, len: u64) -> u64 {
        (start..start + len).map(|i| self.cost(i)).sum()
    }

    /// Total result payload of the `len` iterations starting at
    /// `start` (see [`Workload::cost_range`]).
    fn result_bytes_range(&self, start: u64, len: u64) -> u64 {
        (start..start + len).map(|i| self.result_bytes(i)).sum()
    }

    /// Total cost of the whole loop.
    fn total_cost(&self) -> u64 {
        (0..self.len()).map(|i| self.cost(i)).sum()
    }

    /// Materializes the per-iteration cost profile (Figure 1's data).
    fn cost_profile(&self) -> Vec<u64> {
        (0..self.len()).map(|i| self.cost(i)).collect()
    }
}

impl<W: Workload + ?Sized> Workload for &W {
    fn len(&self) -> u64 {
        (**self).len()
    }
    fn cost(&self, i: u64) -> u64 {
        (**self).cost(i)
    }
    fn execute(&self, i: u64) -> u64 {
        (**self).execute(i)
    }
    fn result_bytes(&self, i: u64) -> u64 {
        (**self).result_bytes(i)
    }
    fn cost_range(&self, start: u64, len: u64) -> u64 {
        (**self).cost_range(start, len)
    }
    fn result_bytes_range(&self, start: u64, len: u64) -> u64 {
        (**self).result_bytes_range(start, len)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<W: Workload + ?Sized> Workload for std::sync::Arc<W> {
    fn len(&self) -> u64 {
        (**self).len()
    }
    fn cost(&self, i: u64) -> u64 {
        (**self).cost(i)
    }
    fn execute(&self, i: u64) -> u64 {
        (**self).execute(i)
    }
    fn result_bytes(&self, i: u64) -> u64 {
        (**self).result_bytes(i)
    }
    fn cost_range(&self, start: u64, len: u64) -> u64 {
        (**self).cost_range(start, len)
    }
    fn result_bytes_range(&self, start: u64, len: u64) -> u64 {
        (**self).result_bytes_range(start, len)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_object_usable() {
        let w: Box<dyn Workload> = Box::new(UniformLoop::new(10, 5));
        assert_eq!(w.len(), 10);
        assert_eq!(w.total_cost(), 50);
    }

    #[test]
    fn arc_and_ref_forward() {
        let w = std::sync::Arc::new(UniformLoop::new(4, 2));
        assert_eq!(w.total_cost(), 8);
        let r: &UniformLoop = &w;
        assert_eq!(r.total_cost(), 8);
        assert!(!w.is_empty());
    }
}
