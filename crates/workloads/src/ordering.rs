//! Reordering for *predictable* loops (§2.1 of the paper).
//!
//! §2.1 classifies loops by how much is known about iteration sizes:
//! compile-time-known, **predictable** ("we cannot determine the
//! iteration sizes, but they can be ordered"), and irregular. For
//! predictable loops the classic play is longest-processing-time-first
//! (LPT): schedule expensive iterations early so stragglers cannot
//! appear at the end. This module provides that ordering as a
//! [`crate::Workload`] adapter — the counterpart of the sampling
//! reorder used for irregular loops.

use crate::Workload;

/// A workload presented in decreasing (or increasing) cost order.
///
/// Like [`crate::SampledWorkload`], position `j` maps to a fixed
/// permutation of the inner workload, so results are unchanged — only
/// the schedule-visible order differs.
#[derive(Debug, Clone)]
pub struct SortedWorkload<W> {
    inner: W,
    /// Permutation: position → original index.
    order: Vec<u64>,
    decreasing: bool,
}

impl<W: Workload> SortedWorkload<W> {
    /// Presents `inner` in decreasing cost order (LPT).
    pub fn decreasing(inner: W) -> Self {
        Self::build(inner, true)
    }

    /// Presents `inner` in increasing cost order (the adversarial
    /// order for self-scheduling: the big ones land last).
    pub fn increasing(inner: W) -> Self {
        Self::build(inner, false)
    }

    fn build(inner: W, decreasing: bool) -> Self {
        let mut order: Vec<u64> = (0..inner.len()).collect();
        // Stable sort keeps equal-cost iterations in original order,
        // making the permutation deterministic.
        if decreasing {
            order.sort_by_key(|&i| std::cmp::Reverse(inner.cost(i)));
        } else {
            order.sort_by_key(|&i| inner.cost(i));
        }
        SortedWorkload {
            inner,
            order,
            decreasing,
        }
    }

    /// Whether the order is decreasing (LPT).
    pub fn is_decreasing(&self) -> bool {
        self.decreasing
    }

    /// Original iteration index for position `j`.
    pub fn original_index(&self, j: u64) -> u64 {
        self.order[j as usize]
    }

    /// The wrapped workload.
    pub fn inner(&self) -> &W {
        &self.inner
    }
}

impl<W: Workload> Workload for SortedWorkload<W> {
    fn len(&self) -> u64 {
        self.inner.len()
    }
    fn cost(&self, i: u64) -> u64 {
        self.inner.cost(self.order[i as usize])
    }
    fn execute(&self, i: u64) -> u64 {
        self.inner.execute(self.order[i as usize])
    }
    fn result_bytes(&self, i: u64) -> u64 {
        self.inner.result_bytes(self.order[i as usize])
    }
    fn name(&self) -> &'static str {
        if self.decreasing {
            "sorted-decreasing"
        } else {
            "sorted-increasing"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loop_styles::{IncreasingLoop, SyntheticWorkload};

    #[test]
    fn decreasing_profile_is_monotone() {
        let w = SortedWorkload::decreasing(SyntheticWorkload::new(vec![3, 9, 1, 7, 7]));
        assert_eq!(w.cost_profile(), vec![9, 7, 7, 3, 1]);
        assert!(w.is_decreasing());
    }

    #[test]
    fn increasing_profile_is_monotone() {
        let w = SortedWorkload::increasing(SyntheticWorkload::new(vec![3, 9, 1, 7, 7]));
        assert_eq!(w.cost_profile(), vec![1, 3, 7, 7, 9]);
    }

    #[test]
    fn order_is_a_permutation_with_same_results() {
        let inner = IncreasingLoop::new(50, 1, 3);
        let w = SortedWorkload::decreasing(inner.clone());
        let mut orig: Vec<u64> = (0..50).map(|i| inner.execute(i)).collect();
        let mut sorted: Vec<u64> = (0..50).map(|j| w.execute(j)).collect();
        orig.sort_unstable();
        sorted.sort_unstable();
        assert_eq!(orig, sorted);
        assert_eq!(w.total_cost(), inner.total_cost());
    }

    #[test]
    fn equal_costs_keep_original_order() {
        let w = SortedWorkload::decreasing(SyntheticWorkload::new(vec![5, 5, 5]));
        assert_eq!(
            (0..3).map(|j| w.original_index(j)).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn empty_workload() {
        let w = SortedWorkload::decreasing(SyntheticWorkload::new(vec![]));
        assert_eq!(w.len(), 0);
    }
}
