//! # lss-scenario — cluster-scale scenarios and scheme sweeps
//!
//! The paper evaluates its scheme class on one hand-built 9-node Sun
//! cluster; every simulator experiment in this repo so far mirrored
//! exactly that (`ClusterSpec::paper_mix`). "OpenMP Loop Scheduling
//! Revisited" (arXiv:1809.03188) makes the case that scheme rankings
//! flip across workloads and machine conditions — demonstrating that
//! requires running scheme × scenario *grids*, not one cluster.
//!
//! This crate is that testbed:
//!
//! - [`format`] — a dependency-free declarative scenario format
//!   (`.scn`): node groups with counts and speed distributions,
//!   per-link bandwidth/latency, run-queue load traces,
//!   churn/autoscale schedules and lossy-net fault knobs, parsed
//!   strictly (unknown keys are errors). The committed library lives
//!   in `scenarios/`.
//! - [`compile`] — lowers a scenario to exactly what the simulator
//!   already consumes: [`lss_sim::ClusterSpec`], per-node
//!   [`lss_sim::LoadTrace`]s, per-node
//!   [`lss_core::fault::FaultPlan`]s. Tree scheduling gets a typed
//!   [`lss_sim::UnsupportedKnob`] instead of silently dropping knobs
//!   it cannot honor.
//! - [`sweep`] — the parallel scheme-family × scenario sweep driver
//!   behind `lss sweep`: per-cell deterministic seeds, byte-stable
//!   `SWEEP_*.json` artifacts and a markdown comparison table
//!   (makespan, computation CoV, `T_com` share per cell).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod compile;
pub mod format;
pub mod sweep;

pub use compile::CompiledScenario;
pub use format::{Scenario, ScenarioError};
pub use sweep::{
    cell_seed, parse_sweep_scheme, run_sweep, validate_sweep_json, SweepCell, SweepReport,
    SweepScheme, SweepSpec,
};
