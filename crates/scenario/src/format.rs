//! The `.scn` scenario format: a dependency-free, line-oriented
//! description of a heterogeneous cluster and its runtime conditions.
//!
//! A scenario is the declarative input the sweep driver and
//! `lss sim --scenario` consume; it compiles down (see
//! [`crate::compile`]) to exactly the three structures the simulator
//! already understands — [`lss_sim::ClusterSpec`],
//! [`lss_sim::LoadTrace`] and [`lss_core::fault::FaultPlan`] — so no
//! engine feature exists only for scenarios.
//!
//! # Syntax
//!
//! ```text
//! # The paper's 9-node Sun cluster.
//! name = paper-9
//! seed = 42
//!
//! [master]
//! service_time_us = 1000
//! rx_bandwidth = 12500000
//!
//! [group fast]
//! count = 3
//! speed = 2e6                   # ops/s; or uniform(lo,hi) / normal(mu,sigma)
//! power = 2.6506024096385543    # omit for speed-proportional ("auto")
//! bandwidth = 12.5e6            # bytes/s to the master
//! latency_us = 1000
//!
//! [group slow]
//! count = 5
//! speed = 754545.4545454545
//! bandwidth = 1.25e6
//! latency_us = 1000
//! segment = 0                   # shared half-duplex medium id
//! load = 0ns:1, 30s:2, 60s:1    # run-queue trace (time:Q pairs)
//!
//! [churn]
//! group = slow
//! fraction = 0.4
//! leave_after_chunks = 3
//! outage_ms = 0                 # 0 = gone for good; >0 = reconnects
//!
//! [faults]
//! drop_prob = 0.01
//! ```
//!
//! Rules:
//! - `key = value` pairs under `[section]` headers; `#` starts a
//!   comment; blank lines are ignored.
//! - **Unknown sections and unknown keys are hard errors** (strict by
//!   design: a typo silently ignored is a wrong experiment).
//! - Durations require a unit suffix (`ns`, `us`, `ms`, `s`).
//! - `[group NAME]` may repeat (names must be unique); `[churn]` may
//!   repeat; `[master]` and `[faults]` may appear at most once.
//! - A group's `join_at` models autoscale: the node's run queue starts
//!   high enough that the simulator's kick-off rule (first request at
//!   `startup_delay × Q(0)`) lands exactly at the join time, then drops
//!   to `Q = 1` — "not yet provisioned" expressed purely as a
//!   [`lss_sim::LoadTrace`] (see
//!   [`crate::compile::SIM_STARTUP_DELAY_NS`]).

use std::fmt::Write as _;

/// Everything that can go wrong reading a scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// The file could not be read.
    Io(String),
    /// A line is not a comment, header or `key = value` pair.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        msg: String,
    },
    /// A `[section]` header names no known section.
    UnknownSection {
        /// 1-based line number.
        line: usize,
        /// The offending header text.
        section: String,
    },
    /// A key is not accepted in its section (strict mode — typos fail).
    UnknownKey {
        /// 1-based line number.
        line: usize,
        /// Section the key appeared in.
        section: String,
        /// The offending key.
        key: String,
    },
    /// The same key appeared twice in one section instance.
    DuplicateKey {
        /// 1-based line number of the second occurrence.
        line: usize,
        /// The repeated key.
        key: String,
    },
    /// A required key is absent.
    MissingKey {
        /// Section that needs the key.
        section: String,
        /// The missing key.
        key: String,
    },
    /// A value failed to parse or is out of range.
    BadValue {
        /// 1-based line number.
        line: usize,
        /// Key whose value is bad.
        key: String,
        /// What was wrong.
        msg: String,
    },
    /// A `[churn]` section references a group that does not exist.
    UnknownGroup {
        /// The group name the churn section asked for.
        group: String,
    },
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Io(msg) => write!(f, "cannot read scenario: {msg}"),
            ScenarioError::Syntax { line, msg } => write!(f, "line {line}: {msg}"),
            ScenarioError::UnknownSection { line, section } => {
                write!(f, "line {line}: unknown section [{section}]")
            }
            ScenarioError::UnknownKey { line, section, key } => {
                write!(f, "line {line}: unknown key {key:?} in [{section}]")
            }
            ScenarioError::DuplicateKey { line, key } => {
                write!(f, "line {line}: duplicate key {key:?}")
            }
            ScenarioError::MissingKey { section, key } => {
                write!(f, "[{section}] is missing required key {key:?}")
            }
            ScenarioError::BadValue { line, key, msg } => {
                write!(f, "line {line}: bad value for {key:?}: {msg}")
            }
            ScenarioError::UnknownGroup { group } => {
                write!(f, "[churn] references unknown group {group:?}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// A node speed: constant or drawn per node from a seeded distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpeedDist {
    /// Every node in the group runs at exactly this many ops/s.
    Const(f64),
    /// Uniform in `[lo, hi]`.
    Uniform(f64, f64),
    /// Normal with mean `mu` and standard deviation `sigma` (samples
    /// are clamped to stay positive).
    Normal(f64, f64),
}

/// What happens to a churned node when its time comes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnMode {
    /// The node crashes (announced exit; its chunk is requeued).
    Crash,
    /// The node hangs: accepts its chunk, never replies.
    Hang,
    /// The node disconnects and redials after `outage_ms`.
    Disconnect,
}

/// The `[master]` section.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MasterSection {
    /// Per-request service time, microseconds.
    pub service_time_us: f64,
    /// Result-ingest bandwidth, bytes/s.
    pub rx_bandwidth: f64,
}

impl Default for MasterSection {
    fn default() -> Self {
        // The paper-calibrated master (1 ms per request, 12.5 MB/s).
        MasterSection { service_time_us: 1000.0, rx_bandwidth: 12.5e6 }
    }
}

/// One `[group NAME]` section: `count` alike nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct Group {
    /// Group name (unique; node names are `NAME0`, `NAME1`, …).
    pub name: String,
    /// Number of nodes.
    pub count: usize,
    /// Speed in ops/s (constant or distribution).
    pub speed: SpeedDist,
    /// Virtual power; `None` = proportional to sampled speed,
    /// normalized so the slowest node in the cluster gets 1.0.
    pub power: Option<f64>,
    /// Link bandwidth to the master, bytes/s.
    pub bandwidth: f64,
    /// One-way link latency, microseconds.
    pub latency_us: f64,
    /// Shared half-duplex segment id (`None` = switched).
    pub segment: Option<u8>,
    /// Run-queue trace as `(time ns, Q)` steps (empty = dedicated).
    pub load: Vec<(u64, u32)>,
    /// Autoscale join time in ns (`None` = present from the start).
    pub join_at: Option<u64>,
}

/// One `[churn]` section: part of a group leaves mid-run.
#[derive(Debug, Clone, PartialEq)]
pub struct Churn {
    /// Which group churns.
    pub group: String,
    /// Fraction of the group affected, `(0, 1]`.
    pub fraction: f64,
    /// Each affected node leaves after computing this many chunks.
    pub leave_after_chunks: u64,
    /// Outage before redial, ms (`0` with [`ChurnMode::Crash`]).
    pub outage_ms: u64,
    /// How the node leaves.
    pub mode: ChurnMode,
}

/// The `[faults]` section: lossy messaging applied to every node.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultsSection {
    /// Probability a message is dropped in flight.
    pub drop_prob: f64,
    /// Probability a message is duplicated.
    pub dup_prob: f64,
    /// Extra per-message delay, microseconds.
    pub delay_us: u64,
}

impl FaultsSection {
    /// Whether any net fault is configured.
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0 || self.dup_prob > 0.0 || self.delay_us > 0
    }
}

/// A parsed scenario (see the module docs for the file syntax).
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (used in sweep artifacts).
    pub name: String,
    /// Master seed for speed sampling, churn selection and fault RNGs.
    pub seed: u64,
    /// Free-text description.
    pub description: Option<String>,
    /// Master PE parameters.
    pub master: MasterSection,
    /// Node groups, in declaration order.
    pub groups: Vec<Group>,
    /// Churn schedules.
    pub churn: Vec<Churn>,
    /// Global lossy-network faults.
    pub faults: FaultsSection,
}

impl Scenario {
    /// Total number of slave nodes.
    pub fn workers(&self) -> usize {
        self.groups.iter().map(|g| g.count).sum()
    }

    /// Whether the scenario injects any fault (churn or lossy net) —
    /// i.e. whether the simulator will take its lease-aware path.
    pub fn has_faults(&self) -> bool {
        !self.churn.is_empty() || self.faults.is_active()
    }

    /// Parses scenario text. See the module docs for the format.
    pub fn parse(text: &str) -> Result<Scenario, ScenarioError> {
        Parser::new(text).run()
    }

    /// Reads and parses a scenario file.
    pub fn load(path: &std::path::Path) -> Result<Scenario, ScenarioError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ScenarioError::Io(format!("{}: {e}", path.display())))?;
        Scenario::parse(&text)
    }

    /// Renders the scenario back to canonical `.scn` text. Parsing the
    /// output yields a structurally identical scenario
    /// (`parse(render(s)) == s`), which is what the round-trip tests
    /// pin down.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "name = {}", self.name);
        let _ = writeln!(out, "seed = {}", self.seed);
        if let Some(d) = &self.description {
            let _ = writeln!(out, "description = {d}");
        }
        let _ = writeln!(out, "\n[master]");
        let _ = writeln!(out, "service_time_us = {}", self.master.service_time_us);
        let _ = writeln!(out, "rx_bandwidth = {}", self.master.rx_bandwidth);
        for g in &self.groups {
            let _ = writeln!(out, "\n[group {}]", g.name);
            let _ = writeln!(out, "count = {}", g.count);
            let speed = match g.speed {
                SpeedDist::Const(v) => format!("{v}"),
                SpeedDist::Uniform(lo, hi) => format!("uniform({lo}, {hi})"),
                SpeedDist::Normal(mu, s) => format!("normal({mu}, {s})"),
            };
            let _ = writeln!(out, "speed = {speed}");
            if let Some(p) = g.power {
                let _ = writeln!(out, "power = {p}");
            }
            let _ = writeln!(out, "bandwidth = {}", g.bandwidth);
            let _ = writeln!(out, "latency_us = {}", g.latency_us);
            if let Some(s) = g.segment {
                let _ = writeln!(out, "segment = {s}");
            }
            if !g.load.is_empty() {
                let steps: Vec<String> =
                    g.load.iter().map(|(t, q)| format!("{t}ns:{q}")).collect();
                let _ = writeln!(out, "load = {}", steps.join(", "));
            }
            if let Some(j) = g.join_at {
                let _ = writeln!(out, "join_at = {j}ns");
            }
        }
        for c in &self.churn {
            let _ = writeln!(out, "\n[churn]");
            let _ = writeln!(out, "group = {}", c.group);
            let _ = writeln!(out, "fraction = {}", c.fraction);
            let _ = writeln!(out, "leave_after_chunks = {}", c.leave_after_chunks);
            let _ = writeln!(out, "outage_ms = {}", c.outage_ms);
            let mode = match c.mode {
                ChurnMode::Crash => "crash",
                ChurnMode::Hang => "hang",
                ChurnMode::Disconnect => "disconnect",
            };
            let _ = writeln!(out, "mode = {mode}");
        }
        if self.faults.is_active() {
            let _ = writeln!(out, "\n[faults]");
            let _ = writeln!(out, "drop_prob = {}", self.faults.drop_prob);
            let _ = writeln!(out, "dup_prob = {}", self.faults.dup_prob);
            let _ = writeln!(out, "delay_us = {}", self.faults.delay_us);
        }
        out
    }
}

/// Parses a duration with a required unit suffix into nanoseconds.
fn parse_duration(v: &str) -> Result<u64, String> {
    let v = v.trim();
    let (num, mult) = if let Some(n) = v.strip_suffix("ns") {
        (n, 1u64)
    } else if let Some(n) = v.strip_suffix("us") {
        (n, 1_000)
    } else if let Some(n) = v.strip_suffix("ms") {
        (n, 1_000_000)
    } else if let Some(n) = v.strip_suffix('s') {
        (n, 1_000_000_000)
    } else {
        return Err(format!("duration {v:?} needs a unit suffix (ns/us/ms/s)"));
    };
    let x: f64 = num
        .trim()
        .parse()
        .map_err(|_| format!("not a number: {:?}", num.trim()))?;
    if x < 0.0 {
        return Err("duration must be non-negative".into());
    }
    Ok((x * mult as f64).round() as u64)
}

fn parse_speed(v: &str) -> Result<SpeedDist, String> {
    let v = v.trim();
    let call = |name: &str| -> Option<Result<(f64, f64), String>> {
        let body = v.strip_prefix(name)?.trim();
        let body = body.strip_prefix('(')?.strip_suffix(')')?;
        let parts: Vec<&str> = body.split(',').collect();
        if parts.len() != 2 {
            return Some(Err(format!("{name}(a, b) takes exactly two arguments")));
        }
        let a: f64 = match parts[0].trim().parse() {
            Ok(x) => x,
            Err(_) => return Some(Err(format!("not a number: {:?}", parts[0].trim()))),
        };
        let b: f64 = match parts[1].trim().parse() {
            Ok(x) => x,
            Err(_) => return Some(Err(format!("not a number: {:?}", parts[1].trim()))),
        };
        Some(Ok((a, b)))
    };
    if let Some(r) = call("uniform") {
        let (lo, hi) = r?;
        if !(lo > 0.0 && hi >= lo) {
            return Err("uniform(lo, hi) needs 0 < lo <= hi".into());
        }
        return Ok(SpeedDist::Uniform(lo, hi));
    }
    if let Some(r) = call("normal") {
        let (mu, sigma) = r?;
        if !(mu > 0.0 && sigma >= 0.0) {
            return Err("normal(mu, sigma) needs mu > 0 and sigma >= 0".into());
        }
        return Ok(SpeedDist::Normal(mu, sigma));
    }
    let x: f64 = v.parse().map_err(|_| format!("not a number: {v:?}"))?;
    if x <= 0.0 {
        return Err("speed must be positive".into());
    }
    Ok(SpeedDist::Const(x))
}

/// Parses a load trace: comma-separated `time:Q` steps.
fn parse_load(v: &str) -> Result<Vec<(u64, u32)>, String> {
    let mut steps = Vec::new();
    for part in v.split(',') {
        let part = part.trim();
        let (t, q) = part
            .rsplit_once(':')
            .ok_or_else(|| format!("load step {part:?} is not time:Q"))?;
        let t = parse_duration(t)?;
        let q: u32 = q
            .trim()
            .parse()
            .map_err(|_| format!("run-queue length {:?} is not an integer", q.trim()))?;
        steps.push((t, q));
    }
    if steps.is_empty() {
        return Err("load trace has no steps".into());
    }
    for w in steps.windows(2) {
        if w[1].0 <= w[0].0 {
            return Err("load step times must be strictly increasing".into());
        }
    }
    if steps[0].0 != 0 {
        return Err("load trace must start at time 0".into());
    }
    Ok(steps)
}

#[derive(Debug, Clone, PartialEq)]
enum Section {
    Top,
    Master,
    Group(String),
    Churn,
    Faults,
}

impl Section {
    fn name(&self) -> String {
        match self {
            Section::Top => "(top level)".into(),
            Section::Master => "master".into(),
            Section::Group(n) => format!("group {n}"),
            Section::Churn => "churn".into(),
            Section::Faults => "faults".into(),
        }
    }
}

/// Accumulates one section instance's keys, enforcing the allowlist,
/// duplicate detection and missing-key checks.
struct KeyBag {
    section: String,
    entries: Vec<(String, String, usize)>,
}

impl KeyBag {
    fn new(section: String) -> Self {
        KeyBag { section, entries: Vec::new() }
    }

    fn insert(&mut self, key: &str, value: &str, line: usize, allowed: &[&str]) -> Result<(), ScenarioError> {
        if !allowed.contains(&key) {
            return Err(ScenarioError::UnknownKey {
                line,
                section: self.section.clone(),
                key: key.into(),
            });
        }
        if self.entries.iter().any(|(k, _, _)| k == key) {
            return Err(ScenarioError::DuplicateKey { line, key: key.into() });
        }
        self.entries.push((key.into(), value.into(), line));
        Ok(())
    }

    fn get(&self, key: &str) -> Option<(&str, usize)> {
        self.entries
            .iter()
            .find(|(k, _, _)| k == key)
            .map(|(_, v, l)| (v.as_str(), *l))
    }

    fn require(&self, key: &str) -> Result<(&str, usize), ScenarioError> {
        self.get(key).ok_or_else(|| ScenarioError::MissingKey {
            section: self.section.clone(),
            key: key.into(),
        })
    }

    fn parse_with<T>(
        &self,
        key: &str,
        default: T,
        f: impl Fn(&str) -> Result<T, String>,
    ) -> Result<T, ScenarioError> {
        match self.get(key) {
            None => Ok(default),
            Some((v, line)) => {
                f(v).map_err(|msg| ScenarioError::BadValue { line, key: key.into(), msg })
            }
        }
    }
}

fn num<T: std::str::FromStr>(v: &str) -> Result<T, String> {
    v.trim().parse().map_err(|_| format!("not a valid number: {v:?}"))
}

fn positive_f64(v: &str) -> Result<f64, String> {
    let x: f64 = num(v)?;
    if x <= 0.0 {
        return Err("must be positive".into());
    }
    Ok(x)
}

fn probability(v: &str) -> Result<f64, String> {
    let x: f64 = num(v)?;
    if !(0.0..=1.0).contains(&x) {
        return Err("must be in [0, 1]".into());
    }
    Ok(x)
}

struct Parser<'a> {
    text: &'a str,
}

const TOP_KEYS: &[&str] = &["name", "seed", "description"];
const MASTER_KEYS: &[&str] = &["service_time_us", "rx_bandwidth"];
const GROUP_KEYS: &[&str] = &[
    "count", "speed", "power", "bandwidth", "latency_us", "segment", "load", "join_at",
];
const CHURN_KEYS: &[&str] = &["group", "fraction", "leave_after_chunks", "outage_ms", "mode"];
const FAULTS_KEYS: &[&str] = &["drop_prob", "dup_prob", "delay_us"];

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser { text }
    }

    fn run(self) -> Result<Scenario, ScenarioError> {
        // Pass 1: split into section instances with their key bags.
        let mut sections: Vec<(Section, KeyBag, usize)> = Vec::new();
        let mut current = Section::Top;
        let mut bag = KeyBag::new(current.name());
        let mut bag_line = 0usize;
        for (idx, raw) in self.text.lines().enumerate() {
            let line_no = idx + 1;
            let line = match raw.split_once('#') {
                // A '#' inside a value would be ambiguous; comments are
                // whole-line or trailing after whitespace.
                Some((before, _)) if before.trim().is_empty() => "",
                Some((before, _)) => before.trim_end(),
                None => raw.trim_end(),
            };
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let header = header
                    .strip_suffix(']')
                    .ok_or_else(|| ScenarioError::Syntax {
                        line: line_no,
                        msg: format!("unterminated section header {line:?}"),
                    })?
                    .trim();
                let next = if header == "master" {
                    Section::Master
                } else if header == "churn" {
                    Section::Churn
                } else if header == "faults" {
                    Section::Faults
                } else if let Some(name) = header.strip_prefix("group ") {
                    let name = name.trim();
                    if name.is_empty()
                        || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
                    {
                        return Err(ScenarioError::Syntax {
                            line: line_no,
                            msg: format!("invalid group name {name:?}"),
                        });
                    }
                    Section::Group(name.into())
                } else {
                    return Err(ScenarioError::UnknownSection {
                        line: line_no,
                        section: header.into(),
                    });
                };
                sections.push((current, bag, bag_line));
                current = next;
                bag = KeyBag::new(current.name());
                bag_line = line_no;
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| ScenarioError::Syntax {
                line: line_no,
                msg: format!("expected `key = value`, got {line:?}"),
            })?;
            let key = key.trim();
            let value = value.trim();
            let allowed = match &current {
                Section::Top => TOP_KEYS,
                Section::Master => MASTER_KEYS,
                Section::Group(_) => GROUP_KEYS,
                Section::Churn => CHURN_KEYS,
                Section::Faults => FAULTS_KEYS,
            };
            bag.insert(key, value, line_no, allowed)?;
        }
        sections.push((current, bag, bag_line));

        // Pass 2: build the scenario from the section instances.
        let mut name: Option<String> = None;
        let mut seed = 0u64;
        let mut description = None;
        let mut master = MasterSection::default();
        let mut seen_master = false;
        let mut faults = FaultsSection::default();
        let mut seen_faults = false;
        let mut groups: Vec<Group> = Vec::new();
        let mut churn: Vec<Churn> = Vec::new();

        for (section, bag, bag_line) in sections {
            match section {
                Section::Top => {
                    if let Some((v, _)) = bag.get("name") {
                        name = Some(v.to_string());
                    }
                    seed = bag.parse_with("seed", seed, num::<u64>)?;
                    if let Some((v, _)) = bag.get("description") {
                        description = Some(v.to_string());
                    }
                }
                Section::Master => {
                    if seen_master {
                        return Err(ScenarioError::Syntax {
                            line: bag_line,
                            msg: "[master] may appear only once".into(),
                        });
                    }
                    seen_master = true;
                    master.service_time_us =
                        bag.parse_with("service_time_us", master.service_time_us, positive_f64)?;
                    master.rx_bandwidth =
                        bag.parse_with("rx_bandwidth", master.rx_bandwidth, positive_f64)?;
                }
                Section::Faults => {
                    if seen_faults {
                        return Err(ScenarioError::Syntax {
                            line: bag_line,
                            msg: "[faults] may appear only once".into(),
                        });
                    }
                    seen_faults = true;
                    faults.drop_prob = bag.parse_with("drop_prob", 0.0, probability)?;
                    faults.dup_prob = bag.parse_with("dup_prob", 0.0, probability)?;
                    faults.delay_us = bag.parse_with("delay_us", 0, |v| {
                        parse_duration(&format!("{}us", v.trim())).map(|ns| ns / 1000)
                    })?;
                }
                Section::Group(gname) => {
                    if groups.iter().any(|g| g.name == gname) {
                        return Err(ScenarioError::Syntax {
                            line: bag_line,
                            msg: format!("duplicate group name {gname:?}"),
                        });
                    }
                    let (count_v, count_line) = bag.require("count")?;
                    let count: usize =
                        num(count_v).map_err(|msg| ScenarioError::BadValue {
                            line: count_line,
                            key: "count".into(),
                            msg,
                        })?;
                    if count == 0 {
                        return Err(ScenarioError::BadValue {
                            line: count_line,
                            key: "count".into(),
                            msg: "a group needs at least one node".into(),
                        });
                    }
                    let (speed_v, speed_line) = bag.require("speed")?;
                    let speed = parse_speed(speed_v).map_err(|msg| ScenarioError::BadValue {
                        line: speed_line,
                        key: "speed".into(),
                        msg,
                    })?;
                    let power = match bag.get("power") {
                        None => None,
                        Some((v, line)) => Some(positive_f64(v).map_err(|msg| {
                            ScenarioError::BadValue { line, key: "power".into(), msg }
                        })?),
                    };
                    let bandwidth = bag.parse_with("bandwidth", 12.5e6, positive_f64)?;
                    let latency_us = bag.parse_with("latency_us", 1000.0, positive_f64)?;
                    let segment = match bag.get("segment") {
                        None => None,
                        Some((v, line)) => Some(num::<u8>(v).map_err(|msg| {
                            ScenarioError::BadValue { line, key: "segment".into(), msg }
                        })?),
                    };
                    let load = match bag.get("load") {
                        None => Vec::new(),
                        Some((v, line)) => parse_load(v).map_err(|msg| {
                            ScenarioError::BadValue { line, key: "load".into(), msg }
                        })?,
                    };
                    let join_at = match bag.get("join_at") {
                        None => None,
                        Some((v, line)) => Some(parse_duration(v).map_err(|msg| {
                            ScenarioError::BadValue { line, key: "join_at".into(), msg }
                        })?),
                    };
                    if join_at.is_some() && !load.is_empty() {
                        return Err(ScenarioError::BadValue {
                            line: bag_line,
                            key: "join_at".into(),
                            msg: "a group cannot declare both join_at and load".into(),
                        });
                    }
                    groups.push(Group {
                        name: gname,
                        count,
                        speed,
                        power,
                        bandwidth,
                        latency_us,
                        segment,
                        load,
                        join_at,
                    });
                }
                Section::Churn => {
                    let (group_v, _) = bag.require("group")?;
                    let fraction = bag.parse_with("fraction", 1.0, |v| {
                        let x = probability(v)?;
                        if x == 0.0 {
                            return Err("fraction must be > 0".into());
                        }
                        Ok(x)
                    })?;
                    let (leave_v, leave_line) = bag.require("leave_after_chunks")?;
                    let leave_after_chunks: u64 =
                        num(leave_v).map_err(|msg| ScenarioError::BadValue {
                            line: leave_line,
                            key: "leave_after_chunks".into(),
                            msg,
                        })?;
                    let outage_ms = bag.parse_with("outage_ms", 0u64, num::<u64>)?;
                    let mode = match bag.get("mode") {
                        None => {
                            if outage_ms > 0 {
                                ChurnMode::Disconnect
                            } else {
                                ChurnMode::Crash
                            }
                        }
                        Some((v, line)) => match v.trim() {
                            "crash" => ChurnMode::Crash,
                            "hang" => ChurnMode::Hang,
                            "disconnect" => ChurnMode::Disconnect,
                            other => {
                                return Err(ScenarioError::BadValue {
                                    line,
                                    key: "mode".into(),
                                    msg: format!(
                                        "{other:?} is not crash, hang or disconnect"
                                    ),
                                })
                            }
                        },
                    };
                    if mode == ChurnMode::Disconnect && outage_ms == 0 {
                        return Err(ScenarioError::BadValue {
                            line: bag_line,
                            key: "outage_ms".into(),
                            msg: "disconnect churn needs outage_ms > 0".into(),
                        });
                    }
                    if mode != ChurnMode::Disconnect && outage_ms > 0 {
                        return Err(ScenarioError::BadValue {
                            line: bag_line,
                            key: "outage_ms".into(),
                            msg: "outage_ms only applies to disconnect churn".into(),
                        });
                    }
                    churn.push(Churn { group: group_v.into(), fraction, leave_after_chunks, outage_ms, mode });
                }
            }
        }

        let name = name.ok_or(ScenarioError::MissingKey {
            section: "(top level)".into(),
            key: "name".into(),
        })?;
        if groups.is_empty() {
            return Err(ScenarioError::MissingKey {
                section: "(top level)".into(),
                key: "group".into(),
            });
        }
        for c in &churn {
            if !groups.iter().any(|g| g.name == c.group) {
                return Err(ScenarioError::UnknownGroup { group: c.group.clone() });
            }
        }
        Ok(Scenario { name, seed, description, master, groups, churn, faults })
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    const MINIMAL: &str = "name = tiny\n[group all]\ncount = 2\nspeed = 1e6\n";

    #[test]
    fn minimal_scenario_parses_with_defaults() {
        let s = Scenario::parse(MINIMAL).unwrap();
        assert_eq!(s.name, "tiny");
        assert_eq!(s.workers(), 2);
        assert_eq!(s.master, MasterSection::default());
        assert!(!s.has_faults());
    }

    #[test]
    fn unknown_key_is_an_error() {
        let bad = "name = x\n[group g]\ncount = 1\nspeed = 1e6\nspeeed = 2e6\n";
        match Scenario::parse(bad) {
            Err(ScenarioError::UnknownKey { key, section, line }) => {
                assert_eq!(key, "speeed");
                assert_eq!(section, "group g");
                assert_eq!(line, 5);
            }
            other => panic!("expected UnknownKey, got {other:?}"),
        }
    }

    #[test]
    fn unknown_section_is_an_error() {
        let bad = "name = x\n[grupo g]\ncount = 1\n";
        assert!(matches!(
            Scenario::parse(bad),
            Err(ScenarioError::UnknownSection { .. })
        ));
    }

    #[test]
    fn durations_require_units() {
        let bad = "name = x\n[group g]\ncount = 1\nspeed = 1e6\njoin_at = 30\n";
        assert!(matches!(Scenario::parse(bad), Err(ScenarioError::BadValue { .. })));
    }

    #[test]
    fn churn_must_reference_a_group() {
        let bad = "name = x\n[group g]\ncount = 1\nspeed = 1e6\n\
                   [churn]\ngroup = nope\nleave_after_chunks = 1\n";
        assert!(matches!(
            Scenario::parse(bad),
            Err(ScenarioError::UnknownGroup { .. })
        ));
    }

    #[test]
    fn render_round_trips() {
        let text = "name = rt\nseed = 7\ndescription = round trip\n\
                    [master]\nservice_time_us = 300\n\
                    [group fast]\ncount = 3\nspeed = uniform(1e6, 2e6)\npower = 2.5\n\
                    segment = 1\nload = 0s:1, 30s:2\n\
                    [group slow]\ncount = 5\nspeed = 1e6\njoin_at = 10s\n\
                    [churn]\ngroup = slow\nfraction = 0.5\nleave_after_chunks = 2\n\
                    [faults]\ndrop_prob = 0.25\n";
        let s = Scenario::parse(text).unwrap();
        let s2 = Scenario::parse(&s.render()).unwrap();
        assert_eq!(s, s2);
        let s3 = Scenario::parse(&s2.render()).unwrap();
        assert_eq!(s2, s3);
    }

    #[test]
    fn duplicate_keys_rejected() {
        let bad = "name = x\nname = y\n[group g]\ncount = 1\nspeed = 1e6\n";
        assert!(matches!(
            Scenario::parse(bad),
            Err(ScenarioError::DuplicateKey { .. })
        ));
    }
}
