//! Compiles a parsed [`Scenario`] down to the three structures the
//! simulator already consumes: [`ClusterSpec`], per-node
//! [`LoadTrace`]s and per-node [`FaultPlan`]s.
//!
//! Nothing here adds engine features — churn becomes crash / hang /
//! disconnect fault plans, autoscale joins become run-queue steps
//! (see [`SIM_STARTUP_DELAY_NS`]), and every random choice (speed
//! sampling, churn member selection) is drawn from [`ChaosRng`]
//! streams derived from the scenario seed, so the same `.scn` file
//! always compiles to the same cluster.

use crate::format::{ChurnMode, Scenario, SpeedDist};
use lss_core::fault::{ChaosRng, DisconnectPlan, FaultPlan, NetFaults};
use lss_core::power::VirtualPower;
use lss_sim::{
    ClusterSpec, LinkSpec, LoadTrace, MasterSpec, PeSpec, SimTime, TreeSimConfig, UnsupportedKnob,
};

/// A scenario compiled to simulator inputs: one entry per slave node,
/// in group declaration order.
#[derive(Debug, Clone)]
pub struct CompiledScenario {
    /// Scenario name (carried into sweep artifacts).
    pub name: String,
    /// The scenario seed (basis for per-cell simulation seeds).
    pub seed: u64,
    /// The cluster: master + all group nodes.
    pub cluster: ClusterSpec,
    /// Per-node run-queue traces.
    pub traces: Vec<LoadTrace>,
    /// Per-node fault plans (all healthy when the scenario has no
    /// churn and no lossy net).
    pub faults: Vec<FaultPlan>,
}

impl CompiledScenario {
    /// Number of slave nodes.
    pub fn workers(&self) -> usize {
        self.cluster.slaves.len()
    }

    /// Whether any node carries an active fault plan.
    pub fn has_faults(&self) -> bool {
        self.faults.iter().any(|f| !f.is_healthy())
    }

    /// Tree-scheduling config for this scenario, or a typed
    /// [`UnsupportedKnob`] when the scenario uses a knob the tree
    /// protocol cannot honor (fault/churn plans).
    pub fn tree_config(&self, weighted: bool) -> Result<TreeSimConfig, UnsupportedKnob> {
        TreeSimConfig::for_scenario(self.cluster.clone(), weighted, &self.faults)
    }
}

/// The simulator's default startup delay (`SimConfig::startup_delay`),
/// in ns. The engine issues a node's first request at
/// `startup_delay × Q(0)` — a loaded machine is proportionally slower
/// to join — so `join_at = T` compiles to `Q(0) = T / startup_delay`
/// stepping to `Q = 1` at `T`: the node's first request then arrives
/// at the declared join time, and it computes at full speed from the
/// moment it holds work.
pub const SIM_STARTUP_DELAY_NS: u64 = 100_000_000;

/// Splitmix-style mix of two words — stream derivation for sampling.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in `[0, 1)` from a [`ChaosRng`].
fn unit(rng: &mut ChaosRng) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

fn sample_speed(dist: SpeedDist, rng: &mut ChaosRng) -> f64 {
    match dist {
        SpeedDist::Const(v) => v,
        SpeedDist::Uniform(lo, hi) => lo + (hi - lo) * unit(rng),
        SpeedDist::Normal(mu, sigma) => {
            // Box–Muller; clamp to keep speeds physical.
            let u1 = unit(rng).max(1e-12);
            let u2 = unit(rng);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (mu + sigma * z).max(mu * 0.05).max(1.0)
        }
    }
}

impl Scenario {
    /// Compiles the scenario. Deterministic: same text + seed, same
    /// output, bit for bit.
    pub fn compile(&self) -> CompiledScenario {
        // 1. Sample every node's speed.
        let mut speeds: Vec<Vec<f64>> = Vec::with_capacity(self.groups.len());
        for (gi, g) in self.groups.iter().enumerate() {
            let mut rng = ChaosRng::new(mix(self.seed, 0xA5CE ^ gi as u64));
            speeds.push((0..g.count).map(|_| sample_speed(g.speed, &mut rng)).collect());
        }
        let min_speed = speeds
            .iter()
            .flatten()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .max(1.0);

        // 2. Build the PE list and per-node traces.
        let mut slaves = Vec::with_capacity(self.workers());
        let mut traces = Vec::with_capacity(self.workers());
        for (gi, g) in self.groups.iter().enumerate() {
            let link = LinkSpec {
                bandwidth: g.bandwidth,
                latency: SimTime::from_secs_f64(g.latency_us * 1e-6),
            };
            for (local, &speed) in speeds[gi].iter().enumerate() {
                let power = g.power.unwrap_or(speed / min_speed);
                slaves.push(PeSpec {
                    name: format!("{}{}", g.name, local),
                    speed,
                    virtual_power: VirtualPower::new(power),
                    link,
                    segment: g.segment,
                });
                traces.push(if let Some(join) = g.join_at {
                    let q0 = (join / SIM_STARTUP_DELAY_NS).clamp(2, u32::MAX as u64) as u32;
                    LoadTrace::from_steps(vec![(SimTime::ZERO, q0), (SimTime(join), 1)])
                } else if g.load.is_empty() {
                    LoadTrace::dedicated()
                } else {
                    LoadTrace::from_steps(
                        g.load.iter().map(|&(t, q)| (SimTime(t), q)).collect(),
                    )
                });
            }
        }

        // 3. Fault plans: global net faults + churn membership.
        let mut faults: Vec<FaultPlan> = (0..slaves.len())
            .map(|i| {
                let mut f = FaultPlan::healthy();
                if self.faults.is_active() {
                    f.net = NetFaults {
                        drop_prob: self.faults.drop_prob,
                        dup_prob: self.faults.dup_prob,
                        delay_ticks: self.faults.delay_us * 1_000,
                    };
                }
                f.seed = mix(self.seed, 0xFA17 ^ i as u64);
                f
            })
            .collect();
        for (ci, c) in self.churn.iter().enumerate() {
            // Group-local node offsets, picked by seeded partial
            // Fisher–Yates so the member set is deterministic.
            let (gi, g) = match self.groups.iter().enumerate().find(|(_, g)| g.name == c.group)
            {
                Some(x) => x,
                // Parse already validated the reference.
                None => continue,
            };
            let base: usize = self.groups[..gi].iter().map(|g| g.count).sum();
            let k = ((c.fraction * g.count as f64).round() as usize).clamp(1, g.count);
            let mut idx: Vec<usize> = (0..g.count).collect();
            let mut rng = ChaosRng::new(mix(self.seed, 0xC4_u64 ^ ((ci as u64) << 32) ^ gi as u64));
            for i in 0..k {
                let j = i + (rng.next_u64() as usize) % (g.count - i);
                idx.swap(i, j);
            }
            for &local in &idx[..k] {
                let plan = &mut faults[base + local];
                match c.mode {
                    ChurnMode::Crash => plan.crash_after_chunks = Some(c.leave_after_chunks),
                    ChurnMode::Hang => plan.hang_after_chunks = Some(c.leave_after_chunks),
                    ChurnMode::Disconnect => {
                        plan.disconnect = Some(DisconnectPlan {
                            after_chunks: c.leave_after_chunks,
                            outage_ticks: c.outage_ms * 1_000_000,
                        })
                    }
                }
            }
        }
        CompiledScenario {
            name: self.name.clone(),
            seed: self.seed,
            cluster: ClusterSpec { master: self.master_spec(), slaves },
            traces,
            faults,
        }
    }

    fn master_spec(&self) -> MasterSpec {
        MasterSpec {
            service_time: SimTime::from_secs_f64(self.master.service_time_us * 1e-6),
            rx_bandwidth: self.master.rx_bandwidth,
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    fn scn(text: &str) -> Scenario {
        Scenario::parse(text).unwrap()
    }

    #[test]
    fn compile_is_deterministic() {
        let text = "name = det\nseed = 9\n[group a]\ncount = 50\nspeed = uniform(1e6, 3e6)\n\
                    [churn]\ngroup = a\nfraction = 0.2\nleave_after_chunks = 4\n";
        let a = scn(text).compile();
        let b = scn(text).compile();
        assert_eq!(a.cluster.slaves.len(), b.cluster.slaves.len());
        for (x, y) in a.cluster.slaves.iter().zip(&b.cluster.slaves) {
            assert_eq!(x.speed.to_bits(), y.speed.to_bits());
        }
        let crashed = |c: &CompiledScenario| -> Vec<usize> {
            c.faults
                .iter()
                .enumerate()
                .filter(|(_, f)| f.crash_after_chunks.is_some())
                .map(|(i, _)| i)
                .collect()
        };
        assert_eq!(crashed(&a), crashed(&b));
        assert_eq!(crashed(&a).len(), 10, "20% of 50 nodes churn");
    }

    #[test]
    fn auto_power_tracks_speed() {
        let c = scn("name = p\n[group fast]\ncount = 1\nspeed = 3e6\n\
                     [group slow]\ncount = 1\nspeed = 1e6\n")
        .compile();
        assert!((c.cluster.slaves[0].virtual_power.get() - 3.0).abs() < 1e-9);
        assert!((c.cluster.slaves[1].virtual_power.get() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn join_at_becomes_a_load_step() {
        let c = scn("name = j\n[group late]\ncount = 1\nspeed = 1e6\njoin_at = 10s\n").compile();
        // Q(0) = join / startup_delay, so the engine's kick-off rule
        // (first request at startup_delay × Q(0)) lands at 10 s.
        assert_eq!(c.traces[0].q_at(SimTime::ZERO), 100);
        assert_eq!(c.traces[0].q_at(SimTime::from_secs_f64(11.0)), 1);
    }

    #[test]
    fn healthy_scenario_compiles_healthy_plans() {
        let c = scn("name = h\n[group a]\ncount = 3\nspeed = 1e6\n").compile();
        assert!(!c.has_faults());
        assert!(c.tree_config(true).is_ok());
    }

    #[test]
    fn tree_rejects_churn_with_typed_error() {
        let c = scn("name = t\n[group a]\ncount = 4\nspeed = 1e6\n\
                     [churn]\ngroup = a\nfraction = 0.5\nleave_after_chunks = 1\n")
        .compile();
        match c.tree_config(false) {
            Err(UnsupportedKnob::Faults { worker }) => assert!(worker < 4),
            other => panic!("expected UnsupportedKnob::Faults, got {other:?}"),
        }
    }
}
