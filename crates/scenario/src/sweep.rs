//! The scheme-family × scenario sweep driver.
//!
//! A sweep runs every scheme over every scenario on a thread pool,
//! each cell with a seed derived deterministically from
//! `(base_seed, scenario, scheme)`, and reports makespan, computation
//! CoV and the communication share of total slave time per cell. The
//! JSON artifact is byte-stable: same spec ⇒ the same file, bit for
//! bit, regardless of thread interleaving — which is what lets CI diff
//! a re-run instead of eyeballing it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::compile::CompiledScenario;
use crate::format::Scenario;
use lss_core::SchemeKind;
use lss_sim::{simulate, simulate_tree, SimConfig, SimTime};
use lss_workloads::UniformLoop;

/// One scheme column of a sweep: a self-scheduling kind or a tree run.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepScheme {
    /// A [`SchemeKind`] driven through the request/grant engine.
    Kind(SchemeKind),
    /// Tree scheduling (equal or weighted initial allocation).
    Tree {
        /// Weight the initial allocation by virtual power.
        weighted: bool,
    },
}

/// Parses a CLI-style scheme name (`"css:16"`, `"dtss"`,
/// `"trees-weighted"`, …) into a [`SweepScheme`].
pub fn parse_sweep_scheme(s: &str) -> Result<SweepScheme, String> {
    if s == "trees" {
        return Ok(SweepScheme::Tree { weighted: false });
    }
    if s == "trees-weighted" {
        return Ok(SweepScheme::Tree { weighted: true });
    }
    let (name, param) = match s.split_once(':') {
        Some((n, p)) => (n, Some(p)),
        None => (s, None),
    };
    let num = |default: u64| -> Result<u64, String> {
        match param {
            None => Ok(default),
            Some(p) => p.parse().map_err(|_| format!("invalid scheme parameter {p:?}")),
        }
    };
    let kind = match name {
        "s" => SchemeKind::Static,
        "ss" => SchemeKind::Pure,
        "css" => SchemeKind::Css { k: num(1)?.max(1) },
        "gss" => SchemeKind::Gss { min_chunk: num(1)?.max(1) },
        "tss" => SchemeKind::Tss,
        "fss" => SchemeKind::Fss,
        "fiss" => SchemeKind::Fiss { sigma: num(3)?.max(2) as u32 },
        "tfss" => SchemeKind::Tfss,
        "wf" => SchemeKind::Wf,
        "dtss" => SchemeKind::Dtss,
        "dfss" => SchemeKind::Dfss,
        "dfiss" => SchemeKind::Dfiss { sigma: num(3)?.max(2) as u32 },
        "dtfss" => SchemeKind::Dtfss,
        other => return Err(format!("unknown scheme {other:?}")),
    };
    Ok(SweepScheme::Kind(kind))
}

/// What to sweep.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Scheme labels, CLI syntax (`"gss"`, `"css:64"`, …).
    pub schemes: Vec<String>,
    /// Parsed scenarios (columns of the grid).
    pub scenarios: Vec<Scenario>,
    /// Loop size per node: each cell runs `iters_per_pe × p`
    /// iterations, so scenarios of very different size stay comparable.
    pub iters_per_pe: u64,
    /// Uniform per-iteration cost in basic ops.
    pub unit_cost: u64,
    /// Worker threads (`0` = number of CPUs).
    pub threads: usize,
    /// Base seed; each cell derives its own from this plus its labels.
    pub base_seed: u64,
}

impl SweepSpec {
    /// A spec with the default workload shape (50 iterations per PE,
    /// 200k basic ops each — ~0.1 s on a paper-fast PE).
    pub fn new(schemes: Vec<String>, scenarios: Vec<Scenario>) -> Self {
        SweepSpec {
            schemes,
            scenarios,
            iters_per_pe: 50,
            unit_cost: 200_000,
            threads: 0,
            base_seed: 42,
        }
    }
}

/// Metrics of one successfully simulated cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellMetrics {
    /// Master-observed makespan, seconds.
    pub makespan_s: f64,
    /// Coefficient of variation of per-PE computation times.
    pub cov: f64,
    /// `ΣT_com / Σ(T_com + T_wait + T_comp)` across PEs.
    pub tcom_share: f64,
    /// Scheduling steps (chunks served).
    pub steps: u64,
    /// Plans made by a distributed master (0 = non-distributed).
    pub plans: u32,
    /// Fault events logged during the run.
    pub fault_events: u64,
}

/// One cell of the grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Scenario name.
    pub scenario: String,
    /// Scheme label.
    pub scheme: String,
    /// Number of slave nodes.
    pub workers: usize,
    /// Total loop iterations simulated.
    pub iters: u64,
    /// The cell's derived seed.
    pub seed: u64,
    /// Metrics, or why the cell could not run (e.g. tree × churn).
    pub result: Result<CellMetrics, String>,
}

/// A finished sweep.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Echo of the spec (workload shape + seed).
    pub base_seed: u64,
    /// Iterations per PE.
    pub iters_per_pe: u64,
    /// Per-iteration cost.
    pub unit_cost: u64,
    /// Scheme labels, in spec order.
    pub schemes: Vec<String>,
    /// Scenario names, in spec order.
    pub scenarios: Vec<String>,
    /// Cells, scenario-major (all schemes of scenario 0 first).
    pub cells: Vec<SweepCell>,
}

/// FNV-1a over bytes — stable string hashing for seed derivation.
fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic per-cell seed.
pub fn cell_seed(base: u64, scenario: &str, scheme: &str) -> u64 {
    mix(mix(base, fnv(scenario.as_bytes())), fnv(scheme.as_bytes()))
}

fn run_cell(
    scheme: &SweepScheme,
    label: &str,
    compiled: &CompiledScenario,
    spec: &SweepSpec,
) -> SweepCell {
    let p = compiled.workers();
    let iters = spec.iters_per_pe * p as u64;
    let seed = cell_seed(spec.base_seed, &compiled.name, label);
    let workload = UniformLoop::new(iters, spec.unit_cost);
    let result = match scheme {
        SweepScheme::Tree { weighted } => match compiled.tree_config(*weighted) {
            Err(e) => Err(e.to_string()),
            Ok(cfg) => {
                let report = simulate_tree(&cfg, &workload, &compiled.traces);
                Ok(metrics_of(&report))
            }
        },
        SweepScheme::Kind(kind) => {
            let cfg = SimConfig::new(compiled.cluster.clone(), *kind)
                .with_jitter(SimTime::from_millis(20), seed)
                .with_faults(compiled.faults.clone());
            let report = simulate(&cfg, &workload, &compiled.traces);
            Ok(metrics_of(&report))
        }
    };
    SweepCell {
        scenario: compiled.name.clone(),
        scheme: label.to_string(),
        workers: p,
        iters,
        seed,
        result,
    }
}

fn metrics_of(report: &lss_metrics::RunReport) -> CellMetrics {
    let com: f64 = report.per_pe.iter().map(|b| b.t_com).sum();
    let total: f64 = report.per_pe.iter().map(|b| b.total()).sum();
    CellMetrics {
        makespan_s: report.t_p,
        cov: report.comp_imbalance(),
        tcom_share: if total > 0.0 { com / total } else { 0.0 },
        steps: report.scheduling_steps,
        plans: report.plans,
        fault_events: report.faults.len() as u64,
    }
}

/// Runs the full grid across threads. Cell order in the report is
/// deterministic (scenario-major, spec order) regardless of the number
/// of threads or their interleaving.
pub fn run_sweep(spec: &SweepSpec) -> Result<SweepReport, String> {
    let schemes: Vec<(String, SweepScheme)> = spec
        .schemes
        .iter()
        .map(|s| parse_sweep_scheme(s).map(|k| (s.clone(), k)))
        .collect::<Result<_, _>>()?;
    if schemes.is_empty() {
        return Err("sweep needs at least one scheme".into());
    }
    if spec.scenarios.is_empty() {
        return Err("sweep needs at least one scenario".into());
    }
    let compiled: Vec<CompiledScenario> = spec.scenarios.iter().map(|s| s.compile()).collect();
    {
        let mut names: Vec<&str> = compiled.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        if names.len() != compiled.len() {
            return Err("scenario names must be unique within a sweep".into());
        }
    }

    let n_cells = compiled.len() * schemes.len();
    let slots: Mutex<Vec<Option<SweepCell>>> = Mutex::new(vec![None; n_cells]);
    let next = AtomicUsize::new(0);
    let threads = if spec.threads == 0 {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    } else {
        spec.threads
    }
    .min(n_cells)
    .max(1);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_cells {
                    break;
                }
                let (sc_i, sch_i) = (i / schemes.len(), i % schemes.len());
                let (label, scheme) = &schemes[sch_i];
                let cell = run_cell(scheme, label, &compiled[sc_i], spec);
                if let Ok(mut slots) = slots.lock() {
                    slots[i] = Some(cell);
                }
            });
        }
    });

    let cells: Vec<SweepCell> = slots
        .into_inner()
        .map_err(|_| "a sweep worker panicked".to_string())?
        .into_iter()
        .collect::<Option<Vec<_>>>()
        .ok_or("a sweep cell never finished")?;

    Ok(SweepReport {
        base_seed: spec.base_seed,
        iters_per_pe: spec.iters_per_pe,
        unit_cost: spec.unit_cost,
        schemes: spec.schemes.clone(),
        scenarios: compiled.iter().map(|c| c.name.clone()).collect(),
        cells,
    })
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl SweepReport {
    /// Serializes to the `lss-sweep-v1` JSON schema. Byte-stable: keys
    /// in fixed order, floats at fixed precision, cells in
    /// deterministic grid order — two runs of the same spec diff clean.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"lss-sweep-v1\",\n");
        out.push_str(&format!("  \"base_seed\": {},\n", self.base_seed));
        out.push_str(&format!("  \"iters_per_pe\": {},\n", self.iters_per_pe));
        out.push_str(&format!("  \"unit_cost\": {},\n", self.unit_cost));
        let quoted = |v: &[String]| -> String {
            v.iter()
                .map(|s| format!("\"{}\"", json_escape(s)))
                .collect::<Vec<_>>()
                .join(", ")
        };
        out.push_str(&format!("  \"schemes\": [{}],\n", quoted(&self.schemes)));
        out.push_str(&format!("  \"scenarios\": [{}],\n", quoted(&self.scenarios)));
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let tail = match &c.result {
                Ok(m) => format!(
                    "\"makespan_s\": {:.6}, \"cov\": {:.6}, \"tcom_share\": {:.6}, \
                     \"steps\": {}, \"plans\": {}, \"fault_events\": {}",
                    m.makespan_s, m.cov, m.tcom_share, m.steps, m.plans, m.fault_events
                ),
                Err(e) => format!("\"error\": \"{}\"", json_escape(e)),
            };
            out.push_str(&format!(
                "    {{\"scenario\": \"{}\", \"scheme\": \"{}\", \"workers\": {}, \
                 \"iters\": {}, \"seed\": {}, {}}}{}\n",
                json_escape(&c.scenario),
                json_escape(&c.scheme),
                c.workers,
                c.iters,
                c.seed,
                tail,
                if i + 1 < self.cells.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// The comparison table: rows = schemes, columns = scenarios, cell
    /// = `makespan (cov, T_com share)`.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# Sweep: {} schemes x {} scenarios\n\n",
            self.schemes.len(),
            self.scenarios.len()
        ));
        out.push_str(&format!(
            "Workload: uniform, {} iterations per PE at {} basic ops each; \
             base seed {}. Cell format: `makespan_s (cov / T_com share)`.\n\n",
            self.iters_per_pe, self.unit_cost, self.base_seed
        ));
        out.push_str("| scheme |");
        for sc in &self.scenarios {
            let workers = self
                .cells
                .iter()
                .find(|c| &c.scenario == sc)
                .map_or(0, |c| c.workers);
            out.push_str(&format!(" {sc} (p={workers}) |"));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &self.scenarios {
            out.push_str("---|");
        }
        out.push('\n');
        for scheme in &self.schemes {
            out.push_str(&format!("| `{scheme}` |"));
            for sc in &self.scenarios {
                let cell = self
                    .cells
                    .iter()
                    .find(|c| &c.scenario == sc && &c.scheme == scheme);
                match cell.map(|c| &c.result) {
                    Some(Ok(m)) => out.push_str(&format!(
                        " {:.2}s ({:.3} / {:.1}%) |",
                        m.makespan_s,
                        m.cov,
                        m.tcom_share * 100.0
                    )),
                    Some(Err(_)) => out.push_str(" unsupported |"),
                    None => out.push_str(" — |"),
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Validates a `lss-sweep-v1` artifact: schema marker, required
/// per-cell keys, grid consistency. Returns the number of cells.
pub fn validate_sweep_json(text: &str) -> Result<usize, String> {
    use lss_trace::chrome::{parse_json, Json};
    let doc = parse_json(text)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing \"schema\"")?;
    if schema != "lss-sweep-v1" {
        return Err(format!("unexpected schema {schema:?}"));
    }
    for key in ["base_seed", "iters_per_pe", "unit_cost"] {
        doc.get(key)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("missing numeric {key:?}"))?;
    }
    let schemes = doc
        .get("schemes")
        .and_then(Json::as_arr)
        .ok_or("missing \"schemes\" array")?;
    let scenarios = doc
        .get("scenarios")
        .and_then(Json::as_arr)
        .ok_or("missing \"scenarios\" array")?;
    let cells = doc
        .get("cells")
        .and_then(Json::as_arr)
        .ok_or("missing \"cells\" array")?;
    if cells.len() != schemes.len() * scenarios.len() {
        return Err(format!(
            "expected {} cells ({} schemes x {} scenarios), found {}",
            schemes.len() * scenarios.len(),
            schemes.len(),
            scenarios.len(),
            cells.len()
        ));
    }
    for (i, cell) in cells.iter().enumerate() {
        for key in ["scenario", "scheme"] {
            cell.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("cell {i}: missing string {key:?}"))?;
        }
        for key in ["workers", "iters", "seed"] {
            cell.get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("cell {i}: missing numeric {key:?}"))?;
        }
        let has_metrics = ["makespan_s", "cov", "tcom_share", "steps"]
            .iter()
            .all(|k| cell.get(k).and_then(Json::as_num).is_some());
        let has_error = cell.get("error").and_then(Json::as_str).is_some();
        if !has_metrics && !has_error {
            return Err(format!("cell {i}: neither full metrics nor an error"));
        }
    }
    Ok(cells.len())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    fn tiny_scenarios() -> Vec<Scenario> {
        let a = "name = tiny-a\n[group g]\ncount = 2\nspeed = 2e6\n";
        let b = "name = tiny-b\n[group g]\ncount = 3\nspeed = uniform(1e6, 2e6)\n";
        vec![Scenario::parse(a).unwrap(), Scenario::parse(b).unwrap()]
    }

    #[test]
    fn sweep_json_is_byte_identical_across_runs() {
        let mut spec = SweepSpec::new(vec!["gss".into(), "tfss".into()], tiny_scenarios());
        spec.iters_per_pe = 20;
        let a = run_sweep(&spec).unwrap().to_json();
        spec.threads = 1;
        let b = run_sweep(&spec).unwrap().to_json();
        assert_eq!(a, b, "thread count must not leak into the artifact");
    }

    #[test]
    fn sweep_artifact_validates() {
        let spec = SweepSpec::new(vec!["s".into(), "dtss".into()], tiny_scenarios());
        let json = run_sweep(&spec).unwrap().to_json();
        assert_eq!(validate_sweep_json(&json).unwrap(), 4);
        assert!(validate_sweep_json("{}").is_err());
    }

    #[test]
    fn tree_cell_on_churn_scenario_reports_unsupported() {
        let churny = "name = churny\n[group g]\ncount = 4\nspeed = 1e6\n\
                      [churn]\ngroup = g\nfraction = 0.5\nleave_after_chunks = 1\n";
        let spec = SweepSpec::new(
            vec!["trees".into()],
            vec![Scenario::parse(churny).unwrap()],
        );
        let report = run_sweep(&spec).unwrap();
        assert!(report.cells[0].result.is_err());
        let json = report.to_json();
        assert!(json.contains("\"error\""));
        validate_sweep_json(&json).unwrap();
    }

    #[test]
    fn markdown_table_has_all_cells() {
        let spec = SweepSpec::new(vec!["gss".into(), "wf".into()], tiny_scenarios());
        let md = run_sweep(&spec).unwrap().to_markdown();
        assert!(md.contains("| `gss` |"));
        assert!(md.contains("| `wf` |"));
        assert!(md.contains("tiny-a"));
        assert!(md.contains("tiny-b"));
    }
}
