//! Property suite for the sharded master: whatever the scheme, shard
//! count, transport, or injected chaos, the N shards must dispense an
//! *exact partition* of `[0, I)` — every iteration computed, first
//! result wins, nothing lost across steals, crashes, or reconnects.
//!
//! Runs are real threaded executions over channels (and TCP for a
//! smaller sample — sockets are slower to spin up), so case counts are
//! deliberately low; each case is itself a whole-cluster run.

use std::sync::Arc;

use lss_core::fault::{FaultPlan, LeaseConfig};
use lss_core::SchemeKind;
use lss_runtime::{run_sharded_loop, ShardHarnessConfig, Transport, WorkerSpec};
use lss_trace::EventKind;
use lss_workloads::{UniformLoop, Workload};
use proptest::prelude::*;

/// Every closed-form scheme the replicas support, weighted evenly;
/// `knob` feeds the scheme's own parameter where it has one.
fn scheme_strategy() -> impl Strategy<Value = SchemeKind> {
    (0u64..7, 1u64..16).prop_map(|(pick, knob)| match pick {
        0 => SchemeKind::Pure,
        1 => SchemeKind::Css { k: knob },
        2 => SchemeKind::Gss { min_chunk: 1 + knob % 3 },
        3 => SchemeKind::Tss,
        4 => SchemeKind::Fss,
        5 => SchemeKind::Fiss { sigma: 2 + (knob % 3) as u32 },
        _ => SchemeKind::Tfss,
    })
}

/// Leases short enough that reclaim fires within a test run.
fn tight_lease() -> LeaseConfig {
    LeaseConfig {
        base_ticks: 50_000_000, // 50 ms
        default_ticks_per_iter: 0,
        grace: 8.0,
        dead_after_ticks: 30_000_000,
        max_speculations: 2,
    }
}

/// A mixed-speed cluster of `p` workers, every third one slow.
fn cluster(p: usize) -> Vec<WorkerSpec> {
    (0..p).map(|w| if w % 3 == 2 { WorkerSpec::slow() } else { WorkerSpec::fast() }).collect()
}

/// The invariant every run must uphold: `results` is exactly
/// `execute(0..I)` — each iteration computed once and kept once.
fn assert_exact_partition(out: &lss_runtime::ShardHarnessOutcome, w: &UniformLoop) {
    assert_eq!(out.results.len() as u64, w.len(), "result vector must cover [0, I)");
    for i in 0..w.len() {
        assert_eq!(out.results[i as usize], w.execute(i), "iteration {i} lost or corrupted");
    }
    let served: u64 = out.iterations_served.iter().sum();
    assert!(
        served >= w.len(),
        "served {served} < {} iterations: grants vanished",
        w.len()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Healthy cluster, arbitrary scheme/shards/workers, channels:
    /// the shards tile [0, I) exactly, and when workers cannot cover
    /// every shard by homing alone, work-stealing moves the rest.
    #[test]
    fn sharded_channels_partition_is_exact(
        scheme in scheme_strategy(),
        shards in 1usize..6,
        workers in 1usize..5,
        total in 40u64..320,
    ) {
        let w = Arc::new(UniformLoop::new(total, 200));
        let cfg = ShardHarnessConfig::new(scheme, shards, cluster(workers));
        let out = run_sharded_loop(&cfg, Arc::clone(&w));
        assert_exact_partition(&out, &w);
        prop_assert!(out.failed_workers.is_empty());
        prop_assert!(out.faults.is_empty(), "{}", out.faults.render());
        if shards > workers {
            // Some shards have no home worker: their chunks can only
            // flow out through steals.
            prop_assert!(out.steals > 0, "unhomed shards require steals");
        }
    }

    /// Self-scheduled grants (lock-free counter + replicated formula)
    /// partition [0, I) exactly too, with zero steals — workers roam
    /// counters instead.
    #[test]
    fn self_sched_partition_is_exact(
        scheme in scheme_strategy(),
        shards in 1usize..5,
        workers in 1usize..5,
        total in 40u64..320,
    ) {
        let w = Arc::new(UniformLoop::new(total, 200));
        let cfg = ShardHarnessConfig::self_sched(scheme, shards, cluster(workers));
        let out = run_sharded_loop(&cfg, Arc::clone(&w));
        assert_exact_partition(&out, &w);
        prop_assert!(out.failed_workers.is_empty());
        prop_assert!(out.self_grants > 0, "fresh chunks must come off the counters");
        prop_assert_eq!(out.steals, 0);
    }

    /// Crash chaos: one worker dies holding a claim. Lease expiry (or
    /// drain-reclaim on the self path) must requeue the orphaned chunk
    /// and survivors must still produce every iteration exactly once.
    #[test]
    fn crash_chaos_preserves_the_partition(
        scheme in scheme_strategy(),
        shards in 1usize..4,
        crash_after in 1u64..4,
        self_sched in any::<bool>(),
        total in 60u64..240,
    ) {
        let w = Arc::new(UniformLoop::new(total, 300));
        let workers = vec![
            WorkerSpec::fast(),
            WorkerSpec::fast(),
            WorkerSpec::fast().with_fault(FaultPlan::crash_after(crash_after)),
        ];
        let mut cfg = if self_sched {
            ShardHarnessConfig::self_sched(scheme, shards, workers)
        } else {
            ShardHarnessConfig::new(scheme, shards, workers)
        };
        cfg.lease = tight_lease();
        let out = run_sharded_loop(&cfg, Arc::clone(&w));
        assert_exact_partition(&out, &w);
        // Coarse schemes can finish the victim before its fuse burns;
        // when the crash does fire, only the planned victim may fail.
        prop_assert!(
            out.failed_workers.is_empty() || out.failed_workers == vec![2],
            "unplanned failures: {:?}",
            out.failed_workers
        );
    }

    /// Reconnect chaos: a worker drops its link mid-run and comes back.
    /// The shard must treat the outage like a lease loss, re-admit the
    /// worker, and keep the partition exact with first-result-wins
    /// absorbing any duplicated chunk.
    #[test]
    fn reconnect_chaos_preserves_the_partition(
        scheme in scheme_strategy(),
        shards in 1usize..4,
        drop_after in 1u64..4,
        total in 60u64..240,
    ) {
        let w = Arc::new(UniformLoop::new(total, 300));
        let workers = vec![
            WorkerSpec::fast(),
            WorkerSpec::fast().with_fault(FaultPlan::reconnect_after(drop_after, 0)),
            WorkerSpec::fast(),
        ];
        let mut cfg = ShardHarnessConfig::new(scheme, shards, workers);
        cfg.lease = tight_lease();
        let out = run_sharded_loop(&cfg, Arc::clone(&w));
        assert_exact_partition(&out, &w);
    }
}

proptest! {
    // TCP spins real sockets per case: keep the sample small.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The same exactness holds over TCP, on both grant paths.
    #[test]
    fn tcp_partition_is_exact(
        scheme in scheme_strategy(),
        shards in 1usize..4,
        self_sched in any::<bool>(),
        total in 40u64..160,
    ) {
        let w = Arc::new(UniformLoop::new(total, 200));
        let workers = cluster(2);
        let mut cfg = if self_sched {
            ShardHarnessConfig::self_sched(scheme, shards, workers)
        } else {
            ShardHarnessConfig::new(scheme, shards, workers)
        };
        cfg.transport = Transport::Tcp;
        let out = run_sharded_loop(&cfg, Arc::clone(&w));
        assert_exact_partition(&out, &w);
        prop_assert!(out.failed_workers.is_empty());
    }

    /// Traced sharded runs speak the same trace grammar as unsharded
    /// ones: the Chrome export validates, every worker joins a shard,
    /// and steal/self-grant counters agree with their events.
    #[test]
    fn traced_runs_validate_the_grammar(
        scheme in scheme_strategy(),
        shards in 2usize..5,
        self_sched in any::<bool>(),
        total in 40u64..160,
    ) {
        let workers = cluster(2);
        let p = workers.len();
        let w = Arc::new(UniformLoop::new(total, 200));
        let cfg = if self_sched {
            ShardHarnessConfig::self_sched(scheme, shards, workers)
        } else {
            ShardHarnessConfig::new(scheme, shards, workers)
        };
        let out = run_sharded_loop(&cfg.traced(), Arc::clone(&w));
        assert_exact_partition(&out, &w);
        let trace = out.trace.expect("tracing was on");
        let joined = trace.count_kind(|k| matches!(k, EventKind::ShardJoined { .. }));
        prop_assert!(joined >= p, "every worker must join its home shard");
        let stole = trace.count_kind(|k| matches!(k, EventKind::ShardStole { .. }));
        prop_assert_eq!(stole as u64, out.steals);
        let self_granted =
            trace.count_kind(|k| matches!(k, EventKind::SelfGranted { .. }));
        prop_assert_eq!(self_granted as u64, out.self_grants);
        let json = lss_trace::to_chrome_json(&trace);
        let events = lss_trace::validate_chrome_trace(&json).expect("valid Chrome trace");
        prop_assert!(events > 0);
    }
}
