//! Sharded master loop + harness: N master shards (work-stealing) or
//! worker self-calculated chunks, over channels and TCP.
//!
//! Two pieces live here:
//!
//! - [`run_sharded_master`] — the fault-tolerant master loop of
//!   [`crate::master::run_resilient_master_traced`] re-targeted at an
//!   [`lss_shard::ShardSet`]: same inbound protocol, same fault log,
//!   same termination contract, but grants fan out across shards (with
//!   work-stealing) instead of funnelling through one dispenser.
//! - [`run_sharded_loop`] — the one-call harness: spawns the master
//!   and `p` emulated workers on channels or localhost TCP. In
//!   [`GrantMode::Sharded`] workers run the standard slave loop
//!   ([`crate::worker::run_worker`], full chaos support). In
//!   [`GrantMode::SelfSched`] workers claim fresh chunks lock-free
//!   from the shared counters ([`lss_shard::SelfWorker`]) and use the
//!   master connection only to deliver results and absorb recovered
//!   work. The in-process counter stands in for MPI passive-target
//!   RMA, which is why the set is shared directly while results still
//!   cross the real transport.

use std::sync::Arc;
use std::time::{Duration, Instant};

use lss_core::chunk::Chunk;
use lss_core::fault::{ChaosRng, LeaseConfig};
use lss_core::master::{Assignment, SchemeKind};
use lss_metrics::{FaultEvent, FaultKind, FaultLog};
use lss_shard::{GrantMode, SelfWorker, ShardSet, ShardSetConfig, ShardStats};
use lss_trace::{ClockDomain, EventKind, SharedSink, Trace, TraceEvent, TraceMeta};
use lss_workloads::Workload;

use crate::harness::{Transport, WorkerSpec};
use crate::master::ResilientOutcome;
use crate::protocol::{ChunkResult, Reply, Request};
use crate::transport::channels::channel_transport;
use crate::transport::evented::evented_listen;
use crate::transport::tcp::{tcp_listen, TcpWorker};
use crate::transport::{Inbound, MasterTransport, TransportError, WorkerTransport};
use crate::worker::{run_worker, WorkerConfig};

/// Appends to the fault log and mirrors the entry onto the trace
/// timeline (kinds the set already emits itself map to `None`).
fn log_fault(faults: &mut FaultLog, trace: &SharedSink, ev: FaultEvent) {
    if trace.enabled() {
        if let Some(t) = ev.to_trace() {
            trace.record(t);
        }
    }
    faults.push(ev);
}

/// Runs the sharded master until every iteration is complete and every
/// worker is finished, gone, or given up on — the same contract as
/// [`crate::master::run_resilient_master_traced`], with grants served
/// by the [`ShardSet`] (home shard → steal → reclaim → speculate).
///
/// The set must have been built with the same `trace` sink, so shard
/// events (joins, steals, self-grants) and loop events share one
/// timeline.
pub fn run_sharded_master<T: MasterTransport>(
    mut transport: T,
    set: &ShardSet,
    poll_interval: Duration,
    trace: SharedSink,
) -> Result<ResilientOutcome, TransportError> {
    let p = set.workers();
    assert!(p >= 1, "need at least one worker");
    let epoch = Instant::now();
    let traced = trace.enabled();
    let now_ns = {
        let trace = trace.clone();
        move || {
            if traced {
                trace.now_ns()
            } else {
                epoch.elapsed().as_nanos() as u64
            }
        }
    };
    let secs = |ns: u64| ns as f64 / 1e9;
    let mut seen = vec![false; p];

    let mut results: Vec<Option<u64>> = vec![None; set.total() as usize];
    let mut requests_served = 0u64;
    let mut duplicates_dropped = 0u64;
    let mut done = vec![false; p]; // told Finished
    let mut link_down = vec![false; p];
    let mut last_seen = vec![0u64; p];
    let mut faults = FaultLog::new();
    let lease_cfg: LeaseConfig = *set.lease_config();
    let silence_limit = lease_cfg.base_ticks.saturating_add(lease_cfg.dead_after_ticks);

    loop {
        let now = now_ns();

        // Expire overdue leases on every shard; the set requeues and
        // emits the lifecycle trace events itself.
        for exp in set.poll(now) {
            let l = exp.lease;
            log_fault(&mut faults, &trace,
                FaultEvent::new(secs(now), FaultKind::LeaseExpired, "lease deadline passed")
                    .on_worker(l.worker)
                    .on_chunk(l.chunk.start, l.chunk.len),
            );
            if !set.ledger().chunk_fully_complete(l.chunk) {
                log_fault(&mut faults, &trace,
                    FaultEvent::new(secs(now), FaultKind::Requeued, "chunk returned to shard pool")
                        .on_worker(l.worker)
                        .on_chunk(l.chunk.start, l.chunk.len),
                );
            }
            if exp.holder_dead {
                log_fault(&mut faults, &trace,
                    FaultEvent::new(secs(now), FaultKind::WorkerDead, "silent past grace window")
                        .on_worker(l.worker),
                );
            }
        }

        // Termination: every iteration completed AND every worker is
        // finished, gone, or given up on.
        if set.all_complete()
            && (0..p).all(|w| {
                done[w]
                    || link_down[w]
                    || set.worker_is_dead(w)
                    || now.saturating_sub(last_seen[w]) > silence_limit
            })
        {
            break;
        }

        let timeout = match set.next_deadline() {
            Some(d) => poll_interval.min(Duration::from_nanos(d.saturating_sub(now).max(1))),
            None => poll_interval,
        };
        let event = match transport.recv_timeout(timeout) {
            Ok(ev) => ev,
            Err(e) if e.is_disconnect() => break, // every worker gone
            Err(e) => return Err(e),
        };

        match event {
            None => continue, // timeout: loop to poll leases
            Some(Inbound::Heartbeat { worker }) => {
                if worker >= p {
                    return Err(TransportError::UnknownWorker(worker));
                }
                let now = now_ns();
                last_seen[worker] = now;
                set.heartbeat(worker, now);
                if traced {
                    if !seen[worker] {
                        seen[worker] = true;
                        trace.record(
                            TraceEvent::new(now, EventKind::WorkerConnected).on_worker(worker),
                        );
                    }
                    trace.record(TraceEvent::new(now, EventKind::Heartbeat).on_worker(worker));
                }
            }
            Some(Inbound::Disconnected(w)) => {
                if w >= p {
                    return Err(TransportError::UnknownWorker(w));
                }
                if !done[w] && !link_down[w] {
                    let now = now_ns();
                    link_down[w] = true;
                    log_fault(&mut faults, &trace,
                        FaultEvent::new(secs(now), FaultKind::Disconnected, "link lost")
                            .on_worker(w),
                    );
                    for chunk in set.worker_disconnected(w, now) {
                        log_fault(&mut faults, &trace,
                            FaultEvent::new(
                                secs(now),
                                FaultKind::Requeued,
                                "chunk reclaimed from lost worker",
                            )
                            .on_worker(w)
                            .on_chunk(chunk.start, chunk.len),
                        );
                    }
                }
            }
            Some(Inbound::Reconnected(w)) => {
                if w >= p {
                    return Err(TransportError::UnknownWorker(w));
                }
                let now = now_ns();
                link_down[w] = false;
                last_seen[w] = now;
                set.worker_reconnected(w, now);
                log_fault(&mut faults, &trace,
                    FaultEvent::new(secs(now), FaultKind::Recovered, "worker reconnected")
                        .on_worker(w),
                );
            }
            Some(Inbound::Request(req)) => {
                let w = req.worker;
                if w >= p {
                    return Err(TransportError::UnknownWorker(w));
                }
                requests_served += 1;
                let now = now_ns();
                if traced && !seen[w] {
                    seen[w] = true;
                    trace.record(TraceEvent::new(now, EventKind::WorkerConnected).on_worker(w));
                }
                if set.worker_is_dead(w) {
                    log_fault(&mut faults, &trace,
                        FaultEvent::new(
                            secs(now),
                            FaultKind::Recovered,
                            "request from a worker declared dead",
                        )
                        .on_worker(w),
                    );
                }
                last_seen[w] = now;
                link_down[w] = false;

                if let Some(res) = &req.result {
                    if res.chunk.end() > set.total() {
                        return Err(TransportError::Malformed(format!(
                            "result for out-of-range chunk {:?}",
                            res.chunk
                        )));
                    }
                    // First result wins: write only still-empty slots.
                    for (offset, &v) in res.values.iter().enumerate() {
                        let idx = (res.chunk.start as usize) + offset;
                        if results[idx].is_none() {
                            results[idx] = Some(v);
                        }
                    }
                    let out = set.complete(w, res.chunk, now);
                    if out.duplicate {
                        duplicates_dropped += 1;
                        log_fault(&mut faults, &trace,
                            FaultEvent::new(
                                secs(now),
                                FaultKind::DuplicateDropped,
                                "iterations already completed elsewhere",
                            )
                            .on_worker(w)
                            .on_chunk(res.chunk.start, res.chunk.len),
                        );
                    }
                }

                let spec_before = set.speculative_grants();
                let assignment = set.grant(w, req.q, now);
                if set.speculative_grants() > spec_before {
                    if let Assignment::Chunk(c) = assignment {
                        log_fault(&mut faults, &trace,
                            FaultEvent::new(
                                secs(now),
                                FaultKind::Speculated,
                                "idle worker re-executes a straggler's chunk",
                            )
                            .on_worker(w)
                            .on_chunk(c.start, c.len),
                        );
                    }
                }
                if assignment == Assignment::Finished {
                    done[w] = true;
                }
                if transport.send(w, Reply { assignment }).is_err() {
                    // Vanished between request and reply: reclaim.
                    let now = now_ns();
                    done[w] = false;
                    link_down[w] = true;
                    log_fault(&mut faults, &trace,
                        FaultEvent::new(secs(now), FaultKind::Disconnected, "reply undeliverable")
                            .on_worker(w),
                    );
                    for chunk in set.worker_disconnected(w, now) {
                        log_fault(&mut faults, &trace,
                            FaultEvent::new(
                                secs(now),
                                FaultKind::Requeued,
                                "grant reclaimed after failed reply",
                            )
                            .on_worker(w)
                            .on_chunk(chunk.start, chunk.len),
                        );
                    }
                }
            }
        }
    }

    let failed_workers: Vec<usize> = (0..p).filter(|&w| !done[w]).collect();
    Ok(ResilientOutcome {
        results,
        requests_served,
        failed_workers,
        speculative_grants: set.speculative_grants(),
        duplicates_dropped,
        faults,
    })
}

/// Sharded-harness configuration.
#[derive(Debug, Clone)]
pub struct ShardHarnessConfig {
    /// Scheme under test (must have a closed-form formula).
    pub scheme: SchemeKind,
    /// Number of master shards.
    pub shards: usize,
    /// Fresh-chunk grant path.
    pub mode: GrantMode,
    /// The emulated PEs.
    pub workers: Vec<WorkerSpec>,
    /// Transport to wire up.
    pub transport: Transport,
    /// Lease policy for every shard.
    pub lease: LeaseConfig,
    /// Heartbeat interval while computing (`None` = no heartbeats).
    pub heartbeat_every: Option<Duration>,
    /// Master wake-up bound for lease polling.
    pub poll_interval: Duration,
    /// Trace sink shared by the set, the master loop and every worker.
    pub trace: SharedSink,
}

impl ShardHarnessConfig {
    /// Sharded (locked) grants over channels.
    pub fn new(scheme: SchemeKind, shards: usize, workers: Vec<WorkerSpec>) -> Self {
        ShardHarnessConfig {
            scheme,
            shards,
            mode: GrantMode::Sharded,
            workers,
            transport: Transport::Channels,
            lease: LeaseConfig::RUNTIME_DEFAULT,
            heartbeat_every: Some(Duration::from_millis(100)),
            poll_interval: Duration::from_millis(2),
            trace: SharedSink::disabled(),
        }
    }

    /// Self-scheduled grants over channels.
    pub fn self_sched(scheme: SchemeKind, shards: usize, workers: Vec<WorkerSpec>) -> Self {
        ShardHarnessConfig { mode: GrantMode::SelfSched, ..Self::new(scheme, shards, workers) }
    }

    /// Turns on tracing with a fresh default-capacity sink.
    pub fn traced(mut self) -> Self {
        self.trace = SharedSink::recording();
        self
    }
}

/// Everything a sharded run produced.
#[derive(Debug)]
pub struct ShardHarnessOutcome {
    /// Per-iteration results (first result wins under duplication).
    pub results: Vec<u64>,
    /// Workers that never reached clean termination.
    pub failed_workers: Vec<usize>,
    /// Fault-handling decisions, in time order.
    pub faults: FaultLog,
    /// Cross-shard steals performed.
    pub steals: u64,
    /// Chunks claimed over the lock-free self-scheduling path.
    pub self_grants: u64,
    /// Speculative re-executions granted.
    pub speculative_grants: u64,
    /// Results dropped by first-result-wins dedup.
    pub duplicates_dropped: u64,
    /// Iterations granted to each worker (all paths).
    pub iterations_served: Vec<u64>,
    /// Per-shard counters.
    pub shard_stats: Vec<ShardStats>,
    /// The run's event timeline (`None` when tracing was off).
    pub trace: Option<Trace>,
}

/// The self-scheduling slave loop: claim a chunk lock-free, compute
/// it, deliver the result over the transport, absorb any recovery
/// chunk the master hands back, repeat. Supports the crash-after-N-
/// chunks plan (the worker vanishes holding its claim); richer chaos
/// plans run the standard loop in [`GrantMode::Sharded`] instead.
fn run_self_sched_worker<T: WorkerTransport>(
    mut transport: T,
    mut sw: SelfWorker,
    cfg: &WorkerConfig,
    workload: &dyn Workload,
    first_request_sent: bool,
) -> Result<u64, TransportError> {
    let traced = cfg.trace.enabled();
    let epoch = Instant::now();
    // Claim timestamps only feed trace events, so a per-thread epoch is
    // fine when the shared (sink) clock is off.
    let now_ns =
        || if traced { cfg.trace.now_ns() } else { epoch.elapsed().as_nanos() as u64 };
    let mut rng = ChaosRng::new(cfg.fault.seed ^ (cfg.id as u64).wrapping_mul(0x9E37));
    let mut chunks = 0u64;
    let mut iters = 0u64;
    let mut pending: Option<ChunkResult> = None;
    let mut self_done = false;
    let mut skip_send = first_request_sent;
    let mut retry_attempt = 0u32;

    fn compute<T: WorkerTransport>(
        transport: &mut T,
        cfg: &WorkerConfig,
        workload: &dyn Workload,
        chunk: Chunk,
        iters: &mut u64,
    ) -> ChunkResult {
        if cfg.trace.enabled() {
            cfg.trace.record_now(
                TraceEvent::new(0, EventKind::Started)
                    .on_worker(cfg.id)
                    .on_chunk(chunk.start, chunk.len),
            );
        }
        let t0 = Instant::now();
        let reps = u64::from(cfg.slowdown) * u64::from(cfg.load.q());
        let mut last_hb = Instant::now();
        let values: Vec<u64> = chunk
            .iter()
            .map(|i| {
                let v = workload.execute(i);
                for _ in 1..reps {
                    std::hint::black_box(workload.execute(i));
                }
                if let Some(every) = cfg.heartbeat_every {
                    if last_hb.elapsed() >= every {
                        let _ = transport.send_heartbeat(cfg.id);
                        last_hb = Instant::now();
                    }
                }
                v
            })
            .collect();
        *iters += chunk.len;
        if cfg.trace.enabled() {
            let ns = t0.elapsed().as_nanos() as u64;
            cfg.trace.record_now(
                TraceEvent::new(0, EventKind::Comp { ns })
                    .on_worker(cfg.id)
                    .on_chunk(chunk.start, chunk.len),
            );
            cfg.trace.record_now(
                TraceEvent::new(0, EventKind::Completed)
                    .on_worker(cfg.id)
                    .on_chunk(chunk.start, chunk.len),
            );
        }
        ChunkResult::new(chunk, values)
    }

    loop {
        if !skip_send {
            // Hot path: claim and compute locally while the replicated
            // formulas still have fresh chunks. The ledger mark happens
            // at the master when the result lands (single marking
            // path), keeping the master's drain-reclaim window honest.
            if pending.is_none() && !self_done {
                match sw.next_chunk(now_ns()) {
                    Some((_, _, chunk)) => {
                        if cfg.fault.crash_after_chunks == Some(chunks) {
                            // Injected crash: vanish holding the claim;
                            // the master reclaims it by formula replay.
                            return Ok(iters);
                        }
                        pending = Some(compute(&mut transport, cfg, workload, chunk, &mut iters));
                        chunks += 1;
                    }
                    None => self_done = true,
                }
            }
            let t0 = Instant::now();
            transport.send_request(Request {
                worker: cfg.id,
                q: cfg.load.q(),
                result: pending.take(),
            })?;
            if traced {
                cfg.trace.record_now(
                    TraceEvent::new(0, EventKind::Comm { ns: t0.elapsed().as_nanos() as u64 })
                        .on_worker(cfg.id),
                );
            }
        } else {
            skip_send = false;
        }

        let t1 = Instant::now();
        let assignment = transport.recv_reply()?.assignment;
        if traced {
            cfg.trace.record_now(
                TraceEvent::new(0, EventKind::Wait { ns: t1.elapsed().as_nanos() as u64 })
                    .on_worker(cfg.id),
            );
        }
        match assignment {
            Assignment::Chunk(chunk) => {
                // Recovery work granted under a lease.
                if cfg.fault.crash_after_chunks == Some(chunks) {
                    return Ok(iters);
                }
                retry_attempt = 0;
                pending = Some(compute(&mut transport, cfg, workload, chunk, &mut iters));
                chunks += 1;
            }
            Assignment::Retry => {
                // Only pace down once local claims are exhausted —
                // until then every round trip carries a fresh result.
                if self_done && pending.is_none() {
                    let pause = cfg.retry.delay(retry_attempt, &mut rng);
                    retry_attempt = retry_attempt.saturating_add(1);
                    std::thread::sleep(pause);
                    if traced {
                        cfg.trace.record_now(
                            TraceEvent::new(0, EventKind::Wait { ns: pause.as_nanos() as u64 })
                                .on_worker(cfg.id),
                        );
                    }
                }
            }
            Assignment::Finished => return Ok(iters),
        }
    }
}

/// Dispatches one worker thread's body by grant mode.
fn drive_one<T: WorkerTransport>(
    wt: T,
    sw: Option<SelfWorker>,
    wcfg: &WorkerConfig,
    workload: &dyn Workload,
    first_request_sent: bool,
) -> Result<u64, TransportError> {
    match sw {
        Some(sw) => run_self_sched_worker(wt, sw, wcfg, workload, first_request_sent),
        None => run_worker(wt, wcfg, workload, first_request_sent).map(|s| s.iterations),
    }
}

/// Executes the full loop on a sharded master over the configured
/// transport and grant mode.
///
/// # Panics
/// On internal errors (master death, a healthy-plan worker failing,
/// a missing iteration result) and on unsupported configurations
/// (a scheme with no closed-form formula).
pub fn run_sharded_loop<W: Workload + 'static>(
    cfg: &ShardHarnessConfig,
    workload: Arc<W>,
) -> ShardHarnessOutcome {
    let p = cfg.workers.len();
    assert!(p >= 1, "need at least one worker");
    let set = Arc::new(
        ShardSet::new(
            ShardSetConfig {
                scheme: cfg.scheme,
                total: workload.len(),
                shards: cfg.shards,
                workers: p,
                mode: cfg.mode,
                lease: cfg.lease,
            },
            cfg.trace.clone(),
        )
        .expect("unsupported shard configuration"),
    );

    let worker_cfgs: Vec<WorkerConfig> = cfg
        .workers
        .iter()
        .enumerate()
        .map(|(id, spec)| WorkerConfig {
            id,
            slowdown: spec.slowdown,
            load: spec.load.clone(),
            retry: crate::backoff::BackoffPolicy::retry_default(),
            reconnect: crate::backoff::BackoffPolicy::reconnect_default(),
            fault: spec.fault.clone(),
            heartbeat_every: cfg.heartbeat_every,
            reply_timeout: None,
            trace: cfg.trace.clone(),
        })
        .collect();

    // A worker with an injected fault may legitimately end in a
    // transport error; a healthy worker may not.
    let finish = |id: usize, res: Result<u64, TransportError>| match res {
        Ok(iters) => iters,
        Err(_) if !cfg.workers[id].fault.is_healthy() => 0,
        Err(e) => panic!("healthy worker {id} failed: {e}"),
    };

    let outcome = match cfg.transport {
        Transport::Channels => {
            let (mt, wts) = channel_transport(p);
            let handles: Vec<_> = wts
                .into_iter()
                .zip(worker_cfgs)
                .map(|(wt, wcfg)| {
                    let wl = Arc::clone(&workload);
                    let sw = matches!(cfg.mode, GrantMode::SelfSched)
                        .then(|| set.self_worker(wcfg.id));
                    std::thread::spawn(move || {
                        let id = wcfg.id;
                        (id, drive_one(wt, sw, &wcfg, wl.as_ref(), false))
                    })
                })
                .collect();
            let outcome = run_sharded_master(mt, &set, cfg.poll_interval, cfg.trace.clone())
                .expect("master failed");
            for h in handles {
                let (id, res) = h.join().expect("worker panicked");
                finish(id, res);
            }
            outcome
        }
        Transport::Tcp | Transport::TcpEvented => {
            type AcceptFn = Box<
                dyn FnOnce(usize) -> Result<Box<dyn MasterTransport>, TransportError>,
            >;
            let (addr, accept): (std::net::SocketAddr, AcceptFn) =
                if cfg.transport == Transport::Tcp {
                    let listener = tcp_listen().expect("listen failed");
                    let addr = listener.addr;
                    (
                        addr,
                        Box::new(move |p| {
                            listener
                                .accept_workers(p)
                                .map(|m| Box::new(m) as Box<dyn MasterTransport>)
                        }),
                    )
                } else {
                    let listener = evented_listen().expect("listen failed");
                    let addr = listener.addr;
                    (
                        addr,
                        Box::new(move |p| {
                            listener
                                .accept_workers(p)
                                .map(|m| Box::new(m) as Box<dyn MasterTransport>)
                        }),
                    )
                };
            let handles: Vec<_> = worker_cfgs
                .into_iter()
                .map(|wcfg| {
                    let wl = Arc::clone(&workload);
                    let sw = matches!(cfg.mode, GrantMode::SelfSched)
                        .then(|| set.self_worker(wcfg.id));
                    std::thread::spawn(move || {
                        let id = wcfg.id;
                        // The connect handshake doubles as the first
                        // request.
                        let first = Request { worker: id, q: wcfg.load.q(), result: None };
                        let res = TcpWorker::connect(addr, first)
                            .and_then(|wt| drive_one(wt, sw, &wcfg, wl.as_ref(), true));
                        (id, res)
                    })
                })
                .collect();
            let mt = accept(p).expect("accept failed");
            let outcome = run_sharded_master(mt, &set, cfg.poll_interval, cfg.trace.clone())
                .expect("master failed");
            for h in handles {
                let (id, res) = h.join().expect("worker panicked");
                finish(id, res);
            }
            outcome
        }
    };

    let results: Vec<u64> = outcome
        .results
        .iter()
        .enumerate()
        .map(|(i, r)| {
            r.unwrap_or_else(|| {
                panic!(
                    "iteration {i} result missing (failed workers: {:?})",
                    outcome.failed_workers
                )
            })
        })
        .collect();
    let trace = cfg.trace.enabled().then(|| {
        cfg.trace.take(TraceMeta {
            scheme: cfg.scheme.name().to_string(),
            workers: p,
            total_iterations: workload.len(),
            clock: ClockDomain::Monotonic,
        })
    });
    ShardHarnessOutcome {
        results,
        failed_workers: outcome.failed_workers,
        faults: outcome.faults,
        steals: set.steals(),
        self_grants: set.self_grants(),
        speculative_grants: set.speculative_grants(),
        duplicates_dropped: outcome.duplicates_dropped,
        iterations_served: (0..p).map(|w| set.iterations_served(w)).collect(),
        shard_stats: set.stats(),
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lss_workloads::UniformLoop;

    fn tight_lease() -> LeaseConfig {
        LeaseConfig {
            base_ticks: 50_000_000, // 50 ms
            default_ticks_per_iter: 0,
            grace: 8.0,
            dead_after_ticks: 30_000_000,
            max_speculations: 2,
        }
    }

    #[test]
    fn sharded_channels_run_completes() {
        let w = Arc::new(UniformLoop::new(300, 500));
        let cfg = ShardHarnessConfig::new(
            SchemeKind::Fss,
            4,
            vec![WorkerSpec::fast(), WorkerSpec::fast(), WorkerSpec::slow(), WorkerSpec::slow()],
        );
        let out = run_sharded_loop(&cfg, Arc::clone(&w));
        assert_eq!(out.results.len(), 300);
        for i in 0..300u64 {
            assert_eq!(out.results[i as usize], w.execute(i), "iteration {i}");
        }
        assert!(out.failed_workers.is_empty());
        assert!(out.faults.is_empty(), "{}", out.faults.render());
        assert_eq!(out.iterations_served.iter().sum::<u64>(), 300);
    }

    #[test]
    fn self_sched_channels_run_completes() {
        let w = Arc::new(UniformLoop::new(400, 300));
        let cfg = ShardHarnessConfig::self_sched(
            SchemeKind::Gss { min_chunk: 2 },
            2,
            vec![WorkerSpec::fast(), WorkerSpec::fast(), WorkerSpec::fast()],
        );
        let out = run_sharded_loop(&cfg, Arc::clone(&w));
        assert_eq!(out.results.len(), 400);
        for i in 0..400u64 {
            assert_eq!(out.results[i as usize], w.execute(i), "iteration {i}");
        }
        assert!(out.failed_workers.is_empty());
        assert!(out.self_grants > 0, "fresh chunks must come from the counters");
        assert_eq!(out.steals, 0, "self-sched roams counters instead of stealing");
    }

    #[test]
    fn sharded_tcp_run_completes() {
        let w = Arc::new(UniformLoop::new(120, 300));
        let mut cfg = ShardHarnessConfig::new(
            SchemeKind::Css { k: 10 },
            2,
            vec![WorkerSpec::fast(), WorkerSpec::fast()],
        );
        cfg.transport = Transport::Tcp;
        let out = run_sharded_loop(&cfg, Arc::clone(&w));
        assert_eq!(out.results.len(), 120);
        for i in 0..120u64 {
            assert_eq!(out.results[i as usize], w.execute(i));
        }
        assert!(out.faults.is_empty(), "{}", out.faults.render());
    }

    #[test]
    fn self_sched_tcp_run_completes() {
        let w = Arc::new(UniformLoop::new(150, 300));
        let mut cfg = ShardHarnessConfig::self_sched(
            SchemeKind::Tss,
            2,
            vec![WorkerSpec::fast(), WorkerSpec::fast()],
        );
        cfg.transport = Transport::Tcp;
        let out = run_sharded_loop(&cfg, Arc::clone(&w));
        assert_eq!(out.results.len(), 150);
        for i in 0..150u64 {
            assert_eq!(out.results[i as usize], w.execute(i));
        }
        assert!(out.self_grants > 0);
    }

    #[test]
    fn sharded_run_survives_a_crash() {
        let w = Arc::new(UniformLoop::new(200, 400));
        let mut cfg = ShardHarnessConfig::new(
            SchemeKind::Css { k: 10 },
            2,
            vec![WorkerSpec::fast(), WorkerSpec::fast(), WorkerSpec::failing_after(1)],
        );
        cfg.lease = tight_lease();
        let out = run_sharded_loop(&cfg, Arc::clone(&w));
        assert_eq!(out.results.len(), 200);
        for i in 0..200u64 {
            assert_eq!(out.results[i as usize], w.execute(i));
        }
        assert_eq!(out.failed_workers, vec![2]);
        assert!(!out.faults.is_empty(), "crash must be visible in the log");
    }

    #[test]
    fn self_sched_run_reclaims_a_crashed_claim() {
        let w = Arc::new(UniformLoop::new(200, 400));
        let mut cfg = ShardHarnessConfig::self_sched(
            SchemeKind::Css { k: 10 },
            2,
            vec![WorkerSpec::fast(), WorkerSpec::fast(), WorkerSpec::failing_after(1)],
        );
        cfg.lease = tight_lease();
        let out = run_sharded_loop(&cfg, Arc::clone(&w));
        assert_eq!(out.results.len(), 200);
        for i in 0..200u64 {
            assert_eq!(out.results[i as usize], w.execute(i), "iteration {i}");
        }
        assert_eq!(out.failed_workers, vec![2]);
    }

    #[test]
    fn traced_sharded_run_validates_and_carries_shard_events() {
        let w = Arc::new(UniformLoop::new(200, 300));
        let cfg = ShardHarnessConfig::new(
            SchemeKind::Fss,
            4,
            vec![WorkerSpec::fast(), WorkerSpec::fast()],
        )
        .traced();
        let out = run_sharded_loop(&cfg, Arc::clone(&w));
        let trace = out.trace.expect("tracing was on");
        assert!(trace.count_kind(|k| matches!(k, EventKind::ShardJoined { .. })) > 0);
        assert!(trace.count_kind(|k| matches!(k, EventKind::Granted { .. })) > 0);
        assert!(trace.count_kind(|k| matches!(k, EventKind::Completed)) > 0);
        // 2 workers homed on shards 0/1; shards 2/3 must be stolen from.
        assert!(out.steals > 0);
        assert!(trace.count_kind(|k| matches!(k, EventKind::ShardStole { .. })) > 0);
        let json = lss_trace::to_chrome_json(&trace);
        let n = lss_trace::validate_chrome_trace(&json).expect("valid Chrome trace");
        assert!(n > 0);
    }

    #[test]
    fn traced_self_sched_run_records_self_grants() {
        let w = Arc::new(UniformLoop::new(150, 300));
        let cfg = ShardHarnessConfig::self_sched(
            SchemeKind::Css { k: 5 },
            2,
            vec![WorkerSpec::fast(), WorkerSpec::fast()],
        )
        .traced();
        let out = run_sharded_loop(&cfg, Arc::clone(&w));
        let trace = out.trace.expect("tracing was on");
        let self_granted = trace.count_kind(|k| matches!(k, EventKind::SelfGranted { .. }));
        assert!(self_granted > 0);
        assert_eq!(self_granted as u64, out.self_grants);
        let json = lss_trace::to_chrome_json(&trace);
        assert!(lss_trace::validate_chrome_trace(&json).expect("valid") > 0);
    }
}
