//! Wire messages of the master–slave protocol, with a compact binary
//! encoding for socket transports.
//!
//! The protocol is the paper's (§5): a slave's request carries its
//! identity, its freshly measured run-queue length (`A_i` reporting for
//! the distributed schemes), and — on every request but the first —
//! the results of the previous chunk. The master's reply is an
//! iteration interval, a retry notice (ACP 0), or a terminate notice.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use lss_core::chunk::Chunk;
use lss_core::master::Assignment;

/// Results of one computed chunk: per-iteration checksums.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkResult {
    /// The chunk these results belong to.
    pub chunk: Chunk,
    /// One checksum per iteration, in chunk order.
    pub values: Vec<u64>,
}

impl ChunkResult {
    /// Creates a result; panics if lengths disagree.
    pub fn new(chunk: Chunk, values: Vec<u64>) -> Self {
        assert_eq!(chunk.len as usize, values.len(), "result/chunk length mismatch");
        ChunkResult { chunk, values }
    }
}

/// Slave → master.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Dense worker id (assigned at spawn).
    pub worker: usize,
    /// The worker's current run-queue length.
    pub q: u32,
    /// Piggy-backed previous results (absent on the first request).
    pub result: Option<ChunkResult>,
}

/// Master → slave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reply {
    /// The scheduling decision.
    pub assignment: Assignment,
}

impl Request {
    /// Serializes the request into a frame payload.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(32 + self.result.as_ref().map_or(0, |r| 8 * r.values.len()));
        b.put_u32(self.worker as u32);
        b.put_u32(self.q);
        match &self.result {
            None => b.put_u8(0),
            Some(r) => {
                b.put_u8(1);
                b.put_u64(r.chunk.start);
                b.put_u64(r.chunk.len);
                for &v in &r.values {
                    b.put_u64(v);
                }
            }
        }
        b.freeze()
    }

    /// Deserializes a frame payload; `None` on malformed input.
    pub fn decode(mut buf: &[u8]) -> Option<Request> {
        if buf.remaining() < 9 {
            return None;
        }
        let worker = buf.get_u32() as usize;
        let q = buf.get_u32();
        let has_result = buf.get_u8();
        let result = match has_result {
            0 => None,
            1 => {
                if buf.remaining() < 16 {
                    return None;
                }
                let start = buf.get_u64();
                let len = buf.get_u64();
                // Adversarial lengths must not overflow the size check.
                let expected = len.checked_mul(8)?;
                if buf.remaining() as u64 != expected {
                    return None;
                }
                let values = (0..len).map(|_| buf.get_u64()).collect();
                Some(ChunkResult::new(Chunk::new(start, len), values))
            }
            _ => return None,
        };
        Some(Request { worker, q, result })
    }
}

const TAG_CHUNK: u8 = 0;
const TAG_RETRY: u8 = 1;
const TAG_FINISHED: u8 = 2;

impl Reply {
    /// Serializes the reply into a frame payload.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(17);
        match self.assignment {
            Assignment::Chunk(c) => {
                b.put_u8(TAG_CHUNK);
                b.put_u64(c.start);
                b.put_u64(c.len);
            }
            Assignment::Retry => b.put_u8(TAG_RETRY),
            Assignment::Finished => b.put_u8(TAG_FINISHED),
        }
        b.freeze()
    }

    /// Deserializes a frame payload; `None` on malformed input.
    pub fn decode(mut buf: &[u8]) -> Option<Reply> {
        if buf.remaining() < 1 {
            return None;
        }
        let assignment = match buf.get_u8() {
            TAG_CHUNK => {
                if buf.remaining() < 16 {
                    return None;
                }
                let start = buf.get_u64();
                let len = buf.get_u64();
                Assignment::Chunk(Chunk::new(start, len))
            }
            TAG_RETRY => Assignment::Retry,
            TAG_FINISHED => Assignment::Finished,
            _ => return None,
        };
        Some(Reply { assignment })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_without_result() {
        let r = Request { worker: 3, q: 2, result: None };
        assert_eq!(Request::decode(&r.encode()), Some(r));
    }

    #[test]
    fn request_roundtrip_with_result() {
        let r = Request {
            worker: 7,
            q: 1,
            result: Some(ChunkResult::new(Chunk::new(100, 3), vec![1, 2, 3])),
        };
        assert_eq!(Request::decode(&r.encode()), Some(r));
    }

    #[test]
    fn reply_roundtrips() {
        for a in [
            Assignment::Chunk(Chunk::new(5, 10)),
            Assignment::Retry,
            Assignment::Finished,
        ] {
            let r = Reply { assignment: a };
            assert_eq!(Reply::decode(&r.encode()), Some(r));
        }
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert_eq!(Request::decode(&[]), None);
        assert_eq!(Request::decode(&[0, 0, 0, 1]), None);
        assert_eq!(Reply::decode(&[]), None);
        assert_eq!(Reply::decode(&[9]), None);
        // Truncated chunk reply.
        assert_eq!(Reply::decode(&[TAG_CHUNK, 0, 0]), None);
        // Result length lies about the payload size.
        let mut bad = Request {
            worker: 0,
            q: 1,
            result: Some(ChunkResult::new(Chunk::new(0, 2), vec![1, 2])),
        }
        .encode()
        .to_vec();
        bad.truncate(bad.len() - 8);
        assert_eq!(Request::decode(&bad), None);
    }

    #[test]
    #[should_panic]
    fn chunk_result_length_checked() {
        ChunkResult::new(Chunk::new(0, 3), vec![1]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn chunk_result_strategy() -> impl Strategy<Value = ChunkResult> {
        (0u64..1_000_000, prop::collection::vec(any::<u64>(), 0..64)).prop_map(|(start, values)| {
            let len = values.len() as u64;
            ChunkResult::new(Chunk::new(start, len), values)
        })
    }

    proptest! {
        #[test]
        fn request_roundtrips(
            worker in 0usize..10_000,
            q in 1u32..1000,
            result in prop::option::of(chunk_result_strategy()),
        ) {
            let req = Request { worker, q, result };
            prop_assert_eq!(Request::decode(&req.encode()), Some(req));
        }

        #[test]
        fn reply_roundtrips(start in any::<u64>(), len in 0u64..u64::MAX / 2) {
            let r = Reply { assignment: Assignment::Chunk(Chunk::new(start, len)) };
            prop_assert_eq!(Reply::decode(&r.encode()), Some(r));
        }

        #[test]
        fn truncated_requests_never_panic(
            worker in 0usize..100,
            values in prop::collection::vec(any::<u64>(), 0..16),
            cut in 0usize..200,
        ) {
            let len = values.len() as u64;
            let req = Request {
                worker,
                q: 1,
                result: Some(ChunkResult::new(Chunk::new(0, len), values)),
            };
            let mut bytes = req.encode().to_vec();
            bytes.truncate(cut.min(bytes.len()));
            // Must return None or a consistent value — never panic.
            let _ = Request::decode(&bytes);
        }

        #[test]
        fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
            let _ = Request::decode(&bytes);
            let _ = Reply::decode(&bytes);
        }
    }
}
