//! Wire messages of the master–slave protocol, with a compact binary
//! encoding for socket transports.
//!
//! The protocol is the paper's (§5): a slave's request carries its
//! identity, its freshly measured run-queue length (`A_i` reporting for
//! the distributed schemes), and — on every request but the first —
//! the results of the previous chunk. The master's reply is an
//! iteration interval, a retry notice (ACP 0), or a terminate notice.
//!
//! The fault-tolerance layer adds one message kind on top:
//! [`WireMsg::Heartbeat`], a fire-and-forget liveness signal a worker
//! emits while computing a long chunk. It rides the same framed stream
//! as requests (no extra round-trips in the happy path) and never
//! receives a reply.

pub mod serve;

use lss_core::chunk::Chunk;
use lss_core::master::Assignment;

/// Results of one computed chunk: per-iteration checksums.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkResult {
    /// The chunk these results belong to.
    pub chunk: Chunk,
    /// One checksum per iteration, in chunk order.
    pub values: Vec<u64>,
}

impl ChunkResult {
    /// Creates a result; panics if lengths disagree.
    pub fn new(chunk: Chunk, values: Vec<u64>) -> Self {
        assert_eq!(chunk.len as usize, values.len(), "result/chunk length mismatch");
        ChunkResult { chunk, values }
    }

    /// An all-zero result for `chunk` — for tests and scheduling-only
    /// harnesses that never execute real iterations.
    pub fn zeroed(chunk: Chunk) -> Self {
        ChunkResult { values: vec![0; chunk.len as usize], chunk }
    }
}

/// Slave → master.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Dense worker id (assigned at spawn).
    pub worker: usize,
    /// The worker's current run-queue length.
    pub q: u32,
    /// Piggy-backed previous results (absent on the first request).
    pub result: Option<ChunkResult>,
}

/// Master → slave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reply {
    /// The scheduling decision.
    pub assignment: Assignment,
}

// Little codec helpers over a cursor into a byte slice.

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if buf.len() < n {
        return None;
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Some(head)
}

fn get_u8(buf: &mut &[u8]) -> Option<u8> {
    take(buf, 1).map(|b| b[0])
}

fn get_u32(buf: &mut &[u8]) -> Option<u32> {
    let bytes: [u8; 4] = take(buf, 4)?.try_into().ok()?;
    Some(u32::from_be_bytes(bytes))
}

fn get_u64(buf: &mut &[u8]) -> Option<u64> {
    let bytes: [u8; 8] = take(buf, 8)?.try_into().ok()?;
    Some(u64::from_be_bytes(bytes))
}

impl Request {
    /// Serializes the request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut b =
            Vec::with_capacity(32 + self.result.as_ref().map_or(0, |r| 8 * r.values.len()));
        b.extend_from_slice(&(self.worker as u32).to_be_bytes());
        b.extend_from_slice(&self.q.to_be_bytes());
        match &self.result {
            None => b.push(0),
            Some(r) => {
                b.push(1);
                b.extend_from_slice(&r.chunk.start.to_be_bytes());
                b.extend_from_slice(&r.chunk.len.to_be_bytes());
                for &v in &r.values {
                    b.extend_from_slice(&v.to_be_bytes());
                }
            }
        }
        b
    }

    /// Deserializes a frame payload; `None` on malformed input.
    pub fn decode(mut buf: &[u8]) -> Option<Request> {
        let buf = &mut buf;
        let worker = get_u32(buf)? as usize;
        let q = get_u32(buf)?;
        let result = match get_u8(buf)? {
            0 => {
                if !buf.is_empty() {
                    return None; // trailing garbage
                }
                None
            }
            1 => {
                let start = get_u64(buf)?;
                let len = get_u64(buf)?;
                // Adversarial lengths must not overflow the size check.
                let expected = len.checked_mul(8)?;
                if buf.len() as u64 != expected {
                    return None;
                }
                let values = (0..len).map(|_| get_u64(buf)).collect::<Option<Vec<_>>>()?;
                Some(ChunkResult::new(Chunk::new(start, len), values))
            }
            _ => return None,
        };
        Some(Request { worker, q, result })
    }
}

const TAG_CHUNK: u8 = 0;
const TAG_RETRY: u8 = 1;
const TAG_FINISHED: u8 = 2;

impl Reply {
    /// Serializes the reply into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(17);
        match self.assignment {
            Assignment::Chunk(c) => {
                b.push(TAG_CHUNK);
                b.extend_from_slice(&c.start.to_be_bytes());
                b.extend_from_slice(&c.len.to_be_bytes());
            }
            Assignment::Retry => b.push(TAG_RETRY),
            Assignment::Finished => b.push(TAG_FINISHED),
        }
        b
    }

    /// Deserializes a frame payload; `None` on malformed input.
    pub fn decode(mut buf: &[u8]) -> Option<Reply> {
        let buf = &mut buf;
        let assignment = match get_u8(buf)? {
            TAG_CHUNK => {
                let start = get_u64(buf)?;
                let len = get_u64(buf)?;
                Assignment::Chunk(Chunk::new(start, len))
            }
            TAG_RETRY => Assignment::Retry,
            TAG_FINISHED => Assignment::Finished,
            _ => return None,
        };
        if !buf.is_empty() {
            return None;
        }
        Some(Reply { assignment })
    }
}

const TAG_MSG_REQUEST: u8 = 0;
const TAG_MSG_HEARTBEAT: u8 = 1;

/// The slave→master stream envelope: a request, or a heartbeat.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireMsg {
    /// A scheduling request (possibly with piggy-backed results).
    Request(Request),
    /// A liveness heartbeat — no reply is sent.
    Heartbeat {
        /// The worker reporting in.
        worker: usize,
    },
}

impl WireMsg {
    /// Serializes the envelope into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            WireMsg::Request(req) => {
                let mut b = Vec::with_capacity(1 + 32);
                b.push(TAG_MSG_REQUEST);
                b.extend_from_slice(&req.encode());
                b
            }
            WireMsg::Heartbeat { worker } => {
                let mut b = Vec::with_capacity(5);
                b.push(TAG_MSG_HEARTBEAT);
                b.extend_from_slice(&(*worker as u32).to_be_bytes());
                b
            }
        }
    }

    /// Deserializes a frame payload; `None` on malformed input.
    pub fn decode(buf: &[u8]) -> Option<WireMsg> {
        let (&tag, rest) = buf.split_first()?;
        match tag {
            TAG_MSG_REQUEST => Request::decode(rest).map(WireMsg::Request),
            TAG_MSG_HEARTBEAT => {
                let bytes: [u8; 4] = rest.try_into().ok()?;
                Some(WireMsg::Heartbeat { worker: u32::from_be_bytes(bytes) as usize })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_without_result() {
        let r = Request { worker: 3, q: 2, result: None };
        assert_eq!(Request::decode(&r.encode()), Some(r));
    }

    #[test]
    fn request_roundtrip_with_result() {
        let r = Request {
            worker: 7,
            q: 1,
            result: Some(ChunkResult::new(Chunk::new(100, 3), vec![1, 2, 3])),
        };
        assert_eq!(Request::decode(&r.encode()), Some(r));
    }

    #[test]
    fn reply_roundtrips() {
        for a in [
            Assignment::Chunk(Chunk::new(5, 10)),
            Assignment::Retry,
            Assignment::Finished,
        ] {
            let r = Reply { assignment: a };
            assert_eq!(Reply::decode(&r.encode()), Some(r));
        }
    }

    #[test]
    fn wire_msg_roundtrips() {
        let req = Request {
            worker: 2,
            q: 3,
            result: Some(ChunkResult::new(Chunk::new(0, 2), vec![9, 8])),
        };
        let m = WireMsg::Request(req);
        assert_eq!(WireMsg::decode(&m.encode()), Some(m));
        let hb = WireMsg::Heartbeat { worker: 17 };
        assert_eq!(WireMsg::decode(&hb.encode()), Some(hb));
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert_eq!(Request::decode(&[]), None);
        assert_eq!(Request::decode(&[0, 0, 0, 1]), None);
        assert_eq!(Reply::decode(&[]), None);
        assert_eq!(Reply::decode(&[9]), None);
        // Truncated chunk reply.
        assert_eq!(Reply::decode(&[TAG_CHUNK, 0, 0]), None);
        // Truncated heartbeat.
        assert_eq!(WireMsg::decode(&[TAG_MSG_HEARTBEAT, 0]), None);
        assert_eq!(WireMsg::decode(&[]), None);
        assert_eq!(WireMsg::decode(&[42]), None);
        // Result length lies about the payload size.
        let mut bad = Request {
            worker: 0,
            q: 1,
            result: Some(ChunkResult::new(Chunk::new(0, 2), vec![1, 2])),
        }
        .encode();
        bad.truncate(bad.len() - 8);
        assert_eq!(Request::decode(&bad), None);
    }

    #[test]
    #[should_panic]
    fn chunk_result_length_checked() {
        ChunkResult::new(Chunk::new(0, 3), vec![1]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn chunk_result_strategy() -> impl Strategy<Value = ChunkResult> {
        (0u64..1_000_000, prop::collection::vec(any::<u64>(), 0..64)).prop_map(|(start, values)| {
            let len = values.len() as u64;
            ChunkResult::new(Chunk::new(start, len), values)
        })
    }

    proptest! {
        #[test]
        fn request_roundtrips(
            worker in 0usize..10_000,
            q in 1u32..1000,
            result in prop::option::of(chunk_result_strategy()),
        ) {
            let req = Request { worker, q, result };
            prop_assert_eq!(Request::decode(&req.encode()), Some(req));
        }

        #[test]
        fn wire_msgs_roundtrip(
            worker in 0usize..10_000,
            q in 1u32..1000,
            result in prop::option::of(chunk_result_strategy()),
            heartbeat in any::<bool>(),
        ) {
            let m = if heartbeat {
                WireMsg::Heartbeat { worker }
            } else {
                WireMsg::Request(Request { worker, q, result })
            };
            prop_assert_eq!(WireMsg::decode(&m.encode()), Some(m));
        }

        #[test]
        fn reply_roundtrips(start in any::<u64>(), len in 0u64..u64::MAX / 2) {
            let r = Reply { assignment: Assignment::Chunk(Chunk::new(start, len)) };
            prop_assert_eq!(Reply::decode(&r.encode()), Some(r));
        }

        #[test]
        fn truncated_requests_never_panic(
            worker in 0usize..100,
            values in prop::collection::vec(any::<u64>(), 0..16),
            cut in 0usize..200,
        ) {
            let len = values.len() as u64;
            let req = Request {
                worker,
                q: 1,
                result: Some(ChunkResult::new(Chunk::new(0, len), values)),
            };
            let mut bytes = req.encode();
            bytes.truncate(cut.min(bytes.len()));
            // Must return None or a consistent value — never panic.
            let _ = Request::decode(&bytes);
        }

        #[test]
        fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
            let _ = Request::decode(&bytes);
            let _ = Reply::decode(&bytes);
            let _ = WireMsg::decode(&bytes);
        }
    }
}
