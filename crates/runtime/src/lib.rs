//! # lss-runtime — a real threaded master–worker runtime
//!
//! The paper's implementation ran on mpich 1.2.0 over a Sun cluster.
//! This crate reproduces that *software architecture* with native
//! threads and message passing, so every scheme is exercised by real
//! concurrent execution (not only by the simulator):
//!
//! - [`protocol`] — the wire messages: requests that **piggy-back the
//!   previous chunk's results** (§5's key optimization) and carry the
//!   worker's current run-queue length; replies that carry an iteration
//!   interval or a terminate notice.
//! - [`transport`] — message transports: in-process std-mpsc
//!   [`transport::channels`] (the default; "MPI bindings thin,
//!   channels/tcp workable") and localhost [`transport::tcp`] with
//!   length-prefixed frames, demonstrating the same protocol across a
//!   real socket. Both support timed receives, piggy-backed heartbeats
//!   and worker-initiated reconnection.
//! - [`worker`] / [`master`] — the two loop roles, directly mirroring
//!   the paper's slave/master algorithms (§3.1), plus the self-healing
//!   [`master::run_resilient_master`] loop (chunk leases, speculative
//!   re-execution, first-result-wins dedup) and chaos injection in the
//!   worker driven by [`lss_core::FaultPlan`].
//! - [`backoff`] — capped exponential backoff with jitter, shared by
//!   retry pacing and link redialling.
//! - [`load`] — heterogeneity and non-dedication emulation: a worker
//!   with slowdown `s` and run-queue `Q` re-executes each iteration
//!   `s·Q` times (the equal-share model made concrete), plus an
//!   optional *real* background hog running matrix additions.
//! - [`harness`] — one-call end-to-end runs returning the same
//!   [`lss_metrics::RunReport`] the simulator produces.
//! - [`shard`] — the same loop on a *sharded* master
//!   ([`lss_shard::ShardSet`]): N work-stealing master shards, or
//!   lock-free worker-side chunk self-calculation, over either
//!   transport.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod backoff;
pub mod harness;
pub mod load;
pub mod master;
pub mod protocol;
pub mod shard;
pub mod transport;
pub mod worker;

pub use backoff::BackoffPolicy;
pub use harness::{run_scheduled_loop, HarnessConfig, HarnessOutcome, Transport, WorkerSpec};
pub use load::LoadState;
pub use master::{
    run_master, run_resilient_master, run_resilient_master_traced, MasterOutcome,
    ResilientOutcome,
};
pub use shard::{
    run_sharded_loop, run_sharded_master, ShardHarnessConfig, ShardHarnessOutcome,
};
pub use transport::TransportError;
