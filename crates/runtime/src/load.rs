//! Load emulation for the real runtime.
//!
//! Two mechanisms create the paper's *non-dedicated* condition:
//!
//! - [`LoadState`] — a shared run-queue counter the worker samples on
//!   every request (what the slave reports to the master) and applies
//!   to its own execution speed under the equal-share model: with
//!   run-queue `Q`, each iteration is executed `Q` times as slowly.
//!   Deterministic and controllable from tests.
//! - [`BackgroundHog`] — a *real* competing thread running the paper's
//!   matrix additions ("each one adds two random matrices of size
//!   1000"), for demos where genuine OS-level interference is wanted.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use lss_workloads::MatrixAddLoad;

/// A worker's externally controllable run-queue length.
///
/// Cheap to clone; all clones share the counter. The value is clamped
/// to ≥ 1 on read (the loop process itself always counts).
#[derive(Debug, Clone)]
pub struct LoadState {
    q: Arc<AtomicU32>,
}

impl LoadState {
    /// A dedicated worker (`Q = 1`).
    pub fn dedicated() -> Self {
        Self::with_q(1)
    }

    /// A worker that starts with run-queue length `q`.
    pub fn with_q(q: u32) -> Self {
        LoadState {
            q: Arc::new(AtomicU32::new(q.max(1))),
        }
    }

    /// Current run-queue length (≥ 1).
    pub fn q(&self) -> u32 {
        self.q.load(Ordering::Relaxed).max(1)
    }

    /// Sets the run-queue length (e.g. "a new user logs in and starts
    /// an expensive task" — §3.1's motivating scenario).
    pub fn set_q(&self, q: u32) {
        self.q.store(q.max(1), Ordering::Relaxed);
    }
}

impl Default for LoadState {
    fn default() -> Self {
        Self::dedicated()
    }
}

/// A real background hog: a thread repeatedly adding two random
/// matrices until dropped, mirroring the paper's load processes.
#[derive(Debug)]
pub struct BackgroundHog {
    stop: Arc<AtomicBool>,
    rounds: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

impl BackgroundHog {
    /// Spawns a hog adding two `n × n` matrices in a loop.
    pub fn spawn(n: usize, seed: u64) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let rounds = Arc::new(AtomicU64::new(0));
        let stop2 = Arc::clone(&stop);
        let rounds2 = Arc::clone(&rounds);
        let handle = std::thread::spawn(move || {
            let mut load = MatrixAddLoad::new(n, seed);
            while !stop2.load(Ordering::Relaxed) {
                std::hint::black_box(load.run_once());
                rounds2.fetch_add(1, Ordering::Relaxed);
            }
        });
        BackgroundHog {
            stop,
            rounds,
            handle: Some(handle),
        }
    }

    /// The paper's hog: 1000 × 1000 matrices.
    pub fn paper_hog(seed: u64) -> Self {
        Self::spawn(1000, seed)
    }

    /// How many additions the hog has completed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds.load(Ordering::Relaxed)
    }
}

impl Drop for BackgroundHog {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_state_shared_between_clones() {
        let a = LoadState::dedicated();
        let b = a.clone();
        assert_eq!(b.q(), 1);
        a.set_q(3);
        assert_eq!(b.q(), 3);
    }

    #[test]
    fn load_state_clamps_to_one() {
        let l = LoadState::with_q(0);
        assert_eq!(l.q(), 1);
        l.set_q(0);
        assert_eq!(l.q(), 1);
    }

    #[test]
    fn hog_runs_and_stops() {
        let hog = BackgroundHog::spawn(32, 1);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while hog.rounds() == 0 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert!(hog.rounds() > 0, "hog never ran");
        drop(hog); // must join cleanly
    }
}
