//! One-call end-to-end runs: spawn a master and `p` emulated-
//! heterogeneous workers, execute the loop for real, and report the
//! same metrics the simulator produces.

use std::sync::Arc;
use std::time::{Duration, Instant};

use lss_core::master::{Master, MasterConfig, SchemeKind};
use lss_core::power::{AcpConfig, VirtualPower};
use lss_metrics::breakdown::{RunReport, TimeBreakdown};
use lss_workloads::Workload;

use crate::load::LoadState;
use crate::master::run_master;
use crate::protocol::Request;
use crate::transport::channels::channel_transport;
use crate::transport::tcp::{tcp_listen, TcpWorker};
use crate::worker::{run_worker, WorkerConfig, WorkerStats};

/// Which transport the harness wires up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// In-process crossbeam channels (fast, default).
    Channels,
    /// Localhost TCP sockets with framed messages.
    Tcp,
}

/// One emulated PE.
#[derive(Debug, Clone)]
pub struct WorkerSpec {
    /// Speed handicap (1 = fast PE, 3 ≈ the paper's slow PE).
    pub slowdown: u32,
    /// Shared, mutable run-queue state; keep a clone to change the
    /// load mid-run (the non-dedicated condition).
    pub load: LoadState,
    /// Failure injection: crash after computing this many chunks.
    pub fail_after_chunks: Option<u64>,
}

impl WorkerSpec {
    /// A dedicated fast PE.
    pub fn fast() -> Self {
        WorkerSpec {
            slowdown: 1,
            load: LoadState::dedicated(),
            fail_after_chunks: None,
        }
    }

    /// A dedicated slow PE (3× handicap, like the paper's US1 vs US10).
    pub fn slow() -> Self {
        WorkerSpec {
            slowdown: 3,
            load: LoadState::dedicated(),
            fail_after_chunks: None,
        }
    }

    /// A fast PE that crashes after computing `n` chunks (failure
    /// injection for the fault-tolerance path).
    pub fn failing_after(n: u64) -> Self {
        WorkerSpec {
            fail_after_chunks: Some(n),
            ..Self::fast()
        }
    }
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Scheme under test.
    pub scheme: SchemeKind,
    /// The emulated PEs.
    pub workers: Vec<WorkerSpec>,
    /// ACP rule for the distributed schemes.
    pub acp: AcpConfig,
    /// Worker back-off after a retry notice.
    pub retry_backoff: Duration,
    /// Transport to use.
    pub transport: Transport,
}

impl HarnessConfig {
    /// A channels-transport config over the given workers.
    pub fn new(scheme: SchemeKind, workers: Vec<WorkerSpec>) -> Self {
        HarnessConfig {
            scheme,
            workers,
            acp: AcpConfig::PAPER,
            retry_backoff: Duration::from_millis(5),
            transport: Transport::Channels,
        }
    }

    /// The paper's p-slave mix: fast PEs first, then slow (3 fast +
    /// 5 slow for `p = 8`, scaled down as in the figures).
    pub fn paper_mix(scheme: SchemeKind, fast: usize, slow: usize) -> Self {
        let mut workers = Vec::with_capacity(fast + slow);
        workers.extend(std::iter::repeat_with(WorkerSpec::fast).take(fast));
        workers.extend(std::iter::repeat_with(WorkerSpec::slow).take(slow));
        Self::new(scheme, workers)
    }

    /// Virtual powers implied by the slowdowns (slowest PE = 1.0).
    pub fn virtual_powers(&self) -> Vec<VirtualPower> {
        let max_slowdown = self.workers.iter().map(|w| w.slowdown).max().unwrap_or(1);
        self.workers
            .iter()
            .map(|w| VirtualPower::new(max_slowdown as f64 / w.slowdown as f64))
            .collect()
    }
}

/// Everything a run produced.
#[derive(Debug)]
pub struct HarnessOutcome {
    /// Table-style report (wall-clock times).
    pub report: RunReport,
    /// Per-iteration results collected at the master.
    pub results: Vec<u64>,
    /// Raw per-worker stats.
    pub worker_stats: Vec<WorkerStats>,
    /// Workers that crashed mid-run (their chunks were re-granted).
    pub failed_workers: Vec<usize>,
}

/// Executes the full loop under the configured scheme and cluster.
///
/// # Panics
/// On internal errors (a worker or the master dying mid-run) and when
/// any iteration's result fails to arrive — both indicate bugs, not
/// recoverable conditions.
pub fn run_scheduled_loop<W: Workload + 'static>(
    cfg: &HarnessConfig,
    workload: Arc<W>,
) -> HarnessOutcome {
    let p = cfg.workers.len();
    assert!(p >= 1, "need at least one worker");
    let initial_q: Vec<u32> = cfg.workers.iter().map(|w| w.load.q()).collect();
    let mut master = Master::new(MasterConfig {
        scheme: cfg.scheme,
        total: workload.len(),
        powers: cfg.virtual_powers(),
        initial_q,
        acp: cfg.acp,
    });

    let worker_cfgs: Vec<WorkerConfig> = cfg
        .workers
        .iter()
        .enumerate()
        .map(|(id, spec)| WorkerConfig {
            id,
            slowdown: spec.slowdown,
            load: spec.load.clone(),
            retry_backoff: cfg.retry_backoff,
            fail_after_chunks: spec.fail_after_chunks,
        })
        .collect();

    let t0 = Instant::now();
    let (outcome, stats) = match cfg.transport {
        Transport::Channels => {
            let (mt, wts) = channel_transport(p);
            let handles: Vec<_> = wts
                .into_iter()
                .zip(worker_cfgs)
                .map(|(wt, wcfg)| {
                    let wl = Arc::clone(&workload);
                    std::thread::spawn(move || {
                        run_worker(wt, &wcfg, wl.as_ref(), false).expect("worker failed")
                    })
                })
                .collect();
            let outcome = run_master(mt, &mut master, p).expect("master failed");
            let stats: Vec<WorkerStats> =
                handles.into_iter().map(|h| h.join().expect("worker panicked")).collect();
            (outcome, stats)
        }
        Transport::Tcp => {
            let listener = tcp_listen().expect("listen failed");
            let addr = listener.addr;
            let handles: Vec<_> = worker_cfgs
                .into_iter()
                .map(|wcfg| {
                    let wl = Arc::clone(&workload);
                    std::thread::spawn(move || {
                        // The connect handshake doubles as the first
                        // request.
                        let first = Request {
                            worker: wcfg.id,
                            q: wcfg.load.q(),
                            result: None,
                        };
                        let wt = TcpWorker::connect(addr, first).expect("connect failed");
                        run_worker(wt, &wcfg, wl.as_ref(), true).expect("worker failed")
                    })
                })
                .collect();
            let mt = listener.accept_workers(p).expect("accept failed");
            let outcome = run_master(mt, &mut master, p).expect("master failed");
            let stats: Vec<WorkerStats> =
                handles.into_iter().map(|h| h.join().expect("worker panicked")).collect();
            (outcome, stats)
        }
    };
    let t_p = t0.elapsed().as_secs_f64();

    let results: Vec<u64> = outcome
        .results
        .iter()
        .enumerate()
        .map(|(i, r)| {
            r.unwrap_or_else(|| {
                panic!(
                    "iteration {i} result missing (failed workers: {:?}; the loop \
                     is only completable while at least one worker survives)",
                    outcome.failed_workers
                )
            })
        })
        .collect();

    let per_pe: Vec<TimeBreakdown> = stats
        .iter()
        .map(|s| TimeBreakdown {
            t_com: s.t_com.as_secs_f64(),
            t_wait: s.t_wait.as_secs_f64(),
            t_comp: s.t_comp.as_secs_f64(),
        })
        .collect();
    let iterations: Vec<u64> = (0..p).map(|w| master.iterations_served(w)).collect();
    let report = RunReport::new(
        cfg.scheme.name(),
        per_pe,
        t_p,
        master.total_scheduling_steps(),
        iterations,
    );
    HarnessOutcome {
        report,
        results,
        worker_stats: stats,
        failed_workers: outcome.failed_workers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lss_workloads::{SyntheticWorkload, UniformLoop};

    #[test]
    fn channels_run_completes_and_results_match() {
        let w = Arc::new(UniformLoop::new(200, 500));
        let cfg = HarnessConfig::paper_mix(SchemeKind::Tfss, 2, 2);
        let out = run_scheduled_loop(&cfg, Arc::clone(&w));
        assert_eq!(out.results.len(), 200);
        for i in 0..200u64 {
            assert_eq!(out.results[i as usize], w.execute(i), "iteration {i}");
        }
        assert_eq!(out.report.iterations.iter().sum::<u64>(), 200);
    }

    #[test]
    fn tcp_run_completes() {
        let w = Arc::new(UniformLoop::new(60, 500));
        let mut cfg = HarnessConfig::paper_mix(SchemeKind::Fss, 2, 0);
        cfg.transport = Transport::Tcp;
        let out = run_scheduled_loop(&cfg, Arc::clone(&w));
        assert_eq!(out.results.len(), 60);
        for i in 0..60u64 {
            assert_eq!(out.results[i as usize], w.execute(i));
        }
    }

    #[test]
    fn fast_workers_do_more_under_self_scheduling() {
        let w = Arc::new(UniformLoop::new(300, 8_000));
        let cfg = HarnessConfig::paper_mix(SchemeKind::Css { k: 5 }, 1, 1);
        let out = run_scheduled_loop(&cfg, w);
        assert!(
            out.report.iterations[0] > out.report.iterations[1],
            "fast should out-pull slow: {:?}",
            out.report.iterations
        );
    }

    #[test]
    fn distributed_scheme_runs_with_live_load_change() {
        let w = Arc::new(UniformLoop::new(400, 4_000));
        let cfg = HarnessConfig::paper_mix(SchemeKind::Dtss, 2, 2);
        let load = cfg.workers[0].load.clone();
        // Overload worker 0 shortly after the run starts.
        let flipper = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            load.set_q(4);
        });
        let out = run_scheduled_loop(&cfg, w);
        flipper.join().unwrap();
        assert_eq!(out.results.len(), 400);
    }

    #[test]
    fn every_scheme_completes_end_to_end() {
        let w = Arc::new(SyntheticWorkload::new((0..97).map(|i| i % 13 + 1).collect()));
        for scheme in [
            SchemeKind::Static,
            SchemeKind::Css { k: 4 },
            SchemeKind::Gss { min_chunk: 2 },
            SchemeKind::Tss,
            SchemeKind::Fss,
            SchemeKind::Fiss { sigma: 3 },
            SchemeKind::Tfss,
            SchemeKind::Wf,
            SchemeKind::Dtss,
            SchemeKind::Dfss,
            SchemeKind::Dfiss { sigma: 3 },
            SchemeKind::Dtfss,
        ] {
            let cfg = HarnessConfig::paper_mix(scheme, 1, 2);
            let out = run_scheduled_loop(&cfg, Arc::clone(&w));
            assert_eq!(
                out.report.iterations.iter().sum::<u64>(),
                97,
                "{} dropped iterations",
                scheme.name()
            );
        }
    }
}
