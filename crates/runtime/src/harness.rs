//! One-call end-to-end runs: spawn a master and `p` emulated-
//! heterogeneous workers, execute the loop for real, and report the
//! same metrics the simulator produces.
//!
//! Every harness run goes through the *resilient* master loop
//! ([`crate::master::run_resilient_master`]): chunk leases, heartbeat
//! liveness, speculative re-execution and first-result-wins dedup are
//! always armed. On a healthy cluster they never fire (the report's
//! fault log stays empty); with [`WorkerSpec::fault`] plans injected,
//! the run completes anyway and the log shows how.

use std::sync::Arc;
use std::time::{Duration, Instant};

use lss_core::fault::{FaultPlan, LeaseConfig};
use lss_core::master::{Master, MasterConfig, SchemeKind};
use lss_core::power::{AcpConfig, VirtualPower};
use lss_metrics::breakdown::{RunReport, TimeBreakdown};
use lss_metrics::FaultLog;
use lss_trace::{ClockDomain, SharedSink, Trace, TraceMeta};
use lss_workloads::Workload;

use crate::backoff::BackoffPolicy;
use crate::load::LoadState;
use crate::master::run_resilient_master_traced;
use crate::protocol::Request;
use crate::transport::channels::channel_transport;
use crate::transport::evented::evented_listen;
use crate::transport::tcp::{tcp_listen, TcpWorker};
use crate::transport::{MasterTransport, TransportError};
use crate::worker::{run_worker, WorkerConfig, WorkerStats};

/// Which transport the harness wires up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// In-process channels (fast, default).
    Channels,
    /// Localhost TCP sockets with framed messages, one thread per
    /// connection on the master's side.
    Tcp,
    /// The same framed TCP protocol with the master's side multiplexed
    /// onto a single epoll reactor thread.
    TcpEvented,
}

/// One emulated PE.
#[derive(Debug, Clone)]
pub struct WorkerSpec {
    /// Speed handicap (1 = fast PE, 3 ≈ the paper's slow PE).
    pub slowdown: u32,
    /// Shared, mutable run-queue state; keep a clone to change the
    /// load mid-run (the non-dedicated condition).
    pub load: LoadState,
    /// Chaos plan for this worker (default: healthy).
    pub fault: FaultPlan,
}

impl WorkerSpec {
    /// A dedicated fast PE.
    pub fn fast() -> Self {
        WorkerSpec {
            slowdown: 1,
            load: LoadState::dedicated(),
            fault: FaultPlan::healthy(),
        }
    }

    /// A dedicated slow PE (3× handicap, like the paper's US1 vs US10).
    pub fn slow() -> Self {
        WorkerSpec {
            slowdown: 3,
            load: LoadState::dedicated(),
            fault: FaultPlan::healthy(),
        }
    }

    /// A fast PE that crashes after computing `n` chunks (the original
    /// failure-injection knob, now a [`FaultPlan`] shorthand).
    pub fn failing_after(n: u64) -> Self {
        Self::fast().with_fault(FaultPlan::crash_after(n))
    }

    /// Attaches an arbitrary chaos plan.
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Scheme under test.
    pub scheme: SchemeKind,
    /// The emulated PEs.
    pub workers: Vec<WorkerSpec>,
    /// ACP rule for the distributed schemes.
    pub acp: AcpConfig,
    /// Worker pacing after a retry notice (capped exponential backoff
    /// with jitter — replaces the old fixed sleep).
    pub retry: BackoffPolicy,
    /// Worker pacing when redialling a dropped link.
    pub reconnect: BackoffPolicy,
    /// Transport to use.
    pub transport: Transport,
    /// Lease policy for the master's fault detector.
    pub lease: LeaseConfig,
    /// Heartbeat interval while computing (`None` = no heartbeats).
    pub heartbeat_every: Option<Duration>,
    /// Worker-side reply patience before retransmitting its request
    /// (`None` = block; lossy net plans then use a built-in default).
    pub reply_timeout: Option<Duration>,
    /// Master wake-up bound for lease polling.
    pub poll_interval: Duration,
    /// Trace sink: [`SharedSink::disabled`] (the default) records
    /// nothing; an enabled sink is shared by the master loop and every
    /// worker thread, and the run's [`Trace`] lands in
    /// [`HarnessOutcome::trace`].
    pub trace: SharedSink,
}

impl HarnessConfig {
    /// A channels-transport config over the given workers.
    pub fn new(scheme: SchemeKind, workers: Vec<WorkerSpec>) -> Self {
        HarnessConfig {
            scheme,
            workers,
            acp: AcpConfig::PAPER,
            retry: BackoffPolicy::retry_default(),
            reconnect: BackoffPolicy::reconnect_default(),
            transport: Transport::Channels,
            lease: LeaseConfig::RUNTIME_DEFAULT,
            heartbeat_every: Some(Duration::from_millis(100)),
            reply_timeout: None,
            poll_interval: Duration::from_millis(2),
            trace: SharedSink::disabled(),
        }
    }

    /// Turns on tracing with a fresh default-capacity sink.
    pub fn traced(mut self) -> Self {
        self.trace = SharedSink::recording();
        self
    }

    /// The paper's p-slave mix: fast PEs first, then slow (3 fast +
    /// 5 slow for `p = 8`, scaled down as in the figures).
    pub fn paper_mix(scheme: SchemeKind, fast: usize, slow: usize) -> Self {
        let mut workers = Vec::with_capacity(fast + slow);
        workers.extend(std::iter::repeat_with(WorkerSpec::fast).take(fast));
        workers.extend(std::iter::repeat_with(WorkerSpec::slow).take(slow));
        Self::new(scheme, workers)
    }

    /// Virtual powers implied by the slowdowns (slowest PE = 1.0).
    pub fn virtual_powers(&self) -> Vec<VirtualPower> {
        let max_slowdown = self.workers.iter().map(|w| w.slowdown).max().unwrap_or(1);
        self.workers
            .iter()
            .map(|w| VirtualPower::new(max_slowdown as f64 / w.slowdown as f64))
            .collect()
    }
}

/// Everything a run produced.
#[derive(Debug)]
pub struct HarnessOutcome {
    /// Table-style report (wall-clock times), fault log included.
    pub report: RunReport,
    /// Per-iteration results collected at the master (first result
    /// wins under speculation).
    pub results: Vec<u64>,
    /// Raw per-worker stats.
    pub worker_stats: Vec<WorkerStats>,
    /// Workers that never reached clean termination (crashed, hung, or
    /// declared dead).
    pub failed_workers: Vec<usize>,
    /// Fault-handling decisions, in time order (same data as
    /// `report.faults`).
    pub faults: FaultLog,
    /// Speculative re-executions granted near end-of-loop.
    pub speculative_grants: u64,
    /// Results dropped by first-result-wins dedup.
    pub duplicates_dropped: u64,
    /// The run's event timeline (`None` when tracing was off).
    pub trace: Option<Trace>,
}

/// Executes the full loop under the configured scheme and cluster.
///
/// # Panics
/// On internal errors (the master dying, a *healthy-plan* worker
/// failing) and when any iteration's result fails to arrive — the loop
/// is completable as long as one worker survives; a run where every
/// worker dies is a configuration bug in this harness's eyes.
pub fn run_scheduled_loop<W: Workload + 'static>(
    cfg: &HarnessConfig,
    workload: Arc<W>,
) -> HarnessOutcome {
    let p = cfg.workers.len();
    assert!(p >= 1, "need at least one worker");
    let initial_q: Vec<u32> = cfg.workers.iter().map(|w| w.load.q()).collect();
    let mut master = Master::new(MasterConfig {
        scheme: cfg.scheme,
        total: workload.len(),
        powers: cfg.virtual_powers(),
        initial_q,
        acp: cfg.acp,
    });
    master.set_lease_config(cfg.lease);

    let worker_cfgs: Vec<WorkerConfig> = cfg
        .workers
        .iter()
        .enumerate()
        .map(|(id, spec)| WorkerConfig {
            id,
            slowdown: spec.slowdown,
            load: spec.load.clone(),
            retry: cfg.retry,
            reconnect: cfg.reconnect,
            fault: spec.fault.clone(),
            heartbeat_every: cfg.heartbeat_every,
            reply_timeout: cfg.reply_timeout,
            trace: cfg.trace.clone(),
        })
        .collect();

    // A worker with an injected fault may legitimately end in a
    // transport error (e.g. it gave up redialling); a healthy worker
    // may not.
    let finish = |wcfg: &WorkerConfig, res: Result<WorkerStats, _>| match res {
        Ok(stats) => stats,
        Err(e) if !wcfg.fault.is_healthy() => {
            let _ = e;
            WorkerStats::default()
        }
        Err(e) => panic!("healthy worker {} failed: {e}", wcfg.id),
    };

    let t0 = Instant::now();
    let (outcome, stats) = match cfg.transport {
        Transport::Channels => {
            let (mt, wts) = channel_transport(p);
            let handles: Vec<_> = wts
                .into_iter()
                .zip(worker_cfgs)
                .map(|(wt, wcfg)| {
                    let wl = Arc::clone(&workload);
                    std::thread::spawn(move || {
                        let res = run_worker(wt, &wcfg, wl.as_ref(), false);
                        (wcfg, res)
                    })
                })
                .collect();
            let outcome = run_resilient_master_traced(
                mt,
                &mut master,
                p,
                cfg.poll_interval,
                cfg.trace.clone(),
            )
            .expect("master failed");
            let stats: Vec<WorkerStats> = handles
                .into_iter()
                .map(|h| {
                    let (wcfg, res) = h.join().expect("worker panicked");
                    finish(&wcfg, res)
                })
                .collect();
            (outcome, stats)
        }
        Transport::Tcp | Transport::TcpEvented => {
            // The two TCP flavours differ only in who accepts: workers
            // dial the same framed protocol either way, so the master
            // is picked behind the boxed `MasterTransport` seam.
            type AcceptFn =
                Box<dyn FnOnce(usize) -> Result<Box<dyn MasterTransport>, TransportError>>;
            let (addr, accept): (std::net::SocketAddr, AcceptFn) =
                if cfg.transport == Transport::Tcp {
                    let listener = tcp_listen().expect("listen failed");
                    let addr = listener.addr;
                    (
                        addr,
                        Box::new(move |p| {
                            listener.accept_workers(p).map(|m| Box::new(m) as Box<dyn MasterTransport>)
                        }),
                    )
                } else {
                    let listener = evented_listen().expect("listen failed");
                    let addr = listener.addr;
                    (
                        addr,
                        Box::new(move |p| {
                            listener.accept_workers(p).map(|m| Box::new(m) as Box<dyn MasterTransport>)
                        }),
                    )
                };
            let handles: Vec<_> = worker_cfgs
                .into_iter()
                .map(|wcfg| {
                    let wl = Arc::clone(&workload);
                    std::thread::spawn(move || {
                        // The connect handshake doubles as the first
                        // request.
                        let first = Request {
                            worker: wcfg.id,
                            q: wcfg.load.q(),
                            result: None,
                        };
                        let res = TcpWorker::connect(addr, first)
                            .and_then(|wt| run_worker(wt, &wcfg, wl.as_ref(), true));
                        (wcfg, res)
                    })
                })
                .collect();
            let mt = accept(p).expect("accept failed");
            let outcome = run_resilient_master_traced(
                mt,
                &mut master,
                p,
                cfg.poll_interval,
                cfg.trace.clone(),
            )
            .expect("master failed");
            let stats: Vec<WorkerStats> = handles
                .into_iter()
                .map(|h| {
                    let (wcfg, res) = h.join().expect("worker panicked");
                    finish(&wcfg, res)
                })
                .collect();
            (outcome, stats)
        }
    };
    let t_p = t0.elapsed().as_secs_f64();

    let results: Vec<u64> = outcome
        .results
        .iter()
        .enumerate()
        .map(|(i, r)| {
            r.unwrap_or_else(|| {
                panic!(
                    "iteration {i} result missing (failed workers: {:?}; the loop \
                     is only completable while at least one worker survives)",
                    outcome.failed_workers
                )
            })
        })
        .collect();

    let per_pe: Vec<TimeBreakdown> = stats
        .iter()
        .map(|s| TimeBreakdown {
            t_com: s.t_com.as_secs_f64(),
            t_wait: s.t_wait.as_secs_f64(),
            t_comp: s.t_comp.as_secs_f64(),
        })
        .collect();
    let iterations: Vec<u64> = (0..p).map(|w| master.iterations_served(w)).collect();
    let report = RunReport::new(
        cfg.scheme.name(),
        per_pe,
        t_p,
        master.total_scheduling_steps(),
        iterations,
    )
    .with_faults(outcome.faults.clone());
    let trace = cfg.trace.enabled().then(|| {
        cfg.trace.take(TraceMeta {
            scheme: cfg.scheme.name().to_string(),
            workers: p,
            total_iterations: workload.len(),
            clock: ClockDomain::Monotonic,
        })
    });
    HarnessOutcome {
        report,
        results,
        worker_stats: stats,
        failed_workers: outcome.failed_workers,
        faults: outcome.faults,
        speculative_grants: outcome.speculative_grants,
        duplicates_dropped: outcome.duplicates_dropped,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lss_workloads::{SyntheticWorkload, UniformLoop};

    #[test]
    fn channels_run_completes_and_results_match() {
        let w = Arc::new(UniformLoop::new(200, 500));
        let cfg = HarnessConfig::paper_mix(SchemeKind::Tfss, 2, 2);
        let out = run_scheduled_loop(&cfg, Arc::clone(&w));
        assert_eq!(out.results.len(), 200);
        for i in 0..200u64 {
            assert_eq!(out.results[i as usize], w.execute(i), "iteration {i}");
        }
        assert_eq!(out.report.iterations.iter().sum::<u64>(), 200);
        assert!(out.faults.is_empty(), "healthy run logged faults:\n{}", out.faults.render());
        assert!(!out.report.had_faults());
    }

    #[test]
    fn tcp_run_completes() {
        let w = Arc::new(UniformLoop::new(60, 500));
        let mut cfg = HarnessConfig::paper_mix(SchemeKind::Fss, 2, 0);
        cfg.transport = Transport::Tcp;
        let out = run_scheduled_loop(&cfg, Arc::clone(&w));
        assert_eq!(out.results.len(), 60);
        for i in 0..60u64 {
            assert_eq!(out.results[i as usize], w.execute(i));
        }
        assert!(out.faults.is_empty(), "{}", out.faults.render());
    }

    #[test]
    fn evented_tcp_run_completes() {
        let w = Arc::new(UniformLoop::new(60, 500));
        let mut cfg = HarnessConfig::paper_mix(SchemeKind::Fss, 2, 0);
        cfg.transport = Transport::TcpEvented;
        let out = run_scheduled_loop(&cfg, Arc::clone(&w));
        assert_eq!(out.results.len(), 60);
        for i in 0..60u64 {
            assert_eq!(out.results[i as usize], w.execute(i));
        }
        assert!(out.faults.is_empty(), "{}", out.faults.render());
    }

    #[test]
    fn evented_tcp_survives_a_crashing_worker() {
        let w = Arc::new(UniformLoop::new(120, 400));
        let mut cfg = HarnessConfig::paper_mix(SchemeKind::Css { k: 10 }, 2, 0);
        cfg.transport = Transport::TcpEvented;
        cfg.workers.push(WorkerSpec::failing_after(1));
        let out = run_scheduled_loop(&cfg, Arc::clone(&w));
        assert_eq!(out.results.len(), 120);
        for i in 0..120u64 {
            assert_eq!(out.results[i as usize], w.execute(i));
        }
        assert_eq!(out.failed_workers, vec![2]);
        assert!(!out.faults.is_empty(), "crash must be visible in the log");
    }

    #[test]
    fn fast_workers_do_more_under_self_scheduling() {
        let w = Arc::new(UniformLoop::new(300, 8_000));
        let cfg = HarnessConfig::paper_mix(SchemeKind::Css { k: 5 }, 1, 1);
        let out = run_scheduled_loop(&cfg, w);
        assert!(
            out.report.iterations[0] > out.report.iterations[1],
            "fast should out-pull slow: {:?}",
            out.report.iterations
        );
    }

    #[test]
    fn distributed_scheme_runs_with_live_load_change() {
        let w = Arc::new(UniformLoop::new(400, 4_000));
        let cfg = HarnessConfig::paper_mix(SchemeKind::Dtss, 2, 2);
        let load = cfg.workers[0].load.clone();
        // Overload worker 0 shortly after the run starts.
        let flipper = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            load.set_q(4);
        });
        let out = run_scheduled_loop(&cfg, w);
        flipper.join().unwrap();
        assert_eq!(out.results.len(), 400);
    }

    #[test]
    fn every_scheme_completes_end_to_end() {
        let w = Arc::new(SyntheticWorkload::new((0..97).map(|i| i % 13 + 1).collect()));
        for scheme in [
            SchemeKind::Static,
            SchemeKind::Css { k: 4 },
            SchemeKind::Gss { min_chunk: 2 },
            SchemeKind::Tss,
            SchemeKind::Fss,
            SchemeKind::Fiss { sigma: 3 },
            SchemeKind::Tfss,
            SchemeKind::Wf,
            SchemeKind::Dtss,
            SchemeKind::Dfss,
            SchemeKind::Dfiss { sigma: 3 },
            SchemeKind::Dtfss,
        ] {
            let cfg = HarnessConfig::paper_mix(scheme, 1, 2);
            let out = run_scheduled_loop(&cfg, Arc::clone(&w));
            assert_eq!(
                out.report.iterations.iter().sum::<u64>(),
                97,
                "{} dropped iterations",
                scheme.name()
            );
        }
    }

    #[test]
    fn traced_channels_run_reconciles_with_worker_stats() {
        let w = Arc::new(UniformLoop::new(200, 2_000));
        let cfg = HarnessConfig::paper_mix(SchemeKind::Tfss, 2, 2).traced();
        let out = run_scheduled_loop(&cfg, Arc::clone(&w));
        let trace = out.trace.expect("tracing was on");
        assert_eq!(trace.meta.clock, ClockDomain::Monotonic);
        assert_eq!(trace.meta.scheme, "TFSS");
        assert_eq!(trace.meta.workers, 4);
        assert_eq!(trace.dropped, 0, "paper-scale run must fit the ring");

        // Trace-derived breakdowns equal the workers' own stats. The
        // nanosecond sums are identical; only the final ns→s conversion
        // differs (Duration::as_secs_f64 vs ns/1e9), so compare at a
        // float-rounding tolerance.
        let derived = TimeBreakdown::all_from_trace(&trace);
        assert_eq!(derived.len(), 4);
        for (s, d) in out.worker_stats.iter().zip(&derived) {
            assert!((s.t_com.as_secs_f64() - d.t_com).abs() < 1e-6, "{s:?} vs {d:?}");
            assert!((s.t_wait.as_secs_f64() - d.t_wait).abs() < 1e-6, "{s:?} vs {d:?}");
            assert!((s.t_comp.as_secs_f64() - d.t_comp).abs() < 1e-6, "{s:?} vs {d:?}");
        }

        // Lifecycle completeness: every chunk the master served shows
        // up as a grant, and every worker connected exactly once.
        let grants = trace.count_kind(|k| matches!(k, lss_trace::EventKind::Granted { .. }));
        assert_eq!(grants as u64, out.report.scheduling_steps);
        let connects =
            trace.count_kind(|k| matches!(k, lss_trace::EventKind::WorkerConnected));
        assert_eq!(connects, 4);
        let completed = trace.count_kind(|k| matches!(k, lss_trace::EventKind::Completed));
        assert!(completed >= 1 && completed <= grants);

        // The timeline is monotone and reconstructable into lanes.
        let lanes = lss_trace::gantt(&trace);
        assert_eq!(lanes.len(), 4);
        assert_eq!(
            lanes.iter().map(|l| l.spans.len()).sum::<usize>(),
            completed,
            "every completion pairs with a start"
        );
        assert!(lanes.iter().all(|l| l.unfinished.is_empty()));
    }

    #[test]
    fn traced_tcp_run_produces_the_same_schema() {
        let w = Arc::new(UniformLoop::new(60, 500));
        let mut cfg = HarnessConfig::paper_mix(SchemeKind::Gss { min_chunk: 1 }, 2, 0).traced();
        cfg.transport = Transport::Tcp;
        let out = run_scheduled_loop(&cfg, Arc::clone(&w));
        let trace = out.trace.expect("tracing was on");
        assert_eq!(trace.meta.clock, ClockDomain::Monotonic);
        assert!(trace.count_kind(|k| matches!(k, lss_trace::EventKind::Granted { .. })) > 0);
        assert!(trace.count_kind(|k| matches!(k, lss_trace::EventKind::Completed)) > 0);
        // Same schema as the simulator: the Chrome exporter accepts it.
        let json = lss_trace::to_chrome_json(&trace);
        let n = lss_trace::validate_chrome_trace(&json).expect("valid Chrome trace");
        assert!(n > 0);
    }

    #[test]
    fn untraced_run_reports_no_trace() {
        let w = Arc::new(UniformLoop::new(40, 200));
        let cfg = HarnessConfig::paper_mix(SchemeKind::Css { k: 5 }, 1, 1);
        let out = run_scheduled_loop(&cfg, w);
        assert!(out.trace.is_none());
    }

    #[test]
    fn crashing_worker_does_not_stop_the_loop() {
        let w = Arc::new(UniformLoop::new(120, 400));
        let mut cfg = HarnessConfig::paper_mix(SchemeKind::Css { k: 10 }, 2, 0);
        cfg.workers.push(WorkerSpec::failing_after(1));
        let out = run_scheduled_loop(&cfg, Arc::clone(&w));
        assert_eq!(out.results.len(), 120);
        for i in 0..120u64 {
            assert_eq!(out.results[i as usize], w.execute(i));
        }
        assert_eq!(out.failed_workers, vec![2]);
        assert!(!out.faults.is_empty(), "crash must be visible in the log");
    }
}
