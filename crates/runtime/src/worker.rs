//! The slave loop — the paper's slave algorithm (§3.1) verbatim:
//!
//! 1. Obtain the run-queue length `Q_i` (here: sample the
//!    [`LoadState`]).
//! 2. Send a request (with `Q_i` and the previous chunk's piggy-backed
//!    results) to the master.
//! 3. Wait for a reply; if more tasks arrive, compute them and go to 1;
//!    on a retry notice back off and go to 1; else terminate.
//!
//! Heterogeneity emulation: a worker with `slowdown = s` executes every
//! iteration `s` times; non-dedication multiplies that by the current
//! run-queue length `Q` (the equal-share assumption made mechanical, so
//! a `Q = 3` worker really takes 3× longer per iteration).

use std::time::{Duration, Instant};

use lss_core::master::Assignment;
use lss_workloads::Workload;

use crate::load::LoadState;
use crate::protocol::{ChunkResult, Reply, Request};
use crate::transport::{TransportError, WorkerTransport};

/// Static configuration of one worker.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Dense worker id.
    pub id: usize,
    /// Speed handicap: iterations are executed `slowdown` times
    /// (1 = fast PE; 3 ≈ the paper's slow UltraSPARC 1).
    pub slowdown: u32,
    /// Shared run-queue state.
    pub load: LoadState,
    /// Back-off before re-requesting after a retry notice.
    pub retry_backoff: Duration,
    /// Failure injection: crash (return without reporting) after
    /// computing this many chunks. `None` = healthy worker.
    pub fail_after_chunks: Option<u64>,
}

impl WorkerConfig {
    /// A dedicated full-speed worker.
    pub fn fast(id: usize) -> Self {
        WorkerConfig {
            id,
            slowdown: 1,
            load: LoadState::dedicated(),
            retry_backoff: Duration::from_millis(10),
            fail_after_chunks: None,
        }
    }
}

/// Wall-clock accounting gathered by a worker, mirroring the tables'
/// `T_com / T_wait / T_comp`.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerStats {
    /// Time in transport sends (requests + piggy-backed results).
    pub t_com: Duration,
    /// Time blocked on the master (reply latency + retry back-offs).
    pub t_wait: Duration,
    /// Time executing iterations.
    pub t_comp: Duration,
    /// Iterations executed.
    pub iterations: u64,
    /// Chunks received.
    pub chunks: u64,
}

/// Runs the slave loop to completion.
///
/// `first_request_sent` is true when the transport's connection
/// handshake already delivered the initial request (the TCP transport
/// does this); the loop then starts by awaiting the reply.
pub fn run_worker<T: WorkerTransport>(
    mut transport: T,
    cfg: &WorkerConfig,
    workload: &dyn Workload,
    first_request_sent: bool,
) -> Result<WorkerStats, TransportError> {
    assert!(cfg.slowdown >= 1, "slowdown must be at least 1");
    let mut stats = WorkerStats::default();
    let mut pending_result: Option<ChunkResult> = None;
    let mut skip_send = first_request_sent;

    loop {
        if !skip_send {
            let q = cfg.load.q();
            let t0 = Instant::now();
            transport.send_request(Request {
                worker: cfg.id,
                q,
                result: pending_result.take(),
            })?;
            stats.t_com += t0.elapsed();
        } else {
            skip_send = false;
        }

        let t1 = Instant::now();
        let Reply { assignment } = transport.recv_reply()?;
        stats.t_wait += t1.elapsed();

        match assignment {
            Assignment::Chunk(chunk) => {
                if cfg.fail_after_chunks == Some(stats.chunks) {
                    // Injected crash: vanish mid-run without reporting.
                    // Dropping the transport is what the master sees.
                    return Ok(stats);
                }
                let t2 = Instant::now();
                let reps = cfg.slowdown as u64 * cfg.load.q() as u64;
                let values: Vec<u64> = chunk
                    .iter()
                    .map(|i| {
                        let v = workload.execute(i);
                        for _ in 1..reps {
                            std::hint::black_box(workload.execute(i));
                        }
                        v
                    })
                    .collect();
                stats.t_comp += t2.elapsed();
                stats.iterations += chunk.len;
                stats.chunks += 1;
                pending_result = Some(ChunkResult::new(chunk, values));
            }
            Assignment::Retry => {
                std::thread::sleep(cfg.retry_backoff);
                stats.t_wait += cfg.retry_backoff;
            }
            Assignment::Finished => return Ok(stats),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Reply;
    use lss_core::chunk::Chunk;
    use lss_workloads::UniformLoop;

    /// A scripted transport: hands out canned replies, records requests.
    struct Script {
        replies: Vec<Reply>,
        sent: Vec<Request>,
    }

    impl WorkerTransport for Script {
        fn send_request(&mut self, req: Request) -> Result<(), TransportError> {
            self.sent.push(req);
            Ok(())
        }
        fn recv_reply(&mut self) -> Result<Reply, TransportError> {
            if self.replies.is_empty() {
                return Err(TransportError("script exhausted".into()));
            }
            Ok(self.replies.remove(0))
        }
    }

    #[test]
    fn worker_computes_and_piggybacks() {
        let script = Script {
            replies: vec![
                Reply { assignment: Assignment::Chunk(Chunk::new(0, 3)) },
                Reply { assignment: Assignment::Finished },
            ],
            sent: Vec::new(),
        };
        let w = UniformLoop::new(10, 100);
        let cfg = WorkerConfig::fast(0);
        // Run through a transport we can inspect afterwards.
        let mut recorded = Vec::new();
        struct Tap<'a>(Script, &'a mut Vec<Request>);
        impl WorkerTransport for Tap<'_> {
            fn send_request(&mut self, req: Request) -> Result<(), TransportError> {
                self.1.push(req.clone());
                self.0.send_request(req)
            }
            fn recv_reply(&mut self) -> Result<Reply, TransportError> {
                self.0.recv_reply()
            }
        }
        let stats = run_worker(Tap(script, &mut recorded), &cfg, &w, false).unwrap();
        assert_eq!(stats.iterations, 3);
        assert_eq!(stats.chunks, 1);
        assert_eq!(recorded.len(), 2);
        assert!(recorded[0].result.is_none(), "first request carries no result");
        let res = recorded[1].result.as_ref().expect("piggy-backed result");
        assert_eq!(res.chunk, Chunk::new(0, 3));
        assert_eq!(res.values.len(), 3);
        assert_eq!(res.values[1], w.execute(1));
    }

    #[test]
    fn worker_retries_then_finishes() {
        let script = Script {
            replies: vec![
                Reply { assignment: Assignment::Retry },
                Reply { assignment: Assignment::Finished },
            ],
            sent: Vec::new(),
        };
        let w = UniformLoop::new(1, 1);
        let mut cfg = WorkerConfig::fast(0);
        cfg.retry_backoff = Duration::from_millis(1);
        let stats = run_worker(script, &cfg, &w, false).unwrap();
        assert_eq!(stats.iterations, 0);
        assert!(stats.t_wait >= Duration::from_millis(1));
    }

    #[test]
    fn slowdown_multiplies_compute_time() {
        let w = UniformLoop::new(64, 20_000);
        let run = |slowdown| {
            let script = Script {
                replies: vec![
                    Reply { assignment: Assignment::Chunk(Chunk::new(0, 64)) },
                    Reply { assignment: Assignment::Finished },
                ],
                sent: Vec::new(),
            };
            let cfg = WorkerConfig {
                id: 0,
                slowdown,
                load: LoadState::dedicated(),
                retry_backoff: Duration::from_millis(1),
                fail_after_chunks: None,
            };
            run_worker(script, &cfg, &w, false).unwrap().t_comp
        };
        let fast = run(1);
        let slow = run(4);
        let ratio = slow.as_secs_f64() / fast.as_secs_f64().max(1e-9);
        assert!(ratio > 2.0, "slowdown 4 should be ≫ 1×, got {ratio:.2}");
    }

    #[test]
    fn transport_failure_surfaces() {
        let script = Script { replies: vec![], sent: Vec::new() };
        let w = UniformLoop::new(1, 1);
        assert!(run_worker(script, &WorkerConfig::fast(0), &w, false).is_err());
    }
}
