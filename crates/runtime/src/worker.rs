//! The slave loop — the paper's slave algorithm (§3.1) verbatim:
//!
//! 1. Obtain the run-queue length `Q_i` (here: sample the
//!    [`LoadState`]).
//! 2. Send a request (with `Q_i` and the previous chunk's piggy-backed
//!    results) to the master.
//! 3. Wait for a reply; if more tasks arrive, compute them and go to 1;
//!    on a retry notice back off and go to 1; else terminate.
//!
//! Heterogeneity emulation: a worker with `slowdown = s` executes every
//! iteration `s` times; non-dedication multiplies that by the current
//! run-queue length `Q` (the equal-share assumption made mechanical, so
//! a `Q = 3` worker really takes 3× longer per iteration).
//!
//! ## Chaos injection
//!
//! The loop interprets a [`FaultPlan`]: it can crash (vanish without a
//! word), hang (accept a chunk and never reply), degrade (iterations
//! slow by ×k mid-run), deliberately drop its link and redial after an
//! outage, and subject its own messages to seeded drop/duplication/
//! delay. Everything is driven by the plan's [`ChaosRng`], so a chaos
//! run replays exactly from its seed. Recovery mechanics — request
//! retransmission on reply timeout, capped exponential backoff with
//! jitter for retries and reconnects, heartbeats during long chunks —
//! are always active; with a healthy plan they simply never fire.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use lss_core::fault::{ChaosRng, FaultPlan};
use lss_core::master::Assignment;
use lss_trace::{EventKind, SharedSink, TraceEvent};
use lss_workloads::Workload;

use crate::backoff::BackoffPolicy;
use crate::load::LoadState;
use crate::protocol::{ChunkResult, Reply, Request};
use crate::transport::{TransportError, WorkerTransport};

/// Default patience before retransmitting a request when message loss
/// is possible (lossy net faults active, or the caller asked for it).
const DEFAULT_REPLY_TIMEOUT: Duration = Duration::from_millis(250);

/// How often a hung worker polls its (ignored) reply stream, waiting
/// for the master to go away so its thread can be joined.
const HANG_POLL: Duration = Duration::from_millis(25);

/// Static configuration of one worker.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Dense worker id.
    pub id: usize,
    /// Speed handicap: iterations are executed `slowdown` times
    /// (1 = fast PE; 3 ≈ the paper's slow UltraSPARC 1).
    pub slowdown: u32,
    /// Shared run-queue state.
    pub load: LoadState,
    /// Pacing of re-requests after a retry notice.
    pub retry: BackoffPolicy,
    /// Pacing of redial attempts after a dropped link.
    pub reconnect: BackoffPolicy,
    /// Chaos plan (default: healthy).
    pub fault: FaultPlan,
    /// Emit a liveness heartbeat at this interval while computing a
    /// chunk (`None` = no heartbeats).
    pub heartbeat_every: Option<Duration>,
    /// Wait at most this long for a reply before retransmitting the
    /// request. `None` = block forever unless the plan's net faults are
    /// active (then [`DEFAULT_REPLY_TIMEOUT`] applies).
    pub reply_timeout: Option<Duration>,
    /// Trace sink shared with the master loop (default: disabled). All
    /// threads of a run must share one sink so timestamps share one
    /// epoch.
    pub trace: SharedSink,
}

impl WorkerConfig {
    /// A dedicated full-speed worker with no faults.
    pub fn fast(id: usize) -> Self {
        WorkerConfig {
            id,
            slowdown: 1,
            load: LoadState::dedicated(),
            retry: BackoffPolicy::retry_default(),
            reconnect: BackoffPolicy::reconnect_default(),
            fault: FaultPlan::healthy(),
            heartbeat_every: None,
            reply_timeout: None,
            trace: SharedSink::disabled(),
        }
    }
}

/// Wall-clock accounting gathered by a worker, mirroring the tables'
/// `T_com / T_wait / T_comp`.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerStats {
    /// Time in transport sends (requests + piggy-backed results).
    pub t_com: Duration,
    /// Time blocked on the master (reply latency + retry back-offs).
    pub t_wait: Duration,
    /// Time executing iterations.
    pub t_comp: Duration,
    /// Iterations executed.
    pub iterations: u64,
    /// Chunks received.
    pub chunks: u64,
    /// Requests retransmitted after a reply timeout.
    pub retransmits: u64,
    /// Successful mid-run reconnects.
    pub reconnects: u64,
}

/// Runs the slave loop to completion.
///
/// `first_request_sent` is true when the transport's connection
/// handshake already delivered the initial request (the TCP transport
/// does this); the loop then starts by awaiting the reply.
///
/// Returns `Ok` both on normal termination and on an *injected* crash
/// or hang (the stats describe what was done before the fault); a
/// transport failure the plan did not script surfaces as `Err`.
pub fn run_worker<T: WorkerTransport>(
    mut transport: T,
    cfg: &WorkerConfig,
    workload: &dyn Workload,
    first_request_sent: bool,
) -> Result<WorkerStats, TransportError> {
    assert!(cfg.slowdown >= 1, "slowdown must be at least 1");
    let mut stats = WorkerStats::default();
    let mut pending_result: Option<ChunkResult> = None;
    let mut skip_send = first_request_sent;
    let mut rng = ChaosRng::new(cfg.fault.seed ^ (cfg.id as u64).wrapping_mul(0x9E37));
    let mut retry_attempt = 0u32;
    let mut last_request: Option<Request> = None;
    let mut disconnect_done = false;
    // Results of chunks already computed, by chunk start: a re-grant of
    // the same chunk (lost-reply retransmit, or a requeue that circles
    // back) is answered from here instead of recomputed. Values are
    // deterministic per iteration, so the cache is always valid.
    let mut computed: HashMap<u64, Vec<u64>> = HashMap::new();
    let reply_timeout = cfg
        .reply_timeout
        .or_else(|| cfg.fault.net.is_active().then_some(DEFAULT_REPLY_TIMEOUT));

    loop {
        if !skip_send {
            let q = cfg.load.q();
            let req = Request { worker: cfg.id, q, result: pending_result.take() };
            let t0 = Instant::now();
            send_with_net_faults(&mut transport, &req, &cfg.fault, &mut rng)?;
            let spent = t0.elapsed();
            stats.t_com += spent;
            if cfg.trace.enabled() {
                cfg.trace.record_now(
                    TraceEvent::new(0, EventKind::Comm { ns: spent.as_nanos() as u64 })
                        .on_worker(cfg.id),
                );
            }
            last_request = Some(req);
        } else {
            skip_send = false;
        }

        let t1 = Instant::now();
        let assignment = match reply_timeout {
            None => transport.recv_reply()?.assignment,
            Some(timeout) => {
                // Lossy links: wait, retransmit, wait again — the
                // master's grants are idempotent, so retransmitted
                // requests are safe.
                loop {
                    match transport.recv_reply_timeout(timeout)? {
                        Some(Reply { assignment }) => break assignment,
                        None => {
                            if let Some(req) = &last_request {
                                stats.retransmits += 1;
                                send_with_net_faults(&mut transport, req, &cfg.fault, &mut rng)?;
                            }
                        }
                    }
                }
            }
        };
        let waited = t1.elapsed();
        stats.t_wait += waited;
        if cfg.trace.enabled() {
            cfg.trace.record_now(
                TraceEvent::new(0, EventKind::Wait { ns: waited.as_nanos() as u64 })
                    .on_worker(cfg.id),
            );
        }

        match assignment {
            Assignment::Chunk(chunk) => {
                if cfg.fault.crash_after_chunks == Some(stats.chunks) {
                    // Injected crash: vanish mid-run without reporting.
                    // Dropping the transport is what the master sees.
                    return Ok(stats);
                }
                if cfg.fault.hang_after_chunks == Some(stats.chunks) {
                    return hang_forever(transport, stats);
                }
                retry_attempt = 0;
                let values = match computed.get(&chunk.start) {
                    Some(v) if v.len() == chunk.len as usize => v.clone(),
                    _ => {
                        if cfg.trace.enabled() {
                            cfg.trace.record_now(
                                TraceEvent::new(0, EventKind::Started)
                                    .on_worker(cfg.id)
                                    .on_chunk(chunk.start, chunk.len),
                            );
                        }
                        let t2 = Instant::now();
                        let reps = u64::from(cfg.slowdown)
                            * u64::from(cfg.load.q())
                            * u64::from(cfg.fault.degrade_factor(stats.chunks));
                        let mut last_hb = Instant::now();
                        let values: Vec<u64> = chunk
                            .iter()
                            .map(|i| {
                                let v = workload.execute(i);
                                for _ in 1..reps {
                                    std::hint::black_box(workload.execute(i));
                                }
                                if let Some(every) = cfg.heartbeat_every {
                                    if last_hb.elapsed() >= every {
                                        // Fire-and-forget: a failed
                                        // heartbeat is not fatal.
                                        let _ = transport.send_heartbeat(cfg.id);
                                        last_hb = Instant::now();
                                    }
                                }
                                v
                            })
                            .collect();
                        let computed_for = t2.elapsed();
                        stats.t_comp += computed_for;
                        stats.iterations += chunk.len;
                        if cfg.trace.enabled() {
                            cfg.trace.record_now(
                                TraceEvent::new(
                                    0,
                                    EventKind::Comp { ns: computed_for.as_nanos() as u64 },
                                )
                                .on_worker(cfg.id)
                                .on_chunk(chunk.start, chunk.len),
                            );
                            cfg.trace.record_now(
                                TraceEvent::new(0, EventKind::Completed)
                                    .on_worker(cfg.id)
                                    .on_chunk(chunk.start, chunk.len),
                            );
                        }
                        computed.insert(chunk.start, values.clone());
                        values
                    }
                };
                stats.chunks += 1;
                pending_result = Some(ChunkResult::new(chunk, values));

                // Planned outage: drop the link, stay dark, redial.
                if let Some(plan) = cfg.fault.disconnect {
                    if !disconnect_done && stats.chunks >= plan.after_chunks.max(1) {
                        disconnect_done = true;
                        // The in-flight result is lost with the link
                        // (the master requeues via lease/disconnect).
                        pending_result = None;
                        transport.drop_link();
                        std::thread::sleep(Duration::from_nanos(plan.outage_ticks));
                        reconnect_with_backoff(&mut transport, cfg, &mut rng)?;
                        stats.reconnects += 1;
                        last_request = None;
                        skip_send = true; // the hello was the request
                    }
                }
            }
            Assignment::Retry => {
                let pause = cfg.retry.delay(retry_attempt, &mut rng);
                retry_attempt = retry_attempt.saturating_add(1);
                std::thread::sleep(pause);
                stats.t_wait += pause;
                if cfg.trace.enabled() {
                    cfg.trace.record_now(
                        TraceEvent::new(0, EventKind::Wait { ns: pause.as_nanos() as u64 })
                            .on_worker(cfg.id),
                    );
                }
            }
            Assignment::Finished => return Ok(stats),
        }
    }
}

/// Sends a request subject to the plan's network faults: possibly
/// delayed, possibly silently dropped, possibly delivered twice.
fn send_with_net_faults<T: WorkerTransport>(
    transport: &mut T,
    req: &Request,
    fault: &FaultPlan,
    rng: &mut ChaosRng,
) -> Result<(), TransportError> {
    let net = fault.net;
    if net.delay_ticks > 0 {
        std::thread::sleep(Duration::from_nanos(rng.below(net.delay_ticks)));
    }
    if net.drop_prob > 0.0 && rng.chance(net.drop_prob) {
        return Ok(()); // lost in flight; the reply timeout recovers
    }
    transport.send_request(req.clone())?;
    if net.dup_prob > 0.0 && rng.chance(net.dup_prob) {
        transport.send_request(req.clone())?;
    }
    Ok(())
}

/// The injected-hang terminal state: the worker accepted a chunk and
/// never speaks again — but its thread must stay joinable, so it idles
/// on the reply stream (ignoring everything) until the master side
/// disappears.
fn hang_forever<T: WorkerTransport>(
    mut transport: T,
    stats: WorkerStats,
) -> Result<WorkerStats, TransportError> {
    loop {
        match transport.recv_reply_timeout(HANG_POLL) {
            Ok(_) => {}            // swallow replies; never answer
            Err(_) => return Ok(stats), // master gone: unblock the join
        }
    }
}

/// Redials a dropped link with bounded, jittered backoff. The hello
/// request of the new connection carries no result (whatever was in
/// flight died with the old link). A spent budget surfaces as the typed
/// [`TransportError::RetriesExhausted`], not the final attempt's raw
/// error, so callers can distinguish "gone for good" from one bad dial.
fn reconnect_with_backoff<T: WorkerTransport>(
    transport: &mut T,
    cfg: &WorkerConfig,
    rng: &mut ChaosRng,
) -> Result<(), TransportError> {
    let hello = Request { worker: cfg.id, q: cfg.load.q(), result: None };
    let mut attempt = 0u32;
    loop {
        match transport.reconnect(&hello) {
            Ok(()) => return Ok(()),
            Err(e @ TransportError::Unsupported(_)) => return Err(e),
            Err(e) => {
                if !cfg.reconnect.allows(attempt + 1) {
                    return Err(TransportError::RetriesExhausted {
                        attempts: attempt + 1,
                        last: e.to_string(),
                    });
                }
                std::thread::sleep(cfg.reconnect.delay(attempt, rng));
                attempt += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Reply;
    use lss_core::chunk::Chunk;
    use lss_workloads::UniformLoop;

    /// A scripted transport: hands out canned replies, records requests.
    struct Script {
        replies: Vec<Reply>,
        sent: Vec<Request>,
    }

    impl WorkerTransport for Script {
        fn send_request(&mut self, req: Request) -> Result<(), TransportError> {
            self.sent.push(req);
            Ok(())
        }
        fn recv_reply(&mut self) -> Result<Reply, TransportError> {
            if self.replies.is_empty() {
                return Err(TransportError::Disconnected("script exhausted".into()));
            }
            Ok(self.replies.remove(0))
        }
    }

    #[test]
    fn worker_computes_and_piggybacks() {
        let script = Script {
            replies: vec![
                Reply { assignment: Assignment::Chunk(Chunk::new(0, 3)) },
                Reply { assignment: Assignment::Finished },
            ],
            sent: Vec::new(),
        };
        let w = UniformLoop::new(10, 100);
        let cfg = WorkerConfig::fast(0);
        // Run through a transport we can inspect afterwards.
        let mut recorded = Vec::new();
        struct Tap<'a>(Script, &'a mut Vec<Request>);
        impl WorkerTransport for Tap<'_> {
            fn send_request(&mut self, req: Request) -> Result<(), TransportError> {
                self.1.push(req.clone());
                self.0.send_request(req)
            }
            fn recv_reply(&mut self) -> Result<Reply, TransportError> {
                self.0.recv_reply()
            }
        }
        let stats = run_worker(Tap(script, &mut recorded), &cfg, &w, false).unwrap();
        assert_eq!(stats.iterations, 3);
        assert_eq!(stats.chunks, 1);
        assert_eq!(recorded.len(), 2);
        assert!(recorded[0].result.is_none(), "first request carries no result");
        let res = recorded[1].result.as_ref().expect("piggy-backed result");
        assert_eq!(res.chunk, Chunk::new(0, 3));
        assert_eq!(res.values.len(), 3);
        assert_eq!(res.values[1], w.execute(1));
    }

    #[test]
    fn worker_retries_then_finishes() {
        let script = Script {
            replies: vec![
                Reply { assignment: Assignment::Retry },
                Reply { assignment: Assignment::Finished },
            ],
            sent: Vec::new(),
        };
        let w = UniformLoop::new(1, 1);
        let mut cfg = WorkerConfig::fast(0);
        cfg.retry = BackoffPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
            max_attempts: 0,
        };
        let stats = run_worker(script, &cfg, &w, false).unwrap();
        assert_eq!(stats.iterations, 0);
        assert!(stats.t_wait >= Duration::from_micros(500), "{:?}", stats.t_wait);
    }

    #[test]
    fn slowdown_multiplies_compute_time() {
        let w = UniformLoop::new(64, 20_000);
        let run = |slowdown| {
            let script = Script {
                replies: vec![
                    Reply { assignment: Assignment::Chunk(Chunk::new(0, 64)) },
                    Reply { assignment: Assignment::Finished },
                ],
                sent: Vec::new(),
            };
            let mut cfg = WorkerConfig::fast(0);
            cfg.slowdown = slowdown;
            run_worker(script, &cfg, &w, false).unwrap().t_comp
        };
        let fast = run(1);
        let slow = run(4);
        let ratio = slow.as_secs_f64() / fast.as_secs_f64().max(1e-9);
        assert!(ratio > 2.0, "slowdown 4 should be ≫ 1×, got {ratio:.2}");
    }

    #[test]
    fn degradation_multiplies_compute_time_mid_run() {
        let w = UniformLoop::new(128, 20_000);
        let run = |fault: FaultPlan| {
            let script = Script {
                replies: vec![
                    Reply { assignment: Assignment::Chunk(Chunk::new(0, 64)) },
                    Reply { assignment: Assignment::Chunk(Chunk::new(64, 64)) },
                    Reply { assignment: Assignment::Finished },
                ],
                sent: Vec::new(),
            };
            let mut cfg = WorkerConfig::fast(0);
            cfg.fault = fault;
            run_worker(script, &cfg, &w, false).unwrap().t_comp
        };
        let healthy = run(FaultPlan::healthy());
        // Degrades ×6 from the second chunk on.
        let degraded = run(FaultPlan::degrade_after(1, 6));
        let ratio = degraded.as_secs_f64() / healthy.as_secs_f64().max(1e-9);
        assert!(ratio > 1.8, "mid-run degradation should slow the run, got {ratio:.2}");
    }

    #[test]
    fn injected_crash_returns_cleanly() {
        let script = Script {
            replies: vec![
                Reply { assignment: Assignment::Chunk(Chunk::new(0, 4)) },
                Reply { assignment: Assignment::Chunk(Chunk::new(4, 4)) },
            ],
            sent: Vec::new(),
        };
        let w = UniformLoop::new(8, 10);
        let mut cfg = WorkerConfig::fast(0);
        cfg.fault = FaultPlan::crash_after(1);
        let stats = run_worker(script, &cfg, &w, false).unwrap();
        // Computed one chunk, crashed on receipt of the second.
        assert_eq!(stats.chunks, 1);
        assert_eq!(stats.iterations, 4);
    }

    #[test]
    fn regranted_chunk_is_answered_from_cache() {
        // The master re-grants chunk 0 (a lost-reply retransmit): the
        // worker resends the result without recomputing.
        let script = Script {
            replies: vec![
                Reply { assignment: Assignment::Chunk(Chunk::new(0, 4)) },
                Reply { assignment: Assignment::Chunk(Chunk::new(0, 4)) },
                Reply { assignment: Assignment::Finished },
            ],
            sent: Vec::new(),
        };
        let w = UniformLoop::new(4, 10);
        let cfg = WorkerConfig::fast(0);
        let mut recorded = Vec::new();
        struct Tap<'a>(Script, &'a mut Vec<Request>);
        impl WorkerTransport for Tap<'_> {
            fn send_request(&mut self, req: Request) -> Result<(), TransportError> {
                self.1.push(req.clone());
                self.0.send_request(req)
            }
            fn recv_reply(&mut self) -> Result<Reply, TransportError> {
                self.0.recv_reply()
            }
        }
        let stats = run_worker(Tap(script, &mut recorded), &cfg, &w, false).unwrap();
        assert_eq!(stats.iterations, 4, "computed once");
        assert_eq!(stats.chunks, 2, "but acknowledged twice");
        let second = recorded[2].result.as_ref().expect("re-sent result");
        assert_eq!(second.chunk, Chunk::new(0, 4));
    }

    #[test]
    fn traced_worker_mirrors_every_stats_accumulation() {
        let script = Script {
            replies: vec![
                Reply { assignment: Assignment::Chunk(Chunk::new(0, 8)) },
                Reply { assignment: Assignment::Retry },
                Reply { assignment: Assignment::Chunk(Chunk::new(8, 8)) },
                Reply { assignment: Assignment::Finished },
            ],
            sent: Vec::new(),
        };
        let w = UniformLoop::new(16, 2_000);
        let mut cfg = WorkerConfig::fast(0);
        cfg.retry = BackoffPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(1),
            max_attempts: 0,
        };
        cfg.trace = SharedSink::recording();
        let sink = cfg.trace.clone();
        let stats = run_worker(script, &cfg, &w, false).unwrap();
        let trace = sink.take(lss_trace::TraceMeta {
            scheme: "CSS".into(),
            workers: 1,
            total_iterations: 16,
            clock: lss_trace::ClockDomain::Monotonic,
        });
        // Every stats accumulation has a matching accounting delta, so
        // the nanosecond sums agree exactly.
        let b = lss_trace::breakdowns(&trace)[0];
        assert_eq!(u128::from(b.com_ns), stats.t_com.as_nanos());
        assert_eq!(u128::from(b.wait_ns), stats.t_wait.as_nanos());
        assert_eq!(u128::from(b.comp_ns), stats.t_comp.as_nanos());
        // One Started + one Completed per computed chunk.
        assert_eq!(trace.count_kind(|k| matches!(k, EventKind::Started)), 2);
        assert_eq!(trace.count_kind(|k| matches!(k, EventKind::Completed)), 2);
        // Timestamps are monotone per worker (shared-epoch clock).
        let times: Vec<u64> = trace.events().iter().map(|e| e.at_ns).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn regranted_chunk_does_not_emit_a_second_completion() {
        // Cache-hit re-acknowledgement resends the result but computes
        // nothing — the timeline must show one compute span, not two.
        let script = Script {
            replies: vec![
                Reply { assignment: Assignment::Chunk(Chunk::new(0, 4)) },
                Reply { assignment: Assignment::Chunk(Chunk::new(0, 4)) },
                Reply { assignment: Assignment::Finished },
            ],
            sent: Vec::new(),
        };
        let w = UniformLoop::new(4, 10);
        let mut cfg = WorkerConfig::fast(0);
        cfg.trace = SharedSink::recording();
        let sink = cfg.trace.clone();
        let stats = run_worker(script, &cfg, &w, false).unwrap();
        assert_eq!(stats.chunks, 2);
        let trace = sink.take(lss_trace::TraceMeta {
            scheme: "CSS".into(),
            workers: 1,
            total_iterations: 4,
            clock: lss_trace::ClockDomain::Monotonic,
        });
        assert_eq!(trace.count_kind(|k| matches!(k, EventKind::Started)), 1);
        assert_eq!(trace.count_kind(|k| matches!(k, EventKind::Completed)), 1);
    }

    #[test]
    fn transport_failure_surfaces() {
        let script = Script { replies: vec![], sent: Vec::new() };
        let w = UniformLoop::new(1, 1);
        assert!(run_worker(script, &WorkerConfig::fast(0), &w, false).is_err());
    }

    #[test]
    fn spent_reconnect_budget_is_a_typed_error() {
        /// A transport whose master never comes back.
        struct DeadMaster {
            dials: u32,
        }
        impl WorkerTransport for DeadMaster {
            fn send_request(&mut self, _req: Request) -> Result<(), TransportError> {
                Ok(())
            }
            fn recv_reply(&mut self) -> Result<Reply, TransportError> {
                Err(TransportError::Disconnected("gone".into()))
            }
            fn reconnect(&mut self, _hello: &Request) -> Result<(), TransportError> {
                self.dials += 1;
                Err(TransportError::Io("connection refused".into()))
            }
        }
        let mut cfg = WorkerConfig::fast(0);
        cfg.reconnect = BackoffPolicy {
            base: Duration::from_micros(10),
            cap: Duration::from_micros(50),
            max_attempts: 4,
        };
        let mut t = DeadMaster { dials: 0 };
        let mut rng = ChaosRng::new(1);
        let err = reconnect_with_backoff(&mut t, &cfg, &mut rng).unwrap_err();
        match err {
            TransportError::RetriesExhausted { attempts, ref last } => {
                assert_eq!(attempts, 4);
                assert!(last.contains("connection refused"), "{last}");
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        assert_eq!(t.dials, 4, "budget of 4 means exactly 4 dials");
    }

    #[test]
    fn dropped_requests_are_retransmitted() {
        /// A transport that loses every request until `deliveries`
        /// attempts have been made, then replies Finished.
        struct Flaky {
            attempts: u32,
            needed: u32,
        }
        impl WorkerTransport for Flaky {
            fn send_request(&mut self, _req: Request) -> Result<(), TransportError> {
                self.attempts += 1;
                Ok(())
            }
            fn recv_reply(&mut self) -> Result<Reply, TransportError> {
                unreachable!("timeout path only")
            }
            fn recv_reply_timeout(
                &mut self,
                _timeout: Duration,
            ) -> Result<Option<Reply>, TransportError> {
                if self.attempts >= self.needed {
                    Ok(Some(Reply { assignment: Assignment::Finished }))
                } else {
                    Ok(None)
                }
            }
        }
        let w = UniformLoop::new(1, 1);
        let mut cfg = WorkerConfig::fast(0);
        cfg.reply_timeout = Some(Duration::from_millis(1));
        let stats = run_worker(Flaky { attempts: 0, needed: 3 }, &cfg, &w, false).unwrap();
        assert!(stats.retransmits >= 2, "{}", stats.retransmits);
    }
}
