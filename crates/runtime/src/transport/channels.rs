//! In-process transport over std mpsc channels.
//!
//! All workers funnel their events into one master inbox (a single
//! `mpsc` channel carrying typed [`Inbound`] values), mirroring the
//! paper's single MPI receive loop. Replies travel over per-worker
//! channels. A worker endpoint announces its own death on drop — so a
//! crashed worker thread is an *event* the master observes, not a
//! silent stall — and can sever and re-establish its link mid-run to
//! exercise the reconnect path without sockets.

use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use super::{Inbound, MasterTransport, TransportError, WorkerTransport};
use crate::protocol::{Reply, Request};

/// Reply lines, swappable on reconnect.
struct Hub {
    replies: Mutex<Vec<Sender<Reply>>>,
}

/// Master endpoint: one funnel inbox, one reply line per worker.
pub struct ChannelMaster {
    inbox: Receiver<Inbound>,
    hub: Arc<Hub>,
}

/// Worker endpoint.
pub struct ChannelWorker {
    id: usize,
    events: Sender<Inbound>,
    replies: Receiver<Reply>,
    hub: Arc<Hub>,
    /// Whether the link is currently severed (chaos / planned outage).
    severed: bool,
}

/// Creates a connected master endpoint plus `p` worker endpoints.
pub fn channel_transport(p: usize) -> (ChannelMaster, Vec<ChannelWorker>) {
    assert!(p >= 1, "need at least one worker");
    let (event_tx, event_rx) = channel::<Inbound>();
    let mut reply_txs = Vec::with_capacity(p);
    let mut reply_rxs = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = channel::<Reply>();
        reply_txs.push(tx);
        reply_rxs.push(rx);
    }
    let hub = Arc::new(Hub { replies: Mutex::new(reply_txs) });
    let workers = reply_rxs
        .into_iter()
        .enumerate()
        .map(|(id, replies)| ChannelWorker {
            id,
            events: event_tx.clone(),
            replies,
            hub: Arc::clone(&hub),
            severed: false,
        })
        .collect();
    drop(event_tx); // workers hold the only senders: all-dead is observable
    (ChannelMaster { inbox: event_rx, hub }, workers)
}

impl Drop for ChannelMaster {
    fn drop(&mut self) {
        // Drop every reply sender so workers blocked on their reply
        // stream observe a disconnect — a hung worker's thread must
        // still be joinable after the master gives up on it. (Workers
        // hold the hub `Arc` too, so without this their own handle
        // would keep their reply line open forever.)
        if let Ok(mut replies) = self.hub.replies.lock() {
            replies.clear();
        }
    }
}

impl MasterTransport for ChannelMaster {
    fn recv(&mut self) -> Result<Inbound, TransportError> {
        self.inbox
            .recv()
            .map_err(|_| TransportError::Disconnected("all workers disconnected".into()))
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Inbound>, TransportError> {
        match self.inbox.recv_timeout(timeout) {
            Ok(ev) => Ok(Some(ev)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => {
                Err(TransportError::Disconnected("all workers disconnected".into()))
            }
        }
    }

    fn send(&mut self, worker: usize, reply: Reply) -> Result<(), TransportError> {
        let replies = self.hub.replies.lock().expect("hub lock");
        replies
            .get(worker)
            .ok_or(TransportError::UnknownWorker(worker))?
            .send(reply)
            .map_err(|_| TransportError::Disconnected(format!("worker {worker} gone")))
    }
}

impl ChannelWorker {
    /// This endpoint's worker id.
    pub fn id(&self) -> usize {
        self.id
    }
}

impl WorkerTransport for ChannelWorker {
    fn send_request(&mut self, req: Request) -> Result<(), TransportError> {
        if self.severed {
            return Err(TransportError::Disconnected("link severed".into()));
        }
        self.events
            .send(Inbound::Request(req))
            .map_err(|_| TransportError::Disconnected("master gone".into()))
    }

    fn recv_reply(&mut self) -> Result<Reply, TransportError> {
        if self.severed {
            return Err(TransportError::Disconnected("link severed".into()));
        }
        self.replies
            .recv()
            .map_err(|_| TransportError::Disconnected("master gone".into()))
    }

    fn recv_reply_timeout(&mut self, timeout: Duration) -> Result<Option<Reply>, TransportError> {
        if self.severed {
            return Err(TransportError::Disconnected("link severed".into()));
        }
        match self.replies.recv_timeout(timeout) {
            Ok(r) => Ok(Some(r)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => {
                Err(TransportError::Disconnected("master gone".into()))
            }
        }
    }

    fn send_heartbeat(&mut self, worker: usize) -> Result<(), TransportError> {
        if self.severed {
            return Err(TransportError::Disconnected("link severed".into()));
        }
        self.events
            .send(Inbound::Heartbeat { worker })
            .map_err(|_| TransportError::Disconnected("master gone".into()))
    }

    fn drop_link(&mut self) {
        if !self.severed {
            self.severed = true;
            // Announce the disconnect; any queued replies are dead.
            let _ = self.events.send(Inbound::Disconnected(self.id));
        }
    }

    fn reconnect(&mut self, hello: &Request) -> Result<(), TransportError> {
        // Install a fresh reply line (stale replies on the old one are
        // lost, exactly like a new socket) and re-announce ourselves.
        let (tx, rx) = channel::<Reply>();
        {
            let mut replies = self.hub.replies.lock().expect("hub lock");
            let slot = replies
                .get_mut(self.id)
                .ok_or(TransportError::UnknownWorker(self.id))?;
            *slot = tx;
        }
        self.replies = rx;
        self.severed = false;
        self.events
            .send(Inbound::Reconnected(self.id))
            .map_err(|_| TransportError::Disconnected("master gone".into()))?;
        self.send_request(hello.clone())
    }
}

impl Drop for ChannelWorker {
    fn drop(&mut self) {
        // A dropped endpoint is a crashed worker as far as the master
        // is concerned (also fires on clean exit; the master loop
        // ignores disconnects from workers it already finished).
        if !self.severed {
            let _ = self.events.send(Inbound::Disconnected(self.id));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lss_core::chunk::Chunk;
    use lss_core::master::Assignment;

    fn expect_request(m: &mut ChannelMaster) -> Request {
        match m.recv().unwrap() {
            Inbound::Request(r) => r,
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn request_reply_roundtrip() {
        let (mut master, mut workers) = channel_transport(2);
        workers[1]
            .send_request(Request { worker: 1, q: 1, result: None })
            .unwrap();
        let req = expect_request(&mut master);
        assert_eq!(req.worker, 1);
        master
            .send(1, Reply { assignment: Assignment::Chunk(Chunk::new(0, 5)) })
            .unwrap();
        let reply = workers[1].recv_reply().unwrap();
        assert_eq!(reply.assignment, Assignment::Chunk(Chunk::new(0, 5)));
    }

    #[test]
    fn replies_are_per_worker() {
        let (mut master, mut workers) = channel_transport(3);
        master.send(0, Reply { assignment: Assignment::Retry }).unwrap();
        master.send(2, Reply { assignment: Assignment::Finished }).unwrap();
        assert_eq!(workers[2].recv_reply().unwrap().assignment, Assignment::Finished);
        assert_eq!(workers[0].recv_reply().unwrap().assignment, Assignment::Retry);
    }

    #[test]
    fn unknown_worker_errors() {
        let (mut master, _workers) = channel_transport(1);
        assert_eq!(
            master.send(5, Reply { assignment: Assignment::Retry }),
            Err(TransportError::UnknownWorker(5))
        );
    }

    #[test]
    fn disconnect_is_reported() {
        let (mut master, mut workers) = channel_transport(2);
        // Worker 1 sends one request then dies.
        workers[1]
            .send_request(Request { worker: 1, q: 1, result: None })
            .unwrap();
        let w1 = workers.pop().unwrap();
        drop(w1);
        // The queued request is delivered before the disconnect.
        assert_eq!(expect_request(&mut master).worker, 1);
        assert_eq!(master.recv().unwrap(), Inbound::Disconnected(1));
        // Worker 0 still works.
        workers[0]
            .send_request(Request { worker: 0, q: 1, result: None })
            .unwrap();
        assert_eq!(expect_request(&mut master).worker, 0);
        // After the last worker dies, recv drains its notice then errors.
        drop(workers);
        assert_eq!(master.recv().unwrap(), Inbound::Disconnected(0));
        assert!(master.recv().is_err());
    }

    #[test]
    fn recv_timeout_times_out_and_delivers() {
        let (mut master, mut workers) = channel_transport(1);
        assert_eq!(master.recv_timeout(Duration::from_millis(5)).unwrap(), None);
        workers[0].send_heartbeat(0).unwrap();
        assert_eq!(
            master.recv_timeout(Duration::from_millis(100)).unwrap(),
            Some(Inbound::Heartbeat { worker: 0 })
        );
    }

    #[test]
    fn sever_and_reconnect() {
        let (mut master, mut workers) = channel_transport(1);
        let w = &mut workers[0];
        w.drop_link();
        assert!(w.send_request(Request { worker: 0, q: 1, result: None }).is_err());
        assert_eq!(master.recv().unwrap(), Inbound::Disconnected(0));
        // A reply sent while severed lands on the old line and is lost
        // once the worker reconnects.
        master.send(0, Reply { assignment: Assignment::Retry }).unwrap();
        w.reconnect(&Request { worker: 0, q: 2, result: None }).unwrap();
        assert_eq!(master.recv().unwrap(), Inbound::Reconnected(0));
        let req = expect_request(&mut master);
        assert_eq!(req.q, 2);
        master.send(0, Reply { assignment: Assignment::Finished }).unwrap();
        assert_eq!(w.recv_reply().unwrap().assignment, Assignment::Finished);
    }

    #[test]
    fn worker_reply_timeout() {
        let (mut master, mut workers) = channel_transport(1);
        assert_eq!(
            workers[0].recv_reply_timeout(Duration::from_millis(5)).unwrap(),
            None
        );
        master.send(0, Reply { assignment: Assignment::Retry }).unwrap();
        assert_eq!(
            workers[0]
                .recv_reply_timeout(Duration::from_millis(100))
                .unwrap()
                .unwrap()
                .assignment,
            Assignment::Retry
        );
    }

    #[test]
    fn cross_thread_usage() {
        let (mut master, workers) = channel_transport(2);
        let handles: Vec<_> = workers
            .into_iter()
            .enumerate()
            .map(|(i, mut w)| {
                std::thread::spawn(move || {
                    w.send_request(Request { worker: i, q: 1, result: None }).unwrap();
                    w.recv_reply().unwrap()
                })
            })
            .collect();
        let mut served = 0;
        while served < 2 {
            if let Inbound::Request(req) = master.recv().unwrap() {
                master.send(req.worker, Reply { assignment: Assignment::Finished }).unwrap();
                served += 1;
            }
        }
        for h in handles {
            assert_eq!(h.join().unwrap().assignment, Assignment::Finished);
        }
    }
}
