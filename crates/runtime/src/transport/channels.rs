//! In-process transport over crossbeam channels.
//!
//! Each worker gets its own request channel so the master can detect a
//! worker's death the moment its sender drops (crossbeam reports the
//! disconnect on that channel), instead of stalling forever on a shared
//! inbox — the hook the fault-tolerant master loop relies on.

use crossbeam::channel::{unbounded, Receiver, Select, Sender};

use super::{Inbound, MasterTransport, TransportError, WorkerTransport};
use crate::protocol::{Reply, Request};

/// Master endpoint: one request inbox per worker, one reply line per
/// worker.
pub struct ChannelMaster {
    inboxes: Vec<Receiver<Request>>,
    replies: Vec<Sender<Reply>>,
    /// Workers whose disconnect has already been reported.
    reported_dead: Vec<bool>,
}

/// Worker endpoint.
pub struct ChannelWorker {
    outbox: Sender<Request>,
    replies: Receiver<Reply>,
}

/// Creates a connected master endpoint plus `p` worker endpoints.
pub fn channel_transport(p: usize) -> (ChannelMaster, Vec<ChannelWorker>) {
    assert!(p >= 1, "need at least one worker");
    let mut inboxes = Vec::with_capacity(p);
    let mut reply_txs = Vec::with_capacity(p);
    let mut workers = Vec::with_capacity(p);
    for _ in 0..p {
        let (req_tx, req_rx) = unbounded::<Request>();
        let (rep_tx, rep_rx) = unbounded::<Reply>();
        inboxes.push(req_rx);
        reply_txs.push(rep_tx);
        workers.push(ChannelWorker {
            outbox: req_tx,
            replies: rep_rx,
        });
    }
    (
        ChannelMaster {
            inboxes,
            replies: reply_txs,
            reported_dead: vec![false; p],
        },
        workers,
    )
}

impl MasterTransport for ChannelMaster {
    fn recv(&mut self) -> Result<Inbound, TransportError> {
        use crossbeam::channel::TryRecvError;
        // Fast path: drain queued requests; a drained-and-disconnected
        // channel reports the death exactly once.
        for w in 0..self.inboxes.len() {
            if self.reported_dead[w] {
                continue;
            }
            match self.inboxes[w].try_recv() {
                Ok(req) => return Ok(Inbound::Request(req)),
                Err(TryRecvError::Empty) => {}
                Err(TryRecvError::Disconnected) => {
                    self.reported_dead[w] = true;
                    return Ok(Inbound::Disconnected(w));
                }
            }
        }
        // Block until any live channel has activity.
        let live: Vec<usize> = (0..self.inboxes.len())
            .filter(|&w| !self.reported_dead[w])
            .collect();
        if live.is_empty() {
            return Err(TransportError("all workers disconnected".into()));
        }
        let mut sel = Select::new();
        for &w in &live {
            sel.recv(&self.inboxes[w]);
        }
        let op = sel.select();
        let w = live[op.index()];
        match op.recv(&self.inboxes[w]) {
            Ok(req) => Ok(Inbound::Request(req)),
            Err(_) => {
                self.reported_dead[w] = true;
                Ok(Inbound::Disconnected(w))
            }
        }
    }

    fn send(&mut self, worker: usize, reply: Reply) -> Result<(), TransportError> {
        self.replies
            .get(worker)
            .ok_or_else(|| TransportError(format!("unknown worker {worker}")))?
            .send(reply)
            .map_err(|e| TransportError(format!("worker {worker} gone: {e}")))
    }
}

impl WorkerTransport for ChannelWorker {
    fn send_request(&mut self, req: Request) -> Result<(), TransportError> {
        self.outbox
            .send(req)
            .map_err(|e| TransportError(format!("master gone: {e}")))
    }

    fn recv_reply(&mut self) -> Result<Reply, TransportError> {
        self.replies
            .recv()
            .map_err(|e| TransportError(format!("master gone: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lss_core::chunk::Chunk;
    use lss_core::master::Assignment;

    fn expect_request(m: &mut ChannelMaster) -> Request {
        match m.recv().unwrap() {
            Inbound::Request(r) => r,
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn request_reply_roundtrip() {
        let (mut master, mut workers) = channel_transport(2);
        workers[1]
            .send_request(Request { worker: 1, q: 1, result: None })
            .unwrap();
        let req = expect_request(&mut master);
        assert_eq!(req.worker, 1);
        master
            .send(1, Reply { assignment: Assignment::Chunk(Chunk::new(0, 5)) })
            .unwrap();
        let reply = workers[1].recv_reply().unwrap();
        assert_eq!(reply.assignment, Assignment::Chunk(Chunk::new(0, 5)));
    }

    #[test]
    fn replies_are_per_worker() {
        let (mut master, mut workers) = channel_transport(3);
        master.send(0, Reply { assignment: Assignment::Retry }).unwrap();
        master.send(2, Reply { assignment: Assignment::Finished }).unwrap();
        assert_eq!(workers[2].recv_reply().unwrap().assignment, Assignment::Finished);
        assert_eq!(workers[0].recv_reply().unwrap().assignment, Assignment::Retry);
    }

    #[test]
    fn unknown_worker_errors() {
        let (mut master, _workers) = channel_transport(1);
        assert!(master.send(5, Reply { assignment: Assignment::Retry }).is_err());
    }

    #[test]
    fn disconnect_is_reported_once() {
        let (mut master, mut workers) = channel_transport(2);
        // Worker 1 sends one request then dies.
        workers[1]
            .send_request(Request { worker: 1, q: 1, result: None })
            .unwrap();
        let w1 = workers.pop().unwrap();
        drop(w1);
        // The queued request is delivered before the disconnect.
        assert_eq!(expect_request(&mut master).worker, 1);
        assert_eq!(master.recv().unwrap(), Inbound::Disconnected(1));
        // Worker 0 still works.
        workers[0]
            .send_request(Request { worker: 0, q: 1, result: None })
            .unwrap();
        assert_eq!(expect_request(&mut master).worker, 0);
        // After the last worker dies, recv errors.
        drop(workers);
        assert_eq!(master.recv().unwrap(), Inbound::Disconnected(0));
        assert!(master.recv().is_err());
    }

    #[test]
    fn cross_thread_usage() {
        let (mut master, workers) = channel_transport(2);
        let handles: Vec<_> = workers
            .into_iter()
            .enumerate()
            .map(|(i, mut w)| {
                std::thread::spawn(move || {
                    w.send_request(Request { worker: i, q: 1, result: None }).unwrap();
                    w.recv_reply().unwrap()
                })
            })
            .collect();
        let mut served = 0;
        while served < 2 {
            if let Inbound::Request(req) = master.recv().unwrap() {
                master.send(req.worker, Reply { assignment: Assignment::Finished }).unwrap();
                served += 1;
            }
        }
        for h in handles {
            assert_eq!(h.join().unwrap().assignment, Assignment::Finished);
        }
    }
}
