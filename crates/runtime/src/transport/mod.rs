//! Message transports connecting slaves to the master.
//!
//! Two interchangeable implementations of the same request/reply
//! protocol:
//!
//! - [`channels`] — std mpsc channels within one process (fast,
//!   deterministic; the default for tests and benches);
//! - [`tcp`] — localhost TCP sockets with length-prefixed frames
//!   (demonstrates the protocol across a real network stack, standing
//!   in for the paper's MPI-over-Ethernet);
//! - [`evented`] — the same wire protocol with the master's side run
//!   on a single epoll reactor thread instead of a thread per
//!   connection (scales to thousands of sockets).
//!
//! All support the fault-tolerant protocol extensions: timed receives
//! (so the master can poll chunk leases), piggy-backed heartbeats, and
//! worker-initiated reconnection after a disconnect.

pub mod channels;
pub mod evented;
pub mod frame;
pub mod tcp;

use std::time::Duration;

use crate::protocol::{Reply, Request};

/// Typed transport failure. Library paths return these instead of
/// panicking, so a dead peer is an event the caller handles, not a
/// crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer is gone: socket EOF/reset, or all channel ends dropped.
    Disconnected(String),
    /// An OS-level I/O failure (bind, connect, read, write).
    Io(String),
    /// A frame or payload that does not decode, or exceeds size caps.
    Malformed(String),
    /// A message addressed to (or claiming) a worker id the transport
    /// does not know.
    UnknownWorker(usize),
    /// The operation is not supported by this transport (e.g.
    /// reconnection on a scripted test transport).
    Unsupported(&'static str),
    /// A request carried a deadline and the deadline elapsed before the
    /// peer answered. The link may still be usable; the caller decides
    /// whether to retry, re-dial, or give up.
    TimedOut {
        /// The deadline the request carried.
        deadline: Duration,
    },
    /// A bounded retry budget (see [`crate::backoff::BackoffPolicy`])
    /// was exhausted without success. Carries the attempt count and the
    /// last underlying failure, so "the peer is really gone" is a typed
    /// condition instead of whatever error the final attempt happened
    /// to produce.
    RetriesExhausted {
        /// How many attempts were made before giving up.
        attempts: u32,
        /// The last underlying error, rendered.
        last: String,
    },
}

impl TransportError {
    /// Whether the error means the peer is gone (as opposed to a local
    /// or protocol problem).
    pub fn is_disconnect(&self) -> bool {
        matches!(self, TransportError::Disconnected(_))
    }

    /// Whether the error is a deadline expiry (the peer may still be
    /// alive; only this request ran out of time).
    pub fn is_timeout(&self) -> bool {
        matches!(self, TransportError::TimedOut { .. })
    }
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Disconnected(d) => write!(f, "peer disconnected: {d}"),
            TransportError::Io(d) => write!(f, "transport I/O error: {d}"),
            TransportError::Malformed(d) => write!(f, "malformed message: {d}"),
            TransportError::UnknownWorker(w) => write!(f, "unknown worker {w}"),
            TransportError::Unsupported(op) => write!(f, "unsupported transport operation: {op}"),
            TransportError::TimedOut { deadline } => {
                write!(f, "request deadline ({deadline:?}) elapsed without a reply")
            }
            TransportError::RetriesExhausted { attempts, last } => {
                write!(f, "retry budget exhausted after {attempts} attempt(s); last error: {last}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// What the master's receive path can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inbound {
    /// A worker's request.
    Request(Request),
    /// A lightweight liveness signal from a worker computing a long
    /// chunk (no reply is expected or sent).
    Heartbeat {
        /// The worker reporting in.
        worker: usize,
    },
    /// A worker's connection dropped (thread exit, socket EOF, crash).
    /// The master should requeue any chunk that worker still held.
    Disconnected(usize),
    /// A previously connected worker re-established its link; its next
    /// message will be a fresh request.
    Reconnected(usize),
}

/// The master's view: receive any worker's event, reply to a worker.
pub trait MasterTransport: Send {
    /// Blocks for the next inbound event from any worker.
    fn recv(&mut self) -> Result<Inbound, TransportError>;

    /// Waits up to `timeout` for an inbound event; `Ok(None)` when the
    /// timeout elapses with nothing to deliver. This is what lets the
    /// fault-tolerant master loop wake up to poll chunk leases.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Inbound>, TransportError>;

    /// Sends a reply to a specific worker. An error for one worker
    /// (e.g. it died between request and reply) must not poison the
    /// transport for the others.
    fn send(&mut self, worker: usize, reply: Reply) -> Result<(), TransportError>;
}

/// Boxed masters forward the trait — lets callers pick a backend at
/// runtime (the harness's transport switch) behind one seam.
impl MasterTransport for Box<dyn MasterTransport> {
    fn recv(&mut self) -> Result<Inbound, TransportError> {
        (**self).recv()
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Inbound>, TransportError> {
        (**self).recv_timeout(timeout)
    }

    fn send(&mut self, worker: usize, reply: Reply) -> Result<(), TransportError> {
        (**self).send(worker, reply)
    }
}

/// A worker's view: send requests, await replies.
pub trait WorkerTransport: Send {
    /// Sends a request to the master.
    fn send_request(&mut self, req: Request) -> Result<(), TransportError>;

    /// Blocks for the master's reply.
    fn recv_reply(&mut self) -> Result<Reply, TransportError>;

    /// Waits up to `timeout` for a reply; `Ok(None)` on timeout. The
    /// default simply blocks (adequate for transports that cannot lose
    /// messages); lossy transports should honour the timeout so the
    /// worker can retransmit its request.
    fn recv_reply_timeout(&mut self, timeout: Duration) -> Result<Option<Reply>, TransportError> {
        let _ = timeout;
        self.recv_reply().map(Some)
    }

    /// Sends a liveness heartbeat (fire-and-forget; no reply). The
    /// default is a no-op for transports without a heartbeat path.
    fn send_heartbeat(&mut self, worker: usize) -> Result<(), TransportError> {
        let _ = worker;
        Ok(())
    }

    /// Deliberately severs the link (chaos injection / planned outage).
    /// The master observes a disconnect. The default is a no-op.
    fn drop_link(&mut self) {}

    /// Re-establishes a severed link and delivers `hello` as the first
    /// request of the new connection. Transports that cannot reconnect
    /// return [`TransportError::Unsupported`].
    fn reconnect(&mut self, hello: &Request) -> Result<(), TransportError> {
        let _ = hello;
        Err(TransportError::Unsupported("reconnect"))
    }
}
