//! Message transports connecting slaves to the master.
//!
//! Two interchangeable implementations of the same request/reply
//! protocol:
//!
//! - [`channels`] — crossbeam channels within one process (fast,
//!   deterministic; the default for tests and benches);
//! - [`tcp`] — localhost TCP sockets with length-prefixed frames
//!   (demonstrates the protocol across a real network stack, standing
//!   in for the paper's MPI-over-Ethernet).

pub mod channels;
pub mod tcp;

use crate::protocol::{Reply, Request};

/// Transport error (disconnected peer, I/O failure, malformed frame).
#[derive(Debug)]
pub struct TransportError(pub String);

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "transport error: {}", self.0)
    }
}

impl std::error::Error for TransportError {}

/// What the master's receive path can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inbound {
    /// A worker's request.
    Request(Request),
    /// A worker's connection dropped (thread exit, socket EOF, crash).
    /// Reported exactly once per worker; the master should requeue any
    /// chunk that worker still held.
    Disconnected(usize),
}

/// The master's view: receive any worker's request, reply to a worker.
pub trait MasterTransport: Send {
    /// Blocks for the next inbound event from any worker.
    fn recv(&mut self) -> Result<Inbound, TransportError>;
    /// Sends a reply to a specific worker.
    fn send(&mut self, worker: usize, reply: Reply) -> Result<(), TransportError>;
}

/// A worker's view: send requests, await replies.
pub trait WorkerTransport: Send {
    /// Sends a request to the master.
    fn send_request(&mut self, req: Request) -> Result<(), TransportError>;
    /// Blocks for the master's reply.
    fn recv_reply(&mut self) -> Result<Reply, TransportError>;
}
