//! Localhost TCP transport with length-prefixed frames.
//!
//! The master binds an ephemeral port; each worker opens one
//! connection. Frames are `u32` big-endian length + payload, carrying
//! the [`crate::protocol`] encodings wrapped in a [`WireMsg`] envelope
//! (requests and heartbeats share the stream). Per-connection reader
//! threads funnel decoded messages into one channel so the master sees
//! the same serialized event stream as with the in-process transport —
//! the moral equivalent of the paper's single MPI receive loop.
//!
//! Fault tolerance: the acceptor thread stays alive for the whole run,
//! so a worker whose connection died (its process restarted, the
//! network blipped) can redial and re-handshake under the same worker
//! id. Stale disconnect notices from the replaced connection are
//! filtered by per-connection generation numbers.
//!
//! Deadline discipline: **every read carries a finite timeout**.
//! Blocking semantics come from looping over timed slices, never from
//! an unbounded `read` — a peer that goes half-open (no FIN, no RST,
//! just silence) trips the idle deadline instead of parking a thread
//! forever. Shutdown of the blocking accept loop is a self-connect
//! kick: `begin_shutdown` dials the listener once so `accept` returns
//! and observes the stop flag with zero real inbound connections.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use super::frame::{fill_from, read_frame_blocking, write_frame, FrameBuf};
use super::{Inbound, MasterTransport, TransportError, WorkerTransport};
use crate::protocol::{Reply, Request, WireMsg};

/// Timeout slice for reader threads and the worker's blocking receive:
/// every `read` syscall is bounded by this, and blocking behaviour is a
/// loop over slices (checking shutdown flags between them).
const READ_SLICE: Duration = Duration::from_millis(250);

/// How long an established master-side connection may stay completely
/// silent before it is declared half-open and dropped. Workers
/// heartbeat every 100 ms while computing (the harness default), so a
/// healthy link is never remotely close to this.
pub const DEFAULT_IDLE_DEADLINE: Duration = Duration::from_secs(30);

/// Shared master-side connection state.
struct Shared {
    /// Write halves, indexed by worker id.
    streams: Mutex<Vec<Option<TcpStream>>>,
    /// Connection generation per worker; a reader thread only reports
    /// a disconnect if its generation is still current (a replaced
    /// connection dying later is stale news).
    gens: Mutex<Vec<u64>>,
    /// Count of worker ids that have connected at least once, plus the
    /// condvar `accept_workers` waits on.
    connected: Mutex<usize>,
    connected_cv: Condvar,
    /// Set when the master endpoint drops; stops the acceptor thread.
    shutdown: AtomicBool,
    /// The listener's own address — `begin_shutdown` dials it once so a
    /// blocking `accept` wakes up and observes the flag.
    addr: SocketAddr,
    /// Silence budget for established connections (half-open cutoff).
    idle_deadline: Duration,
}

impl Shared {
    /// Initiates a full teardown: stops the acceptor (kicking its
    /// blocking `accept` awake with a throwaway self-connection) and
    /// closes every worker socket so reader threads observe EOF and
    /// exit instead of leaking. Safe to call more than once.
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // The kick: a connect that exists only to make accept() return.
        // If the acceptor is already gone the connect fails; either way
        // the stream is dropped immediately.
        let _ = TcpStream::connect(self.addr);
        if let Ok(mut streams) = self.streams.lock() {
            for slot in streams.iter_mut() {
                if let Some(s) = slot.take() {
                    let _ = s.shutdown(std::net::Shutdown::Both);
                }
            }
        }
    }
}

/// Master endpoint over TCP.
pub struct TcpMaster {
    inbox: Receiver<Inbound>,
    shared: Arc<Shared>,
    /// The acceptor thread, joined on shutdown so "shutdown complete"
    /// means the accept loop has actually exited — not merely been
    /// asked to.
    acceptor: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl TcpMaster {
    /// Gracefully shuts the endpoint down: the acceptor loop exits
    /// (kicked awake, no inbound connection required) and every live
    /// worker socket is closed, so blocked workers observe EOF and
    /// their reader threads unwind instead of staying parked. When this
    /// returns the acceptor thread has terminated. Subsequent `send`s
    /// fail with [`TransportError::Disconnected`]. Dropping the master
    /// does the same implicitly.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
        let handle = self.acceptor.lock().expect("acceptor lock").take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

impl Drop for TcpMaster {
    fn drop(&mut self) {
        // Close every worker socket so blocked workers observe EOF —
        // a hung worker's thread must still be joinable after the
        // master gives up on it.
        self.shutdown();
    }
}

/// Worker endpoint over TCP.
pub struct TcpWorker {
    stream: TcpStream,
    rbuf: FrameBuf,
    addr: SocketAddr,
}

/// Binds a listener, hands out its address; workers connect via
/// [`TcpWorker::connect`] to `addr`.
pub struct TcpListenerHandle {
    listener: TcpListener,
    /// The address workers should dial.
    pub addr: SocketAddr,
}

/// Starts listening on an ephemeral localhost port.
pub fn tcp_listen() -> Result<TcpListenerHandle, TransportError> {
    tcp_listen_on("127.0.0.1", 0)
}

/// Starts listening on an explicit host/port (0 = ephemeral) — used by
/// the `lss master` command so separate worker *processes* can dial in.
pub fn tcp_listen_on(host: &str, port: u16) -> Result<TcpListenerHandle, TransportError> {
    let listener = TcpListener::bind((host, port))
        .map_err(|e| TransportError::Io(format!("bind {host}:{port} failed: {e}")))?;
    let addr = listener
        .local_addr()
        .map_err(|e| TransportError::Io(format!("no local addr: {e}")))?;
    Ok(TcpListenerHandle { listener, addr })
}

/// Performs one connection handshake: reads the first frame, which must
/// be a request identifying the worker. Returns the hello request. The
/// 10 s read deadline set here **stays armed** — clearing it was the
/// half-open bug: a worker that completed the hello and then went
/// silent parked its reader thread in an unbounded `read` forever. The
/// reader loop re-arms its own (shorter) slice immediately anyway.
fn handshake(stream: &mut TcpStream, p: usize) -> Result<Request, TransportError> {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| TransportError::Io(e.to_string()))?;
    let payload = read_frame_blocking(stream)
        .map_err(|e| TransportError::Io(format!("handshake read failed: {e}")))?;
    let req = match WireMsg::decode(&payload) {
        Some(WireMsg::Request(req)) => req,
        _ => return Err(TransportError::Malformed("malformed handshake".into())),
    };
    if req.worker >= p {
        return Err(TransportError::UnknownWorker(req.worker));
    }
    Ok(req)
}

/// The body of a reader thread: sliced timed reads, never an unbounded
/// one. Returns `true` when the connection ended (EOF, error, idle
/// deadline, shutdown) and a disconnect notice may be due; `false` when
/// the master side vanished and nobody is listening.
fn reader_loop(stream: &mut TcpStream, tx: &Sender<Inbound>, shared: &Shared) -> bool {
    if stream.set_read_timeout(Some(READ_SLICE)).is_err() {
        return true;
    }
    let mut rbuf = FrameBuf::default();
    let mut last_data = Instant::now();
    loop {
        loop {
            match rbuf.try_extract() {
                Ok(Some(payload)) => match WireMsg::decode(&payload) {
                    Some(WireMsg::Request(req)) => {
                        if tx.send(Inbound::Request(req)).is_err() {
                            return false;
                        }
                    }
                    Some(WireMsg::Heartbeat { worker }) => {
                        if tx.send(Inbound::Heartbeat { worker }).is_err() {
                            return false;
                        }
                    }
                    None => return true, // malformed: connection is dead
                },
                Ok(None) => break,
                Err(_) => return true,
            }
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return true;
        }
        match fill_from(stream, &mut rbuf) {
            Ok(true) => last_data = Instant::now(),
            Ok(false) => {
                // Timed-out slice: no bytes. A connection silent past
                // the idle deadline is half-open — drop it so the
                // master requeues the worker's lease instead of
                // trusting a corpse.
                if last_data.elapsed() >= shared.idle_deadline {
                    return true;
                }
            }
            Err(_) => return true,
        }
    }
}

/// Spawns the per-connection reader thread.
fn spawn_reader(mut stream: TcpStream, id: usize, my_gen: u64, tx: Sender<Inbound>, shared: Arc<Shared>) {
    std::thread::spawn(move || {
        let ended = reader_loop(&mut stream, &tx, &shared);
        // Only current connections get to report their death; if the
        // worker already re-handshook, this notice is stale.
        if ended {
            let current = {
                let gens = shared.gens.lock().expect("gens lock");
                gens[id] == my_gen
            };
            if current {
                let _ = tx.send(Inbound::Disconnected(id));
            }
        }
    });
}

/// The acceptor loop: accepts connections (initial and re-dials) until
/// the master shuts down. `accept` blocks — no polling sleep — and
/// shutdown wakes it with the self-connect kick from `begin_shutdown`.
fn acceptor_loop(listener: TcpListener, p: usize, tx: Sender<Inbound>, shared: Arc<Shared>) {
    let mut ever_connected = vec![false; p];
    loop {
        let (mut stream, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => return,
        };
        // The kick connection (or any late arrival) lands here once the
        // flag is up; drop it and exit.
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if stream.set_nodelay(true).is_err() {
            continue;
        }
        // Handshakes are short; do them inline. A worker that connects
        // and stalls for 10 s forfeits the slot, nothing more.
        let req = match handshake(&mut stream, p) {
            Ok(req) => req,
            Err(_) => continue, // bad client; keep serving the others
        };
        let id = req.worker;
        let write_half = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => continue,
        };
        let my_gen = {
            let mut gens = shared.gens.lock().expect("gens lock");
            gens[id] += 1;
            gens[id]
        };
        let reconnected = {
            let mut streams = shared.streams.lock().expect("streams lock");
            let had = streams[id].is_some() || ever_connected[id];
            streams[id] = Some(write_half);
            had
        };
        if reconnected
            && tx.send(Inbound::Reconnected(id)).is_err() {
                return;
            }
        // Deliver the hello BEFORE the reader thread starts: otherwise
        // a frame the worker pipelined right behind its hello (say a
        // heartbeat) could reach the inbox first, reordering the
        // stream.
        if tx.send(Inbound::Request(req)).is_err() {
            return;
        }
        spawn_reader(stream, id, my_gen, tx.clone(), Arc::clone(&shared));
        if !ever_connected[id] {
            ever_connected[id] = true;
            let mut connected = shared.connected.lock().expect("connected lock");
            *connected += 1;
            shared.connected_cv.notify_all();
        }
    }
}

impl TcpListenerHandle {
    /// Surrenders the raw listener — for servers that run their own
    /// accept loop (the serving layer) but want the bind/address
    /// handling above.
    pub fn into_listener(self) -> TcpListener {
        self.listener
    }

    /// Builds the master endpoint and waits until all `p` workers have
    /// connected and handshaken (each sends a normal request frame
    /// whose `worker` field identifies the connection; that request is
    /// delivered through the inbox like any other).
    ///
    /// The acceptor keeps running for the lifetime of the master, so
    /// workers may drop their connection and redial mid-run.
    pub fn accept_workers(self, p: usize) -> Result<TcpMaster, TransportError> {
        self.accept_workers_within(p, Duration::from_secs(30))
    }

    /// [`TcpListenerHandle::accept_workers`] with an explicit deadline
    /// for the initial full complement.
    pub fn accept_workers_within(self, p: usize, timeout: Duration) -> Result<TcpMaster, TransportError> {
        self.accept_workers_configured(p, timeout, DEFAULT_IDLE_DEADLINE)
    }

    /// Full-knobs variant: `idle_deadline` bounds how long an
    /// established connection may stay silent before it is treated as
    /// half-open (tests shrink it to exercise the cutoff quickly).
    pub fn accept_workers_configured(
        self,
        p: usize,
        timeout: Duration,
        idle_deadline: Duration,
    ) -> Result<TcpMaster, TransportError> {
        assert!(p >= 1, "need at least one worker");
        let (tx, rx) = channel::<Inbound>();
        let shared = Arc::new(Shared {
            streams: Mutex::new((0..p).map(|_| None).collect()),
            gens: Mutex::new(vec![0; p]),
            connected: Mutex::new(0),
            connected_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            addr: self.addr,
            idle_deadline,
        });
        let listener = self.listener;
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || acceptor_loop(listener, p, tx, shared))
        };
        // Wait for the full complement.
        let deadline = Instant::now() + timeout;
        let mut connected = shared.connected.lock().expect("connected lock");
        while *connected < p {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                let msg = format!("only {connected}/{p} workers connected within {timeout:?}");
                drop(connected);
                // Full teardown, not just the flag: any worker that DID
                // connect has a reader thread in its sliced-read loop;
                // closing its socket (and kicking the acceptor awake)
                // lets every thread exit instead of leaking.
                shared.begin_shutdown();
                let _ = acceptor.join();
                return Err(TransportError::Io(msg));
            }
            let (guard, _timed_out) = shared
                .connected_cv
                .wait_timeout(connected, left.min(Duration::from_millis(50)))
                .expect("condvar wait");
            connected = guard;
        }
        drop(connected);
        Ok(TcpMaster { inbox: rx, shared, acceptor: Mutex::new(Some(acceptor)) })
    }
}

impl TcpWorker {
    /// Connects to the master and sends the identifying first request.
    pub fn connect(addr: SocketAddr, first: Request) -> Result<Self, TransportError> {
        let stream = Self::dial(addr, &first)?;
        Ok(TcpWorker { stream, rbuf: FrameBuf::default(), addr })
    }

    fn dial(addr: SocketAddr, hello: &Request) -> Result<TcpStream, TransportError> {
        let mut stream = TcpStream::connect(addr)
            .map_err(|e| TransportError::Io(format!("connect failed: {e}")))?;
        stream
            .set_nodelay(true)
            .map_err(|e| TransportError::Io(format!("nodelay failed: {e}")))?;
        write_frame(&mut stream, &WireMsg::Request(hello.clone()).encode())?;
        Ok(stream)
    }
}

impl MasterTransport for TcpMaster {
    fn recv(&mut self) -> Result<Inbound, TransportError> {
        self.inbox
            .recv()
            .map_err(|_| TransportError::Disconnected("all workers disconnected".into()))
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Inbound>, TransportError> {
        match self.inbox.recv_timeout(timeout) {
            Ok(ev) => Ok(Some(ev)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => {
                Err(TransportError::Disconnected("all workers disconnected".into()))
            }
        }
    }

    fn send(&mut self, worker: usize, reply: Reply) -> Result<(), TransportError> {
        let mut streams = self.shared.streams.lock().expect("streams lock");
        let slot = streams
            .get_mut(worker)
            .ok_or(TransportError::UnknownWorker(worker))?;
        let stream = slot
            .as_mut()
            .ok_or_else(|| TransportError::Disconnected(format!("worker {worker} not connected")))?;
        match write_frame(stream, &reply.encode()) {
            Ok(()) => Ok(()),
            Err(e) => {
                // A write failure means this connection is dead; drop
                // the write half so later sends fail fast. The reader
                // thread reports the disconnect event.
                *slot = None;
                Err(e)
            }
        }
    }
}

impl WorkerTransport for TcpWorker {
    fn send_request(&mut self, req: Request) -> Result<(), TransportError> {
        write_frame(&mut self.stream, &WireMsg::Request(req).encode())
    }

    fn recv_reply(&mut self) -> Result<Reply, TransportError> {
        // Blocking semantics via an unbounded loop of *bounded* reads:
        // every syscall carries a deadline, and a dead master surfaces
        // as EOF/reset on the next slice rather than never.
        loop {
            if let Some(payload) = self.rbuf.try_extract()? {
                return Reply::decode(&payload)
                    .ok_or_else(|| TransportError::Malformed("malformed reply".into()));
            }
            self.fill(READ_SLICE)?;
        }
    }

    fn recv_reply_timeout(&mut self, timeout: Duration) -> Result<Option<Reply>, TransportError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(payload) = self.rbuf.try_extract()? {
                return Reply::decode(&payload)
                    .map(Some)
                    .ok_or_else(|| TransportError::Malformed("malformed reply".into()));
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Ok(None);
            }
            if !self.fill(left)? {
                return Ok(None); // timed out mid-frame; state preserved
            }
        }
    }

    fn send_heartbeat(&mut self, worker: usize) -> Result<(), TransportError> {
        write_frame(&mut self.stream, &WireMsg::Heartbeat { worker }.encode())
    }

    fn drop_link(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }

    fn reconnect(&mut self, hello: &Request) -> Result<(), TransportError> {
        self.drop_link();
        self.stream = Self::dial(self.addr, hello)?;
        self.rbuf = FrameBuf::default();
        Ok(())
    }
}

impl TcpWorker {
    /// Reads more bytes into the frame buffer under a finite deadline
    /// (always re-armed — a stale timeout from a previous call can
    /// never leak into this read). Returns `Ok(false)` when the read
    /// timed out with the partial-frame state preserved.
    fn fill(&mut self, timeout: Duration) -> Result<bool, TransportError> {
        self.stream
            .set_read_timeout(Some(timeout.max(Duration::from_millis(1))))
            .map_err(|e| TransportError::Io(e.to_string()))?;
        fill_from(&mut self.stream, &mut self.rbuf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lss_core::chunk::Chunk;
    use lss_core::master::Assignment;

    fn next_request(m: &mut TcpMaster) -> Request {
        loop {
            if let Inbound::Request(r) = m.recv().unwrap() { return r }
        }
    }

    #[test]
    fn tcp_roundtrip_two_workers() {
        let handle = tcp_listen().unwrap();
        let addr = handle.addr;
        let workers: Vec<_> = (0..2)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut w = TcpWorker::connect(
                        addr,
                        Request { worker: i, q: 1, result: None },
                    )
                    .unwrap();
                    let r1 = w.recv_reply().unwrap();
                    // Acknowledge with a piggy-backed result.
                    if let Assignment::Chunk(c) = r1.assignment {
                        let values = vec![7; c.len as usize];
                        w.send_request(Request {
                            worker: i,
                            q: 2,
                            result: Some(crate::protocol::ChunkResult::new(c, values)),
                        })
                        .unwrap();
                    }
                    let r2 = w.recv_reply().unwrap();
                    (r1, r2)
                })
            })
            .collect();

        let mut master = handle.accept_workers(2).unwrap();
        // Serve the two handshake requests with chunks.
        for k in 0..2 {
            let req = next_request(&mut master);
            assert!(req.result.is_none());
            master
                .send(
                    req.worker,
                    Reply { assignment: Assignment::Chunk(Chunk::new(k * 10, 3)) },
                )
                .unwrap();
        }
        // Serve the two piggy-backed follow-ups with Finished.
        for _ in 0..2 {
            let req = next_request(&mut master);
            let res = req.result.expect("piggy-backed result");
            assert_eq!(res.values, vec![7, 7, 7]);
            assert_eq!(req.q, 2);
            master.send(req.worker, Reply { assignment: Assignment::Finished }).unwrap();
        }
        for w in workers {
            let (r1, r2) = w.join().unwrap();
            assert!(matches!(r1.assignment, Assignment::Chunk(_)));
            assert_eq!(r2.assignment, Assignment::Finished);
        }
    }

    #[test]
    fn bad_handshake_id_is_ignored_but_good_one_accepted() {
        let handle = tcp_listen().unwrap();
        let addr = handle.addr;
        let bad = std::thread::spawn(move || {
            // Claims worker id 9 but only 1 slot exists: the acceptor
            // drops the connection and keeps serving.
            let _ = TcpWorker::connect(addr, Request { worker: 9, q: 1, result: None });
        });
        let good = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            let mut w =
                TcpWorker::connect(addr, Request { worker: 0, q: 1, result: None }).unwrap();
            w.recv_reply().unwrap()
        });
        let mut master = handle.accept_workers(1).unwrap();
        let req = next_request(&mut master);
        assert_eq!(req.worker, 0);
        master.send(0, Reply { assignment: Assignment::Finished }).unwrap();
        assert_eq!(good.join().unwrap().assignment, Assignment::Finished);
        bad.join().unwrap();
    }

    #[test]
    fn heartbeats_flow_to_master() {
        let handle = tcp_listen().unwrap();
        let addr = handle.addr;
        let t = std::thread::spawn(move || {
            let mut w =
                TcpWorker::connect(addr, Request { worker: 0, q: 1, result: None }).unwrap();
            w.send_heartbeat(0).unwrap();
            w.recv_reply().unwrap()
        });
        let mut master = handle.accept_workers(1).unwrap();
        let mut saw_heartbeat = false;
        loop {
            match master.recv().unwrap() {
                Inbound::Heartbeat { worker } => {
                    assert_eq!(worker, 0);
                    saw_heartbeat = true;
                }
                Inbound::Request(_) => {
                    master.send(0, Reply { assignment: Assignment::Finished }).unwrap();
                    if saw_heartbeat {
                        break;
                    }
                }
                _ => {}
            }
            if saw_heartbeat {
                break;
            }
        }
        t.join().unwrap();
        assert!(saw_heartbeat);
    }

    #[test]
    fn worker_reconnects_under_same_id() {
        let handle = tcp_listen().unwrap();
        let addr = handle.addr;
        let t = std::thread::spawn(move || {
            let mut w =
                TcpWorker::connect(addr, Request { worker: 0, q: 1, result: None }).unwrap();
            let r1 = w.recv_reply().unwrap();
            // Sever and redial with a fresh hello.
            w.reconnect(&Request { worker: 0, q: 5, result: None }).unwrap();
            let r2 = w.recv_reply().unwrap();
            (r1, r2)
        });
        let mut master = handle.accept_workers(1).unwrap();
        let req = next_request(&mut master);
        assert_eq!(req.q, 1);
        master.send(0, Reply { assignment: Assignment::Retry }).unwrap();
        // Either order: the disconnect notice (if the reader saw EOF
        // before the re-handshake bumped the generation) and/or the
        // Reconnected notice, then the new hello request.
        let req2 = loop {
            match master.recv().unwrap() {
                Inbound::Request(r) => break r,
                Inbound::Disconnected(0) | Inbound::Reconnected(0) => {}
                other => panic!("unexpected {other:?}"),
            }
        };
        assert_eq!(req2.q, 5, "hello of the new connection");
        master.send(0, Reply { assignment: Assignment::Finished }).unwrap();
        let (r1, r2) = t.join().unwrap();
        assert_eq!(r1.assignment, Assignment::Retry);
        assert_eq!(r2.assignment, Assignment::Finished);
    }

    #[test]
    fn reply_timeout_preserves_partial_frames() {
        let handle = tcp_listen().unwrap();
        let addr = handle.addr;
        let t = std::thread::spawn(move || {
            let mut w =
                TcpWorker::connect(addr, Request { worker: 0, q: 1, result: None }).unwrap();
            // Nothing sent yet: timed wait returns None.
            assert_eq!(w.recv_reply_timeout(Duration::from_millis(20)).unwrap(), None);
            // Then a real reply arrives.
            let r = w.recv_reply_timeout(Duration::from_secs(5)).unwrap();
            r.unwrap()
        });
        let mut master = handle.accept_workers(1).unwrap();
        let _ = next_request(&mut master);
        std::thread::sleep(Duration::from_millis(40));
        master.send(0, Reply { assignment: Assignment::Finished }).unwrap();
        assert_eq!(t.join().unwrap().assignment, Assignment::Finished);
    }

    #[test]
    fn explicit_shutdown_unblocks_workers() {
        let handle = tcp_listen().unwrap();
        let addr = handle.addr;
        let t = std::thread::spawn(move || {
            let mut w =
                TcpWorker::connect(addr, Request { worker: 0, q: 1, result: None }).unwrap();
            // Blocks until the master shuts down; must observe a typed
            // disconnect, not hang.
            w.recv_reply()
        });
        let mut master = handle.accept_workers(1).unwrap();
        let _ = next_request(&mut master);
        master.shutdown();
        let err = t.join().unwrap().unwrap_err();
        assert!(err.is_disconnect(), "{err:?}");
        // Sends after shutdown fail fast.
        assert!(master.send(0, Reply { assignment: Assignment::Retry }).is_err());
    }

    #[test]
    fn accept_timeout_tears_down_partial_connections() {
        let handle = tcp_listen().unwrap();
        let addr = handle.addr;
        // One of two workers connects; the accept deadline expires.
        let t = std::thread::spawn(move || {
            let mut w =
                TcpWorker::connect(addr, Request { worker: 0, q: 1, result: None }).unwrap();
            w.recv_reply()
        });
        match handle.accept_workers_within(2, Duration::from_millis(200)) {
            Err(TransportError::Io(_)) => {}
            Err(other) => panic!("unexpected error {other:?}"),
            Ok(_) => panic!("accept should have timed out"),
        }
        // The teardown closed the connected worker's socket, so its
        // blocked read observes EOF instead of parking forever.
        assert!(t.join().unwrap().is_err());
    }

    #[test]
    fn half_open_worker_is_disconnected_not_parked() {
        // Regression: the old handshake cleared its read timeout after
        // the hello, so a worker that went silent (no FIN, no RST)
        // parked its reader thread in `read` forever. Now the idle
        // deadline converts silence into a typed Disconnected event.
        let handle = tcp_listen().unwrap();
        let addr = handle.addr;
        let silent = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let hello = WireMsg::Request(Request { worker: 0, q: 1, result: None }).encode();
            write_frame(&mut s, &hello).unwrap();
            // Handshaken, now half-open: hold the socket open, say
            // nothing, send nothing, close nothing.
            std::thread::sleep(Duration::from_secs(4));
            drop(s);
        });
        let mut master = handle
            .accept_workers_configured(1, Duration::from_secs(5), Duration::from_millis(300))
            .unwrap();
        let _ = next_request(&mut master);
        let t0 = Instant::now();
        loop {
            match master.recv_timeout(Duration::from_millis(100)).unwrap() {
                Some(Inbound::Disconnected(0)) => break,
                Some(other) => panic!("unexpected {other:?}"),
                None => assert!(
                    t0.elapsed() < Duration::from_secs(3),
                    "half-open connection was not cut by the idle deadline"
                ),
            }
        }
        silent.join().unwrap();
    }

    #[test]
    fn accept_timeout_with_zero_inbound_connections_returns() {
        // Regression: the accept loop must not need a real inbound
        // connection to observe shutdown — the self-connect kick wakes
        // the blocking accept. Nobody ever dials here.
        let handle = tcp_listen().unwrap();
        let addr = handle.addr;
        let t0 = Instant::now();
        match handle.accept_workers_within(1, Duration::from_millis(200)) {
            Err(TransportError::Io(_)) => {}
            Err(other) => panic!("expected accept timeout, got {other:?}"),
            Ok(_) => panic!("accept should have timed out"),
        }
        // accept_workers joined the acceptor before returning, so the
        // listener is closed: a fresh dial must be refused.
        assert!(t0.elapsed() < Duration::from_secs(5), "shutdown hung waiting for a connection");
        assert!(
            TcpStream::connect(addr).is_err(),
            "acceptor still alive after shutdown completed"
        );
    }

    #[test]
    fn explicit_shutdown_joins_the_acceptor() {
        let handle = tcp_listen().unwrap();
        let addr = handle.addr;
        let t = std::thread::spawn(move || {
            let mut w =
                TcpWorker::connect(addr, Request { worker: 0, q: 1, result: None }).unwrap();
            w.recv_reply()
        });
        let mut master = handle.accept_workers(1).unwrap();
        let _ = next_request(&mut master);
        master.shutdown();
        // The acceptor has exited (shutdown joins it); its listener is
        // gone, so redials are refused rather than silently queued.
        assert!(TcpStream::connect(addr).is_err());
        assert!(t.join().unwrap().is_err());
    }

    #[test]
    fn send_to_never_connected_worker_fails_cleanly() {
        let handle = tcp_listen().unwrap();
        let addr = handle.addr;
        let t = std::thread::spawn(move || {
            let mut w =
                TcpWorker::connect(addr, Request { worker: 0, q: 1, result: None }).unwrap();
            w.recv_reply().unwrap()
        });
        let mut master = handle.accept_workers(1).unwrap();
        let _ = next_request(&mut master);
        assert!(matches!(
            master.send(5, Reply { assignment: Assignment::Retry }),
            Err(TransportError::UnknownWorker(5))
        ));
        master.send(0, Reply { assignment: Assignment::Finished }).unwrap();
        t.join().unwrap();
    }
}
