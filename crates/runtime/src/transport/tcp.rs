//! Localhost TCP transport with length-prefixed frames.
//!
//! The master binds an ephemeral port; each worker opens one
//! connection. Frames are `u32` big-endian length + payload, carrying
//! the [`crate::protocol`] encodings. Per-connection reader threads
//! funnel decoded requests into one crossbeam channel so the master
//! sees the same serialized request stream as with the in-process
//! transport — the moral equivalent of the paper's single MPI receive
//! loop.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};

use crossbeam::channel::{unbounded, Receiver};

use super::{Inbound, MasterTransport, TransportError, WorkerTransport};
use crate::protocol::{Reply, Request};

fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).expect("frame too large");
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

/// Upper bound on a frame payload (a full 4000-column Mandelbrot
/// result is ~32 MB of checksums; anything bigger is a corrupt or
/// hostile length prefix, not a message — reject it instead of
/// attempting the allocation).
const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

fn read_frame(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(payload)
}

/// Master endpoint over TCP.
pub struct TcpMaster {
    inbox: Receiver<Inbound>,
    /// Write halves, indexed by worker id.
    streams: Vec<TcpStream>,
}

/// Worker endpoint over TCP.
pub struct TcpWorker {
    stream: TcpStream,
}

/// Binds a listener, hands out its address, then accepts exactly `p`
/// workers (identified by the worker id in their first frame, which is
/// re-queued as a normal request).
///
/// Returns `(master, addr_handle)` where workers connect via
/// [`TcpWorker::connect`] to `addr_handle`.
pub struct TcpListenerHandle {
    listener: TcpListener,
    /// The address workers should dial.
    pub addr: SocketAddr,
}

/// Starts listening on an ephemeral localhost port.
pub fn tcp_listen() -> Result<TcpListenerHandle, TransportError> {
    tcp_listen_on("127.0.0.1", 0)
}

/// Starts listening on an explicit host/port (0 = ephemeral) — used by
/// the `lss master` command so separate worker *processes* can dial in.
pub fn tcp_listen_on(host: &str, port: u16) -> Result<TcpListenerHandle, TransportError> {
    let listener = TcpListener::bind((host, port))
        .map_err(|e| TransportError(format!("bind {host}:{port} failed: {e}")))?;
    let addr = listener
        .local_addr()
        .map_err(|e| TransportError(format!("no local addr: {e}")))?;
    Ok(TcpListenerHandle { listener, addr })
}

impl TcpListenerHandle {
    /// Accepts `p` worker connections and builds the master endpoint.
    ///
    /// Each accepted connection must first send a normal request frame
    /// (its `worker` field identifies the connection); that request is
    /// delivered through the inbox like any other.
    pub fn accept_workers(self, p: usize) -> Result<TcpMaster, TransportError> {
        assert!(p >= 1, "need at least one worker");
        let (tx, rx) = unbounded::<Inbound>();
        let mut streams: Vec<Option<TcpStream>> = (0..p).map(|_| None).collect();
        let mut pending = Vec::new();
        for _ in 0..p {
            let (mut stream, _) = self
                .listener
                .accept()
                .map_err(|e| TransportError(format!("accept failed: {e}")))?;
            // First frame identifies the worker.
            let payload = read_frame(&mut stream)
                .map_err(|e| TransportError(format!("handshake read failed: {e}")))?;
            let req = Request::decode(&payload)
                .ok_or_else(|| TransportError("malformed handshake request".into()))?;
            let id = req.worker;
            if id >= p || streams[id].is_some() {
                return Err(TransportError(format!("bad worker id {id} in handshake")));
            }
            streams[id] = Some(
                stream
                    .try_clone()
                    .map_err(|e| TransportError(format!("clone failed: {e}")))?,
            );
            pending.push(req);
            // Reader thread for subsequent requests on this connection;
            // socket EOF / errors surface as a disconnect notice so the
            // master can requeue the worker's outstanding chunk.
            let tx = tx.clone();
            std::thread::spawn(move || {
                while let Ok(payload) = read_frame(&mut stream) {
                    match Request::decode(&payload) {
                        Some(req) => {
                            if tx.send(Inbound::Request(req)).is_err() {
                                return; // master gone; nobody to notify
                            }
                        }
                        None => break, // malformed frame: treat as dead
                    }
                }
                let _ = tx.send(Inbound::Disconnected(id));
            });
        }
        // Deliver the handshake requests in arrival order.
        for req in pending {
            tx.send(Inbound::Request(req))
                .map_err(|e| TransportError(format!("inbox closed: {e}")))?;
        }
        Ok(TcpMaster {
            inbox: rx,
            streams: streams.into_iter().map(|s| s.expect("all slots filled")).collect(),
        })
    }
}

impl TcpWorker {
    /// Connects to the master and sends the identifying first request.
    pub fn connect(addr: SocketAddr, first: Request) -> Result<Self, TransportError> {
        let mut stream = TcpStream::connect(addr)
            .map_err(|e| TransportError(format!("connect failed: {e}")))?;
        stream
            .set_nodelay(true)
            .map_err(|e| TransportError(format!("nodelay failed: {e}")))?;
        write_frame(&mut stream, &first.encode())
            .map_err(|e| TransportError(format!("handshake send failed: {e}")))?;
        Ok(TcpWorker { stream })
    }
}

impl MasterTransport for TcpMaster {
    fn recv(&mut self) -> Result<Inbound, TransportError> {
        self.inbox
            .recv()
            .map_err(|e| TransportError(format!("all workers disconnected: {e}")))
    }

    fn send(&mut self, worker: usize, reply: Reply) -> Result<(), TransportError> {
        let stream = self
            .streams
            .get_mut(worker)
            .ok_or_else(|| TransportError(format!("unknown worker {worker}")))?;
        write_frame(stream, &reply.encode())
            .map_err(|e| TransportError(format!("send to {worker} failed: {e}")))
    }
}

impl WorkerTransport for TcpWorker {
    fn send_request(&mut self, req: Request) -> Result<(), TransportError> {
        write_frame(&mut self.stream, &req.encode())
            .map_err(|e| TransportError(format!("request send failed: {e}")))
    }

    fn recv_reply(&mut self) -> Result<Reply, TransportError> {
        let payload = read_frame(&mut self.stream)
            .map_err(|e| TransportError(format!("reply read failed: {e}")))?;
        Reply::decode(&payload).ok_or_else(|| TransportError("malformed reply".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lss_core::chunk::Chunk;
    use lss_core::master::Assignment;

    #[test]
    fn tcp_roundtrip_two_workers() {
        let handle = tcp_listen().unwrap();
        let addr = handle.addr;
        let workers: Vec<_> = (0..2)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut w = TcpWorker::connect(
                        addr,
                        Request { worker: i, q: 1, result: None },
                    )
                    .unwrap();
                    let r1 = w.recv_reply().unwrap();
                    // Acknowledge with a piggy-backed result.
                    if let Assignment::Chunk(c) = r1.assignment {
                        let values = vec![7; c.len as usize];
                        w.send_request(Request {
                            worker: i,
                            q: 2,
                            result: Some(crate::protocol::ChunkResult::new(c, values)),
                        })
                        .unwrap();
                    }
                    let r2 = w.recv_reply().unwrap();
                    (r1, r2)
                })
            })
            .collect();

        let mut master = handle.accept_workers(2).unwrap();
        let next_request = |m: &mut TcpMaster| loop {
            match m.recv().unwrap() {
                Inbound::Request(r) => return r,
                Inbound::Disconnected(_) => {}
            }
        };
        // Serve the two handshake requests with chunks.
        for k in 0..2 {
            let req = next_request(&mut master);
            assert!(req.result.is_none());
            master
                .send(
                    req.worker,
                    Reply { assignment: Assignment::Chunk(Chunk::new(k * 10, 3)) },
                )
                .unwrap();
        }
        // Serve the two piggy-backed follow-ups with Finished.
        for _ in 0..2 {
            let req = next_request(&mut master);
            let res = req.result.expect("piggy-backed result");
            assert_eq!(res.values, vec![7, 7, 7]);
            assert_eq!(req.q, 2);
            master.send(req.worker, Reply { assignment: Assignment::Finished }).unwrap();
        }
        for w in workers {
            let (r1, r2) = w.join().unwrap();
            assert!(matches!(r1.assignment, Assignment::Chunk(_)));
            assert_eq!(r2.assignment, Assignment::Finished);
        }
    }

    #[test]
    fn bad_handshake_id_rejected() {
        let handle = tcp_listen().unwrap();
        let addr = handle.addr;
        let t = std::thread::spawn(move || {
            // Claims worker id 9 but only 1 slot exists.
            let _w = TcpWorker::connect(addr, Request { worker: 9, q: 1, result: None });
        });
        let res = handle.accept_workers(1);
        assert!(res.is_err());
        t.join().unwrap();
    }
}
