//! Length-prefixed framing over TCP streams, shared by the one-shot
//! transport ([`super::tcp`]) and the multi-job serving layer.
//!
//! A frame is a `u32` big-endian payload length followed by the
//! payload. The length is capped ([`MAX_FRAME_BYTES`]) so a corrupt or
//! hostile prefix is rejected instead of triggering a giant
//! allocation.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;

use super::TransportError;

/// Upper bound on a frame payload (a full 4000-column Mandelbrot
/// result is ~32 MB of checksums; anything bigger is a corrupt or
/// hostile length prefix, not a message — reject it instead of
/// attempting the allocation).
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// Writes one frame (length prefix + payload) and flushes.
pub fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> Result<(), TransportError> {
    let len = u32::try_from(payload.len())
        .map_err(|_| TransportError::Malformed(format!("frame of {} bytes", payload.len())))?;
    let io = |e: std::io::Error| match e.kind() {
        ErrorKind::BrokenPipe | ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted
        | ErrorKind::NotConnected => TransportError::Disconnected(e.to_string()),
        _ => TransportError::Io(e.to_string()),
    };
    stream.write_all(&len.to_be_bytes()).map_err(io)?;
    stream.write_all(payload).map_err(io)?;
    stream.flush().map_err(io)
}

/// Blocking whole-frame read (used by reader threads, which own their
/// stream and want to park in `read`).
pub fn read_frame_blocking(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(payload)
}

/// Byte accumulator for timeout-safe framing: partial reads survive
/// across timed-out attempts, so a slow frame is never corrupted.
#[derive(Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
}

impl FrameBuf {
    /// Appends freshly read bytes to the accumulator.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Extracts one complete frame if the buffer holds one.
    pub fn try_extract(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let header: [u8; 4] = self.buf[..4]
            .try_into()
            .map_err(|_| TransportError::Malformed("frame header unreadable".into()))?;
        let len = u32::from_be_bytes(header) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(TransportError::Malformed(format!(
                "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
            )));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let payload = self.buf[4..4 + len].to_vec();
        self.buf.drain(..4 + len);
        Ok(Some(payload))
    }
}

/// Reads more bytes from `stream` into `rbuf`. With a timeout set on
/// the stream, returns `Ok(false)` when the read timed out (partial
/// frame state preserved); otherwise reads at least one byte or
/// errors. EOF maps to [`TransportError::Disconnected`].
pub fn fill_from(stream: &mut TcpStream, rbuf: &mut FrameBuf) -> Result<bool, TransportError> {
    let mut chunk = [0u8; 16 * 1024];
    match stream.read(&mut chunk) {
        Ok(0) => Err(TransportError::Disconnected("peer closed the connection".into())),
        Ok(n) => {
            rbuf.extend(&chunk[..n]);
            Ok(true)
        }
        Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => Ok(false),
        Err(e)
            if e.kind() == ErrorKind::ConnectionReset
                || e.kind() == ErrorKind::ConnectionAborted =>
        {
            Err(TransportError::Disconnected(e.to_string()))
        }
        Err(e) => Err(TransportError::Io(e.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_buf_reassembles_split_frames() {
        let mut fb = FrameBuf::default();
        let payload = b"hello frames".to_vec();
        let mut wire = (payload.len() as u32).to_be_bytes().to_vec();
        wire.extend_from_slice(&payload);
        // Feed one byte at a time: no frame until the last byte.
        for (i, b) in wire.iter().enumerate() {
            assert_eq!(fb.try_extract().unwrap(), None, "byte {i}");
            fb.extend(&[*b]);
        }
        assert_eq!(fb.try_extract().unwrap(), Some(payload));
        assert_eq!(fb.try_extract().unwrap(), None);
    }

    #[test]
    fn frame_buf_rejects_oversized_length() {
        let mut fb = FrameBuf::default();
        fb.extend(&(u32::MAX).to_be_bytes());
        assert!(matches!(fb.try_extract(), Err(TransportError::Malformed(_))));
    }

    #[test]
    fn frame_buf_handles_back_to_back_frames() {
        let mut fb = FrameBuf::default();
        for p in [&b"one"[..], &b"two"[..]] {
            fb.extend(&(p.len() as u32).to_be_bytes());
            fb.extend(p);
        }
        assert_eq!(fb.try_extract().unwrap(), Some(b"one".to_vec()));
        assert_eq!(fb.try_extract().unwrap(), Some(b"two".to_vec()));
        assert_eq!(fb.try_extract().unwrap(), None);
    }
}
