//! Evented master transport: one reactor thread, every worker socket.
//!
//! Same wire protocol as [`super::tcp`] — length-prefixed frames
//! carrying [`WireMsg`] — but the master side holds all connections in
//! a single epoll loop (`lss-reactor`) instead of a thread per
//! connection. Workers are oblivious: [`super::tcp::TcpWorker`] dials
//! either master unchanged, and the harness swaps backends behind the
//! [`MasterTransport`] seam.
//!
//! Structure: the reactor thread owns the listener and every
//! [`FramedConn`]; decoded messages flow out through the same mpsc
//! inbox the blocking master uses, and replies flow in through a
//! mutex-guarded outbox plus a [`Waker`] nudge. The deadline
//! discipline is identical to the fixed blocking backend — handshakes
//! get 10 s, established connections get an idle deadline — but here a
//! half-open socket costs one map entry, not a parked thread.

use std::collections::HashMap;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use lss_reactor::{FramedConn, Interest, Poller, Readiness, Waker};

use super::tcp::DEFAULT_IDLE_DEADLINE;
use super::{Inbound, MasterTransport, TransportError};
use crate::protocol::{Reply, WireMsg};

/// The listener's registration token; connections count up from 1.
const LISTENER_TOKEN: u64 = 0;

/// A connection that never completes its hello within this window is
/// dropped (same budget as the blocking acceptor's handshake read).
const HANDSHAKE_DEADLINE: Duration = Duration::from_secs(10);

/// Upper bound on one `epoll_wait`: the reactor wakes at least this
/// often to scan handshake/idle deadlines even when no fd stirs.
const SCAN_SLICE: Duration = Duration::from_millis(100);

/// State shared between the master handle and the reactor thread.
struct EvShared {
    /// Replies queued by `send`, drained by the reactor after a wake.
    outbox: Mutex<Vec<(usize, Vec<u8>)>>,
    /// Whether each worker currently has a live connection — the
    /// fail-fast check behind `send`.
    connected_now: Mutex<Vec<bool>>,
    /// Count of distinct worker ids seen at least once, plus the
    /// condvar `accept_workers` waits on for the initial complement.
    complement: Mutex<usize>,
    complement_cv: Condvar,
    /// Set by shutdown/Drop; the reactor exits on its next wake.
    shutdown: AtomicBool,
}

/// Master endpoint running on the epoll reactor.
pub struct EventedTcpMaster {
    inbox: Receiver<Inbound>,
    shared: Arc<EvShared>,
    waker: Waker,
    /// The reactor thread, joined on shutdown so "shutdown complete"
    /// means the event loop has actually exited.
    reactor: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl EventedTcpMaster {
    /// Gracefully shuts the endpoint down: the reactor is woken (no
    /// inbound connection required — this is what the waker is for),
    /// closes every socket, and exits; this call joins it. Subsequent
    /// `send`s fail with [`TransportError::Disconnected`]. Dropping
    /// the master does the same implicitly.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.waker.wake();
        let handle = self.reactor.lock().expect("reactor lock").take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

impl Drop for EventedTcpMaster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl MasterTransport for EventedTcpMaster {
    fn recv(&mut self) -> Result<Inbound, TransportError> {
        self.inbox
            .recv()
            .map_err(|_| TransportError::Disconnected("all workers disconnected".into()))
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Inbound>, TransportError> {
        match self.inbox.recv_timeout(timeout) {
            Ok(ev) => Ok(Some(ev)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => {
                Err(TransportError::Disconnected("all workers disconnected".into()))
            }
        }
    }

    fn send(&mut self, worker: usize, reply: Reply) -> Result<(), TransportError> {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return Err(TransportError::Disconnected("master shut down".into()));
        }
        {
            let connected = self.shared.connected_now.lock().expect("connected lock");
            if worker >= connected.len() {
                return Err(TransportError::UnknownWorker(worker));
            }
            if !connected[worker] {
                return Err(TransportError::Disconnected(format!(
                    "worker {worker} not connected"
                )));
            }
        }
        self.shared
            .outbox
            .lock()
            .expect("outbox lock")
            .push((worker, reply.encode()));
        self.waker.wake();
        Ok(())
    }
}

/// Binds a listener for the evented master; workers dial `addr` with
/// the ordinary blocking [`super::tcp::TcpWorker`].
pub struct EventedListenerHandle {
    listener: TcpListener,
    /// The address workers should dial.
    pub addr: SocketAddr,
}

/// Starts listening on an ephemeral localhost port.
pub fn evented_listen() -> Result<EventedListenerHandle, TransportError> {
    evented_listen_on("127.0.0.1", 0)
}

/// Starts listening on an explicit host/port (0 = ephemeral).
pub fn evented_listen_on(host: &str, port: u16) -> Result<EventedListenerHandle, TransportError> {
    let listener = TcpListener::bind((host, port))
        .map_err(|e| TransportError::Io(format!("bind {host}:{port} failed: {e}")))?;
    let addr = listener
        .local_addr()
        .map_err(|e| TransportError::Io(format!("no local addr: {e}")))?;
    Ok(EventedListenerHandle { listener, addr })
}

impl EventedListenerHandle {
    /// Builds the evented master and waits until all `p` workers have
    /// connected and handshaken. The reactor keeps accepting for the
    /// master's lifetime, so workers may redial mid-run.
    pub fn accept_workers(self, p: usize) -> Result<EventedTcpMaster, TransportError> {
        self.accept_workers_within(p, Duration::from_secs(30))
    }

    /// [`EventedListenerHandle::accept_workers`] with an explicit
    /// deadline for the initial full complement.
    pub fn accept_workers_within(
        self,
        p: usize,
        timeout: Duration,
    ) -> Result<EventedTcpMaster, TransportError> {
        self.accept_workers_configured(p, timeout, DEFAULT_IDLE_DEADLINE)
    }

    /// Full-knobs variant: `idle_deadline` bounds how long an
    /// established connection may stay silent before it is treated as
    /// half-open.
    pub fn accept_workers_configured(
        self,
        p: usize,
        timeout: Duration,
        idle_deadline: Duration,
    ) -> Result<EventedTcpMaster, TransportError> {
        assert!(p >= 1, "need at least one worker");
        let io = |e: std::io::Error| TransportError::Io(e.to_string());
        self.listener.set_nonblocking(true).map_err(io)?;
        let poller = Poller::new().map_err(io)?;
        poller
            .register(self.listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)
            .map_err(io)?;
        let waker = poller.waker();
        let (tx, rx) = channel::<Inbound>();
        let shared = Arc::new(EvShared {
            outbox: Mutex::new(Vec::new()),
            connected_now: Mutex::new(vec![false; p]),
            complement: Mutex::new(0),
            complement_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let reactor = {
            let shared = Arc::clone(&shared);
            let listener = self.listener;
            std::thread::spawn(move || {
                Reactor {
                    poller,
                    listener,
                    p,
                    idle_deadline,
                    tx,
                    shared,
                    conns: HashMap::new(),
                    worker_conn: vec![None; p],
                    ever_connected: vec![false; p],
                    next_token: LISTENER_TOKEN + 1,
                }
                .run()
            })
        };
        // Wait for the full complement.
        let deadline = Instant::now() + timeout;
        let mut complement = shared.complement.lock().expect("complement lock");
        while *complement < p {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                let msg = format!("only {complement}/{p} workers connected within {timeout:?}");
                drop(complement);
                shared.shutdown.store(true, Ordering::SeqCst);
                waker.wake();
                let _ = reactor.join();
                return Err(TransportError::Io(msg));
            }
            let (guard, _timed_out) = shared
                .complement_cv
                .wait_timeout(complement, left.min(Duration::from_millis(50)))
                .expect("condvar wait");
            complement = guard;
        }
        drop(complement);
        Ok(EventedTcpMaster { inbox: rx, shared, waker, reactor: Mutex::new(Some(reactor)) })
    }
}

/// Per-connection protocol state inside the reactor.
enum ConnState {
    /// Accepted, awaiting the hello request.
    Handshaking {
        /// When the connection was accepted.
        since: Instant,
    },
    /// Hello complete; frames belong to this worker id.
    Worker {
        /// The identified worker.
        id: usize,
    },
}

struct Conn {
    fc: FramedConn,
    state: ConnState,
    /// Whether write interest is currently armed (toggled only on
    /// change — epoll_ctl per loop would be pure overhead).
    armed_write: bool,
}

/// The reactor thread's whole world.
struct Reactor {
    poller: Poller,
    listener: TcpListener,
    p: usize,
    idle_deadline: Duration,
    tx: Sender<Inbound>,
    shared: Arc<EvShared>,
    conns: HashMap<u64, Conn>,
    /// Token of each worker's *current* connection. The token plays
    /// the role of the blocking transport's generation number: a stale
    /// connection dying later no longer matches and stays silent.
    worker_conn: Vec<Option<u64>>,
    ever_connected: Vec<bool>,
    next_token: u64,
}

impl Reactor {
    fn run(mut self) {
        let mut events: Vec<Readiness> = Vec::new();
        loop {
            events.clear();
            if self.poller.wait(&mut events, Some(SCAN_SLICE)).is_err() {
                break;
            }
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            for ev in std::mem::take(&mut events) {
                self.handle_event(ev);
            }
            self.drain_outbox();
            self.scan_deadlines();
        }
        // Teardown: dropping the map closes every socket; dropping `tx`
        // lets the master's inbox observe disconnection.
    }

    fn handle_event(&mut self, ev: Readiness) {
        if ev.token == LISTENER_TOKEN {
            self.accept_all();
            return;
        }
        let mut dead = false;
        let mut frames = Vec::new();
        if ev.readable || ev.closed {
            if let Some(conn) = self.conns.get_mut(&ev.token) {
                // Final frames ahead of an EOF are still extracted; the
                // error only marks the connection for closing after
                // they are processed.
                if conn.fc.on_readable(&mut frames).is_err() {
                    dead = true;
                }
            } else {
                return;
            }
        }
        for payload in frames {
            if !self.process_frame(ev.token, &payload) {
                dead = true;
                break;
            }
        }
        if dead || ev.closed {
            self.close_conn(ev.token);
            return;
        }
        if ev.writable {
            self.flush_conn(ev.token);
        }
    }

    /// Accepts until the backlog drains (level-triggered: leftover
    /// pending connections re-trigger the listener event anyway, but
    /// draining now saves wakeups).
    fn accept_all(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let Ok(fc) = FramedConn::new(stream) else { continue };
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .register(fc.stream().as_raw_fd(), token, Interest::READ)
                        .is_err()
                    {
                        continue;
                    }
                    self.conns.insert(
                        token,
                        Conn {
                            fc,
                            state: ConnState::Handshaking { since: Instant::now() },
                            armed_write: false,
                        },
                    );
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    /// Dispatches one decoded frame. Returns `false` when the
    /// connection must be closed (malformed traffic, a bad hello, or
    /// the master side has gone away).
    fn process_frame(&mut self, token: u64, payload: &[u8]) -> bool {
        let Some(msg) = WireMsg::decode(payload) else {
            return false;
        };
        let state_id = match self.conns.get(&token) {
            Some(Conn { state: ConnState::Worker { id }, .. }) => Some(*id),
            Some(Conn { state: ConnState::Handshaking { .. }, .. }) => None,
            None => return false,
        };
        match (state_id, msg) {
            // The hello: first frame must be a request naming a valid
            // worker id (the blocking acceptor's handshake, evented).
            (None, WireMsg::Request(req)) => {
                if req.worker >= self.p {
                    return false;
                }
                let id = req.worker;
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.state = ConnState::Worker { id };
                }
                // A redial replaces the old connection; close it
                // quietly (its token no longer matches, so no stale
                // disconnect notice fires).
                if let Some(old) = self.worker_conn[id].replace(token) {
                    if old != token {
                        self.close_conn(old);
                    }
                }
                self.shared.connected_now.lock().expect("connected lock")[id] = true;
                if self.ever_connected[id] {
                    if self.tx.send(Inbound::Reconnected(id)).is_err() {
                        return false;
                    }
                } else {
                    self.ever_connected[id] = true;
                    let mut complement = self.shared.complement.lock().expect("complement lock");
                    *complement += 1;
                    self.shared.complement_cv.notify_all();
                }
                // Deliver the hello through the inbox like any request.
                self.tx.send(Inbound::Request(req)).is_ok()
            }
            (Some(_), WireMsg::Request(req)) => self.tx.send(Inbound::Request(req)).is_ok(),
            (Some(_), WireMsg::Heartbeat { worker }) => {
                self.tx.send(Inbound::Heartbeat { worker }).is_ok()
            }
            // Anything else before the hello is protocol abuse.
            (None, _) => false,
        }
    }

    /// Moves queued replies onto their connections and flushes.
    fn drain_outbox(&mut self) {
        let pending = std::mem::take(&mut *self.shared.outbox.lock().expect("outbox lock"));
        if pending.is_empty() {
            return;
        }
        let mut touched: Vec<u64> = Vec::new();
        for (worker, payload) in pending {
            let Some(token) = self.worker_conn.get(worker).copied().flatten() else {
                // Raced with a disconnect after `send`'s check: the
                // reply is lost exactly as bytes in a dead socket's
                // buffer would be; the lease layer re-grants the work.
                continue;
            };
            if let Some(conn) = self.conns.get_mut(&token) {
                if conn.fc.queue_frame(&payload).is_err() {
                    self.close_conn(token);
                    continue;
                }
                if !touched.contains(&token) {
                    touched.push(token);
                }
            }
        }
        for token in touched {
            self.flush_conn(token);
        }
    }

    /// Flushes a connection's queue and keeps write interest armed
    /// exactly while bytes remain.
    fn flush_conn(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        match conn.fc.flush() {
            Ok(wants_write) => {
                if wants_write != conn.armed_write {
                    conn.armed_write = wants_write;
                    let interest = if wants_write { Interest::READ_WRITE } else { Interest::READ };
                    let _ = self.poller.rearm(conn.fc.stream().as_raw_fd(), token, interest);
                }
            }
            Err(_) => self.close_conn(token),
        }
    }

    /// Cuts connections that blew their handshake or idle deadline —
    /// the reactor's answer to half-open sockets: no thread is parked
    /// anywhere, so a scan and a close is the entire cleanup.
    fn scan_deadlines(&mut self) {
        let now = Instant::now();
        let mut doomed: Vec<u64> = Vec::new();
        for (token, conn) in &self.conns {
            let overdue = match conn.state {
                ConnState::Handshaking { since } => {
                    now.saturating_duration_since(since) >= HANDSHAKE_DEADLINE
                }
                ConnState::Worker { .. } => conn.fc.idle_for(now) >= self.idle_deadline,
            };
            if overdue {
                doomed.push(*token);
            }
        }
        for token in doomed {
            self.close_conn(token);
        }
    }

    /// Removes a connection; if it was some worker's current link, the
    /// master hears `Disconnected` (stale links die silently).
    fn close_conn(&mut self, token: u64) {
        let Some(conn) = self.conns.remove(&token) else { return };
        let _ = self.poller.deregister(conn.fc.stream().as_raw_fd());
        if let ConnState::Worker { id } = conn.state {
            if self.worker_conn[id] == Some(token) {
                self.worker_conn[id] = None;
                self.shared.connected_now.lock().expect("connected lock")[id] = false;
                let _ = self.tx.send(Inbound::Disconnected(id));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Request;
    use crate::transport::frame::write_frame;
    use crate::transport::tcp::TcpWorker;
    use crate::transport::WorkerTransport;
    use lss_core::chunk::Chunk;
    use lss_core::master::Assignment;
    use std::net::TcpStream;

    fn next_request(m: &mut EventedTcpMaster) -> Request {
        loop {
            if let Inbound::Request(r) = m.recv().unwrap() {
                return r;
            }
        }
    }

    #[test]
    fn evented_roundtrip_two_workers() {
        let handle = evented_listen().unwrap();
        let addr = handle.addr;
        let workers: Vec<_> = (0..2)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut w = TcpWorker::connect(
                        addr,
                        Request { worker: i, q: 1, result: None },
                    )
                    .unwrap();
                    let r1 = w.recv_reply().unwrap();
                    if let Assignment::Chunk(c) = r1.assignment {
                        let values = vec![9; c.len as usize];
                        w.send_request(Request {
                            worker: i,
                            q: 2,
                            result: Some(crate::protocol::ChunkResult::new(c, values)),
                        })
                        .unwrap();
                    }
                    let r2 = w.recv_reply().unwrap();
                    (r1, r2)
                })
            })
            .collect();

        let mut master = handle.accept_workers(2).unwrap();
        for k in 0..2 {
            let req = next_request(&mut master);
            assert!(req.result.is_none());
            master
                .send(
                    req.worker,
                    crate::protocol::Reply {
                        assignment: Assignment::Chunk(Chunk::new(k * 10, 3)),
                    },
                )
                .unwrap();
        }
        for _ in 0..2 {
            let req = next_request(&mut master);
            let res = req.result.expect("piggy-backed result");
            assert_eq!(res.values, vec![9, 9, 9]);
            master
                .send(req.worker, crate::protocol::Reply { assignment: Assignment::Finished })
                .unwrap();
        }
        for w in workers {
            let (r1, r2) = w.join().unwrap();
            assert!(matches!(r1.assignment, Assignment::Chunk(_)));
            assert_eq!(r2.assignment, Assignment::Finished);
        }
    }

    #[test]
    fn evented_worker_reconnects_under_same_id() {
        let handle = evented_listen().unwrap();
        let addr = handle.addr;
        let t = std::thread::spawn(move || {
            let mut w =
                TcpWorker::connect(addr, Request { worker: 0, q: 1, result: None }).unwrap();
            let r1 = w.recv_reply().unwrap();
            w.reconnect(&Request { worker: 0, q: 5, result: None }).unwrap();
            let r2 = w.recv_reply().unwrap();
            (r1, r2)
        });
        let mut master = handle.accept_workers(1).unwrap();
        let req = next_request(&mut master);
        assert_eq!(req.q, 1);
        master
            .send(0, crate::protocol::Reply { assignment: Assignment::Retry })
            .unwrap();
        let req2 = loop {
            match master.recv().unwrap() {
                Inbound::Request(r) => break r,
                Inbound::Disconnected(0) | Inbound::Reconnected(0) => {}
                other => panic!("unexpected {other:?}"),
            }
        };
        assert_eq!(req2.q, 5, "hello of the new connection");
        master
            .send(0, crate::protocol::Reply { assignment: Assignment::Finished })
            .unwrap();
        let (r1, r2) = t.join().unwrap();
        assert_eq!(r1.assignment, Assignment::Retry);
        assert_eq!(r2.assignment, Assignment::Finished);
    }

    #[test]
    fn evented_half_open_worker_is_disconnected() {
        // The reactor-side twin of the blocking regression: handshake,
        // then silence → typed Disconnected via the idle deadline, and
        // no thread anywhere is stuck (the reactor keeps looping).
        let handle = evented_listen().unwrap();
        let addr = handle.addr;
        let silent = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let hello = WireMsg::Request(Request { worker: 0, q: 1, result: None }).encode();
            write_frame(&mut s, &hello).unwrap();
            std::thread::sleep(Duration::from_secs(4));
            drop(s);
        });
        let mut master = handle
            .accept_workers_configured(1, Duration::from_secs(5), Duration::from_millis(300))
            .unwrap();
        let _ = next_request(&mut master);
        let t0 = Instant::now();
        loop {
            match master.recv_timeout(Duration::from_millis(100)).unwrap() {
                Some(Inbound::Disconnected(0)) => break,
                Some(other) => panic!("unexpected {other:?}"),
                None => assert!(
                    t0.elapsed() < Duration::from_secs(3),
                    "half-open connection survived the idle deadline"
                ),
            }
        }
        silent.join().unwrap();
    }

    #[test]
    fn evented_shutdown_completes_without_inbound_connections() {
        // The waker — not a connection — unblocks the reactor: a
        // drained master must shut down with zero inbound dials.
        let handle = evented_listen().unwrap();
        let addr = handle.addr;
        let t = std::thread::spawn(move || {
            let mut w =
                TcpWorker::connect(addr, Request { worker: 0, q: 1, result: None }).unwrap();
            w.recv_reply()
        });
        let mut master = handle.accept_workers(1).unwrap();
        let _ = next_request(&mut master);
        let t0 = Instant::now();
        master.shutdown();
        assert!(t0.elapsed() < Duration::from_secs(5), "shutdown waited for a connection");
        // The reactor is joined: its listener is closed, redials fail.
        assert!(TcpStream::connect(addr).is_err());
        let err = t.join().unwrap().unwrap_err();
        assert!(err.is_disconnect(), "{err:?}");
        assert!(master.send(0, crate::protocol::Reply { assignment: Assignment::Retry }).is_err());
    }

    #[test]
    fn evented_send_to_never_connected_worker_fails_cleanly() {
        let handle = evented_listen().unwrap();
        let addr = handle.addr;
        let t = std::thread::spawn(move || {
            let mut w =
                TcpWorker::connect(addr, Request { worker: 0, q: 1, result: None }).unwrap();
            w.recv_reply().unwrap()
        });
        let mut master = handle.accept_workers(1).unwrap();
        let _ = next_request(&mut master);
        assert!(matches!(
            master.send(5, crate::protocol::Reply { assignment: Assignment::Retry }),
            Err(TransportError::UnknownWorker(5))
        ));
        master
            .send(0, crate::protocol::Reply { assignment: Assignment::Finished })
            .unwrap();
        t.join().unwrap();
    }

    #[test]
    fn evented_accept_timeout_with_zero_connections_returns() {
        let handle = evented_listen().unwrap();
        let addr = handle.addr;
        let t0 = Instant::now();
        match handle.accept_workers_within(1, Duration::from_millis(200)) {
            Err(TransportError::Io(_)) => {}
            Err(other) => panic!("expected accept timeout, got {other:?}"),
            Ok(_) => panic!("accept should have timed out"),
        }
        assert!(t0.elapsed() < Duration::from_secs(5));
        assert!(TcpStream::connect(addr).is_err(), "reactor still alive after timeout teardown");
    }
}
