//! Version-2 wire protocol of the multi-job scheduling service.
//!
//! The one-shot protocol in the parent module has no version byte and
//! no way to carry more than one chunk or one job per message. The
//! serving layer needs both, so every serve frame opens with a fixed
//! preamble:
//!
//! ```text
//! [ 0xA5 magic | version | tag | payload... ]
//! ```
//!
//! The magic byte is disjoint from every legacy tag (legacy envelopes
//! start with `0` or `1`), which makes version negotiation a total
//! function over both protocols: a serve master reading a legacy hello
//! sees a first byte that is not `0xA5` and answers with a typed
//! [`ServeFrame::Rejected`]; a legacy worker reading that rejection
//! finds no legacy reply tag `0xA5` and surfaces a typed decode error
//! instead of panicking. [`ServeFrame::decode`] classifies the
//! failure ([`ServeDecodeError::Legacy`] vs
//! [`ServeDecodeError::Version`] vs [`ServeDecodeError::Malformed`])
//! so handshakes can reject with a precise reason.
//!
//! The headline extension is the **batched grant**
//! ([`ServeFrame::Grants`]): one round trip delivers up to `k` chunks
//! — one per active job the worker serves — amortizing `T_com` across
//! jobs exactly as decoupling chunk calculation from chunk assignment
//! amortizes it in the distributed-chunk-calculation approach.
//! Results flow back the same way: a [`ServeRequest`] piggy-backs any
//! number of job-tagged chunk results.

use lss_core::chunk::Chunk;
use lss_core::master::SchemeKind;

use super::{get_u32, get_u64, get_u8, take, ChunkResult};

/// First byte of every serve frame; never a valid legacy tag.
pub const SERVE_MAGIC: u8 = 0xA5;

/// Current serve protocol version. Version 3 added the recovery
/// lifecycle states ([`JobState::Recovering`], [`JobState::Draining`])
/// to the job table rows.
pub const SERVE_PROTOCOL_VERSION: u8 = 3;

/// How a serve frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeDecodeError {
    /// The first byte is not the serve magic: the peer speaks the
    /// legacy (version-1, single-job) protocol.
    Legacy,
    /// Serve magic present but the version byte is not ours.
    Version(u8),
    /// Magic and version fine; the payload does not decode.
    Malformed,
}

impl std::fmt::Display for ServeDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeDecodeError::Legacy => {
                write!(f, "legacy (unversioned) protocol frame; serve requires v{SERVE_PROTOCOL_VERSION}")
            }
            ServeDecodeError::Version(v) => {
                write!(f, "serve protocol version {v} not supported (want {SERVE_PROTOCOL_VERSION})")
            }
            ServeDecodeError::Malformed => write!(f, "malformed serve frame"),
        }
    }
}

impl std::error::Error for ServeDecodeError {}

/// A workload description small enough to travel in a grant, so
/// workers can instantiate jobs they have never seen before.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadSpec {
    /// `iters` iterations of identical `cost`.
    Uniform {
        /// Number of iterations.
        iters: u64,
        /// Basic-operation count per iteration.
        cost: u64,
    },
    /// A Mandelbrot window over the paper's domain, reordered with
    /// sampling frequency `sf` (1 = original order).
    Mandelbrot {
        /// Window width in pixels (= loop iterations).
        width: u32,
        /// Window height in pixels.
        height: u32,
        /// Sampling frequency `S_f`.
        sf: u64,
    },
}

impl WorkloadSpec {
    /// Number of loop iterations the workload generates.
    pub fn len(&self) -> u64 {
        match self {
            WorkloadSpec::Uniform { iters, .. } => *iters,
            WorkloadSpec::Mandelbrot { width, .. } => u64::from(*width),
        }
    }

    /// Whether the loop is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn encode_into(&self, b: &mut Vec<u8>) {
        match self {
            WorkloadSpec::Uniform { iters, cost } => {
                b.push(0);
                b.extend_from_slice(&iters.to_be_bytes());
                b.extend_from_slice(&cost.to_be_bytes());
            }
            WorkloadSpec::Mandelbrot { width, height, sf } => {
                b.push(1);
                b.extend_from_slice(&width.to_be_bytes());
                b.extend_from_slice(&height.to_be_bytes());
                b.extend_from_slice(&sf.to_be_bytes());
            }
        }
    }

    fn decode_from(buf: &mut &[u8]) -> Option<WorkloadSpec> {
        Some(match get_u8(buf)? {
            0 => WorkloadSpec::Uniform { iters: get_u64(buf)?, cost: get_u64(buf)? },
            1 => WorkloadSpec::Mandelbrot {
                width: get_u32(buf)?,
                height: get_u32(buf)?,
                sf: get_u64(buf)?,
            },
            _ => return None,
        })
    }
}

fn encode_scheme(s: &SchemeKind, b: &mut Vec<u8>) {
    match s {
        SchemeKind::Static => b.push(0),
        SchemeKind::Pure => b.push(1),
        SchemeKind::Css { k } => {
            b.push(2);
            b.extend_from_slice(&k.to_be_bytes());
        }
        SchemeKind::Gss { min_chunk } => {
            b.push(3);
            b.extend_from_slice(&min_chunk.to_be_bytes());
        }
        SchemeKind::Tss => b.push(4),
        SchemeKind::TssWith { first, last } => {
            b.push(5);
            b.extend_from_slice(&first.to_be_bytes());
            b.extend_from_slice(&last.to_be_bytes());
        }
        SchemeKind::Fss => b.push(6),
        SchemeKind::FssAdaptive { mean_cost, std_dev } => {
            b.push(7);
            b.extend_from_slice(&mean_cost.to_bits().to_be_bytes());
            b.extend_from_slice(&std_dev.to_bits().to_be_bytes());
        }
        SchemeKind::Fiss { sigma } => {
            b.push(8);
            b.extend_from_slice(&sigma.to_be_bytes());
        }
        SchemeKind::Tfss => b.push(9),
        SchemeKind::Wf => b.push(10),
        SchemeKind::Dtss => b.push(11),
        SchemeKind::Dfss => b.push(12),
        SchemeKind::Dfiss { sigma } => {
            b.push(13);
            b.extend_from_slice(&sigma.to_be_bytes());
        }
        SchemeKind::Dtfss => b.push(14),
    }
}

fn decode_scheme(buf: &mut &[u8]) -> Option<SchemeKind> {
    Some(match get_u8(buf)? {
        0 => SchemeKind::Static,
        1 => SchemeKind::Pure,
        2 => SchemeKind::Css { k: get_u64(buf)? },
        3 => SchemeKind::Gss { min_chunk: get_u64(buf)? },
        4 => SchemeKind::Tss,
        5 => SchemeKind::TssWith { first: get_u64(buf)?, last: get_u64(buf)? },
        6 => SchemeKind::Fss,
        7 => SchemeKind::FssAdaptive {
            mean_cost: f64::from_bits(get_u64(buf)?),
            std_dev: f64::from_bits(get_u64(buf)?),
        },
        8 => SchemeKind::Fiss { sigma: get_u32(buf)? },
        9 => SchemeKind::Tfss,
        10 => SchemeKind::Wf,
        11 => SchemeKind::Dtss,
        12 => SchemeKind::Dfss,
        13 => SchemeKind::Dfiss { sigma: get_u32(buf)? },
        14 => SchemeKind::Dtfss,
        _ => return None,
    })
}

fn encode_str(s: &str, b: &mut Vec<u8>) {
    b.extend_from_slice(&(s.len() as u32).to_be_bytes());
    b.extend_from_slice(s.as_bytes());
}

fn decode_str(buf: &mut &[u8]) -> Option<String> {
    let len = get_u32(buf)? as usize;
    let bytes = take(buf, len)?;
    String::from_utf8(bytes.to_vec()).ok()
}

/// Everything a client must say to get a loop scheduled.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The loop to run.
    pub workload: WorkloadSpec,
    /// Scheduling scheme for this job's chunks.
    pub scheme: SchemeKind,
    /// Fair-share weight (≥ 1): a priority-4 job receives 4× the
    /// computing power of a priority-1 job while both are active.
    pub priority: u32,
}

impl JobSpec {
    fn encode_into(&self, b: &mut Vec<u8>) {
        self.workload.encode_into(b);
        encode_scheme(&self.scheme, b);
        b.extend_from_slice(&self.priority.to_be_bytes());
    }

    fn decode_from(buf: &mut &[u8]) -> Option<JobSpec> {
        Some(JobSpec {
            workload: WorkloadSpec::decode_from(buf)?,
            scheme: decode_scheme(buf)?,
            priority: get_u32(buf)?,
        })
    }
}

/// Where a job is in its service lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted but waiting for an active slot.
    Queued,
    /// Receiving grants.
    Active,
    /// Every iteration completed.
    Done,
    /// Re-admitted from a journal after a daemon crash; becomes
    /// `Active` at its first post-recovery grant.
    Recovering,
    /// Still active while the service drains: no new jobs are admitted
    /// and the service exits once this finishes.
    Draining,
}

impl JobState {
    /// Stable lowercase label.
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Active => "active",
            JobState::Done => "done",
            JobState::Recovering => "recovering",
            JobState::Draining => "draining",
        }
    }

    /// Whether the job still has (or may still have) work outstanding.
    pub fn is_open(&self) -> bool {
        !matches!(self, JobState::Done)
    }
}

/// One row of the service's job table, as reported to clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatus {
    /// Service-assigned job id.
    pub job: u64,
    /// The job's fair-share weight.
    pub priority: u32,
    /// Total loop size `I`.
    pub total: u64,
    /// Iterations completed so far (each counted once).
    pub completed: u64,
    /// Lifecycle state.
    pub state: JobState,
    /// Submission time, service-epoch nanoseconds.
    pub submitted_ns: u64,
    /// Completion time, if done.
    pub finished_ns: Option<u64>,
}

impl JobStatus {
    fn encode_into(&self, b: &mut Vec<u8>) {
        b.extend_from_slice(&self.job.to_be_bytes());
        b.extend_from_slice(&self.priority.to_be_bytes());
        b.extend_from_slice(&self.total.to_be_bytes());
        b.extend_from_slice(&self.completed.to_be_bytes());
        b.push(match self.state {
            JobState::Queued => 0,
            JobState::Active => 1,
            JobState::Done => 2,
            JobState::Recovering => 3,
            JobState::Draining => 4,
        });
        b.extend_from_slice(&self.submitted_ns.to_be_bytes());
        match self.finished_ns {
            None => b.push(0),
            Some(t) => {
                b.push(1);
                b.extend_from_slice(&t.to_be_bytes());
            }
        }
    }

    fn decode_from(buf: &mut &[u8]) -> Option<JobStatus> {
        let job = get_u64(buf)?;
        let priority = get_u32(buf)?;
        let total = get_u64(buf)?;
        let completed = get_u64(buf)?;
        let state = match get_u8(buf)? {
            0 => JobState::Queued,
            1 => JobState::Active,
            2 => JobState::Done,
            3 => JobState::Recovering,
            4 => JobState::Draining,
            _ => return None,
        };
        let submitted_ns = get_u64(buf)?;
        let finished_ns = match get_u8(buf)? {
            0 => None,
            1 => Some(get_u64(buf)?),
            _ => return None,
        };
        Some(JobStatus { job, priority, total, completed, state, submitted_ns, finished_ns })
    }
}

/// One chunk of one job, granted to a worker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobGrant {
    /// Which job the chunk belongs to.
    pub job: u64,
    /// The job's workload, so a worker meeting this job for the first
    /// time can instantiate it without a second round trip.
    pub workload: WorkloadSpec,
    /// The iteration interval to execute.
    pub chunk: Chunk,
}

/// A completed chunk's results, tagged with its job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobChunkResult {
    /// Which job the result belongs to.
    pub job: u64,
    /// The chunk and its per-iteration checksums.
    pub result: ChunkResult,
}

/// A worker's scheduling request: identity, fresh run-queue length,
/// and any number of piggy-backed job-tagged results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeRequest {
    /// Dense worker id.
    pub worker: usize,
    /// Current run-queue length `Q_i`.
    pub q: u32,
    /// Results of chunks computed since the last request.
    pub results: Vec<JobChunkResult>,
}

fn encode_chunk_result(r: &ChunkResult, b: &mut Vec<u8>) {
    b.extend_from_slice(&r.chunk.start.to_be_bytes());
    b.extend_from_slice(&r.chunk.len.to_be_bytes());
    for &v in &r.values {
        b.extend_from_slice(&v.to_be_bytes());
    }
}

fn decode_chunk_result(buf: &mut &[u8]) -> Option<ChunkResult> {
    let start = get_u64(buf)?;
    let len = get_u64(buf)?;
    let need = usize::try_from(len.checked_mul(8)?).ok()?;
    if buf.len() < need {
        return None;
    }
    let values = (0..len).map(|_| get_u64(buf)).collect::<Option<Vec<_>>>()?;
    Some(ChunkResult::new(Chunk::new(start, len), values))
}

const TAG_HELLO_WORKER: u8 = 0;
const TAG_HELLO_CLIENT: u8 = 1;
const TAG_REQUEST: u8 = 2;
const TAG_HEARTBEAT: u8 = 3;
const TAG_GRANTS: u8 = 4;
const TAG_RETRY: u8 = 5;
const TAG_SHUTDOWN: u8 = 6;
const TAG_REJECTED: u8 = 7;
const TAG_SUBMIT: u8 = 8;
const TAG_JOBS_QUERY: u8 = 9;
const TAG_ACCEPTED: u8 = 10;
const TAG_JOB_LIST: u8 = 11;
const TAG_DRAIN: u8 = 12;
const TAG_ACK: u8 = 13;

/// Every message of the serve protocol, in one envelope.
///
/// Workers send `HelloWorker`, then `Request`/`Heartbeat`; they
/// receive `Grants`, `Retry`, `Shutdown` or `Rejected`. Clients send
/// `HelloClient`, then `Submit`/`JobsQuery`/`Drain`; they receive
/// `Accepted`, `Rejected`, `JobList` or `Ack`.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeFrame {
    /// A worker's connection handshake.
    HelloWorker {
        /// Dense worker id.
        worker: usize,
        /// Initial run-queue length.
        q: u32,
    },
    /// A client's connection handshake.
    HelloClient,
    /// A worker's scheduling request (with piggy-backed results).
    Request(ServeRequest),
    /// A worker's liveness heartbeat (no reply).
    Heartbeat {
        /// The worker reporting in.
        worker: usize,
    },
    /// A batch of chunks, at most one per job (the batched grant).
    Grants(Vec<JobGrant>),
    /// Nothing to hand out right now; ask again after a backoff.
    Retry,
    /// The service is done with this worker; terminate.
    Shutdown,
    /// Typed refusal (admission control, handshake failures).
    Rejected {
        /// Human-readable refusal reason.
        reason: String,
    },
    /// A client submits a job.
    Submit(JobSpec),
    /// A client asks for the job table.
    JobsQuery,
    /// The job was admitted under this id.
    Accepted {
        /// Service-assigned job id.
        job: u64,
    },
    /// The job table.
    JobList(Vec<JobStatus>),
    /// A client asks the service to finish active jobs and exit.
    Drain,
    /// Generic acknowledgement (reply to `Drain`).
    Ack,
}

impl ServeFrame {
    /// Serializes the frame (magic and version included).
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(64);
        b.push(SERVE_MAGIC);
        b.push(SERVE_PROTOCOL_VERSION);
        match self {
            ServeFrame::HelloWorker { worker, q } => {
                b.push(TAG_HELLO_WORKER);
                b.extend_from_slice(&(*worker as u32).to_be_bytes());
                b.extend_from_slice(&q.to_be_bytes());
            }
            ServeFrame::HelloClient => b.push(TAG_HELLO_CLIENT),
            ServeFrame::Request(req) => {
                b.push(TAG_REQUEST);
                b.extend_from_slice(&(req.worker as u32).to_be_bytes());
                b.extend_from_slice(&req.q.to_be_bytes());
                b.extend_from_slice(&(req.results.len() as u32).to_be_bytes());
                for r in &req.results {
                    b.extend_from_slice(&r.job.to_be_bytes());
                    encode_chunk_result(&r.result, &mut b);
                }
            }
            ServeFrame::Heartbeat { worker } => {
                b.push(TAG_HEARTBEAT);
                b.extend_from_slice(&(*worker as u32).to_be_bytes());
            }
            ServeFrame::Grants(grants) => {
                b.push(TAG_GRANTS);
                b.extend_from_slice(&(grants.len() as u32).to_be_bytes());
                for g in grants {
                    b.extend_from_slice(&g.job.to_be_bytes());
                    g.workload.encode_into(&mut b);
                    b.extend_from_slice(&g.chunk.start.to_be_bytes());
                    b.extend_from_slice(&g.chunk.len.to_be_bytes());
                }
            }
            ServeFrame::Retry => b.push(TAG_RETRY),
            ServeFrame::Shutdown => b.push(TAG_SHUTDOWN),
            ServeFrame::Rejected { reason } => {
                b.push(TAG_REJECTED);
                encode_str(reason, &mut b);
            }
            ServeFrame::Submit(spec) => {
                b.push(TAG_SUBMIT);
                spec.encode_into(&mut b);
            }
            ServeFrame::JobsQuery => b.push(TAG_JOBS_QUERY),
            ServeFrame::Accepted { job } => {
                b.push(TAG_ACCEPTED);
                b.extend_from_slice(&job.to_be_bytes());
            }
            ServeFrame::JobList(jobs) => {
                b.push(TAG_JOB_LIST);
                b.extend_from_slice(&(jobs.len() as u32).to_be_bytes());
                for j in jobs {
                    j.encode_into(&mut b);
                }
            }
            ServeFrame::Drain => b.push(TAG_DRAIN),
            ServeFrame::Ack => b.push(TAG_ACK),
        }
        b
    }

    /// Deserializes a frame payload, classifying failures so callers
    /// can reject a legacy or mis-versioned peer with a typed reason.
    pub fn decode(mut buf: &[u8]) -> Result<ServeFrame, ServeDecodeError> {
        let buf = &mut buf;
        match get_u8(buf) {
            Some(SERVE_MAGIC) => {}
            Some(_) => return Err(ServeDecodeError::Legacy),
            None => return Err(ServeDecodeError::Malformed),
        }
        match get_u8(buf) {
            Some(SERVE_PROTOCOL_VERSION) => {}
            Some(v) => return Err(ServeDecodeError::Version(v)),
            None => return Err(ServeDecodeError::Malformed),
        }
        let tag = get_u8(buf).ok_or(ServeDecodeError::Malformed)?;
        let frame = match tag {
            TAG_HELLO_WORKER => ServeFrame::HelloWorker {
                worker: get_u32(buf).ok_or(ServeDecodeError::Malformed)? as usize,
                q: get_u32(buf).ok_or(ServeDecodeError::Malformed)?,
            },
            TAG_HELLO_CLIENT => ServeFrame::HelloClient,
            TAG_REQUEST => {
                let worker = get_u32(buf).ok_or(ServeDecodeError::Malformed)? as usize;
                let q = get_u32(buf).ok_or(ServeDecodeError::Malformed)?;
                let n = get_u32(buf).ok_or(ServeDecodeError::Malformed)?;
                let mut results = Vec::with_capacity(n.min(1024) as usize);
                for _ in 0..n {
                    let job = get_u64(buf).ok_or(ServeDecodeError::Malformed)?;
                    let result =
                        decode_chunk_result(buf).ok_or(ServeDecodeError::Malformed)?;
                    results.push(JobChunkResult { job, result });
                }
                ServeFrame::Request(ServeRequest { worker, q, results })
            }
            TAG_HEARTBEAT => ServeFrame::Heartbeat {
                worker: get_u32(buf).ok_or(ServeDecodeError::Malformed)? as usize,
            },
            TAG_GRANTS => {
                let n = get_u32(buf).ok_or(ServeDecodeError::Malformed)?;
                let mut grants = Vec::with_capacity(n.min(1024) as usize);
                for _ in 0..n {
                    let job = get_u64(buf).ok_or(ServeDecodeError::Malformed)?;
                    let workload =
                        WorkloadSpec::decode_from(buf).ok_or(ServeDecodeError::Malformed)?;
                    let start = get_u64(buf).ok_or(ServeDecodeError::Malformed)?;
                    let len = get_u64(buf).ok_or(ServeDecodeError::Malformed)?;
                    grants.push(JobGrant { job, workload, chunk: Chunk::new(start, len) });
                }
                ServeFrame::Grants(grants)
            }
            TAG_RETRY => ServeFrame::Retry,
            TAG_SHUTDOWN => ServeFrame::Shutdown,
            TAG_REJECTED => ServeFrame::Rejected {
                reason: decode_str(buf).ok_or(ServeDecodeError::Malformed)?,
            },
            TAG_SUBMIT => ServeFrame::Submit(
                JobSpec::decode_from(buf).ok_or(ServeDecodeError::Malformed)?,
            ),
            TAG_JOBS_QUERY => ServeFrame::JobsQuery,
            TAG_ACCEPTED => ServeFrame::Accepted {
                job: get_u64(buf).ok_or(ServeDecodeError::Malformed)?,
            },
            TAG_JOB_LIST => {
                let n = get_u32(buf).ok_or(ServeDecodeError::Malformed)?;
                let mut jobs = Vec::with_capacity(n.min(1024) as usize);
                for _ in 0..n {
                    jobs.push(JobStatus::decode_from(buf).ok_or(ServeDecodeError::Malformed)?);
                }
                ServeFrame::JobList(jobs)
            }
            TAG_DRAIN => ServeFrame::Drain,
            TAG_ACK => ServeFrame::Ack,
            _ => return Err(ServeDecodeError::Malformed),
        };
        if !buf.is_empty() {
            return Err(ServeDecodeError::Malformed);
        }
        Ok(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: ServeFrame) {
        let bytes = f.encode();
        assert_eq!(ServeFrame::decode(&bytes), Ok(f));
    }

    #[test]
    fn all_frames_roundtrip() {
        roundtrip(ServeFrame::HelloWorker { worker: 3, q: 2 });
        roundtrip(ServeFrame::HelloClient);
        roundtrip(ServeFrame::Request(ServeRequest {
            worker: 1,
            q: 4,
            results: vec![
                JobChunkResult {
                    job: 9,
                    result: ChunkResult::new(Chunk::new(0, 3), vec![1, 2, 3]),
                },
                JobChunkResult {
                    job: 2,
                    result: ChunkResult::new(Chunk::new(10, 0), vec![]),
                },
            ],
        }));
        roundtrip(ServeFrame::Heartbeat { worker: 7 });
        roundtrip(ServeFrame::Grants(vec![
            JobGrant {
                job: 1,
                workload: WorkloadSpec::Uniform { iters: 100, cost: 50 },
                chunk: Chunk::new(0, 10),
            },
            JobGrant {
                job: 2,
                workload: WorkloadSpec::Mandelbrot { width: 400, height: 200, sf: 4 },
                chunk: Chunk::new(5, 7),
            },
        ]));
        roundtrip(ServeFrame::Retry);
        roundtrip(ServeFrame::Shutdown);
        roundtrip(ServeFrame::Rejected { reason: "queue full (8 jobs queued)".into() });
        roundtrip(ServeFrame::Submit(JobSpec {
            workload: WorkloadSpec::Uniform { iters: 64, cost: 10 },
            scheme: SchemeKind::Tfss,
            priority: 4,
        }));
        roundtrip(ServeFrame::JobsQuery);
        roundtrip(ServeFrame::Accepted { job: 42 });
        roundtrip(ServeFrame::JobList(vec![JobStatus {
            job: 1,
            priority: 2,
            total: 100,
            completed: 37,
            state: JobState::Active,
            submitted_ns: 12345,
            finished_ns: None,
        }]));
        for state in
            [JobState::Queued, JobState::Done, JobState::Recovering, JobState::Draining]
        {
            roundtrip(ServeFrame::JobList(vec![JobStatus {
                job: 2,
                priority: 1,
                total: 10,
                completed: 4,
                state,
                submitted_ns: 7,
                finished_ns: None,
            }]));
        }
        roundtrip(ServeFrame::Drain);
        roundtrip(ServeFrame::Ack);
    }

    #[test]
    fn every_scheme_roundtrips_in_a_submit() {
        for scheme in [
            SchemeKind::Static,
            SchemeKind::Pure,
            SchemeKind::Css { k: 16 },
            SchemeKind::Gss { min_chunk: 2 },
            SchemeKind::Tss,
            SchemeKind::TssWith { first: 100, last: 4 },
            SchemeKind::Fss,
            SchemeKind::FssAdaptive { mean_cost: 1.5, std_dev: 0.25 },
            SchemeKind::Fiss { sigma: 3 },
            SchemeKind::Tfss,
            SchemeKind::Wf,
            SchemeKind::Dtss,
            SchemeKind::Dfss,
            SchemeKind::Dfiss { sigma: 5 },
            SchemeKind::Dtfss,
        ] {
            roundtrip(ServeFrame::Submit(JobSpec {
                workload: WorkloadSpec::Uniform { iters: 10, cost: 1 },
                scheme,
                priority: 1,
            }));
        }
    }

    #[test]
    fn legacy_frames_classified_not_panicking() {
        use crate::protocol::{Request, WireMsg};
        // A legacy worker hello, as a serve master would read it.
        let legacy = WireMsg::Request(Request { worker: 0, q: 1, result: None }).encode();
        assert_eq!(ServeFrame::decode(&legacy), Err(ServeDecodeError::Legacy));
        // A legacy heartbeat too.
        let hb = WireMsg::Heartbeat { worker: 3 }.encode();
        assert_eq!(ServeFrame::decode(&hb), Err(ServeDecodeError::Legacy));
        // And the reverse: a serve rejection does not decode as any
        // legacy message (the old worker gets a typed Malformed error,
        // never a panic).
        let rejection = ServeFrame::Rejected { reason: "legacy protocol".into() }.encode();
        assert_eq!(crate::protocol::Reply::decode(&rejection), None);
        assert_eq!(WireMsg::decode(&rejection), None);
    }

    #[test]
    fn version_mismatch_is_typed() {
        let mut bytes = ServeFrame::Retry.encode();
        bytes[1] = 99;
        assert_eq!(ServeFrame::decode(&bytes), Err(ServeDecodeError::Version(99)));
        assert_eq!(ServeFrame::decode(&[]), Err(ServeDecodeError::Malformed));
        assert_eq!(ServeFrame::decode(&[SERVE_MAGIC]), Err(ServeDecodeError::Malformed));
        let msg = ServeDecodeError::Version(99).to_string();
        assert!(msg.contains("99"), "{msg}");
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = ServeFrame::Ack.encode();
        bytes.push(0);
        assert_eq!(ServeFrame::decode(&bytes), Err(ServeDecodeError::Malformed));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn spec_strategy() -> impl Strategy<Value = WorkloadSpec> {
        (any::<bool>(), 1u64..10_000, 1u64..100_000, 1u32..5_000, 1u32..5_000, 1u64..16)
            .prop_map(|(uniform, iters, cost, width, height, sf)| {
                if uniform {
                    WorkloadSpec::Uniform { iters, cost }
                } else {
                    WorkloadSpec::Mandelbrot { width, height, sf }
                }
            })
    }

    proptest! {
        #[test]
        fn grants_roundtrip(
            jobs in prop::collection::vec((0u64..100, spec_strategy(), 0u64..10_000, 0u64..512), 0..16),
        ) {
            let grants: Vec<JobGrant> = jobs
                .into_iter()
                .map(|(job, workload, start, len)| JobGrant {
                    job,
                    workload,
                    chunk: lss_core::chunk::Chunk::new(start, len),
                })
                .collect();
            let f = ServeFrame::Grants(grants);
            prop_assert_eq!(ServeFrame::decode(&f.encode()), Ok(f));
        }

        #[test]
        fn requests_roundtrip(
            worker in 0usize..64,
            q in 1u32..100,
            results in prop::collection::vec(
                (0u64..16, 0u64..10_000, prop::collection::vec(any::<u64>(), 0..32)),
                0..8,
            ),
        ) {
            let results: Vec<JobChunkResult> = results
                .into_iter()
                .map(|(job, start, values)| JobChunkResult {
                    job,
                    result: ChunkResult::new(
                        lss_core::chunk::Chunk::new(start, values.len() as u64),
                        values,
                    ),
                })
                .collect();
            let f = ServeFrame::Request(ServeRequest { worker, q, results });
            prop_assert_eq!(ServeFrame::decode(&f.encode()), Ok(f));
        }

        #[test]
        fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
            let _ = ServeFrame::decode(&bytes);
        }

        #[test]
        fn truncation_never_panics(frame_pick in 0usize..4, cut in 0usize..64) {
            let frame = match frame_pick {
                0 => ServeFrame::Grants(vec![JobGrant {
                    job: 1,
                    workload: WorkloadSpec::Uniform { iters: 8, cost: 2 },
                    chunk: lss_core::chunk::Chunk::new(0, 8),
                }]),
                1 => ServeFrame::Rejected { reason: "queue full".into() },
                2 => ServeFrame::Request(ServeRequest {
                    worker: 0,
                    q: 1,
                    results: vec![JobChunkResult {
                        job: 3,
                        result: ChunkResult::new(lss_core::chunk::Chunk::new(0, 2), vec![1, 2]),
                    }],
                }),
                _ => ServeFrame::JobList(vec![JobStatus {
                    job: 1,
                    priority: 1,
                    total: 10,
                    completed: 10,
                    state: JobState::Done,
                    submitted_ns: 5,
                    finished_ns: Some(9),
                }]),
            };
            let mut bytes = frame.encode();
            bytes.truncate(cut.min(bytes.len()));
            let _ = ServeFrame::decode(&bytes);
        }
    }
}
