//! Capped exponential backoff with jitter.
//!
//! Used by the worker loop in two places: pacing re-requests after a
//! retry notice (ACP 0 — the paper's "backoff and ask again"), and
//! re-dialling the master after a transport disconnect. The jitter
//! decorrelates workers so a restarted master is not hit by `p`
//! simultaneous reconnects; the cap bounds the worst-case reaction
//! time; the attempt bound makes "the master is really gone" a
//! detectable condition instead of an infinite loop.

use std::time::Duration;

use lss_core::fault::ChaosRng;

/// A backoff schedule: equal-jitter capped exponential delays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Delay before the first retry (doubled each further attempt).
    pub base: Duration,
    /// Upper bound on any single delay.
    pub cap: Duration,
    /// Maximum number of attempts; 0 = unbounded.
    pub max_attempts: u32,
}

impl BackoffPolicy {
    /// Pacing for retry notices: quick first re-ask, settling at a
    /// modest cap, never giving up (the master decides termination).
    pub fn retry_default() -> Self {
        BackoffPolicy {
            base: Duration::from_millis(2),
            cap: Duration::from_millis(100),
            max_attempts: 0,
        }
    }

    /// Pacing for reconnecting a dropped link: patient cap, bounded
    /// attempts so an orphaned worker eventually gives up.
    pub fn reconnect_default() -> Self {
        BackoffPolicy {
            base: Duration::from_millis(5),
            cap: Duration::from_millis(500),
            max_attempts: 30,
        }
    }

    /// Whether `attempt` (0-based) is still within the bound.
    pub fn allows(&self, attempt: u32) -> bool {
        self.max_attempts == 0 || attempt < self.max_attempts
    }

    /// The delay before retry number `attempt` (0-based): half of the
    /// capped exponential deterministic, half uniformly random —
    /// "equal jitter", so delays neither collapse to zero nor
    /// synchronize across workers.
    pub fn delay(&self, attempt: u32, rng: &mut ChaosRng) -> Duration {
        let base = self.base.as_nanos().min(u128::from(u64::MAX)) as u64;
        let cap = self.cap.as_nanos().min(u128::from(u64::MAX)) as u64;
        let exp = base.saturating_mul(1u64.checked_shl(attempt.min(63)).unwrap_or(u64::MAX));
        let d = exp.min(cap).max(1);
        let jittered = d / 2 + rng.below(d / 2 + 1);
        Duration::from_nanos(jittered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> BackoffPolicy {
        BackoffPolicy {
            base: Duration::from_millis(2),
            cap: Duration::from_millis(64),
            max_attempts: 5,
        }
    }

    #[test]
    fn delays_grow_then_cap() {
        let p = policy();
        let mut rng = ChaosRng::new(7);
        // Lower bound of each delay is half the capped exponential.
        assert!(p.delay(0, &mut rng) >= Duration::from_millis(1));
        assert!(p.delay(3, &mut rng) >= Duration::from_millis(8));
        for attempt in [10, 30, 63, 200] {
            let d = p.delay(attempt, &mut rng);
            assert!(d <= p.cap, "attempt {attempt}: {d:?} beyond cap");
            assert!(d >= p.cap / 2, "attempt {attempt}: {d:?} under capped floor");
        }
    }

    #[test]
    fn jitter_varies_but_stays_bounded() {
        let p = policy();
        let mut rng = ChaosRng::new(1);
        let delays: Vec<Duration> = (0..32).map(|_| p.delay(2, &mut rng)).collect();
        let lo = Duration::from_millis(4); // half of 8 ms
        let hi = Duration::from_millis(8);
        assert!(delays.iter().all(|d| *d >= lo && *d <= hi), "{delays:?}");
        assert!(delays.iter().any(|d| *d != delays[0]), "no jitter at all");
    }

    #[test]
    fn attempt_bound() {
        let p = policy();
        assert!(p.allows(0));
        assert!(p.allows(4));
        assert!(!p.allows(5));
        let unbounded = BackoffPolicy { max_attempts: 0, ..p };
        assert!(unbounded.allows(1_000_000));
    }

    #[test]
    fn jitter_envelope_holds_across_the_whole_schedule() {
        // Every delay lies in [e/2, e] for e = min(base·2^a, cap): the
        // deterministic half floors it, the jitter half bounds it.
        let p = policy();
        let mut rng = ChaosRng::new(42);
        for attempt in 0..12u32 {
            let exp = p
                .base
                .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
                .min(p.cap)
                .max(Duration::from_nanos(1));
            for _ in 0..16 {
                let d = p.delay(attempt, &mut rng);
                assert!(d >= exp / 2, "attempt {attempt}: {d:?} under {exp:?}/2");
                assert!(d <= exp, "attempt {attempt}: {d:?} over {exp:?}");
            }
        }
    }

    #[test]
    fn budget_boundary_is_exact() {
        // With max_attempts = n, exactly attempts 0..n are allowed; the
        // (n+1)-th request for a retry is the typed give-up point.
        for n in [1u32, 2, 5, 30] {
            let p = BackoffPolicy { max_attempts: n, ..policy() };
            let allowed = (0..n + 3).filter(|&a| p.allows(a)).count() as u32;
            assert_eq!(allowed, n, "budget {n} admitted {allowed} attempts");
        }
    }

    #[test]
    fn huge_attempts_do_not_overflow() {
        let p = BackoffPolicy {
            base: Duration::from_secs(1),
            cap: Duration::from_secs(3600),
            max_attempts: 0,
        };
        let mut rng = ChaosRng::new(3);
        let d = p.delay(u32::MAX, &mut rng);
        assert!(d <= p.cap);
    }
}
