//! The master loop — serves requests in arrival order (§5: "the master
//! accepts requests from the slaves and services them in the order of
//! their arrival"), collecting piggy-backed results as they come in.
//!
//! ## Fault tolerance (an extension beyond the paper)
//!
//! The paper's MPI implementation dies with any slave. This master
//! instead tracks the chunk each worker holds and, when a worker
//! *disconnects* (thread exit, socket EOF, crash), returns that chunk
//! to the [`lss_core::Master`]'s requeue pool, where the next
//! requester picks it up. Termination is correspondingly strict: a
//! worker is only told to terminate when no iterations remain **and**
//! no chunk is outstanding on any other worker — otherwise it is told
//! to retry, so it stays available to absorb requeued work from a
//! straggler that might still die.

use lss_core::chunk::Chunk;
use lss_core::master::{Assignment, Master};

use crate::protocol::Reply;
use crate::transport::{Inbound, MasterTransport, TransportError};

/// What the master loop produced.
#[derive(Debug)]
pub struct MasterOutcome {
    /// Collected per-iteration results (`None` = never received — only
    /// possible when failures made the loop uncompletable).
    pub results: Vec<Option<u64>>,
    /// Requests served, including retries and terminations.
    pub requests_served: u64,
    /// Workers that disconnected without being told to terminate.
    pub failed_workers: Vec<usize>,
}

/// Runs the master until every one of the `p` workers has been told to
/// terminate or has disconnected. Results are collected by iteration
/// index; chunks held by failed workers are re-granted to survivors.
pub fn run_master<T: MasterTransport>(
    mut transport: T,
    master: &mut Master,
    p: usize,
) -> Result<MasterOutcome, TransportError> {
    assert!(p >= 1, "need at least one worker");
    let mut results: Vec<Option<u64>> = vec![None; master.total() as usize];
    let mut requests_served = 0u64;
    let mut gone = vec![false; p]; // terminated or disconnected
    let mut gone_count = 0usize;
    let mut outstanding: Vec<Option<Chunk>> = vec![None; p];
    let mut failed_workers = Vec::new();

    let mark_gone = |w: usize,
                         gone: &mut Vec<bool>,
                         gone_count: &mut usize| {
        if !gone[w] {
            gone[w] = true;
            *gone_count += 1;
        }
    };

    while gone_count < p {
        match transport.recv()? {
            Inbound::Disconnected(w) => {
                if w >= p {
                    return Err(TransportError(format!("unknown worker {w} disconnected")));
                }
                if !gone[w] {
                    failed_workers.push(w);
                    mark_gone(w, &mut gone, &mut gone_count);
                    if let Some(chunk) = outstanding[w].take() {
                        master.requeue(chunk);
                    }
                }
            }
            Inbound::Request(req) => {
                requests_served += 1;
                if req.worker >= p {
                    return Err(TransportError(format!("unknown worker {}", req.worker)));
                }
                if let Some(res) = &req.result {
                    for (offset, &v) in res.values.iter().enumerate() {
                        let idx = (res.chunk.start as usize) + offset;
                        if idx >= results.len() {
                            return Err(TransportError(format!(
                                "result for out-of-range iteration {idx}"
                            )));
                        }
                        if results[idx].is_some() {
                            return Err(TransportError(format!(
                                "duplicate result for iteration {idx}"
                            )));
                        }
                        results[idx] = Some(v);
                    }
                    // The worker has proven it completed its chunk.
                    outstanding[req.worker] = None;
                }
                let mut assignment = master.handle_request(req.worker, req.q);
                // Hold the completion barrier: while any *other* worker
                // still owes results, keep this one available (its next
                // retry can absorb a requeued chunk if that worker dies).
                if assignment == Assignment::Finished
                    && outstanding.iter().any(|o| o.is_some())
                {
                    assignment = Assignment::Retry;
                }
                if let Assignment::Chunk(c) = assignment {
                    outstanding[req.worker] = Some(c);
                }
                if assignment == Assignment::Finished {
                    mark_gone(req.worker, &mut gone, &mut gone_count);
                }
                if let Err(e) = transport.send(req.worker, Reply { assignment }) {
                    // The worker vanished between request and reply:
                    // reclaim whatever we just granted it.
                    if let Some(chunk) = outstanding[req.worker].take() {
                        master.requeue(chunk);
                    }
                    if !gone[req.worker] {
                        failed_workers.push(req.worker);
                        mark_gone(req.worker, &mut gone, &mut gone_count);
                    }
                    // Only fatal if nobody is left to finish the loop.
                    if gone_count == p {
                        return Err(e);
                    }
                }
            }
        }
    }
    Ok(MasterOutcome {
        results,
        requests_served,
        failed_workers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{ChunkResult, Request};
    use crate::transport::channels::channel_transport;
    use crate::transport::WorkerTransport;
    use lss_core::master::{MasterConfig, SchemeKind};
    use lss_core::Master;

    #[test]
    fn master_drives_two_scripted_workers() {
        let (mt, workers) = channel_transport(2);
        let mut master = Master::new(MasterConfig::homogeneous(SchemeKind::Css { k: 3 }, 12, 2));
        let handles: Vec<_> = workers
            .into_iter()
            .enumerate()
            .map(|(i, mut w)| {
                std::thread::spawn(move || {
                    let mut result = None;
                    let mut iters = 0u64;
                    loop {
                        w.send_request(Request { worker: i, q: 1, result: result.take() })
                            .unwrap();
                        match w.recv_reply().unwrap().assignment {
                            Assignment::Chunk(c) => {
                                iters += c.len;
                                let values = c.iter().map(|x| x * 10).collect();
                                result = Some(ChunkResult::new(c, values));
                            }
                            Assignment::Retry => {}
                            Assignment::Finished => return iters,
                        }
                    }
                })
            })
            .collect();
        let outcome = run_master(mt, &mut master, 2).unwrap();
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 12);
        assert!(outcome.failed_workers.is_empty());
        // Every iteration's result arrived exactly once, value = 10·i.
        for (i, r) in outcome.results.iter().enumerate() {
            assert_eq!(*r, Some(i as u64 * 10));
        }
        assert!(outcome.requests_served >= 6);
    }

    #[test]
    fn duplicate_result_detected() {
        let (mt, mut workers) = channel_transport(1);
        let mut master = Master::new(MasterConfig::homogeneous(SchemeKind::Pure, 4, 1));
        let w = std::thread::spawn(move || {
            let t = &mut workers[0];
            // Claim a result for iteration 0 twice.
            let res = || ChunkResult::new(lss_core::Chunk::new(0, 1), vec![5]);
            t.send_request(Request { worker: 0, q: 1, result: Some(res()) }).unwrap();
            let _ = t.recv_reply();
            t.send_request(Request { worker: 0, q: 1, result: Some(res()) }).unwrap();
            let _ = t.recv_reply();
        });
        let err = run_master(mt, &mut master, 1);
        assert!(err.is_err());
        let _ = w.join();
    }

    #[test]
    fn dead_workers_chunk_is_regranted() {
        let (mt, mut workers) = channel_transport(2);
        let mut master = Master::new(MasterConfig::homogeneous(SchemeKind::Css { k: 5 }, 20, 2));
        // Worker 1: requests once, gets a chunk, then dies holding it.
        let dying = workers.pop().unwrap();
        let d = std::thread::spawn(move || {
            let mut t = dying;
            t.send_request(Request { worker: 1, q: 1, result: None }).unwrap();
            let r = t.recv_reply().unwrap();
            assert!(matches!(r.assignment, Assignment::Chunk(_)));
            // Dropping the endpoints = crash.
        });
        // Worker 0: does everything it is given.
        let survivor = std::thread::spawn({
            let mut t = workers.pop().unwrap();
            move || {
                let mut result = None;
                let mut iters = 0u64;
                loop {
                    t.send_request(Request { worker: 0, q: 1, result: result.take() }).unwrap();
                    match t.recv_reply().unwrap().assignment {
                        Assignment::Chunk(c) => {
                            iters += c.len;
                            let values = c.iter().map(|x| x + 1).collect();
                            result = Some(ChunkResult::new(c, values));
                        }
                        Assignment::Retry => std::thread::sleep(
                            std::time::Duration::from_millis(1),
                        ),
                        Assignment::Finished => return iters,
                    }
                }
            }
        });
        let outcome = run_master(mt, &mut master, 2).unwrap();
        d.join().unwrap();
        let survivor_iters = survivor.join().unwrap();
        // The survivor computed the whole loop, including the dead
        // worker's requeued chunk.
        assert_eq!(survivor_iters, 20);
        assert_eq!(outcome.failed_workers, vec![1]);
        for (i, r) in outcome.results.iter().enumerate() {
            assert_eq!(*r, Some(i as u64 + 1), "iteration {i}");
        }
    }

    #[test]
    fn all_workers_dying_is_an_error_with_work_left() {
        let (mt, workers) = channel_transport(1);
        let mut master = Master::new(MasterConfig::homogeneous(SchemeKind::Css { k: 5 }, 20, 1));
        let d = std::thread::spawn(move || {
            let mut t = workers.into_iter().next().unwrap();
            t.send_request(Request { worker: 0, q: 1, result: None }).unwrap();
            let _ = t.recv_reply();
        });
        let outcome = run_master(mt, &mut master, 1).unwrap();
        d.join().unwrap();
        // The lone worker died holding a chunk: the loop could not
        // complete; the outcome says so.
        assert_eq!(outcome.failed_workers, vec![0]);
        assert!(outcome.results.iter().any(|r| r.is_none()));
    }
}
