//! The master loop — serves requests in arrival order (§5: "the master
//! accepts requests from the slaves and services them in the order of
//! their arrival"), collecting piggy-backed results as they come in.
//!
//! Two loops live here:
//!
//! - [`run_master`] — the original loop: tolerates worker *disconnects*
//!   (requeues their chunks) but treats protocol anomalies such as
//!   duplicate results as hard errors. Kept for strict tests and as
//!   the baseline the fault-tolerant loop is measured against.
//! - [`run_resilient_master`] — the self-healing loop: chunk leases
//!   with deadline-driven requeue, heartbeat liveness, speculative
//!   re-execution near the end of the loop, first-result-wins dedup,
//!   and reconnect handling — every recovery decision recorded in a
//!   typed [`FaultLog`]. The paper's MPI implementation dies with any
//!   slave; this loop finishes the loop as long as *one* worker
//!   survives.

use std::time::{Duration, Instant};

use lss_core::chunk::Chunk;
use lss_core::master::{Assignment, Master};
use lss_metrics::{FaultEvent, FaultKind, FaultLog};
use lss_trace::{EventKind as TraceKind, SharedSink, TraceEvent};

use crate::protocol::Reply;
use crate::transport::{Inbound, MasterTransport, TransportError};

/// Appends to the fault log and mirrors the entry onto the trace
/// timeline. Kinds the traced core master already emits as first-class
/// lifecycle events map to `None` and are not mirrored (see
/// [`FaultEvent::to_trace`]).
fn log_fault(faults: &mut FaultLog, trace: &SharedSink, ev: FaultEvent) {
    if trace.enabled() {
        if let Some(t) = ev.to_trace() {
            trace.record(t);
        }
    }
    faults.push(ev);
}

/// What the master loop produced.
#[derive(Debug)]
pub struct MasterOutcome {
    /// Collected per-iteration results (`None` = never received — only
    /// possible when failures made the loop uncompletable).
    pub results: Vec<Option<u64>>,
    /// Requests served, including retries and terminations.
    pub requests_served: u64,
    /// Workers that disconnected without being told to terminate.
    pub failed_workers: Vec<usize>,
}

/// Runs the master until every one of the `p` workers has been told to
/// terminate or has disconnected. Results are collected by iteration
/// index; chunks held by failed workers are re-granted to survivors.
pub fn run_master<T: MasterTransport>(
    mut transport: T,
    master: &mut Master,
    p: usize,
) -> Result<MasterOutcome, TransportError> {
    assert!(p >= 1, "need at least one worker");
    let mut results: Vec<Option<u64>> = vec![None; master.total() as usize];
    let mut requests_served = 0u64;
    let mut gone = vec![false; p]; // terminated or disconnected
    let mut gone_count = 0usize;
    let mut outstanding: Vec<Option<Chunk>> = vec![None; p];
    let mut failed_workers = Vec::new();

    let mark_gone = |w: usize,
                         gone: &mut Vec<bool>,
                         gone_count: &mut usize| {
        if !gone[w] {
            gone[w] = true;
            *gone_count += 1;
        }
    };

    while gone_count < p {
        match transport.recv()? {
            Inbound::Heartbeat { .. } | Inbound::Reconnected(_) => {
                // The strict loop predates leases: liveness signals and
                // reconnects carry no information it acts on.
            }
            Inbound::Disconnected(w) => {
                if w >= p {
                    return Err(TransportError::UnknownWorker(w));
                }
                if !gone[w] {
                    failed_workers.push(w);
                    mark_gone(w, &mut gone, &mut gone_count);
                    if let Some(chunk) = outstanding[w].take() {
                        master.requeue(chunk);
                    }
                }
            }
            Inbound::Request(req) => {
                requests_served += 1;
                if req.worker >= p {
                    return Err(TransportError::UnknownWorker(req.worker));
                }
                if let Some(res) = &req.result {
                    for (offset, &v) in res.values.iter().enumerate() {
                        let idx = (res.chunk.start as usize) + offset;
                        if idx >= results.len() {
                            return Err(TransportError::Malformed(format!(
                                "result for out-of-range iteration {idx}"
                            )));
                        }
                        if results[idx].is_some() {
                            return Err(TransportError::Malformed(format!(
                                "duplicate result for iteration {idx}"
                            )));
                        }
                        results[idx] = Some(v);
                    }
                    // The worker has proven it completed its chunk.
                    outstanding[req.worker] = None;
                }
                let mut assignment = master.handle_request(req.worker, req.q);
                // Hold the completion barrier: while any *other* worker
                // still owes results, keep this one available (its next
                // retry can absorb a requeued chunk if that worker dies).
                if assignment == Assignment::Finished
                    && outstanding.iter().any(|o| o.is_some())
                {
                    assignment = Assignment::Retry;
                }
                if let Assignment::Chunk(c) = assignment {
                    outstanding[req.worker] = Some(c);
                }
                if assignment == Assignment::Finished {
                    mark_gone(req.worker, &mut gone, &mut gone_count);
                }
                if let Err(e) = transport.send(req.worker, Reply { assignment }) {
                    // The worker vanished between request and reply:
                    // reclaim whatever we just granted it.
                    if let Some(chunk) = outstanding[req.worker].take() {
                        master.requeue(chunk);
                    }
                    if !gone[req.worker] {
                        failed_workers.push(req.worker);
                        mark_gone(req.worker, &mut gone, &mut gone_count);
                    }
                    // Only fatal if nobody is left to finish the loop.
                    if gone_count == p {
                        return Err(e);
                    }
                }
            }
        }
    }
    Ok(MasterOutcome {
        results,
        requests_served,
        failed_workers,
    })
}

/// What the fault-tolerant master loop produced.
#[derive(Debug)]
pub struct ResilientOutcome {
    /// Collected per-iteration results, first result wins (`None` =
    /// never received — only possible when every worker died).
    pub results: Vec<Option<u64>>,
    /// Requests served, including retries and terminations.
    pub requests_served: u64,
    /// Workers that were never told to terminate (crashed, hung, or
    /// declared dead).
    pub failed_workers: Vec<usize>,
    /// Speculative (duplicate) grants handed out near end-of-loop.
    pub speculative_grants: u64,
    /// Results discarded by first-result-wins dedup.
    pub duplicates_dropped: u64,
    /// Every fault-handling decision, in time order.
    pub faults: FaultLog,
}

/// Runs the self-healing master loop: grants carry leases, expired
/// leases requeue their chunks, silent workers are declared dead,
/// stragglers are speculatively re-executed, and duplicate results are
/// deduplicated first-result-wins. Completes as long as the completion
/// bitmap can be filled — i.e. as long as at least one worker keeps
/// making progress — and records every recovery step in the returned
/// [`FaultLog`].
///
/// `poll_interval` bounds how long the loop sleeps without checking
/// leases; the effective wake-up is the earlier of it and the next
/// lease deadline.
pub fn run_resilient_master<T: MasterTransport>(
    transport: T,
    master: &mut Master,
    p: usize,
    poll_interval: Duration,
) -> Result<ResilientOutcome, TransportError> {
    run_resilient_master_traced(transport, master, p, poll_interval, SharedSink::disabled())
}

/// [`run_resilient_master`] with a trace sink attached: the full chunk
/// lifecycle (grants, starts, completions, lapses, requeues, dedups)
/// plus worker membership and heartbeats land on one timeline.
///
/// When `trace` is enabled its epoch becomes the loop's time base, so
/// master-side events share the clock of every worker thread stamping
/// through clones of the same sink; the core [`Master`] is given the
/// sink too and emits the lease-path lifecycle events itself. With a
/// disabled sink this is exactly the untraced loop.
pub fn run_resilient_master_traced<T: MasterTransport>(
    mut transport: T,
    master: &mut Master,
    p: usize,
    poll_interval: Duration,
    trace: SharedSink,
) -> Result<ResilientOutcome, TransportError> {
    assert!(p >= 1, "need at least one worker");
    let epoch = Instant::now();
    let traced = trace.enabled();
    if traced {
        master.set_trace_sink(Box::new(trace.clone()));
    }
    let now_ns = {
        let trace = trace.clone();
        move || {
            if traced {
                trace.now_ns()
            } else {
                epoch.elapsed().as_nanos() as u64
            }
        }
    };
    let secs = |ns: u64| ns as f64 / 1e9;
    let mut seen = vec![false; p];

    let mut results: Vec<Option<u64>> = vec![None; master.total() as usize];
    let mut requests_served = 0u64;
    let mut duplicates_dropped = 0u64;
    let mut done = vec![false; p]; // told Finished
    let mut link_down = vec![false; p];
    let mut last_seen = vec![0u64; p];
    let mut faults = FaultLog::new();
    // A worker totally silent for this long is abandoned once all work
    // is complete (covers the hang-without-expirable-lease corner).
    let lease_cfg = *master.lease_table().config();
    let silence_limit = lease_cfg.base_ticks.saturating_add(lease_cfg.dead_after_ticks);

    loop {
        let now = now_ns();

        // Expire overdue leases: requeue what is still needed, declare
        // long-silent holders dead.
        for exp in master.poll_leases(now) {
            let l = exp.lease;
            log_fault(&mut faults, &trace,
                FaultEvent::new(secs(now), FaultKind::LeaseExpired, "lease deadline passed")
                    .on_worker(l.worker)
                    .on_chunk(l.chunk.start, l.chunk.len),
            );
            let incomplete =
                (l.chunk.start..l.chunk.end()).any(|i| !master.iteration_completed(i));
            if incomplete {
                log_fault(&mut faults, &trace,
                    FaultEvent::new(secs(now), FaultKind::Requeued, "chunk returned to pool")
                        .on_worker(l.worker)
                        .on_chunk(l.chunk.start, l.chunk.len),
                );
            }
            if exp.holder_dead {
                log_fault(&mut faults, &trace,
                    FaultEvent::new(secs(now), FaultKind::WorkerDead, "silent past grace window")
                        .on_worker(l.worker),
                );
            }
        }

        // Termination: every iteration completed AND every worker is
        // finished, gone, or given up on.
        if master.all_complete()
            && (0..p).all(|w| {
                done[w]
                    || link_down[w]
                    || master.worker_is_dead(w)
                    || now.saturating_sub(last_seen[w]) > silence_limit
            })
        {
            break;
        }

        // Sleep until traffic, the poll interval, or the next lease
        // deadline — whichever comes first.
        let timeout = match master.next_lease_deadline() {
            Some(d) => poll_interval.min(Duration::from_nanos(d.saturating_sub(now).max(1))),
            None => poll_interval,
        };
        let event = match transport.recv_timeout(timeout) {
            Ok(ev) => ev,
            Err(e) if e.is_disconnect() => {
                // Every worker is gone. Whatever the bitmap says now is
                // all this run will ever produce.
                break;
            }
            Err(e) => return Err(e),
        };

        match event {
            None => continue, // timeout: loop to poll leases
            Some(Inbound::Heartbeat { worker }) => {
                if worker >= p {
                    return Err(TransportError::UnknownWorker(worker));
                }
                let now = now_ns();
                last_seen[worker] = now;
                master.note_heartbeat(worker, now);
                if traced {
                    if !seen[worker] {
                        seen[worker] = true;
                        trace.record(
                            TraceEvent::new(now, TraceKind::WorkerConnected).on_worker(worker),
                        );
                    }
                    trace.record(TraceEvent::new(now, TraceKind::Heartbeat).on_worker(worker));
                }
            }
            Some(Inbound::Disconnected(w)) => {
                if w >= p {
                    return Err(TransportError::UnknownWorker(w));
                }
                if !done[w] && !link_down[w] {
                    let now = now_ns();
                    link_down[w] = true;
                    log_fault(&mut faults, &trace,
                        FaultEvent::new(secs(now), FaultKind::Disconnected, "link lost")
                            .on_worker(w),
                    );
                    if let Some(chunk) = master.worker_disconnected(w) {
                        log_fault(&mut faults, &trace,
                            FaultEvent::new(
                                secs(now),
                                FaultKind::Requeued,
                                "chunk reclaimed from lost worker",
                            )
                            .on_worker(w)
                            .on_chunk(chunk.start, chunk.len),
                        );
                    }
                }
            }
            Some(Inbound::Reconnected(w)) => {
                if w >= p {
                    return Err(TransportError::UnknownWorker(w));
                }
                let now = now_ns();
                link_down[w] = false;
                last_seen[w] = now;
                log_fault(&mut faults, &trace,
                    FaultEvent::new(secs(now), FaultKind::Recovered, "worker reconnected")
                        .on_worker(w),
                );
            }
            Some(Inbound::Request(req)) => {
                let w = req.worker;
                if w >= p {
                    return Err(TransportError::UnknownWorker(w));
                }
                requests_served += 1;
                let now = now_ns();
                if traced && !seen[w] {
                    seen[w] = true;
                    trace.record(TraceEvent::new(now, TraceKind::WorkerConnected).on_worker(w));
                }
                if master.worker_is_dead(w) {
                    // Back from the dead (e.g. a hang that unwedged, or
                    // a reconnect after being declared lost).
                    log_fault(&mut faults, &trace,
                        FaultEvent::new(
                            secs(now),
                            FaultKind::Recovered,
                            "request from a worker declared dead",
                        )
                        .on_worker(w),
                    );
                }
                last_seen[w] = now;
                link_down[w] = false;

                if let Some(res) = &req.result {
                    if res.chunk.end() > master.total() {
                        return Err(TransportError::Malformed(format!(
                            "result for out-of-range chunk {:?}",
                            res.chunk
                        )));
                    }
                    // First result wins: write only still-empty slots.
                    for (offset, &v) in res.values.iter().enumerate() {
                        let idx = (res.chunk.start as usize) + offset;
                        if results[idx].is_none() {
                            results[idx] = Some(v);
                        }
                    }
                    let out = master.record_completion(w, res.chunk, now);
                    if out.duplicate {
                        duplicates_dropped += 1;
                        log_fault(&mut faults, &trace,
                            FaultEvent::new(
                                secs(now),
                                FaultKind::DuplicateDropped,
                                "iterations already completed elsewhere",
                            )
                            .on_worker(w)
                            .on_chunk(res.chunk.start, res.chunk.len),
                        );
                    }
                }

                let spec_before = master.speculative_grants();
                let assignment = master.grant_with_lease(w, req.q, now);
                if master.speculative_grants() > spec_before {
                    if let Assignment::Chunk(c) = assignment {
                        log_fault(&mut faults, &trace,
                            FaultEvent::new(
                                secs(now),
                                FaultKind::Speculated,
                                "idle worker re-executes a straggler's chunk",
                            )
                            .on_worker(w)
                            .on_chunk(c.start, c.len),
                        );
                    }
                }
                if assignment == Assignment::Finished {
                    done[w] = true;
                }
                if transport.send(w, Reply { assignment }).is_err() {
                    // Vanished between request and reply: reclaim the
                    // grant; the transport's disconnect notice (if any)
                    // is handled when it arrives.
                    let now = now_ns();
                    done[w] = false;
                    link_down[w] = true;
                    log_fault(&mut faults, &trace,
                        FaultEvent::new(secs(now), FaultKind::Disconnected, "reply undeliverable")
                            .on_worker(w),
                    );
                    if let Some(chunk) = master.worker_disconnected(w) {
                        log_fault(&mut faults, &trace,
                            FaultEvent::new(
                                secs(now),
                                FaultKind::Requeued,
                                "grant reclaimed after failed reply",
                            )
                            .on_worker(w)
                            .on_chunk(chunk.start, chunk.len),
                        );
                    }
                }
            }
        }
    }

    let failed_workers: Vec<usize> = (0..p).filter(|&w| !done[w]).collect();
    Ok(ResilientOutcome {
        results,
        requests_served,
        failed_workers,
        speculative_grants: master.speculative_grants(),
        duplicates_dropped,
        faults,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{ChunkResult, Request};
    use crate::transport::channels::channel_transport;
    use crate::transport::WorkerTransport;
    use lss_core::master::{MasterConfig, SchemeKind};
    use lss_core::Master;

    #[test]
    fn master_drives_two_scripted_workers() {
        let (mt, workers) = channel_transport(2);
        let mut master = Master::new(MasterConfig::homogeneous(SchemeKind::Css { k: 3 }, 12, 2));
        let handles: Vec<_> = workers
            .into_iter()
            .enumerate()
            .map(|(i, mut w)| {
                std::thread::spawn(move || {
                    let mut result = None;
                    let mut iters = 0u64;
                    loop {
                        w.send_request(Request { worker: i, q: 1, result: result.take() })
                            .unwrap();
                        match w.recv_reply().unwrap().assignment {
                            Assignment::Chunk(c) => {
                                iters += c.len;
                                let values = c.iter().map(|x| x * 10).collect();
                                result = Some(ChunkResult::new(c, values));
                            }
                            Assignment::Retry => {}
                            Assignment::Finished => return iters,
                        }
                    }
                })
            })
            .collect();
        let outcome = run_master(mt, &mut master, 2).unwrap();
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 12);
        assert!(outcome.failed_workers.is_empty());
        // Every iteration's result arrived exactly once, value = 10·i.
        for (i, r) in outcome.results.iter().enumerate() {
            assert_eq!(*r, Some(i as u64 * 10));
        }
        assert!(outcome.requests_served >= 6);
    }

    #[test]
    fn duplicate_result_detected() {
        let (mt, mut workers) = channel_transport(1);
        let mut master = Master::new(MasterConfig::homogeneous(SchemeKind::Pure, 4, 1));
        let w = std::thread::spawn(move || {
            let t = &mut workers[0];
            // Claim a result for iteration 0 twice.
            let res = || ChunkResult::new(lss_core::Chunk::new(0, 1), vec![5]);
            t.send_request(Request { worker: 0, q: 1, result: Some(res()) }).unwrap();
            let _ = t.recv_reply();
            t.send_request(Request { worker: 0, q: 1, result: Some(res()) }).unwrap();
            let _ = t.recv_reply();
        });
        let err = run_master(mt, &mut master, 1);
        assert!(err.is_err());
        let _ = w.join();
    }

    #[test]
    fn dead_workers_chunk_is_regranted() {
        let (mt, mut workers) = channel_transport(2);
        let mut master = Master::new(MasterConfig::homogeneous(SchemeKind::Css { k: 5 }, 20, 2));
        // Worker 1: requests once, gets a chunk, then dies holding it.
        let dying = workers.pop().unwrap();
        let d = std::thread::spawn(move || {
            let mut t = dying;
            t.send_request(Request { worker: 1, q: 1, result: None }).unwrap();
            let r = t.recv_reply().unwrap();
            assert!(matches!(r.assignment, Assignment::Chunk(_)));
            // Dropping the endpoints = crash.
        });
        // Worker 0: does everything it is given.
        let survivor = std::thread::spawn({
            let mut t = workers.pop().unwrap();
            move || {
                let mut result = None;
                let mut iters = 0u64;
                loop {
                    t.send_request(Request { worker: 0, q: 1, result: result.take() }).unwrap();
                    match t.recv_reply().unwrap().assignment {
                        Assignment::Chunk(c) => {
                            iters += c.len;
                            let values = c.iter().map(|x| x + 1).collect();
                            result = Some(ChunkResult::new(c, values));
                        }
                        Assignment::Retry => std::thread::sleep(
                            std::time::Duration::from_millis(1),
                        ),
                        Assignment::Finished => return iters,
                    }
                }
            }
        });
        let outcome = run_master(mt, &mut master, 2).unwrap();
        d.join().unwrap();
        let survivor_iters = survivor.join().unwrap();
        // The survivor computed the whole loop, including the dead
        // worker's requeued chunk.
        assert_eq!(survivor_iters, 20);
        assert_eq!(outcome.failed_workers, vec![1]);
        for (i, r) in outcome.results.iter().enumerate() {
            assert_eq!(*r, Some(i as u64 + 1), "iteration {i}");
        }
    }

    #[test]
    fn all_workers_dying_is_an_error_with_work_left() {
        let (mt, workers) = channel_transport(1);
        let mut master = Master::new(MasterConfig::homogeneous(SchemeKind::Css { k: 5 }, 20, 1));
        let d = std::thread::spawn(move || {
            let mut t = workers.into_iter().next().unwrap();
            t.send_request(Request { worker: 0, q: 1, result: None }).unwrap();
            let _ = t.recv_reply();
        });
        let outcome = run_master(mt, &mut master, 1).unwrap();
        d.join().unwrap();
        // The lone worker died holding a chunk: the loop could not
        // complete; the outcome says so.
        assert_eq!(outcome.failed_workers, vec![0]);
        assert!(outcome.results.iter().any(|r| r.is_none()));
    }

    // ---- resilient loop ----

    fn drive_worker(
        mut t: impl WorkerTransport + 'static,
        id: usize,
    ) -> std::thread::JoinHandle<u64> {
        std::thread::spawn(move || {
            let mut result = None;
            let mut iters = 0u64;
            loop {
                t.send_request(Request { worker: id, q: 1, result: result.take() }).unwrap();
                match t.recv_reply().unwrap().assignment {
                    Assignment::Chunk(c) => {
                        iters += c.len;
                        let values = c.iter().map(|x| x * 3).collect();
                        result = Some(ChunkResult::new(c, values));
                    }
                    Assignment::Retry => {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    Assignment::Finished => return iters,
                }
            }
        })
    }

    #[test]
    fn resilient_loop_completes_a_healthy_run_without_fault_events() {
        let (mt, workers) = channel_transport(3);
        let mut master =
            Master::new(MasterConfig::homogeneous(SchemeKind::Tss, 300, 3));
        let handles: Vec<_> = workers
            .into_iter()
            .enumerate()
            .map(|(i, w)| drive_worker(w, i))
            .collect();
        let out =
            run_resilient_master(mt, &mut master, 3, Duration::from_millis(5)).unwrap();
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 300, "no duplicated compute in a healthy run");
        assert!(out.failed_workers.is_empty());
        assert_eq!(out.speculative_grants, 0, "age gate keeps healthy runs clean");
        assert_eq!(out.duplicates_dropped, 0);
        assert!(out.faults.is_empty(), "{}", out.faults.render());
        for (i, r) in out.results.iter().enumerate() {
            assert_eq!(*r, Some(i as u64 * 3), "iteration {i}");
        }
    }

    #[test]
    fn resilient_loop_recovers_a_crashed_workers_chunk() {
        let (mt, mut workers) = channel_transport(2);
        let mut master =
            Master::new(MasterConfig::homogeneous(SchemeKind::Css { k: 10 }, 60, 2));
        let dying = workers.pop().unwrap();
        let d = std::thread::spawn(move || {
            let mut t = dying;
            t.send_request(Request { worker: 1, q: 1, result: None }).unwrap();
            let r = t.recv_reply().unwrap();
            assert!(matches!(r.assignment, Assignment::Chunk(_)));
            // Crash while holding the chunk.
        });
        let survivor = drive_worker(workers.pop().unwrap(), 0);
        let out =
            run_resilient_master(mt, &mut master, 2, Duration::from_millis(2)).unwrap();
        d.join().unwrap();
        let iters = survivor.join().unwrap();
        assert_eq!(iters, 60, "survivor absorbed the crashed worker's chunk");
        assert_eq!(out.failed_workers, vec![1]);
        assert!(out.results.iter().all(|r| r.is_some()));
        assert!(out.faults.count(FaultKind::Disconnected) >= 1, "{}", out.faults.render());
        assert!(out.faults.count(FaultKind::Requeued) >= 1, "{}", out.faults.render());
    }

    #[test]
    fn resilient_loop_survives_all_workers_dying() {
        let (mt, workers) = channel_transport(1);
        let mut master =
            Master::new(MasterConfig::homogeneous(SchemeKind::Css { k: 5 }, 20, 1));
        let d = std::thread::spawn(move || {
            let mut t = workers.into_iter().next().unwrap();
            t.send_request(Request { worker: 0, q: 1, result: None }).unwrap();
            let _ = t.recv_reply();
        });
        let out =
            run_resilient_master(mt, &mut master, 1, Duration::from_millis(2)).unwrap();
        d.join().unwrap();
        assert_eq!(out.failed_workers, vec![0]);
        assert!(out.results.iter().any(|r| r.is_none()), "partial results reported");
    }
}
