//! lss-reactor: a dependency-light epoll reactor.
//!
//! One [`Poller`] owns an epoll instance plus a self-wake pipe (a
//! `UnixStream` pair — no extra syscall surface) and hands out
//! cloneable [`Waker`]s that any thread can nudge to break the reactor
//! out of `epoll_wait`. [`FramedConn`] packages a non-blocking TCP
//! stream with both-direction buffering for the workspace's
//! length-prefixed frame codec.
//!
//! The crate deliberately stops there: no executor, no futures, no
//! callbacks. The transports in `lss-runtime` and `lss-serve` each run
//! a plain loop over [`Poller::wait`] and keep their protocol state
//! machines in ordinary match statements, which keeps the event-driven
//! backends reviewable next to their blocking siblings.
//!
//! `unsafe` is confined to the three epoll prototypes in `sys`; the
//! rest of the crate — and every crate above it — is safe Rust.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod conn;
mod sys;

pub use conn::{ConnError, FramedConn, MAX_FRAME_BYTES};

use std::io::{self, ErrorKind, Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Duration;

/// Token reserved for the poller's internal waker. User registrations
/// must stay below it.
pub const WAKE_TOKEN: u64 = u64::MAX;

/// Readiness flags for one registered fd, decoded from the kernel's
/// bit set into what a transport loop actually branches on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Readiness {
    /// The fd this event refers to, by registration token.
    pub token: u64,
    /// Bytes (or a pending accept) are waiting.
    pub readable: bool,
    /// The socket can take more outbound bytes.
    pub writable: bool,
    /// Error or hang-up: the connection is dead or dying. Always also
    /// attempt a read first — the peer may have sent final frames.
    pub closed: bool,
}

/// Interest set for [`Poller::register`] / [`Poller::rearm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Watch for inbound readiness.
    pub read: bool,
    /// Watch for outbound readiness (arm only while bytes are queued,
    /// else level-triggered epoll spins hot).
    pub write: bool,
}

impl Interest {
    /// Read-only interest — the steady state of an idle connection.
    pub const READ: Interest = Interest { read: true, write: false };
    /// Read + write interest — while a flush left bytes queued.
    pub const READ_WRITE: Interest = Interest { read: true, write: true };

    fn bits(self) -> u32 {
        let mut events = sys::EPOLLRDHUP;
        if self.read {
            events |= sys::EPOLLIN;
        }
        if self.write {
            events |= sys::EPOLLOUT;
        }
        events
    }
}

/// A cloneable handle that interrupts [`Poller::wait`] from any thread.
#[derive(Clone)]
pub struct Waker {
    tx: Arc<UnixStream>,
}

impl Waker {
    /// Nudges the poller. Infallible from the caller's perspective: a
    /// full pipe already guarantees a pending wakeup, and a torn-down
    /// poller no longer needs one.
    pub fn wake(&self) {
        let _ = (&*self.tx).write(&[1]);
    }
}

/// The reactor core: an epoll instance plus the wake pipe.
pub struct Poller {
    epoll: sys::Epoll,
    wake_rx: UnixStream,
    wake_tx: Arc<UnixStream>,
}

impl Poller {
    /// Creates a poller with its waker pre-registered.
    pub fn new() -> io::Result<Poller> {
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        let epoll = sys::Epoll::new()?;
        epoll.add(wake_rx.as_raw_fd(), sys::EPOLLIN, WAKE_TOKEN)?;
        Ok(Poller { epoll, wake_rx, wake_tx: Arc::new(wake_tx) })
    }

    /// A handle other threads use to interrupt [`Poller::wait`].
    pub fn waker(&self) -> Waker {
        Waker { tx: Arc::clone(&self.wake_tx) }
    }

    /// Starts watching `fd` under `token`. Tokens must be unique among
    /// live registrations and below [`WAKE_TOKEN`].
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        debug_assert!(token < WAKE_TOKEN, "token {token} collides with the waker");
        self.epoll.add(fd, interest.bits(), token)
    }

    /// Updates the interest set of a watched fd (typically toggling
    /// write interest as the outbound queue fills and drains).
    pub fn rearm(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.epoll.modify(fd, interest.bits(), token)
    }

    /// Stops watching `fd`. Call before closing the socket so the
    /// interest list never holds a dangling descriptor.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.epoll.delete(fd)
    }

    /// Waits for readiness, appending decoded events to `out`.
    /// Returns `true` if a [`Waker`] fired (the wake pipe is drained
    /// internally and never surfaced as an event). `None` timeout
    /// blocks until something happens.
    pub fn wait(&self, out: &mut Vec<Readiness>, timeout: Option<Duration>) -> io::Result<bool> {
        let timeout_ms = timeout.map(|d| {
            // Round up so a 100µs deadline doesn't become a hot loop of
            // zero-timeout polls.
            i32::try_from(d.as_millis().max(1)).unwrap_or(i32::MAX)
        });
        let mut raw = Vec::new();
        self.epoll.wait(&mut raw, timeout_ms)?;
        let mut woken = false;
        for ev in raw {
            let events = ev.events;
            let token = ev.data;
            if token == WAKE_TOKEN {
                woken = true;
                self.drain_waker();
                continue;
            }
            out.push(Readiness {
                token,
                readable: events & sys::EPOLLIN != 0,
                writable: events & sys::EPOLLOUT != 0,
                closed: events & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
            });
        }
        Ok(woken)
    }

    /// Empties the wake pipe so level-triggered epoll quiets down until
    /// the next [`Waker::wake`].
    fn drain_waker(&self) {
        let mut buf = [0u8; 64];
        loop {
            match (&self.wake_rx).read(&mut buf) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    #[test]
    fn waker_interrupts_an_indefinite_wait() {
        let poller = Poller::new().expect("poller");
        let waker = poller.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.wake();
        });
        let mut events = Vec::new();
        let start = Instant::now();
        let woken = poller.wait(&mut events, Some(Duration::from_secs(10))).expect("wait");
        assert!(woken, "wake() must surface as woken=true");
        assert!(events.is_empty(), "the wake pipe is not a user event");
        assert!(start.elapsed() < Duration::from_secs(5), "woke early, not on timeout");
        handle.join().expect("join");
    }

    #[test]
    fn timeout_expires_without_events() {
        let poller = Poller::new().expect("poller");
        let mut events = Vec::new();
        let woken = poller.wait(&mut events, Some(Duration::from_millis(20))).expect("wait");
        assert!(!woken);
        assert!(events.is_empty());
    }

    #[test]
    fn readable_socket_is_reported_under_its_token() {
        let poller = Poller::new().expect("poller");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");
        poller.register(server.as_raw_fd(), 7, Interest::READ).expect("register");

        let mut events = Vec::new();
        let woken = poller.wait(&mut events, Some(Duration::from_millis(100))).expect("wait");
        assert!(!woken && events.is_empty(), "no data yet");

        std::io::Write::write_all(&mut client, b"x").expect("write");
        poller.wait(&mut events, Some(Duration::from_secs(5))).expect("wait");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        poller.deregister(server.as_raw_fd()).expect("deregister");
    }

    #[test]
    fn peer_close_sets_the_closed_flag() {
        let poller = Poller::new().expect("poller");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");
        poller.register(server.as_raw_fd(), 3, Interest::READ).expect("register");
        drop(client);
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_secs(5))).expect("wait");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 3);
        assert!(events[0].closed, "hang-up must surface as closed");
    }

    #[test]
    fn write_interest_fires_only_when_armed() {
        let poller = Poller::new().expect("poller");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let _client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");
        poller.register(server.as_raw_fd(), 1, Interest::READ).expect("register");

        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_millis(50))).expect("wait");
        assert!(events.is_empty(), "read-only interest on an idle writable socket stays quiet");

        poller.rearm(server.as_raw_fd(), 1, Interest::READ_WRITE).expect("rearm");
        poller.wait(&mut events, Some(Duration::from_secs(5))).expect("wait");
        assert!(events.iter().any(|e| e.token == 1 && e.writable));
    }
}
