//! The syscall surface: `epoll_create1` / `epoll_ctl` / `epoll_wait`.
//!
//! This module is the **only** place in the workspace that touches
//! `unsafe` — three FFI prototypes against the libc every Linux Rust
//! binary already links, wrapped into a safe [`Epoll`] handle that owns
//! its file descriptor. Everything above (the poller, the framed
//! connections, both evented transports) is `forbid(unsafe_code)`-clean
//! safe Rust.

#![allow(unsafe_code)]

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::os::raw::c_int;

/// Readiness: the fd has bytes to read (or a pending accept).
pub const EPOLLIN: u32 = 0x001;
/// Readiness: the fd can accept more outgoing bytes.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition on the fd (delivered even when not requested).
pub const EPOLLERR: u32 = 0x008;
/// Hang-up: the peer closed its end (delivered even when not requested).
pub const EPOLLHUP: u32 = 0x010;
/// The peer shut down the writing half of the connection.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0o2000000;

/// One readiness record, kernel layout. x86-64 is the lone architecture
/// where the kernel declares the struct packed.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Ready-event bit set (`EPOLLIN` | `EPOLLOUT` | ...).
    pub events: u32,
    /// The caller's token, returned verbatim.
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int)
        -> c_int;
}

/// An owned epoll instance.
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 has no pointer arguments; a negative
        // return is an error, otherwise the fd is fresh and owned here.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: `fd` was just returned by the kernel and nothing else
        // owns it.
        Ok(Epoll { fd: unsafe { OwnedFd::from_raw_fd(fd) } })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data: token };
        // SAFETY: `ev` outlives the call; the kernel copies it before
        // returning. For EPOLL_CTL_DEL the pointer is ignored (we still
        // pass a valid one for pre-2.6.9 kernel compatibility).
        let rc = unsafe { epoll_ctl(self.fd.as_raw_fd(), op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Starts watching `fd` for `events`, tagging readiness with `token`.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Changes the interest set of an already-watched `fd`.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Stops watching `fd`. Closing the fd does this implicitly; an
    /// explicit delete keeps the interest list tidy when a connection
    /// outlives one registration.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks until at least one fd is ready or `timeout_ms` elapses
    /// (`None` = wait forever), appending readiness records to `out`.
    /// Returns how many records were delivered; `0` means timeout.
    /// Retries transparently on `EINTR`.
    pub fn wait(&self, out: &mut Vec<EpollEvent>, timeout_ms: Option<i32>) -> io::Result<usize> {
        const CAPACITY: usize = 256;
        let mut buf = [EpollEvent { events: 0, data: 0 }; CAPACITY];
        let timeout = timeout_ms.unwrap_or(-1).max(-1);
        loop {
            // SAFETY: `buf` is a valid, writable array of CAPACITY
            // records; the kernel writes at most `maxevents` of them.
            let n = unsafe {
                epoll_wait(self.fd.as_raw_fd(), buf.as_mut_ptr(), CAPACITY as c_int, timeout)
            };
            if n >= 0 {
                out.extend_from_slice(&buf[..n as usize]);
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}
