//! A non-blocking TCP connection speaking length-prefixed frames.
//!
//! The framing is the transport layer's: a `u32` big-endian payload
//! length followed by the payload, capped at [`MAX_FRAME_BYTES`] so a
//! corrupt prefix is rejected instead of triggering a giant
//! allocation. One [`FramedConn`] owns the socket plus both directions
//! of buffering: a read accumulator that survives partial frames and a
//! pending-write queue the reactor flushes when the socket turns
//! writable — no thread ever parks in `read` or `write`.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Upper bound on a frame payload — matches the blocking transport's
/// cap, so the two backends accept exactly the same streams.
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// Why a connection stopped being usable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnError {
    /// Orderly EOF or a connection reset — the peer is gone.
    Closed,
    /// A frame header announced a payload beyond [`MAX_FRAME_BYTES`].
    Oversized(usize),
    /// Any other OS-level failure, rendered.
    Io(String),
}

impl std::fmt::Display for ConnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnError::Closed => write!(f, "peer closed the connection"),
            ConnError::Oversized(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME_BYTES}-byte cap")
            }
            ConnError::Io(e) => write!(f, "connection I/O error: {e}"),
        }
    }
}

impl std::error::Error for ConnError {}

/// One non-blocking framed connection.
pub struct FramedConn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    /// Bytes of `wbuf` already written; compacted lazily.
    wpos: usize,
    /// Last instant any byte arrived — the half-open detector.
    last_data: Instant,
}

impl FramedConn {
    /// Adopts a freshly accepted (or connected) stream: switches it to
    /// non-blocking and disables Nagle.
    pub fn new(stream: TcpStream) -> std::io::Result<FramedConn> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(FramedConn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            last_data: Instant::now(),
        })
    }

    /// The underlying socket (for epoll registration).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// How long the connection has been silent (no inbound bytes).
    pub fn idle_for(&self, now: Instant) -> std::time::Duration {
        now.saturating_duration_since(self.last_data)
    }

    /// Reads until the socket would block, appending every complete
    /// frame payload to `frames`. Partial frames stay buffered for the
    /// next readiness event. On EOF/reset the frames that arrived ahead
    /// of the close are still extracted before `Closed` is returned, so
    /// a peer's parting message is never lost.
    pub fn on_readable(&mut self, frames: &mut Vec<Vec<u8>>) -> Result<(), ConnError> {
        let mut chunk = [0u8; 16 * 1024];
        let mut terminal: Option<ConnError> = None;
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    terminal = Some(ConnError::Closed);
                    break;
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    self.last_data = Instant::now();
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == ErrorKind::ConnectionReset
                        || e.kind() == ErrorKind::ConnectionAborted =>
                {
                    terminal = Some(ConnError::Closed);
                    break;
                }
                Err(e) => {
                    terminal = Some(ConnError::Io(e.to_string()));
                    break;
                }
            }
        }
        self.extract_frames(frames)?;
        match terminal {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Pulls every complete frame out of the read accumulator.
    fn extract_frames(&mut self, frames: &mut Vec<Vec<u8>>) -> Result<(), ConnError> {
        let mut consumed = 0;
        loop {
            let rest = &self.rbuf[consumed..];
            if rest.len() < 4 {
                break;
            }
            let len = u32::from_be_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
            if len > MAX_FRAME_BYTES {
                return Err(ConnError::Oversized(len));
            }
            if rest.len() < 4 + len {
                break;
            }
            frames.push(rest[4..4 + len].to_vec());
            consumed += 4 + len;
        }
        if consumed > 0 {
            self.rbuf.drain(..consumed);
        }
        Ok(())
    }

    /// Queues one frame (header + payload) for writing. Call
    /// [`FramedConn::flush`] afterwards; the reactor arms `EPOLLOUT`
    /// only when flush reports leftover bytes.
    pub fn queue_frame(&mut self, payload: &[u8]) -> Result<(), ConnError> {
        let len = u32::try_from(payload.len()).map_err(|_| ConnError::Oversized(payload.len()))?;
        if payload.len() > MAX_FRAME_BYTES {
            return Err(ConnError::Oversized(payload.len()));
        }
        self.wbuf.extend_from_slice(&len.to_be_bytes());
        self.wbuf.extend_from_slice(payload);
        Ok(())
    }

    /// Writes as much of the pending queue as the socket accepts.
    /// `Ok(true)` means bytes remain and the connection wants an
    /// `EPOLLOUT` wakeup; `Ok(false)` means the queue drained.
    pub fn flush(&mut self) -> Result<bool, ConnError> {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return Err(ConnError::Closed),
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    self.compact();
                    return Ok(true);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == ErrorKind::BrokenPipe
                        || e.kind() == ErrorKind::ConnectionReset
                        || e.kind() == ErrorKind::ConnectionAborted =>
                {
                    return Err(ConnError::Closed)
                }
                Err(e) => return Err(ConnError::Io(e.to_string())),
            }
        }
        self.wbuf.clear();
        self.wpos = 0;
        Ok(false)
    }

    /// Whether unflushed outbound bytes are pending.
    pub fn wants_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }

    /// Drops already-written bytes once they dominate the buffer, so a
    /// long-lived slow reader cannot grow the queue unboundedly behind
    /// its own progress.
    fn compact(&mut self) {
        if self.wpos > 4096 && self.wpos * 2 >= self.wbuf.len() {
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn loopback_pair() -> (FramedConn, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        (FramedConn::new(server).expect("framed"), client)
    }

    #[test]
    fn reassembles_frames_across_partial_reads() {
        let (mut conn, mut peer) = loopback_pair();
        let payload = b"hello reactor".to_vec();
        let mut wire = (payload.len() as u32).to_be_bytes().to_vec();
        wire.extend_from_slice(&payload);
        // First half now...
        peer.write_all(&wire[..5]).expect("write head");
        peer.flush().expect("flush");
        std::thread::sleep(std::time::Duration::from_millis(10));
        let mut frames = Vec::new();
        conn.on_readable(&mut frames).expect("readable");
        assert!(frames.is_empty(), "half a frame is no frame");
        // ...the rest later.
        peer.write_all(&wire[5..]).expect("write tail");
        peer.flush().expect("flush");
        std::thread::sleep(std::time::Duration::from_millis(10));
        conn.on_readable(&mut frames).expect("readable");
        assert_eq!(frames, vec![payload]);
    }

    #[test]
    fn oversized_header_is_a_typed_error() {
        let (mut conn, mut peer) = loopback_pair();
        peer.write_all(&u32::MAX.to_be_bytes()).expect("write");
        peer.flush().expect("flush");
        std::thread::sleep(std::time::Duration::from_millis(10));
        let mut frames = Vec::new();
        assert!(matches!(
            conn.on_readable(&mut frames),
            Err(ConnError::Oversized(_))
        ));
    }

    #[test]
    fn peer_close_is_distinguished_from_would_block() {
        let (mut conn, peer) = loopback_pair();
        let mut frames = Vec::new();
        conn.on_readable(&mut frames).expect("nothing yet, not an error");
        drop(peer);
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(conn.on_readable(&mut frames), Err(ConnError::Closed));
    }

    #[test]
    fn frames_ahead_of_close_are_delivered() {
        let (mut conn, mut peer) = loopback_pair();
        let mut wire = (3u32).to_be_bytes().to_vec();
        wire.extend_from_slice(b"bye");
        peer.write_all(&wire).expect("write");
        drop(peer);
        std::thread::sleep(std::time::Duration::from_millis(10));
        let mut frames = Vec::new();
        assert_eq!(conn.on_readable(&mut frames), Err(ConnError::Closed));
        assert_eq!(frames, vec![b"bye".to_vec()], "parting frame survives the EOF");
    }

    #[test]
    fn queued_frames_flush_through() {
        let (mut conn, mut peer) = loopback_pair();
        conn.queue_frame(b"abc").expect("queue");
        conn.queue_frame(b"defg").expect("queue");
        while conn.flush().expect("flush") {}
        let mut buf = [0u8; 64];
        std::thread::sleep(std::time::Duration::from_millis(10));
        let n = peer.read(&mut buf).expect("read");
        let mut want = Vec::new();
        for p in [&b"abc"[..], &b"defg"[..]] {
            want.extend_from_slice(&(p.len() as u32).to_be_bytes());
            want.extend_from_slice(p);
        }
        assert_eq!(&buf[..n], &want[..]);
    }
}
