//! Sharded masters with certified distributed chunk self-calculation.
//!
//! The paper's master–slave protocol — and every layer built on it —
//! serializes all chunk grants through one dispenser. This crate
//! removes that ceiling with two composable mechanisms (Eleliemy &
//! Ciorba, arXiv:2101.07050):
//!
//! 1. **Sharded masters** — [`ShardSet`] splits `[0, I)` into N
//!    contiguous regions, each a [`Shard`] with its own scheme formula
//!    and [`lss_core::LeaseTable`]. A drained shard steals half of the
//!    largest remaining range from the fullest sibling, so the
//!    partition stays exact no matter which workers show up (or die).
//! 2. **Self-scheduled grants** — [`SelfWorker`] claims a chunk number
//!    with one `fetch_add` and evaluates a [`FormulaReplica`] locally:
//!    the hot path has no lock, no lease and no master round trip. The
//!    replicas are provably identical to the production
//!    [`lss_core::ChunkDispenser`] (including from arbitrary range
//!    offsets — shard bases) via `lss verify --certify`.
//!
//! Both paths share one [`CompletionLedger`], a lock-free
//! first-result-wins bitmap, so exactly-once iteration accounting
//! holds across steals, speculation, retransmits and crash recovery.
//! All recovery flows through the shards' lease tables: expired leases
//! requeue, and drained-but-incomplete self-scheduled regions are
//! reclaimed by replaying the formula (see [`ShardSet::poll`]).
//!
//! Time is an abstract `u64` tick supplied by callers (logical in the
//! simulator, monotonic nanoseconds in the runtime); the crate never
//! reads a clock — enforced by the `shard-no-wall-clock` lint rule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ledger;
pub mod replica;
pub mod set;
pub mod shard;

pub use ledger::CompletionLedger;
pub use replica::FormulaReplica;
pub use set::{partition, GrantMode, SelfWorker, ShardError, ShardSet, ShardSetConfig};
pub use shard::{Donation, Shard, ShardGrant, ShardStats};
