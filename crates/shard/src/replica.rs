//! Worker-local replicas of a shard's scheme formula.
//!
//! The self-scheduling grant path (arXiv:2101.07050) decouples chunk
//! *calculation* from chunk *assignment*: workers claim a chunk number
//! from a shared atomic counter and evaluate the scheme formula locally
//! to learn which iterations that number maps to. For this to be sound
//! every replica must produce exactly the chunk sequence the shard's
//! own [`ChunkDispenser`] would — the certifier (`lss verify
//! --certify`) proves this for every closed-form scheme, including from
//! arbitrary range offsets (shard bases), not just from chunk 0.

use lss_core::chunk::{Chunk, ChunkDispenser};
use lss_core::master::SchemeKind;
use lss_core::scheme::ChunkSizer;

/// How one replica evaluates the formula.
enum Engine {
    /// General path: replay the shard's dispenser, skipping past the
    /// chunks other workers claimed (cost proportional to the skip).
    Walk(ChunkDispenser<Box<dyn ChunkSizer + Send>>),
    /// Fixed-size schemes (CSS(k), SS, S): chunk number `i` covers
    /// `[base + i·size, …)` by construction, so `chunk_at` is pure
    /// arithmetic — random access, no walking. This is the hot path the
    /// `grant_ceiling` bench measures; the certifier's `OFFSET(shard)`
    /// certificate proves it equal to the dispenser chunk-for-chunk.
    Fixed { base: u64, total: u64, size: u64 },
}

/// A deterministic local re-derivation of one shard's chunk sequence.
///
/// Covers the shard's range `[base, base + total)` and evaluates the
/// formula on demand: [`FormulaReplica::chunk_at`] fast-forwards to the
/// requested chunk number, skipping the chunks other workers claimed
/// (O(1) for fixed-size schemes, a dispenser replay otherwise). Claims
/// from one worker arrive in increasing order (its fetch-adds are
/// monotone), so the replica never rewinds.
pub struct FormulaReplica {
    engine: Engine,
    /// Chunks produced so far — the next produced chunk has this number.
    produced: u64,
}

impl FormulaReplica {
    /// A replica of `scheme` over `[base, base + total)` as scheduled
    /// for `p` workers. `None` for schemes with no closed-form formula
    /// (WF and the distributed ACP family need master-side state and
    /// cannot be replicated).
    pub fn new(scheme: SchemeKind, base: u64, total: u64, p: u32) -> Option<Self> {
        let fixed_size = match scheme {
            SchemeKind::Pure => Some(1),
            SchemeKind::Css { k } => Some(k.max(1)),
            // S hands each of the p workers one ceil(I/p) block.
            SchemeKind::Static if total > 0 => Some(total.div_ceil(p.max(1) as u64)),
            _ => None,
        };
        let engine = match fixed_size {
            Some(size) => Engine::Fixed { base, total, size },
            None => {
                let sizer = scheme.formula_sizer(total, p)?;
                Engine::Walk(ChunkDispenser::with_base(base, total, sizer))
            }
        };
        // Fixed-size schemes never reach formula_sizer above: reject
        // unsupported schemes the same way regardless of engine.
        scheme.formula_sizer(total, p)?;
        Some(FormulaReplica { engine, produced: 0 })
    }

    /// Chunk number the replica will produce next.
    pub fn position(&self) -> u64 {
        self.produced
    }

    /// Iterations the replica has not yet mapped to chunks.
    pub fn remaining(&self) -> u64 {
        match &self.engine {
            Engine::Walk(d) => d.remaining(),
            Engine::Fixed { total, size, .. } => {
                total.saturating_sub(self.produced.saturating_mul(*size))
            }
        }
    }

    /// Advances the formula to chunk number `seq` (0-based within this
    /// shard) and returns that chunk; `None` when the formula exhausts
    /// first — `seq` is past the end of the shard's sequence.
    ///
    /// # Panics
    /// If `seq` is below the current position: one worker's claims are
    /// strictly increasing, so a rewind is a caller bug.
    pub fn chunk_at(&mut self, seq: u64) -> Option<Chunk> {
        assert!(seq >= self.produced, "replica rewound: seq {seq} < position {}", self.produced);
        match &mut self.engine {
            Engine::Walk(dispenser) => loop {
                let chunk = dispenser.next_chunk()?;
                self.produced += 1;
                if self.produced - 1 == seq {
                    return Some(chunk);
                }
                // A skipped chunk belongs to another worker's claim.
            },
            Engine::Fixed { base, total, size } => {
                let off = seq.checked_mul(*size)?;
                if off >= *total {
                    return None;
                }
                self.produced = seq + 1;
                Some(Chunk::new(*base + off, (*total - off).min(*size)))
            }
        }
    }
}

impl std::fmt::Debug for FormulaReplica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FormulaReplica")
            .field("produced", &self.produced)
            .field("remaining", &self.remaining())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_reproduces_the_dispenser_sequence() {
        let scheme = SchemeKind::Gss { min_chunk: 1 };
        let mut reference = ChunkDispenser::new(
            1000,
            scheme.formula_sizer(1000, 4).expect("closed-form"),
        );
        let mut replica = FormulaReplica::new(scheme, 0, 1000, 4).expect("closed-form");
        let mut seq = 0u64;
        while let Some(want) = reference.next_chunk() {
            assert_eq!(replica.chunk_at(seq), Some(want));
            seq += 1;
        }
        assert_eq!(replica.chunk_at(seq), None, "exhausts with the reference");
    }

    #[test]
    fn skipping_claims_matches_interleaved_workers() {
        // Two replicas each claiming alternate chunk numbers must tile
        // the range exactly like one dispenser producing all of them.
        let scheme = SchemeKind::Tss;
        let all: Vec<Chunk> = ChunkDispenser::new(
            500,
            scheme.formula_sizer(500, 3).expect("closed-form"),
        )
        .collect();
        let mut even = FormulaReplica::new(scheme, 0, 500, 3).expect("closed-form");
        let mut odd = FormulaReplica::new(scheme, 0, 500, 3).expect("closed-form");
        for (i, want) in all.iter().enumerate() {
            let got = if i % 2 == 0 {
                even.chunk_at(i as u64)
            } else {
                odd.chunk_at(i as u64)
            };
            assert_eq!(got, Some(*want));
        }
    }

    #[test]
    fn offset_replica_shifts_starts_only() {
        let scheme = SchemeKind::Fss;
        let mut zero = FormulaReplica::new(scheme, 0, 300, 4).expect("closed-form");
        let mut off = FormulaReplica::new(scheme, 700, 300, 4).expect("closed-form");
        for seq in 0.. {
            match (zero.chunk_at(seq), off.chunk_at(seq)) {
                (Some(a), Some(b)) => {
                    assert_eq!(b.len, a.len);
                    assert_eq!(b.start, a.start + 700);
                }
                (None, None) => break,
                (a, b) => panic!("replicas diverged at seq {seq}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn stateful_schemes_have_no_replica() {
        assert!(FormulaReplica::new(SchemeKind::Wf, 0, 100, 2).is_none());
        assert!(FormulaReplica::new(SchemeKind::Dtss, 0, 100, 2).is_none());
    }

    #[test]
    #[should_panic(expected = "replica rewound")]
    fn rewinding_a_replica_panics() {
        let mut r = FormulaReplica::new(SchemeKind::Css { k: 10 }, 0, 100, 2).expect("css");
        r.chunk_at(3);
        r.chunk_at(1);
    }
}
