//! The sharded master: N shards, one ledger, two grant paths.
//!
//! [`ShardSet`] replaces the single grant point of
//! [`lss_core::Master`] with:
//!
//! - **N master shards** ([`crate::Shard`]), each owning a contiguous
//!   slice of `[0, I)` with its own lease table. A worker's *home*
//!   shard is `worker % N`; when the home drains, the set steals half
//!   of the largest remaining range from the fullest sibling (or a
//!   recovered chunk from its requeue pool), so no iteration is ever
//!   stranded on a shard whose workers all died.
//! - **A self-scheduling grant path** ([`SelfWorker`]): workers claim a
//!   chunk *number* with one `fetch_add` on the shard's shared counter
//!   and evaluate the replicated scheme formula locally
//!   ([`crate::FormulaReplica`]) to learn which iterations that number
//!   maps to — no lock, no lease, no master round trip on the hot
//!   path. The atomic counter stands in for MPI passive-target RMA
//!   (arXiv:1901.02773); the formula replicas are certified identical
//!   to the production dispenser by `lss verify --certify`.
//!
//! Crash recovery always flows through the leased path: expired leases
//! requeue into their shard; in self-scheduling mode a drained region
//! that stays incomplete past a lease window is *reclaimed* — the set
//! replays the formula, requeues the chunks nobody reported, and hands
//! them out under real leases. First-result-wins dedup is global (one
//! [`CompletionLedger`]), so duplicates from steals, speculation and
//! reclaim all collapse to exactly-once iteration accounting.
//!
//! Time is an abstract `u64` tick passed in by callers; this crate
//! never reads a clock (`shard-no-wall-clock` lint).

use crate::ledger::CompletionLedger;
use crate::replica::FormulaReplica;
use crate::shard::{Shard, ShardGrant, ShardStats};
use lss_core::chunk::{Chunk, ChunkDispenser};
use lss_core::fault::{ExpiredLease, LeaseConfig};
use lss_core::master::{Assignment, CompletionOutcome, SchemeKind};
use lss_trace::{EventKind, SharedSink, TraceEvent};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// How fresh chunks reach workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrantMode {
    /// Workers request chunks from their home shard (locked path);
    /// shards dispense via the scheme formula and steal when drained.
    Sharded,
    /// Workers self-calculate chunks from shared counters + formula
    /// replicas; shards only serve recovery (requeues, speculation).
    SelfSched,
}

/// Why a [`ShardSet`] could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// The scheme has no closed-form formula to replicate (WF and the
    /// distributed ACP family keep master-side state).
    UnsupportedScheme(&'static str),
    /// `shards == 0` or `workers == 0`.
    EmptyCluster,
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::UnsupportedScheme(name) => {
                write!(f, "scheme {name} has no replicable formula (needs master-side state)")
            }
            ShardError::EmptyCluster => write!(f, "need at least one shard and one worker"),
        }
    }
}

impl std::error::Error for ShardError {}

/// Configuration for a [`ShardSet`].
#[derive(Debug, Clone)]
pub struct ShardSetConfig {
    /// The scheduling scheme (must have a closed-form formula).
    pub scheme: SchemeKind,
    /// Total loop iterations `I`.
    pub total: u64,
    /// Number of master shards `N`.
    pub shards: usize,
    /// Number of worker slots `p` (global ids `0..p`).
    pub workers: usize,
    /// Which grant path serves fresh chunks.
    pub mode: GrantMode,
    /// Lease policy for every shard's table.
    pub lease: LeaseConfig,
}

impl ShardSetConfig {
    /// Sharded (locked) grants with runtime-default leases.
    pub fn sharded(scheme: SchemeKind, total: u64, shards: usize, workers: usize) -> Self {
        ShardSetConfig {
            scheme,
            total,
            shards,
            workers,
            mode: GrantMode::Sharded,
            lease: LeaseConfig::RUNTIME_DEFAULT,
        }
    }

    /// Self-scheduling grants with runtime-default leases.
    pub fn self_sched(scheme: SchemeKind, total: u64, shards: usize, workers: usize) -> Self {
        ShardSetConfig { mode: GrantMode::SelfSched, ..Self::sharded(scheme, total, shards, workers) }
    }

    /// Replaces the lease policy (tests tighten deadlines).
    pub fn with_lease(mut self, lease: LeaseConfig) -> Self {
        self.lease = lease;
        self
    }
}

/// Contiguous partition of `[0, total)` into `n` ranges whose sizes
/// differ by at most one: `(base, len)` of partition `i`.
pub fn partition(total: u64, n: usize, i: usize) -> (u64, u64) {
    debug_assert!(i < n);
    let n = n as u128;
    let start = ((i as u128 * total as u128) / n) as u64;
    let end = (((i as u128 + 1) * total as u128) / n) as u64;
    (start, end - start)
}

/// N master shards over one loop — see module docs.
pub struct ShardSet {
    shards: Vec<Mutex<Shard>>,
    ledger: CompletionLedger,
    scheme: SchemeKind,
    mode: GrantMode,
    workers: usize,
    lease: LeaseConfig,
    /// `(base, len)` each shard was born with.
    partitions: Vec<(u64, u64)>,
    /// Self-sched chunk-number counters, one per shard.
    counters: Vec<AtomicU64>,
    /// Length of each shard's formula chunk sequence (self-sched mode;
    /// 0 in sharded mode).
    region_chunks: Vec<u64>,
    /// First tick a drained-but-incomplete region was observed
    /// (`u64::MAX` = not yet); reclaim fires one lease floor later.
    drain_seen: Vec<AtomicU64>,
    /// Whether a region's reclaim already ran.
    reclaimed: Vec<AtomicBool>,
    /// Lock-free estimate of each shard's stealable iterations,
    /// refreshed after every locked operation — victims are picked
    /// without touching any mutex.
    work_hint: Vec<AtomicU64>,
    /// Iterations served per worker (all grant paths).
    served: Vec<AtomicU64>,
    steals: AtomicU64,
    /// Self-calculated claims per worker. Per-worker (not one global
    /// counter) so the lock-free hot path never shares a cache line
    /// across claimants; [`ShardSet::self_grants`] sums on read.
    self_grants: Vec<AtomicU64>,
    trace: SharedSink,
}

impl ShardSet {
    /// Builds a shard set; emits a `ShardJoined` membership event per
    /// worker when `trace` is recording.
    pub fn new(cfg: ShardSetConfig, trace: SharedSink) -> Result<Self, ShardError> {
        if cfg.shards == 0 || cfg.workers == 0 {
            return Err(ShardError::EmptyCluster);
        }
        if cfg.scheme.formula_sizer(cfg.total, 1).is_none() {
            return Err(ShardError::UnsupportedScheme(cfg.scheme.name()));
        }
        let n = cfg.shards;
        let mut shards = Vec::with_capacity(n);
        let mut partitions = Vec::with_capacity(n);
        let mut region_chunks = Vec::with_capacity(n);
        let mut work_hint = Vec::with_capacity(n);
        for i in 0..n {
            let (base, len) = partition(cfg.total, n, i);
            partitions.push((base, len));
            let homed = (((cfg.workers + n - 1 - i) / n).max(1)) as u32;
            let (sizer, chunks) = match cfg.mode {
                GrantMode::Sharded => {
                    (cfg.scheme.formula_sizer(len, homed), 0)
                }
                GrantMode::SelfSched => {
                    // Fresh chunks come from the counter + replica; the
                    // shard itself serves only recovery. Count the
                    // formula's chunks once so drain detection and
                    // reclaim know where the sequence ends.
                    let sizer = cfg
                        .scheme
                        .formula_sizer(len, cfg.workers as u32)
                        .expect("checked above");
                    (None, ChunkDispenser::with_base(base, len, sizer).count() as u64)
                }
            };
            shards.push(Mutex::new(Shard::new(i, base, len, sizer, cfg.workers, cfg.lease)));
            region_chunks.push(chunks);
            work_hint.push(AtomicU64::new(match cfg.mode {
                GrantMode::Sharded => len,
                GrantMode::SelfSched => 0,
            }));
        }
        if trace.enabled() {
            for w in 0..cfg.workers {
                trace.record(
                    TraceEvent::new(0, EventKind::ShardJoined { shard: w % n }).on_worker(w),
                );
            }
        }
        Ok(ShardSet {
            shards,
            // One counter stripe per shard: completions reported into a
            // shard's own region bump a cache line no other shard
            // touches, instead of serializing on one global counter.
            ledger: CompletionLedger::with_stripes(cfg.total, n),
            scheme: cfg.scheme,
            mode: cfg.mode,
            workers: cfg.workers,
            lease: cfg.lease,
            partitions,
            counters: (0..n).map(|_| AtomicU64::new(0)).collect(),
            region_chunks,
            drain_seen: (0..n).map(|_| AtomicU64::new(u64::MAX)).collect(),
            reclaimed: (0..n).map(|_| AtomicBool::new(false)).collect(),
            work_hint,
            served: (0..cfg.workers).map(|_| AtomicU64::new(0)).collect(),
            steals: AtomicU64::new(0),
            self_grants: (0..cfg.workers).map(|_| AtomicU64::new(0)).collect(),
            trace,
        })
    }

    /// The worker's home shard index.
    pub fn home(&self, worker: usize) -> usize {
        worker % self.shards.len()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of worker slots.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The scheme being scheduled.
    pub fn scheme(&self) -> SchemeKind {
        self.scheme
    }

    /// The active grant mode.
    pub fn mode(&self) -> GrantMode {
        self.mode
    }

    /// Total loop iterations.
    pub fn total(&self) -> u64 {
        self.ledger.total()
    }

    /// `(base, len)` ranges the shards were born with.
    pub fn partitions(&self) -> &[(u64, u64)] {
        &self.partitions
    }

    /// The lease policy every shard runs.
    pub fn lease_config(&self) -> &LeaseConfig {
        &self.lease
    }

    /// The shared completion ledger.
    pub fn ledger(&self) -> &CompletionLedger {
        &self.ledger
    }

    /// Whether every iteration has completed.
    pub fn all_complete(&self) -> bool {
        self.ledger.all_complete()
    }

    /// Iterations granted to `worker` across all paths.
    pub fn iterations_served(&self, worker: usize) -> u64 {
        self.served[worker].load(Ordering::Acquire)
    }

    /// Successful cross-shard steals so far.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Acquire)
    }

    /// Self-calculated grants so far (summed across workers).
    pub fn self_grants(&self) -> u64 {
        self.self_grants.iter().map(|c| c.load(Ordering::Acquire)).sum()
    }

    /// Per-shard counter snapshots.
    pub fn stats(&self) -> Vec<ShardStats> {
        (0..self.shards.len()).map(|i| self.lock(i).stats()).collect()
    }

    /// Speculative grants across all shards.
    pub fn speculative_grants(&self) -> u64 {
        self.stats().iter().map(|s| s.speculated).sum()
    }

    fn lock(&self, i: usize) -> MutexGuard<'_, Shard> {
        match self.shards[i].lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn refresh_hint(&self, i: usize, shard: &Shard) {
        self.work_hint[i].store(shard.stealable_iters(), Ordering::Release);
    }

    fn trace_granted(&self, now: u64, worker: usize, chunk: Chunk, grant: &ShardGrant) {
        if !self.trace.enabled() {
            return;
        }
        if matches!(grant, ShardGrant::Fresh(_)) {
            self.trace
                .record(TraceEvent::new(now, EventKind::Planned).on_chunk(chunk.start, chunk.len));
        }
        let (requeued, retransmit) = match grant {
            ShardGrant::Requeued(_) => (true, false),
            ShardGrant::Retransmit(_) => (false, true),
            _ => (false, false),
        };
        self.trace.record(
            TraceEvent::new(now, EventKind::Granted { speculative: false, requeued, retransmit })
                .on_worker(worker)
                .on_chunk(chunk.start, chunk.len),
        );
    }

    /// One locked grant attempt against `worker`'s home shard.
    fn try_local(&self, home: usize, worker: usize, q: u32, now: u64) -> Option<Chunk> {
        let mut shard = self.lock(home);
        let grant = shard.grant(worker, q, now, &self.ledger);
        self.refresh_hint(home, &shard);
        drop(shard);
        match grant {
            ShardGrant::Fresh(c) | ShardGrant::Requeued(c) => {
                self.served[worker].fetch_add(c.len, Ordering::AcqRel);
                self.trace_granted(now, worker, c, &grant);
                Some(c)
            }
            ShardGrant::Retransmit(c) => {
                self.trace_granted(now, worker, c, &grant);
                Some(c)
            }
            ShardGrant::Empty => None,
        }
    }

    /// Picks the fullest sibling by hint, without locking.
    fn pick_victim(&self, thief: usize) -> Option<usize> {
        let mut best = None;
        let mut best_iters = 0u64;
        for (i, hint) in self.work_hint.iter().enumerate() {
            if i == thief {
                continue;
            }
            let iters = hint.load(Ordering::Acquire);
            if iters > best_iters {
                best_iters = iters;
                best = Some(i);
            }
        }
        best
    }

    /// Moves work from `victim` to `thief`. Locks the pair in ascending
    /// index order, so concurrent steals cannot deadlock.
    fn steal(&self, victim: usize, thief: usize, now: u64) -> bool {
        debug_assert_ne!(victim, thief);
        let (lo, hi) = (victim.min(thief), victim.max(thief));
        let mut a = self.lock(lo);
        let mut b = self.lock(hi);
        let (v, t): (&mut Shard, &mut Shard) =
            if lo == victim { (&mut a, &mut b) } else { (&mut b, &mut a) };
        let moved = match v.donate(&self.ledger) {
            Some(d) => {
                t.receive(d);
                true
            }
            None => false,
        };
        self.refresh_hint(victim, v);
        self.refresh_hint(thief, t);
        drop(b);
        drop(a);
        if moved {
            self.steals.fetch_add(1, Ordering::AcqRel);
            if self.trace.enabled() {
                self.trace
                    .record(TraceEvent::new(now, EventKind::ShardStole { from: victim, to: thief }));
            }
        }
        moved
    }

    /// Serves a request on the locked path: home shard first, then
    /// stealing, then (self-sched) reclaim of drained regions, then
    /// speculation; `Finished` only when the ledger says every
    /// iteration completed — exactly the single master's contract.
    pub fn grant(&self, worker: usize, q: u32, now: u64) -> Assignment {
        let home = self.home(worker);
        // Local + steal, with one retry round after a reclaim pass.
        for round in 0..2 {
            if let Some(c) = self.try_local(home, worker, q, now) {
                return Assignment::Chunk(c);
            }
            let mut attempts = 0;
            while let Some(victim) = self.pick_victim(home) {
                attempts += 1;
                if self.steal(victim, home, now) {
                    if let Some(c) = self.try_local(home, worker, q, now) {
                        return Assignment::Chunk(c);
                    }
                }
                if attempts >= self.shards.len() {
                    break;
                }
            }
            if round == 0
                && self.mode == GrantMode::SelfSched
                && self.reclaim_drained(now) > 0
            {
                continue;
            }
            break;
        }
        if self.all_complete() {
            return Assignment::Finished;
        }
        // End-of-loop: speculate on the most overdue outstanding lease,
        // starting with the home shard.
        for step in 0..self.shards.len() {
            let i = (home + step) % self.shards.len();
            let mut shard = self.lock(i);
            if let Some(c) = shard.speculate(worker, q, now) {
                self.refresh_hint(i, &shard);
                drop(shard);
                if self.trace.enabled() {
                    self.trace.record(
                        TraceEvent::new(
                            now,
                            EventKind::Granted {
                                speculative: true,
                                requeued: false,
                                retransmit: false,
                            },
                        )
                        .on_worker(worker)
                        .on_chunk(c.start, c.len),
                    );
                }
                return Assignment::Chunk(c);
            }
        }
        Assignment::Retry
    }

    /// Records a completed chunk with global first-result-wins dedup,
    /// releasing the matching lease wherever it lives (home shard
    /// first; a speculative grant may sit on any sibling).
    pub fn complete(&self, worker: usize, chunk: Chunk, now: u64) -> CompletionOutcome {
        let newly = self.ledger.mark(chunk);
        let duplicate = newly < chunk.len;
        let home = self.home(worker);
        let mut released = {
            let mut shard = self.lock(home);
            shard.leases_mut().heard_from(worker, now);
            let hit = shard.complete(worker, chunk, now);
            if duplicate {
                shard.note_duplicate();
            }
            self.refresh_hint(home, &shard);
            hit
        };
        if !released {
            for i in 0..self.shards.len() {
                if i == home {
                    continue;
                }
                let mut shard = self.lock(i);
                if shard.complete(worker, chunk, now) {
                    released = true;
                }
                if released {
                    break;
                }
            }
        }
        if duplicate && self.trace.enabled() {
            self.trace.record(
                TraceEvent::new(now, EventKind::Deduped)
                    .on_worker(worker)
                    .on_chunk(chunk.start, chunk.len),
            );
        }
        CompletionOutcome { newly_completed: newly, duplicate }
    }

    /// Records a self-scheduled completion: ledger mark only, no lease
    /// routing — the lock-free half of the hot path.
    pub fn complete_self(&self, worker: usize, chunk: Chunk, now: u64) -> CompletionOutcome {
        let newly = self.ledger.mark(chunk);
        let duplicate = newly < chunk.len;
        if duplicate && self.trace.enabled() {
            self.trace.record(
                TraceEvent::new(now, EventKind::Deduped)
                    .on_worker(worker)
                    .on_chunk(chunk.start, chunk.len),
            );
        }
        CompletionOutcome { newly_completed: newly, duplicate }
    }

    /// Notes a heartbeat: refreshes liveness everywhere and extends the
    /// worker's lease deadline wherever it holds one.
    pub fn heartbeat(&self, worker: usize, now: u64) {
        for i in 0..self.shards.len() {
            self.lock(i).leases_mut().heartbeat(worker, now);
        }
    }

    /// Handles an observed disconnect: revokes the worker's leases
    /// (requeueing incomplete chunks into their shard) and marks it
    /// dead until heard from again. Returns the requeued chunks.
    pub fn worker_disconnected(&self, worker: usize, now: u64) -> Vec<Chunk> {
        let mut requeued = Vec::new();
        for i in 0..self.shards.len() {
            let mut shard = self.lock(i);
            if let Some(c) = shard.disconnected(worker, &self.ledger) {
                if !self.ledger.chunk_fully_complete(c) {
                    requeued.push(c);
                }
            }
            self.refresh_hint(i, &shard);
        }
        if self.trace.enabled() {
            for c in &requeued {
                self.trace.record(
                    TraceEvent::new(now, EventKind::Requeued)
                        .on_worker(worker)
                        .on_chunk(c.start, c.len),
                );
            }
        }
        requeued
    }

    /// Notes a reconnect: the worker is alive again in every shard.
    pub fn worker_reconnected(&self, worker: usize, now: u64) {
        for i in 0..self.shards.len() {
            self.lock(i).leases_mut().heard_from(worker, now);
        }
    }

    /// Whether the home shard has declared `worker` dead.
    pub fn worker_is_dead(&self, worker: usize) -> bool {
        self.lock(self.home(worker)).leases().is_dead(worker)
    }

    /// The earliest lease deadline across all shards — the sharded
    /// master's next wake-up time.
    pub fn next_deadline(&self) -> Option<u64> {
        (0..self.shards.len())
            .filter_map(|i| self.lock(i).leases().next_deadline())
            .min()
    }

    /// Expires overdue leases in every shard (requeueing incomplete
    /// chunks) and, in self-sched mode, reclaims drained-but-incomplete
    /// regions. Returns every lapsed lease for fault logging.
    pub fn poll(&self, now: u64) -> Vec<ExpiredLease> {
        let mut all = Vec::new();
        for i in 0..self.shards.len() {
            let mut shard = self.lock(i);
            let expired = shard.poll(now, &self.ledger);
            self.refresh_hint(i, &shard);
            drop(shard);
            if self.trace.enabled() {
                for e in &expired {
                    let c = e.lease.chunk;
                    self.trace.record(
                        TraceEvent::new(now, EventKind::Lapsed)
                            .on_worker(e.lease.worker)
                            .on_chunk(c.start, c.len),
                    );
                    if e.holder_dead {
                        self.trace.record(
                            TraceEvent::new(now, EventKind::WorkerDead).on_worker(e.lease.worker),
                        );
                    }
                    if !self.ledger.chunk_fully_complete(c) {
                        self.trace.record(
                            TraceEvent::new(now, EventKind::Requeued)
                                .on_worker(e.lease.worker)
                                .on_chunk(c.start, c.len),
                        );
                    }
                }
            }
            all.extend(expired);
        }
        if self.mode == GrantMode::SelfSched {
            self.reclaim_drained(now);
        }
        all
    }

    /// Self-sched crash recovery: a region whose counter has passed the
    /// end of its formula (every chunk *claimed*) but whose iterations
    /// are still incomplete one lease floor after first being observed
    /// drained gets its formula replayed; chunks nobody reported are
    /// requeued into the region's shard and re-granted under real
    /// leases. Runs at most once per region. Returns requeued chunks.
    fn reclaim_drained(&self, now: u64) -> u64 {
        let mut requeued = 0u64;
        for i in 0..self.shards.len() {
            if self.region_chunks[i] == 0 || self.reclaimed[i].load(Ordering::Acquire) {
                continue;
            }
            if self.counters[i].load(Ordering::Acquire) < self.region_chunks[i] {
                continue;
            }
            let (base, len) = self.partitions[i];
            if self.ledger.chunk_fully_complete(Chunk::new(base, len)) {
                self.reclaimed[i].store(true, Ordering::Release);
                continue;
            }
            // First sighting starts the clock; reclaim one lease floor
            // later, giving in-flight results time to arrive.
            let stamp = match self.drain_seen[i].compare_exchange(
                u64::MAX,
                now,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => now,
                Err(prev) => prev,
            };
            if now < stamp.saturating_add(self.lease.base_ticks) {
                continue;
            }
            if self.reclaimed[i].swap(true, Ordering::AcqRel) {
                continue;
            }
            let mut replica = FormulaReplica::new(self.scheme, base, len, self.workers as u32)
                .expect("constructor verified the scheme");
            let mut shard = self.lock(i);
            for seq in 0..self.region_chunks[i] {
                let chunk = replica.chunk_at(seq).expect("seq below counted length");
                if !self.ledger.chunk_fully_complete(chunk) {
                    shard.requeue(chunk);
                    requeued += 1;
                    if self.trace.enabled() {
                        self.trace.record(
                            TraceEvent::new(now, EventKind::Requeued)
                                .on_chunk(chunk.start, chunk.len),
                        );
                    }
                }
            }
            self.refresh_hint(i, &shard);
        }
        requeued
    }

    /// A self-scheduling handle for `worker`. Panics in sharded mode —
    /// the counters only dispense fresh work when the shards do not.
    pub fn self_worker(self: &Arc<Self>, worker: usize) -> SelfWorker {
        assert!(
            self.mode == GrantMode::SelfSched,
            "self-scheduling handles require GrantMode::SelfSched"
        );
        assert!(worker < self.workers, "unknown worker {worker}");
        let n = self.shards.len();
        SelfWorker {
            worker,
            current: worker % n,
            replicas: (0..n).map(|_| None).collect(),
            exhausted: vec![false; n],
            set: Arc::clone(self),
        }
    }
}

impl std::fmt::Debug for ShardSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardSet")
            .field("shards", &self.shards.len())
            .field("mode", &self.mode)
            .field("total", &self.ledger.total())
            .field("completed", &self.ledger.completed())
            .finish()
    }
}

/// A worker's lock-free self-scheduling handle: one `fetch_add` per
/// chunk, formula evaluated locally. Starts on the worker's home
/// shard's counter and roams to siblings as regions drain — the
/// self-sched analogue of work-stealing, with no work moved at all
/// (only the claim counter changes).
pub struct SelfWorker {
    worker: usize,
    current: usize,
    replicas: Vec<Option<FormulaReplica>>,
    exhausted: Vec<bool>,
    set: Arc<ShardSet>,
}

impl SelfWorker {
    /// The worker slot this handle claims for.
    pub fn worker(&self) -> usize {
        self.worker
    }

    /// Claims the next chunk: `fetch_add` on the current shard's
    /// counter, local formula evaluation, no locks. Returns the shard
    /// index, the claimed chunk number and the chunk; `None` once every
    /// region's formula is exhausted (recovered chunks then flow
    /// through [`ShardSet::grant`]).
    pub fn next_chunk(&mut self, now: u64) -> Option<(usize, u64, Chunk)> {
        let n = self.set.shards.len();
        for _ in 0..n {
            let s = self.current;
            if self.exhausted[s] {
                self.current = (s + 1) % n;
                continue;
            }
            let seq = self.set.counters[s].fetch_add(1, Ordering::AcqRel);
            let replica = self.replicas[s].get_or_insert_with(|| {
                let (base, len) = self.set.partitions[s];
                FormulaReplica::new(self.set.scheme, base, len, self.set.workers as u32)
                    .expect("constructor verified the scheme")
            });
            match replica.chunk_at(seq) {
                Some(chunk) => {
                    self.set.self_grants[self.worker].fetch_add(1, Ordering::Relaxed);
                    self.set.served[self.worker].fetch_add(chunk.len, Ordering::Relaxed);
                    if self.set.trace.enabled() {
                        self.set.trace.record(
                            TraceEvent::new(now, EventKind::Planned).on_chunk(chunk.start, chunk.len),
                        );
                        self.set.trace.record(
                            TraceEvent::new(now, EventKind::SelfGranted { seq })
                                .on_worker(self.worker)
                                .on_chunk(chunk.start, chunk.len),
                        );
                        self.set.trace.record(
                            TraceEvent::new(
                                now,
                                EventKind::Granted {
                                    speculative: false,
                                    requeued: false,
                                    retransmit: false,
                                },
                            )
                            .on_worker(self.worker)
                            .on_chunk(chunk.start, chunk.len),
                        );
                    }
                    return Some((s, seq, chunk));
                }
                None => {
                    self.exhausted[s] = true;
                    self.current = (s + 1) % n;
                }
            }
        }
        None
    }

    /// Reports a self-scheduled chunk complete (ledger mark only).
    pub fn complete(&self, chunk: Chunk, now: u64) -> CompletionOutcome {
        self.set.complete_self(self.worker, chunk, now)
    }
}

impl std::fmt::Debug for SelfWorker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SelfWorker")
            .field("worker", &self.worker)
            .field("current", &self.current)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lss_core::chunk::validate_tiling;

    const TIGHT: LeaseConfig = LeaseConfig {
        base_ticks: 100,
        default_ticks_per_iter: 0,
        grace: 2.0,
        dead_after_ticks: 50,
        max_speculations: 1,
    };

    fn drain_locked(set: &ShardSet, workers: usize) -> Vec<Chunk> {
        let mut got = Vec::new();
        let mut now = 0u64;
        let mut finished = vec![false; workers];
        while finished.iter().any(|f| !f) {
            for (w, done) in finished.iter_mut().enumerate() {
                if *done {
                    continue;
                }
                now += 1;
                match set.grant(w, 1, now) {
                    Assignment::Chunk(c) => {
                        got.push(c);
                        set.complete(w, c, now + 1);
                    }
                    Assignment::Finished => *done = true,
                    Assignment::Retry => {}
                }
            }
        }
        got
    }

    #[test]
    fn partition_is_exact_and_contiguous() {
        for total in [0u64, 1, 7, 64, 1000, 12_345] {
            for n in [1usize, 2, 3, 4, 16] {
                let mut cursor = 0;
                let mut sum = 0;
                for i in 0..n {
                    let (base, len) = partition(total, n, i);
                    assert_eq!(base, cursor, "contiguous at {total}/{n}/{i}");
                    cursor = base + len;
                    sum += len;
                }
                assert_eq!(sum, total);
            }
        }
    }

    #[test]
    fn sharded_grants_tile_the_loop() {
        for shards in [1usize, 3, 4] {
            let cfg = ShardSetConfig::sharded(SchemeKind::Gss { min_chunk: 1 }, 1000, shards, 6)
                .with_lease(TIGHT);
            let set = ShardSet::new(cfg, SharedSink::disabled()).expect("valid");
            let mut got = drain_locked(&set, 6);
            got.sort_by_key(|c| c.start);
            validate_tiling(&got, 1000).expect("exact partition");
            assert!(set.all_complete());
        }
    }

    #[test]
    fn stealing_rescues_a_shard_with_no_requesters() {
        // 4 shards, but only worker 0 (home shard 0) ever asks: every
        // other shard's range must arrive via steals.
        let cfg =
            ShardSetConfig::sharded(SchemeKind::Css { k: 25 }, 800, 4, 4).with_lease(TIGHT);
        let set = ShardSet::new(cfg, SharedSink::disabled()).expect("valid");
        let mut got = Vec::new();
        let mut now = 0;
        loop {
            now += 1;
            match set.grant(0, 1, now) {
                Assignment::Chunk(c) => {
                    got.push(c);
                    set.complete(0, c, now);
                }
                Assignment::Finished => break,
                Assignment::Retry => panic!("single healthy worker must never be told to retry"),
            }
        }
        got.sort_by_key(|c| c.start);
        validate_tiling(&got, 800).expect("exact partition despite silent shards");
        assert!(set.steals() > 0, "shards 1..3 must have been robbed");
    }

    #[test]
    fn expired_lease_requeues_and_another_worker_finishes() {
        let cfg = ShardSetConfig::sharded(SchemeKind::Css { k: 50 }, 100, 2, 2).with_lease(TIGHT);
        let set = ShardSet::new(cfg, SharedSink::disabled()).expect("valid");
        let Assignment::Chunk(dead_chunk) = set.grant(0, 1, 0) else { panic!() };
        // Worker 0 vanishes; its lease expires and is requeued.
        let expired = set.poll(500);
        assert_eq!(expired.len(), 1);
        assert!(expired[0].holder_dead);
        // Worker 1 drains everything, including the recovered chunk.
        let mut got = vec![];
        let mut now = 501;
        loop {
            now += 1;
            match set.grant(1, 1, now) {
                Assignment::Chunk(c) => {
                    got.push(c);
                    set.complete(1, c, now);
                }
                Assignment::Finished => break,
                Assignment::Retry => {}
            }
        }
        assert!(got.contains(&dead_chunk), "recovered chunk reissued");
        assert!(set.all_complete());
    }

    #[test]
    fn retransmitted_results_are_deduped_across_steals() {
        let cfg = ShardSetConfig::sharded(SchemeKind::Css { k: 10 }, 40, 2, 2).with_lease(TIGHT);
        let set = ShardSet::new(cfg, SharedSink::disabled()).expect("valid");
        let Assignment::Chunk(c) = set.grant(0, 1, 0) else { panic!() };
        let first = set.complete(0, c, 1);
        assert_eq!(first.newly_completed, c.len);
        assert!(!first.duplicate);
        let again = set.complete(0, c, 2);
        assert_eq!(again.newly_completed, 0);
        assert!(again.duplicate);
    }

    #[test]
    fn self_sched_claims_tile_the_loop_across_threads() {
        let cfg = ShardSetConfig::self_sched(SchemeKind::Fss, 10_000, 4, 8).with_lease(TIGHT);
        let set = Arc::new(ShardSet::new(cfg, SharedSink::disabled()).expect("valid"));
        let handles: Vec<_> = (0..8)
            .map(|w| {
                let mut sw = set.self_worker(w);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some((_, _, chunk)) = sw.next_chunk(0) {
                        sw.complete(chunk, 0);
                        got.push(chunk);
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<Chunk> =
            handles.into_iter().flat_map(|h| h.join().expect("no panic")).collect();
        all.sort_by_key(|c| c.start);
        validate_tiling(&all, 10_000).expect("claims partition the loop exactly");
        assert!(set.all_complete());
        assert_eq!(set.self_grants(), all.len() as u64);
        assert_eq!(set.steals(), 0, "self-sched moves claims, not work");
    }

    #[test]
    fn self_sched_reclaims_chunks_lost_to_a_crash() {
        let cfg = ShardSetConfig::self_sched(SchemeKind::Css { k: 10 }, 200, 2, 2)
            .with_lease(TIGHT);
        let set = Arc::new(ShardSet::new(cfg, SharedSink::disabled()).expect("valid"));
        // Worker 0 claims two chunks and crashes without completing
        // the second.
        let mut w0 = set.self_worker(0);
        let (_, _, done) = w0.next_chunk(0).expect("fresh work");
        w0.complete(done, 1);
        let (_, _, lost) = w0.next_chunk(1).expect("fresh work");
        drop(w0);
        // Worker 1 drains every remaining claim.
        let mut w1 = set.self_worker(1);
        while let Some((_, _, c)) = w1.next_chunk(2) {
            w1.complete(c, 3);
        }
        assert!(!set.all_complete(), "the crashed claim is missing");
        // The locked path reclaims it: first request observes the
        // drained region, a lease floor later the replay requeues it.
        let mut now = 10;
        let mut recovered = Vec::new();
        loop {
            now += 1;
            match set.grant(1, 1, now) {
                Assignment::Chunk(c) => {
                    recovered.push(c);
                    set.complete(1, c, now);
                }
                Assignment::Finished => break,
                Assignment::Retry => now += TIGHT.base_ticks,
            }
        }
        assert_eq!(recovered, vec![lost]);
        assert!(set.all_complete());
    }

    #[test]
    fn rejects_unreplicable_schemes_and_empty_clusters() {
        assert_eq!(
            ShardSet::new(
                ShardSetConfig::sharded(SchemeKind::Wf, 100, 2, 2),
                SharedSink::disabled()
            )
            .err(),
            Some(ShardError::UnsupportedScheme("WF"))
        );
        assert_eq!(
            ShardSet::new(
                ShardSetConfig::sharded(SchemeKind::Fss, 100, 0, 2),
                SharedSink::disabled()
            )
            .err(),
            Some(ShardError::EmptyCluster)
        );
    }

    #[test]
    fn membership_and_steal_events_are_traced() {
        let sink = SharedSink::recording();
        let cfg = ShardSetConfig::sharded(SchemeKind::Css { k: 25 }, 400, 4, 4).with_lease(TIGHT);
        let set = ShardSet::new(cfg, sink.clone()).expect("valid");
        let mut now = 0;
        loop {
            now += 1;
            match set.grant(0, 1, now) {
                Assignment::Chunk(c) => {
                    set.complete(0, c, now);
                }
                Assignment::Finished => break,
                Assignment::Retry => {}
            }
        }
        assert!(sink.any(|e| matches!(e.kind, EventKind::ShardJoined { .. })));
        assert!(sink.any(|e| matches!(e.kind, EventKind::ShardStole { .. })));
        assert!(sink.any(|e| matches!(e.kind, EventKind::Granted { .. })));
    }
}
