//! Global first-result-wins completion ledger.
//!
//! Every shard shares one [`CompletionLedger`] — a lock-free bitmap
//! over `[0, total)` plus a completed-iteration counter. Keeping dedup
//! *global* rather than per shard is what makes work-stealing safe: a
//! chunk requeued by shard A, stolen by shard B and completed by one of
//! B's workers still collides with a late retransmit of the original
//! result, because both land on the same bits. `fetch_or` returns the
//! previous word, so each bit is credited to exactly one reporter no
//! matter how many shards or speculative copies race on it —
//! exactly-once accounting without any lock on the completion path.

use lss_core::Chunk;
use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free completion bitmap + counter shared by all shards.
#[derive(Debug)]
pub struct CompletionLedger {
    words: Vec<AtomicU64>,
    completed: AtomicU64,
    total: u64,
}

impl CompletionLedger {
    /// A ledger for a loop of `total` iterations, all incomplete.
    pub fn new(total: u64) -> Self {
        let words = (0..total.div_ceil(64)).map(|_| AtomicU64::new(0)).collect();
        CompletionLedger { words, completed: AtomicU64::new(0), total }
    }

    /// Total number of loop iterations covered.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Marks every iteration of `chunk` complete, returning how many of
    /// them were *newly* completed by this report. A return value below
    /// `chunk.len` means part of the chunk had already been reported
    /// (speculative copy, retransmit, or a post-steal duplicate).
    ///
    /// # Panics
    /// If the chunk reaches past `total` — shards never grant outside
    /// the loop, so an out-of-range report is a protocol violation.
    pub fn mark(&self, chunk: Chunk) -> u64 {
        assert!(chunk.end() <= self.total, "chunk {chunk:?} outside [0, {})", self.total);
        let mut newly = 0u64;
        let mut i = chunk.start;
        while i < chunk.end() {
            let word = (i / 64) as usize;
            let bit = i % 64;
            // Bits of this chunk that land in the current 64-bit word.
            let span = (64 - bit).min(chunk.end() - i);
            let mask = if span == 64 { u64::MAX } else { ((1u64 << span) - 1) << bit };
            let old = self.words[word].fetch_or(mask, Ordering::AcqRel);
            newly += u64::from((mask & !old).count_ones());
            i += span;
        }
        if newly > 0 {
            self.completed.fetch_add(newly, Ordering::AcqRel);
        }
        newly
    }

    /// Whether iteration `i` has been completed.
    pub fn iteration_completed(&self, i: u64) -> bool {
        if i >= self.total {
            return false;
        }
        let word = self.words[(i / 64) as usize].load(Ordering::Acquire);
        word & (1u64 << (i % 64)) != 0
    }

    /// Whether *every* iteration of `chunk` has been completed — the
    /// retransmit/requeue filter: fully-complete chunks are never
    /// granted again.
    pub fn chunk_fully_complete(&self, chunk: Chunk) -> bool {
        let mut i = chunk.start;
        while i < chunk.end().min(self.total) {
            let word = (i / 64) as usize;
            let bit = i % 64;
            let span = (64 - bit).min(chunk.end() - i);
            let mask = if span == 64 { u64::MAX } else { ((1u64 << span) - 1) << bit };
            if self.words[word].load(Ordering::Acquire) & mask != mask {
                return false;
            }
            i += span;
        }
        true
    }

    /// Iterations completed so far.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Acquire)
    }

    /// Whether the whole loop is complete.
    pub fn all_complete(&self) -> bool {
        self.completed() == self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_count_each_bit_once() {
        let l = CompletionLedger::new(200);
        assert_eq!(l.mark(Chunk::new(0, 100)), 100);
        assert_eq!(l.mark(Chunk::new(50, 100)), 50, "overlap deduped");
        assert_eq!(l.mark(Chunk::new(0, 150)), 0);
        assert_eq!(l.completed(), 150);
        assert!(!l.all_complete());
        assert_eq!(l.mark(Chunk::new(150, 50)), 50);
        assert!(l.all_complete());
    }

    #[test]
    fn word_spanning_chunks_are_exact() {
        let l = CompletionLedger::new(300);
        // Straddles word boundaries at 64, 128, 192.
        assert_eq!(l.mark(Chunk::new(60, 140)), 140);
        assert!(l.iteration_completed(60));
        assert!(l.iteration_completed(199));
        assert!(!l.iteration_completed(59));
        assert!(!l.iteration_completed(200));
        assert!(l.chunk_fully_complete(Chunk::new(60, 140)));
        assert!(!l.chunk_fully_complete(Chunk::new(59, 2)));
    }

    #[test]
    fn empty_loop_is_vacuously_complete() {
        let l = CompletionLedger::new(0);
        assert!(l.all_complete());
        assert_eq!(l.completed(), 0);
    }

    #[test]
    fn concurrent_overlapping_marks_never_double_count() {
        use std::sync::Arc;
        let l = Arc::new(CompletionLedger::new(10_000));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    let mut newly = 0u64;
                    // Every thread marks overlapping windows over the
                    // whole range; offsets differ per thread.
                    let mut start = (t * 137) % 512;
                    while start < 10_000 {
                        let len = 64.min(10_000 - start);
                        newly += l.mark(Chunk::new(start, len));
                        start += 47;
                    }
                    newly
                })
            })
            .collect();
        let sum: u64 = handles.into_iter().map(|h| h.join().expect("no panic")).sum();
        // Each of the bits set was credited to exactly one marker.
        assert_eq!(sum, l.completed());
    }
}
