//! Global first-result-wins completion ledger.
//!
//! Every shard shares one [`CompletionLedger`] — a lock-free bitmap
//! over `[0, total)` plus a completed-iteration counter. Keeping dedup
//! *global* rather than per shard is what makes work-stealing safe: a
//! chunk requeued by shard A, stolen by shard B and completed by one of
//! B's workers still collides with a late retransmit of the original
//! result, because both land on the same bits. `fetch_or` returns the
//! previous word, so each bit is credited to exactly one reporter no
//! matter how many shards or speculative copies race on it —
//! exactly-once accounting without any lock on the completion path.
//!
//! The counter is **striped**: one cache-line-padded `AtomicU64` per
//! stripe (one per shard, via [`CompletionLedger::with_stripes`]),
//! with a chunk's credit attributed to the stripe its start falls in.
//! Shards report overwhelmingly into their own contiguous region, so
//! in steady state each shard's masters bump a counter no other shard
//! touches — the single global `fetch_add` that every completion in a
//! 1024-worker run serialized on becomes a per-shard line. Queries
//! ([`CompletionLedger::completed`]) sum the stripes; the observable
//! API is bit-identical to the single-counter ledger.

use lss_core::Chunk;
use std::sync::atomic::{AtomicU64, Ordering};

/// One stripe of the completed counter, padded to a cache line so two
/// stripes never share one (the whole point of striping).
#[derive(Debug)]
#[repr(align(64))]
struct Stripe(AtomicU64);

/// Lock-free completion bitmap + striped counter shared by all shards.
#[derive(Debug)]
pub struct CompletionLedger {
    words: Vec<AtomicU64>,
    stripes: Vec<Stripe>,
    total: u64,
}

impl CompletionLedger {
    /// A ledger for a loop of `total` iterations, all incomplete, with
    /// a single counter stripe (fine for one master; shard sets use
    /// [`CompletionLedger::with_stripes`]).
    pub fn new(total: u64) -> Self {
        Self::with_stripes(total, 1)
    }

    /// A ledger with `stripes` counter stripes — one per shard, so the
    /// region-proportional attribution keeps each shard on its own
    /// cache line. `stripes` is clamped to at least 1.
    pub fn with_stripes(total: u64, stripes: usize) -> Self {
        let words = (0..total.div_ceil(64)).map(|_| AtomicU64::new(0)).collect();
        let stripes = (0..stripes.max(1)).map(|_| Stripe(AtomicU64::new(0))).collect();
        CompletionLedger { words, stripes, total }
    }

    /// Number of counter stripes.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// Total number of loop iterations covered.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The stripe a chunk starting at iteration `start` credits:
    /// proportional to its position, mirroring how shard regions
    /// partition `[0, total)`, so a shard's own completions land on
    /// its own stripe.
    fn stripe_for(&self, start: u64) -> usize {
        if self.total == 0 {
            return 0;
        }
        let n = self.stripes.len() as u64;
        ((start * n / self.total) as usize).min(self.stripes.len() - 1)
    }

    /// Marks every iteration of `chunk` complete, returning how many of
    /// them were *newly* completed by this report. A return value below
    /// `chunk.len` means part of the chunk had already been reported
    /// (speculative copy, retransmit, or a post-steal duplicate).
    ///
    /// # Panics
    /// If the chunk reaches past `total` — shards never grant outside
    /// the loop, so an out-of-range report is a protocol violation.
    pub fn mark(&self, chunk: Chunk) -> u64 {
        assert!(chunk.end() <= self.total, "chunk {chunk:?} outside [0, {})", self.total);
        let mut newly = 0u64;
        let mut i = chunk.start;
        while i < chunk.end() {
            let word = (i / 64) as usize;
            let bit = i % 64;
            // Bits of this chunk that land in the current 64-bit word.
            let span = (64 - bit).min(chunk.end() - i);
            let mask = if span == 64 { u64::MAX } else { ((1u64 << span) - 1) << bit };
            let old = self.words[word].fetch_or(mask, Ordering::AcqRel);
            newly += u64::from((mask & !old).count_ones());
            i += span;
        }
        if newly > 0 {
            self.stripes[self.stripe_for(chunk.start)].0.fetch_add(newly, Ordering::AcqRel);
        }
        newly
    }

    /// Whether iteration `i` has been completed.
    pub fn iteration_completed(&self, i: u64) -> bool {
        if i >= self.total {
            return false;
        }
        let word = self.words[(i / 64) as usize].load(Ordering::Acquire);
        word & (1u64 << (i % 64)) != 0
    }

    /// Whether *every* iteration of `chunk` has been completed — the
    /// retransmit/requeue filter: fully-complete chunks are never
    /// granted again.
    pub fn chunk_fully_complete(&self, chunk: Chunk) -> bool {
        let mut i = chunk.start;
        while i < chunk.end().min(self.total) {
            let word = (i / 64) as usize;
            let bit = i % 64;
            let span = (64 - bit).min(chunk.end() - i);
            let mask = if span == 64 { u64::MAX } else { ((1u64 << span) - 1) << bit };
            if self.words[word].load(Ordering::Acquire) & mask != mask {
                return false;
            }
            i += span;
        }
        true
    }

    /// Iterations completed so far (sum over the counter stripes).
    pub fn completed(&self) -> u64 {
        self.stripes.iter().map(|s| s.0.load(Ordering::Acquire)).sum()
    }

    /// Whether the whole loop is complete.
    pub fn all_complete(&self) -> bool {
        self.completed() == self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_count_each_bit_once() {
        let l = CompletionLedger::new(200);
        assert_eq!(l.mark(Chunk::new(0, 100)), 100);
        assert_eq!(l.mark(Chunk::new(50, 100)), 50, "overlap deduped");
        assert_eq!(l.mark(Chunk::new(0, 150)), 0);
        assert_eq!(l.completed(), 150);
        assert!(!l.all_complete());
        assert_eq!(l.mark(Chunk::new(150, 50)), 50);
        assert!(l.all_complete());
    }

    #[test]
    fn word_spanning_chunks_are_exact() {
        let l = CompletionLedger::new(300);
        // Straddles word boundaries at 64, 128, 192.
        assert_eq!(l.mark(Chunk::new(60, 140)), 140);
        assert!(l.iteration_completed(60));
        assert!(l.iteration_completed(199));
        assert!(!l.iteration_completed(59));
        assert!(!l.iteration_completed(200));
        assert!(l.chunk_fully_complete(Chunk::new(60, 140)));
        assert!(!l.chunk_fully_complete(Chunk::new(59, 2)));
    }

    #[test]
    fn empty_loop_is_vacuously_complete() {
        let l = CompletionLedger::new(0);
        assert!(l.all_complete());
        assert_eq!(l.completed(), 0);
        let striped = CompletionLedger::with_stripes(0, 16);
        assert!(striped.all_complete());
    }

    #[test]
    fn concurrent_overlapping_marks_never_double_count() {
        use std::sync::Arc;
        let l = Arc::new(CompletionLedger::with_stripes(10_000, 4));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    let mut newly = 0u64;
                    // Every thread marks overlapping windows over the
                    // whole range; offsets differ per thread.
                    let mut start = (t * 137) % 512;
                    while start < 10_000 {
                        let len = 64.min(10_000 - start);
                        newly += l.mark(Chunk::new(start, len));
                        start += 47;
                    }
                    newly
                })
            })
            .collect();
        let sum: u64 = handles.into_iter().map(|h| h.join().expect("no panic")).sum();
        // Each of the bits set was credited to exactly one marker.
        assert_eq!(sum, l.completed());
    }

    /// A single-counter reference model of the ledger's observable API.
    struct Reference {
        bits: Vec<bool>,
        completed: u64,
    }

    impl Reference {
        fn new(total: u64) -> Self {
            Reference { bits: vec![false; total as usize], completed: 0 }
        }
        fn mark(&mut self, chunk: Chunk) -> u64 {
            let mut newly = 0;
            for i in chunk.start..chunk.end() {
                if !self.bits[i as usize] {
                    self.bits[i as usize] = true;
                    newly += 1;
                }
            }
            self.completed += newly;
            newly
        }
    }

    /// The striping pin: under randomized overlapping chunk reports,
    /// every observable of the striped ledger — per-mark newly counts,
    /// the running completed total, per-iteration bits, full-chunk
    /// queries — is bit-identical to the single-counter reference, for
    /// several stripe widths including degenerate ones (1 stripe, more
    /// stripes than words).
    #[test]
    fn striped_ledger_is_bit_exact_against_single_counter_reference() {
        let mut seed = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            // xorshift64*: deterministic, dependency-free.
            seed ^= seed >> 12;
            seed ^= seed << 25;
            seed ^= seed >> 27;
            seed = seed.wrapping_mul(0x2545_f491_4f6c_dd1d);
            seed
        };
        for stripes in [1usize, 3, 16, 1024] {
            let total = 5000u64;
            let ledger = CompletionLedger::with_stripes(total, stripes);
            let mut reference = Reference::new(total);
            for _ in 0..2000 {
                let start = next() % total;
                let len = (next() % 180).min(total - start).max(1);
                let chunk = Chunk::new(start, len);
                assert_eq!(
                    ledger.mark(chunk),
                    reference.mark(chunk),
                    "newly-completed diverged on {chunk:?} with {stripes} stripes"
                );
                assert_eq!(ledger.completed(), reference.completed, "{stripes} stripes");
                let probe = next() % total;
                assert_eq!(
                    ledger.iteration_completed(probe),
                    reference.bits[probe as usize],
                    "bit {probe} diverged with {stripes} stripes"
                );
                assert!(
                    ledger.chunk_fully_complete(chunk),
                    "just-marked chunk {chunk:?} must read fully complete"
                );
                let probe_chunk = Chunk::new(probe, (next() % 64).max(1).min(total - probe));
                assert_eq!(
                    ledger.chunk_fully_complete(probe_chunk),
                    (probe_chunk.start..probe_chunk.end())
                        .all(|i| reference.bits[i as usize]),
                    "full-chunk query diverged on {probe_chunk:?} with {stripes} stripes"
                );
            }
            assert_eq!(ledger.all_complete(), reference.completed == total);
        }
    }
}
