//! One master shard: a contiguous slice of the loop with its own
//! lease table.
//!
//! A [`Shard`] owns everything the single [`lss_core::Master`] owned,
//! restricted to its range: undispensed iteration ranges, a scheme
//! sizer, a requeue pool for chunks recovered from expired leases, and
//! a [`LeaseTable`] for its outstanding grants. It deliberately does
//! *not* own a completion bitmap — dedup lives in the shared
//! [`crate::CompletionLedger`] so first-result-wins survives steals
//! (see the ledger docs). All methods here assume the caller holds the
//! shard's mutex; the cross-shard choreography (stealing, routing
//! completions for foreign leases) lives in [`crate::ShardSet`].
//!
//! Time is an abstract `u64` tick count passed in by the caller —
//! logical ticks in the simulator and benches, monotonic nanoseconds in
//! the runtime. This file never reads a clock (`shard-no-wall-clock`).

use crate::ledger::CompletionLedger;
use lss_core::chunk::Chunk;
use lss_core::fault::{ExpiredLease, LeaseConfig, LeaseTable};
use lss_core::scheme::ChunkSizer;
use std::collections::VecDeque;

/// What [`Shard::grant`] produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardGrant {
    /// A chunk freshly dispensed from the shard's owned ranges.
    Fresh(Chunk),
    /// A recovered chunk from the requeue pool.
    Requeued(Chunk),
    /// The worker's outstanding chunk re-sent (lost-reply retransmit).
    Retransmit(Chunk),
    /// This shard has nothing to give — the caller should steal.
    Empty,
}

/// Per-shard counters, surfaced by [`crate::ShardSet::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// First iteration of the range the shard was born with.
    pub base: u64,
    /// Length of the range the shard was born with.
    pub len: u64,
    /// Chunks granted (fresh + requeued + retransmits).
    pub granted_chunks: u64,
    /// Iterations granted across all fresh + requeued grants.
    pub granted_iters: u64,
    /// Speculative re-executions granted.
    pub speculated: u64,
    /// Completions that were wholly or partly duplicates.
    pub duplicates: u64,
    /// Ranges or requeued chunks stolen *from* this shard.
    pub steals_out: u64,
    /// Ranges or requeued chunks received by stealing.
    pub steals_in: u64,
}

/// One master shard (see module docs). Callers hold its mutex.
pub struct Shard {
    id: usize,
    /// Undispensed iteration ranges, front first. Born with one range
    /// `[base, base + len)`; stealing appends/splits.
    ranges: VecDeque<Chunk>,
    /// Total iterations across `ranges` (denominator for the sizer).
    owned: u64,
    /// The scheme formula, `None` in self-scheduling mode where the
    /// shared counter dispenses fresh chunks instead of the shard.
    sizer: Option<Box<dyn ChunkSizer + Send>>,
    /// Chunks recovered from expired/revoked leases, granted before
    /// fresh ranges and stealable by siblings.
    requeued: VecDeque<Chunk>,
    /// Outstanding grants of this shard.
    leases: LeaseTable,
    stats: ShardStats,
}

impl Shard {
    /// A shard owning `[base, base + len)` for `workers` global worker
    /// slots. `sizer` is `None` in self-scheduling mode — the shard
    /// then starts with no owned ranges and only ever serves requeues.
    pub fn new(
        id: usize,
        base: u64,
        len: u64,
        sizer: Option<Box<dyn ChunkSizer + Send>>,
        workers: usize,
        lease: LeaseConfig,
    ) -> Self {
        let owns_fresh = sizer.is_some() && len > 0;
        let mut ranges = VecDeque::new();
        if owns_fresh {
            ranges.push_back(Chunk::new(base, len));
        }
        Shard {
            id,
            owned: if owns_fresh { len } else { 0 },
            ranges,
            sizer,
            requeued: VecDeque::new(),
            leases: LeaseTable::new(workers, lease),
            stats: ShardStats { shard: id, base, len, ..ShardStats::default() },
        }
    }

    /// Shard index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Iterations in undispensed owned ranges plus the requeue pool —
    /// the steal-victim metric.
    pub fn stealable_iters(&self) -> u64 {
        self.owned + self.requeued.iter().map(|c| c.len).sum::<u64>()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ShardStats {
        self.stats
    }

    /// Read access to the lease table (deadlines, liveness).
    pub fn leases(&self) -> &LeaseTable {
        &self.leases
    }

    /// Mutable access for liveness bookkeeping (`heard_from`,
    /// `heartbeat`, `mark_dead`) driven by the owning set.
    pub fn leases_mut(&mut self) -> &mut LeaseTable {
        &mut self.leases
    }

    /// Serves `worker`'s request against this shard's local state:
    /// retransmit of its outstanding lease first, then the requeue
    /// pool, then a fresh chunk sized by the scheme formula. Returns
    /// [`ShardGrant::Empty`] when the shard has nothing left locally —
    /// the set then tries stealing and speculation.
    pub fn grant(
        &mut self,
        worker: usize,
        q: u32,
        now: u64,
        ledger: &CompletionLedger,
    ) -> ShardGrant {
        self.leases.heard_from(worker, now);
        // Lost-reply retransmit: the worker still holds a lease here.
        if let Some(held) = self.leases.held_by(worker) {
            if ledger.chunk_fully_complete(held) {
                // A speculative copy (or the lost reply's own result)
                // already finished it; release and fall through.
                self.leases.complete(worker, held, now);
            } else {
                self.leases.grant(worker, held, now, q, false);
                self.stats.granted_chunks += 1;
                return ShardGrant::Retransmit(held);
            }
        }
        // Recovered chunks first, skipping any that completed since.
        while let Some(chunk) = self.requeued.pop_front() {
            if ledger.chunk_fully_complete(chunk) {
                continue;
            }
            self.leases.grant(worker, chunk, now, q, false);
            self.stats.granted_chunks += 1;
            self.stats.granted_iters += chunk.len;
            return ShardGrant::Requeued(chunk);
        }
        // Fresh chunk from the owned ranges: the scheme proposes a size
        // against the *shard's* remaining total, clamped to the front
        // range so chunks stay contiguous.
        if self.owned > 0 {
            let sizer = self.sizer.as_mut().expect("owned ranges imply a sizer");
            let proposed = sizer.next_chunk_size(self.owned);
            let front = self.ranges.front_mut().expect("owned > 0 implies a range");
            let len = proposed.clamp(1, self.owned).min(front.len);
            let chunk = Chunk::new(front.start, len);
            front.start += len;
            front.len -= len;
            if front.len == 0 {
                self.ranges.pop_front();
            }
            self.owned -= len;
            self.leases.grant(worker, chunk, now, q, false);
            self.stats.granted_chunks += 1;
            self.stats.granted_iters += chunk.len;
            return ShardGrant::Fresh(chunk);
        }
        ShardGrant::Empty
    }

    /// Offers `worker` a speculative copy of a suspect outstanding
    /// lease (see [`LeaseTable::speculation_candidate`]).
    pub fn speculate(&mut self, worker: usize, q: u32, now: u64) -> Option<Chunk> {
        let chunk = self.leases.speculation_candidate(worker, now)?;
        self.leases.grant(worker, chunk, now, q, true);
        self.stats.granted_chunks += 1;
        self.stats.speculated += 1;
        Some(chunk)
    }

    /// Records `worker`'s completion of `chunk` against this shard's
    /// lease (the ledger mark happens in the set, before routing).
    /// Returns whether a matching lease was found here.
    pub fn complete(&mut self, worker: usize, chunk: Chunk, now: u64) -> bool {
        if self.leases.held_by(worker) == Some(chunk) {
            self.leases.complete(worker, chunk, now);
            true
        } else {
            false
        }
    }

    /// Notes a duplicate completion (for stats).
    pub fn note_duplicate(&mut self) {
        self.stats.duplicates += 1;
    }

    /// Expires overdue leases at `now`, requeueing each incomplete
    /// chunk locally. Returns what lapsed (for fault logs / tracing).
    pub fn poll(&mut self, now: u64, ledger: &CompletionLedger) -> Vec<ExpiredLease> {
        let expired = self.leases.expire(now);
        for e in &expired {
            if !ledger.chunk_fully_complete(e.lease.chunk) {
                self.requeued.push_back(e.lease.chunk);
            }
        }
        expired
    }

    /// Handles an observed disconnect of `worker`: revokes its lease
    /// (requeueing the chunk if incomplete) and marks it dead. Returns
    /// the revoked chunk, if any.
    pub fn disconnected(&mut self, worker: usize, ledger: &CompletionLedger) -> Option<Chunk> {
        self.leases.mark_dead(worker);
        let chunk = self.leases.revoke(worker)?;
        if !ledger.chunk_fully_complete(chunk) {
            self.requeued.push_back(chunk);
        }
        Some(chunk)
    }

    /// Donates work to a stealing sibling: half of the largest owned
    /// range (the paper-side steal), or a requeued chunk when no owned
    /// range remains (the recovery-pool steal, and the only kind in
    /// self-scheduling mode). `None` when there is nothing to take.
    pub fn donate(&mut self, ledger: &CompletionLedger) -> Option<Donation> {
        if self.owned > 0 {
            let idx = self
                .ranges
                .iter()
                .enumerate()
                .max_by_key(|(_, r)| r.len)
                .map(|(i, _)| i)
                .expect("owned > 0 implies a range");
            let range = &mut self.ranges[idx];
            let donated = if range.len >= 2 {
                // Keep the front half (our cursor side), give the back.
                let keep = range.len / 2;
                let give = Chunk::new(range.start + keep, range.len - keep);
                range.len = keep;
                give
            } else {
                self.ranges.remove(idx).expect("index in bounds")
            };
            self.owned -= donated.len;
            self.stats.steals_out += 1;
            return Some(Donation::Range(donated));
        }
        while let Some(chunk) = self.requeued.pop_back() {
            if ledger.chunk_fully_complete(chunk) {
                continue;
            }
            self.stats.steals_out += 1;
            return Some(Donation::Requeued(chunk));
        }
        None
    }

    /// Accepts a donation from a sibling.
    pub fn receive(&mut self, d: Donation) {
        self.stats.steals_in += 1;
        match d {
            Donation::Range(r) => {
                self.owned += r.len;
                self.ranges.push_back(r);
            }
            Donation::Requeued(c) => self.requeued.push_back(c),
        }
    }

    /// Pushes a chunk into the requeue pool directly (self-scheduling
    /// reclaim: iterations claimed by a crashed worker re-enter the
    /// leased path here).
    pub fn requeue(&mut self, chunk: Chunk) {
        self.requeued.push_back(chunk);
    }

    /// Whether this shard has undispensed or recovered work on hand.
    pub fn has_local_work(&self) -> bool {
        self.owned > 0 || !self.requeued.is_empty()
    }
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("id", &self.id)
            .field("owned", &self.owned)
            .field("ranges", &self.ranges.len())
            .field("requeued", &self.requeued.len())
            .finish()
    }
}

/// What a steal moved between shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Donation {
    /// An undispensed range (half of the victim's largest).
    Range(Chunk),
    /// A recovered chunk from the victim's requeue pool.
    Requeued(Chunk),
}

#[cfg(test)]
mod tests {
    use super::*;
    use lss_core::master::SchemeKind;

    const TIGHT: LeaseConfig = LeaseConfig {
        base_ticks: 100,
        default_ticks_per_iter: 0,
        grace: 2.0,
        dead_after_ticks: 50,
        max_speculations: 1,
    };

    fn shard(base: u64, len: u64) -> Shard {
        let sizer = SchemeKind::Css { k: 10 }.formula_sizer(len, 2).expect("css");
        Shard::new(0, base, len, Some(sizer), 4, TIGHT)
    }

    #[test]
    fn grants_tile_the_owned_range() {
        let ledger = CompletionLedger::new(1000);
        let mut s = shard(500, 35);
        let mut seen = Vec::new();
        loop {
            match s.grant(0, 1, 0, &ledger) {
                ShardGrant::Fresh(c) => {
                    seen.push(c);
                    s.complete(0, c, 1);
                    ledger.mark(c);
                }
                ShardGrant::Empty => break,
                g => panic!("unexpected grant {g:?}"),
            }
        }
        assert_eq!(seen.iter().map(|c| c.len).sum::<u64>(), 35);
        assert_eq!(seen.first().expect("nonempty").start, 500);
        assert_eq!(seen.last().expect("nonempty").end(), 535);
        assert!(!s.has_local_work());
    }

    #[test]
    fn retransmit_resends_the_outstanding_chunk() {
        let ledger = CompletionLedger::new(100);
        let mut s = shard(0, 100);
        let ShardGrant::Fresh(c) = s.grant(1, 1, 0, &ledger) else { panic!() };
        // Reply lost; the worker asks again.
        assert_eq!(s.grant(1, 1, 5, &ledger), ShardGrant::Retransmit(c));
        // Once the chunk is complete (e.g. via a speculative copy), a
        // further request gets fresh work instead.
        ledger.mark(c);
        let ShardGrant::Fresh(next) = s.grant(1, 1, 10, &ledger) else { panic!() };
        assert_eq!(next.start, c.end());
    }

    #[test]
    fn expiry_requeues_and_requeue_precedes_fresh() {
        let ledger = CompletionLedger::new(100);
        let mut s = shard(0, 100);
        let ShardGrant::Fresh(c) = s.grant(0, 1, 0, &ledger) else { panic!() };
        let expired = s.poll(500, &ledger);
        assert_eq!(expired.len(), 1);
        assert!(expired[0].holder_dead);
        // Another worker now gets the recovered chunk before fresh work.
        assert_eq!(s.grant(1, 1, 501, &ledger), ShardGrant::Requeued(c));
    }

    #[test]
    fn donate_halves_the_largest_range() {
        let ledger = CompletionLedger::new(1000);
        let mut victim = shard(0, 100);
        let Some(Donation::Range(gift)) = victim.donate(&ledger) else { panic!() };
        assert_eq!(gift, Chunk::new(50, 50));
        assert_eq!(victim.stealable_iters(), 50);
        let mut thief = shard(900, 0);
        assert!(!thief.has_local_work());
        thief.receive(Donation::Range(gift));
        assert_eq!(thief.stealable_iters(), 50);
        let ShardGrant::Fresh(c) = thief.grant(2, 1, 0, &ledger) else { panic!() };
        assert_eq!(c.start, 50, "stolen range is dispensed");
    }

    #[test]
    fn donate_falls_back_to_requeued_chunks() {
        let ledger = CompletionLedger::new(100);
        let mut s = shard(0, 10);
        let ShardGrant::Fresh(a) = s.grant(0, 1, 0, &ledger) else { panic!() };
        s.poll(500, &ledger); // expire → requeue
        while matches!(s.grant(3, 1, 501, &ledger), ShardGrant::Requeued(_) | ShardGrant::Fresh(_))
        {
            let held = s.leases().held_by(3).expect("just granted");
            s.complete(3, held, 502);
            if held != a {
                ledger.mark(held);
            }
        }
        // Nothing owned; requeue `a` again and steal it.
        s.requeue(a);
        assert_eq!(s.donate(&ledger), Some(Donation::Requeued(a)));
        assert_eq!(s.donate(&ledger), None);
    }

    #[test]
    fn speculation_is_gated_like_the_single_master() {
        let ledger = CompletionLedger::new(100);
        let mut s = shard(0, 100);
        let ShardGrant::Fresh(c) = s.grant(0, 1, 0, &ledger) else { panic!() };
        assert_eq!(s.speculate(1, 1, 10), None, "too young");
        assert_eq!(s.speculate(1, 1, 60), Some(c));
        assert_eq!(s.speculate(2, 1, 60), None, "cap of 1 reached");
    }

    #[test]
    fn self_sched_shard_owns_nothing_fresh() {
        let ledger = CompletionLedger::new(100);
        let mut s = Shard::new(0, 0, 100, None, 2, TIGHT);
        assert!(!s.has_local_work());
        assert_eq!(s.grant(0, 1, 0, &ledger), ShardGrant::Empty);
        s.requeue(Chunk::new(40, 5));
        assert_eq!(s.grant(0, 1, 1, &ledger), ShardGrant::Requeued(Chunk::new(40, 5)));
    }
}
