//! Benchmarks the Table 1 generation path: computing the full chunk
//! sequence for `I = 1000, p = 4` under every scheme, plus the
//! digit-for-digit verification — the cheapest end-to-end "experiment"
//! in the suite.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lss_core::chunk::ChunkDispenser;
use lss_core::scheme::{
    FactoringSelfSched, FixedIncreaseSelfSched, GuidedSelfSched, StaticSched,
    TrapezoidFactoringSelfSched, TrapezoidSelfSched,
};

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_all_rows", |b| {
        b.iter(|| {
            let i = black_box(1000u64);
            let mut total_chunks = 0usize;
            total_chunks += ChunkDispenser::new(i, StaticSched::new(i, 4)).count();
            total_chunks += ChunkDispenser::new(i, GuidedSelfSched::new(4)).count();
            total_chunks += ChunkDispenser::new(i, TrapezoidSelfSched::new(i, 4)).count();
            total_chunks += ChunkDispenser::new(i, FactoringSelfSched::new(4)).count();
            total_chunks += ChunkDispenser::new(i, FixedIncreaseSelfSched::new(i, 4, 3)).count();
            total_chunks +=
                ChunkDispenser::new(i, TrapezoidFactoringSelfSched::new(i, 4)).count();
            total_chunks
        })
    });

    c.bench_function("table1_tfss_stages", |b| {
        b.iter(|| TrapezoidFactoringSelfSched::new(black_box(1000), 4).stage_chunks().to_vec())
    });
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
