//! Benchmarks the Table 2/3 regeneration path: one full simulated run
//! per scheme on a reduced Mandelbrot (the full 4000×2000 windows live
//! in the `table2`/`table3` binaries; here we keep criterion's
//! repeated sampling affordable while exercising identical code).

use criterion::{criterion_group, criterion_main, Criterion};
use lss_core::master::SchemeKind;
use lss_sim::{simulate, simulate_tree, ClusterSpec, LoadTrace, SimConfig, TreeSimConfig};
use lss_workloads::{Mandelbrot, MandelbrotParams, SampledWorkload};

fn workload() -> SampledWorkload<Mandelbrot> {
    SampledWorkload::new(Mandelbrot::new(MandelbrotParams::paper_domain(600, 300)), 4)
}

fn traces(nondedicated: bool) -> Vec<LoadTrace> {
    let mut t = vec![LoadTrace::dedicated(); 8];
    if nondedicated {
        t[0] = LoadTrace::paper_overloaded();
        for tr in t.iter_mut().take(6).skip(3) {
            *tr = LoadTrace::paper_overloaded();
        }
    }
    t
}

fn bench_table2_path(c: &mut Criterion) {
    let w = workload();
    let mut g = c.benchmark_group("table2_sim");
    g.sample_size(20);
    for scheme in SchemeKind::table2_schemes() {
        g.bench_function(scheme.name(), |b| {
            b.iter(|| {
                simulate(
                    &SimConfig::new(ClusterSpec::paper_p8(), scheme),
                    &w,
                    &traces(false),
                )
                .t_p
            })
        });
    }
    g.bench_function("TreeS", |b| {
        b.iter(|| {
            simulate_tree(
                &TreeSimConfig::new(ClusterSpec::paper_p8(), false),
                &w,
                &traces(false),
            )
            .t_p
        })
    });
    g.finish();
}

fn bench_table3_path(c: &mut Criterion) {
    let w = workload();
    let mut g = c.benchmark_group("table3_sim");
    g.sample_size(20);
    for scheme in SchemeKind::table3_schemes() {
        g.bench_function(scheme.name(), |b| {
            b.iter(|| {
                simulate(
                    &SimConfig::new(ClusterSpec::paper_p8(), scheme),
                    &w,
                    &traces(true),
                )
                .t_p
            })
        });
    }
    g.bench_function("TreeS-weighted", |b| {
        b.iter(|| {
            simulate_tree(
                &TreeSimConfig::new(ClusterSpec::paper_p8(), true),
                &w,
                &traces(true),
            )
            .t_p
        })
    });
    g.finish();
}

criterion_group!(benches, bench_table2_path, bench_table3_path);
criterion_main!(benches);
