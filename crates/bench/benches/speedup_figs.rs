//! Benchmarks the Figures 4–7 regeneration path: the `p = 1..8`
//! speedup sweep for one representative simple scheme (TSS, Figure
//! 4/5) and one distributed scheme (DTSS, Figure 6/7), dedicated and
//! non-dedicated.

use criterion::{criterion_group, criterion_main, Criterion};
use lss_core::master::SchemeKind;
use lss_sim::{simulate, ClusterSpec, LoadTrace, SimConfig};
use lss_workloads::{Mandelbrot, MandelbrotParams, SampledWorkload};

fn workload() -> SampledWorkload<Mandelbrot> {
    SampledWorkload::new(Mandelbrot::new(MandelbrotParams::paper_domain(600, 300)), 4)
}

fn sweep(scheme: SchemeKind, w: &SampledWorkload<Mandelbrot>, nondedicated: bool) -> f64 {
    let mut acc = 0.0;
    for p in 1..=8usize {
        let cluster = ClusterSpec::paper_config(p);
        let mut traces = vec![LoadTrace::dedicated(); p];
        if nondedicated {
            traces[0] = LoadTrace::paper_overloaded();
        }
        acc += simulate(&SimConfig::new(cluster, scheme), w, &traces).t_p;
    }
    acc
}

fn bench_speedup_sweeps(c: &mut Criterion) {
    let w = workload();
    let mut g = c.benchmark_group("speedup_sweep_p1_to_8");
    g.sample_size(10);
    g.bench_function("fig4_TSS_dedicated", |b| b.iter(|| sweep(SchemeKind::Tss, &w, false)));
    g.bench_function("fig5_TSS_nondedicated", |b| b.iter(|| sweep(SchemeKind::Tss, &w, true)));
    g.bench_function("fig6_DTSS_dedicated", |b| b.iter(|| sweep(SchemeKind::Dtss, &w, false)));
    g.bench_function("fig7_DTSS_nondedicated", |b| b.iter(|| sweep(SchemeKind::Dtss, &w, true)));
    g.finish();
}

criterion_group!(benches, bench_speedup_sweeps);
criterion_main!(benches);
