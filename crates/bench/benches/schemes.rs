//! Master-side scheduling overhead: how fast each scheme computes its
//! chunk sequence. This is the per-request cost the paper trades
//! against load balance (fewer, larger chunks ⇒ less of this).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lss_core::chunk::ChunkDispenser;
use lss_core::distributed::{DistKind, DistributedScheduler, Grant};
use lss_core::power::{AcpConfig, VirtualPower};
use lss_core::scheme::{
    ChunkSelfSched, FactoringSelfSched, FixedIncreaseSelfSched, GuidedSelfSched,
    TrapezoidFactoringSelfSched, TrapezoidSelfSched,
};

const I: u64 = 100_000;
const P: u32 = 8;

fn bench_simple_schemes(c: &mut Criterion) {
    let mut g = c.benchmark_group("simple_scheme_drain");
    g.bench_function(BenchmarkId::new("CSS", "k=100"), |b| {
        b.iter(|| ChunkDispenser::new(black_box(I), ChunkSelfSched::new(100)).count())
    });
    g.bench_function(BenchmarkId::new("GSS", P), |b| {
        b.iter(|| ChunkDispenser::new(black_box(I), GuidedSelfSched::new(P)).count())
    });
    g.bench_function(BenchmarkId::new("TSS", P), |b| {
        b.iter(|| ChunkDispenser::new(black_box(I), TrapezoidSelfSched::new(I, P)).count())
    });
    g.bench_function(BenchmarkId::new("FSS", P), |b| {
        b.iter(|| ChunkDispenser::new(black_box(I), FactoringSelfSched::new(P)).count())
    });
    g.bench_function(BenchmarkId::new("FISS", P), |b| {
        b.iter(|| {
            ChunkDispenser::new(black_box(I), FixedIncreaseSelfSched::new(I, P, 4)).count()
        })
    });
    g.bench_function(BenchmarkId::new("TFSS", P), |b| {
        b.iter(|| {
            ChunkDispenser::new(black_box(I), TrapezoidFactoringSelfSched::new(I, P)).count()
        })
    });
    g.finish();
}

fn bench_distributed_schemes(c: &mut Criterion) {
    let powers: Vec<VirtualPower> = [3.0, 3.0, 3.0, 1.0, 1.0, 1.0, 1.0, 1.0]
        .iter()
        .map(|&v| VirtualPower::new(v))
        .collect();
    let mut g = c.benchmark_group("distributed_scheme_drain");
    for kind in [
        DistKind::Dtss,
        DistKind::Dfss,
        DistKind::Dfiss { sigma: 4 },
        DistKind::Dtfss,
    ] {
        g.bench_function(kind.name(), |b| {
            b.iter(|| {
                let mut s = DistributedScheduler::dedicated(
                    kind,
                    black_box(I),
                    &powers,
                    AcpConfig::PAPER,
                );
                let mut served = 0u64;
                let mut w = 0usize;
                loop {
                    match s.request(w % 8, 1) {
                        Grant::Chunk(c) => served += c.len,
                        Grant::Unavailable => {}
                        Grant::Finished => break,
                    }
                    w += 1;
                }
                served
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_simple_schemes, bench_distributed_schemes);
criterion_main!(benches);
