//! Benchmarks the real threaded runtime: end-to-end scheduled loops
//! over channels and TCP, plus the raw Mandelbrot column kernel the
//! workers execute.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lss_core::master::SchemeKind;
use lss_runtime::harness::{run_scheduled_loop, HarnessConfig, Transport};
use lss_workloads::{Mandelbrot, MandelbrotParams, UniformLoop, Workload};

fn bench_end_to_end(c: &mut Criterion) {
    let w = Arc::new(UniformLoop::new(400, 2_000));
    let mut g = c.benchmark_group("runtime_end_to_end");
    g.sample_size(10);
    for scheme in [SchemeKind::Tss, SchemeKind::Tfss, SchemeKind::Dtss] {
        g.bench_function(format!("channels_{}", scheme.name()), |b| {
            b.iter(|| {
                let cfg = HarnessConfig::paper_mix(scheme, 2, 2);
                run_scheduled_loop(&cfg, Arc::clone(&w)).report.t_p
            })
        });
    }
    g.bench_function("tcp_TFSS", |b| {
        b.iter(|| {
            let mut cfg = HarnessConfig::paper_mix(SchemeKind::Tfss, 2, 0);
            cfg.transport = Transport::Tcp;
            run_scheduled_loop(&cfg, Arc::clone(&w)).report.t_p
        })
    });
    g.finish();
}

fn bench_mandelbrot_kernel(c: &mut Criterion) {
    let m = Mandelbrot::new(MandelbrotParams::paper_domain(256, 256));
    c.bench_function("mandelbrot_column", |b| {
        b.iter(|| m.execute(black_box(128)))
    });
    c.bench_function("mandelbrot_cost_profile_256", |b| {
        b.iter(|| Mandelbrot::new(MandelbrotParams::paper_domain(256, 64)).total_cost())
    });
}

criterion_group!(benches, bench_end_to_end, bench_mandelbrot_kernel);
criterion_main!(benches);
