//! Regenerates **Table 2** of the paper: the *simple* schemes (TSS,
//! FSS, FISS, TFSS) plus equal-allocation tree scheduling on the
//! 8-slave heterogeneous cluster (3 fast + 5 slow), Mandelbrot
//! 4000×2000 reordered with `S_f = 4`, in dedicated and non-dedicated
//! modes.
//!
//! Expected shape (paper §5.1): execution is *not* well balanced — the
//! fast PEs idle (`T_wait`) while slow PEs chew their equal-sized
//! chunks; `TSS` has the best `T_p`, `TFSS` second; non-dedicated
//! times roughly double for the non-adaptive schemes.

use lss_bench::experiments::{table23_workload, table2_reports, write_artifact};
use lss_metrics::table::breakdown_table;

fn main() {
    let workload = table23_workload();
    println!(
        "Table 2 workload: {} columns, total cost {} basic ops\n",
        lss_workloads::Workload::len(workload),
        lss_workloads::Workload::total_cost(workload)
    );

    let mut out = String::new();
    for (label, nondedicated) in [("Dedicated", false), ("NonDedicated", true)] {
        let reports = table2_reports(workload, nondedicated);
        let rendered = breakdown_table(
            &format!("Table 2 ({label}): simple schemes, p = 8; cells are T_com/T_wait/T_comp (s)"),
            &reports,
        );
        println!("{rendered}");
        out.push_str(&rendered);
        out.push('\n');
        // Imbalance summary: the paper's qualitative claim made explicit.
        for r in &reports {
            let line = format!(
                "  {:6} T_p={:6.1}s  comp-imbalance(cov)={:.2}  overhead(com+wait)={:6.1}s  steps={}\n",
                r.scheme,
                r.t_p,
                r.comp_imbalance(),
                r.total_overhead(),
                r.scheduling_steps
            );
            print!("{line}");
            out.push_str(&line);
        }
        println!();
        out.push('\n');
    }
    write_artifact("table2.txt", out.as_bytes());
}
