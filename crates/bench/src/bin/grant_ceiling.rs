//! The grant ceiling: how many chunk grants per second can each grant
//! path sustain as simulated workers pile on?
//!
//! Three paths from `lss-shard` are measured on identical work (every
//! chunk of a CSS(8) loop dispensed, completion reported, zero compute):
//!
//! - **single** — one master shard served by one master *thread*:
//!   every grant is a request/reply round trip through a channel into
//!   the lease table (the classic self-scheduling bottleneck);
//! - **sharded** — N work-stealing shards, each its own master thread
//!   and lease table; requests route to the worker's home shard;
//! - **self** — workers claim a shared atomic chunk counter and
//!   evaluate the replicated scheme formula locally; no master round
//!   trip on the hot path at all (completions are lock-free ledger
//!   marks).
//!
//! Workers are *simulated*: W worker identities driven round-robin with
//! all W requests pipelined into the masters each round (the leased
//! paths), or multiplexed over one OS thread per core (the self path).
//! Shard logic sees only the logical clock (`now = 0`); wall time is
//! measured here, outside the shard crate. Results land in
//! `results/BENCH_shard.json`.
//!
//! ```sh
//! cargo run --release -p lss-bench --bin grant_ceiling
//! ```

use std::sync::{mpsc, Arc};
use std::time::Instant;

use lss_bench::experiments::{quick_mode, write_artifact};
use lss_core::chunk::Chunk;
use lss_core::fault::LeaseConfig;
use lss_core::master::Assignment;
use lss_core::SchemeKind;
use lss_shard::{GrantMode, ShardSet, ShardSetConfig};
use lss_trace::SharedSink;

const SCHEME: SchemeKind = SchemeKind::Css { k: 8 };

/// Leases must never expire mid-bench: the logical clock stays at 0.
const FOREVER: LeaseConfig = LeaseConfig {
    base_ticks: u64::MAX / 4,
    default_ticks_per_iter: 0,
    grace: 2.0,
    dead_after_ticks: u64::MAX / 4,
    max_speculations: 1,
};

struct Point {
    mode: &'static str,
    shards: usize,
    workers: usize,
    grants: u64,
    wall_s: f64,
}

impl Point {
    fn rate(&self) -> f64 {
        self.grants as f64 / self.wall_s
    }
}

fn bench_threads(workers: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(4, |n| n.get());
    cores.min(workers)
}

/// Dispenses the whole loop through `ShardSet::grant` behind one
/// master thread per shard: each grant pays the request/reply round
/// trip of the real protocol, with the previous chunk's completion
/// piggy-backed on the next request. All active workers keep a request
/// pipelined, so the masters are never idle — this measures their
/// serving ceiling, not the workers' pace.
fn run_leased(total: u64, shards: usize, workers: usize) -> Point {
    let set = Arc::new(
        ShardSet::new(
            ShardSetConfig {
                scheme: SCHEME,
                total,
                shards,
                workers,
                mode: GrantMode::Sharded,
                lease: FOREVER,
            },
            SharedSink::disabled(),
        )
        .expect("benchable config"),
    );
    let started = Instant::now();
    let mut reply_txs = Vec::with_capacity(workers);
    let mut reply_rxs = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (tx, rx) = mpsc::channel::<Assignment>();
        reply_txs.push(tx);
        reply_rxs.push(rx);
    }
    let mut shard_txs = Vec::with_capacity(shards);
    let mut masters = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (tx, rx) = mpsc::channel::<(usize, Option<Chunk>)>();
        shard_txs.push(tx);
        let set = Arc::clone(&set);
        let replies = reply_txs.clone();
        masters.push(std::thread::spawn(move || {
            for (w, done) in rx {
                if let Some(chunk) = done {
                    set.complete(w, chunk, 0);
                }
                let reply = set.grant(w, 1, 0);
                replies[w].send(reply).expect("worker vanished");
            }
        }));
    }
    let mut pending: Vec<Option<Chunk>> = vec![None; workers];
    let mut active = vec![true; workers];
    let mut remaining = workers;
    let mut grants = 0u64;
    while remaining > 0 {
        for w in 0..workers {
            if active[w] {
                shard_txs[set.home(w)].send((w, pending[w].take())).expect("master vanished");
            }
        }
        for w in 0..workers {
            if !active[w] {
                continue;
            }
            match reply_rxs[w].recv().expect("master vanished") {
                Assignment::Chunk(chunk) => {
                    grants += 1;
                    pending[w] = Some(chunk);
                }
                Assignment::Retry => {}
                Assignment::Finished => {
                    active[w] = false;
                    remaining -= 1;
                }
            }
        }
    }
    drop(shard_txs);
    for m in masters {
        m.join().expect("master thread");
    }
    let wall_s = started.elapsed().as_secs_f64();
    assert!(set.all_complete(), "leased bench lost chunks");
    Point {
        mode: if shards == 1 { "single" } else { "sharded" },
        shards,
        workers,
        grants,
        wall_s,
    }
}

/// Dispenses the whole loop through worker-local self-calculation:
/// one fetch-add per chunk, formula evaluated on the claiming thread,
/// completion a lock-free ledger mark.
fn run_self(total: u64, shards: usize, workers: usize) -> Point {
    let set = Arc::new(
        ShardSet::new(
            ShardSetConfig {
                scheme: SCHEME,
                total,
                shards,
                workers,
                mode: GrantMode::SelfSched,
                lease: FOREVER,
            },
            SharedSink::disabled(),
        )
        .expect("benchable config"),
    );
    let threads = bench_threads(workers);
    let started = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let set = Arc::clone(&set);
            std::thread::spawn(move || {
                let mut mine: Vec<_> = (0..workers)
                    .filter(|w| w % threads == t)
                    .map(|w| (set.self_worker(w), false))
                    .collect();
                let mut grants = 0u64;
                while !mine.iter().all(|(_, d)| *d) {
                    for (sw, done) in mine.iter_mut() {
                        if *done {
                            continue;
                        }
                        match sw.next_chunk(0) {
                            Some((_, _, chunk)) => {
                                grants += 1;
                                sw.complete(chunk, 0);
                            }
                            None => *done = true,
                        }
                    }
                }
                grants
            })
        })
        .collect();
    let grants: u64 = handles.into_iter().map(|h| h.join().expect("bench thread")).sum();
    let wall_s = started.elapsed().as_secs_f64();
    assert!(set.all_complete(), "self-sched bench lost chunks");
    Point { mode: "self", shards, workers, grants, wall_s }
}

fn main() {
    let quick = quick_mode();
    let total: u64 = if quick { 160_000 } else { 3_200_000 };
    let worker_counts: &[usize] = if quick { &[8, 64] } else { &[8, 64, 1024] };
    let shard_counts: &[usize] = if quick { &[1, 4] } else { &[1, 4, 16] };

    let mut points = Vec::new();
    println!(
        "{:>8} {:>7} {:>8} {:>10} {:>9} {:>14}",
        "mode", "shards", "workers", "grants", "wall(s)", "grants/s"
    );
    for &workers in worker_counts {
        for &shards in shard_counts {
            for leased in [true, false] {
                let p = if leased {
                    run_leased(total, shards, workers)
                } else {
                    run_self(total, shards, workers)
                };
                println!(
                    "{:>8} {:>7} {:>8} {:>10} {:>9.3} {:>14.0}",
                    p.mode,
                    p.shards,
                    p.workers,
                    p.grants,
                    p.wall_s,
                    p.rate()
                );
                points.push(p);
            }
        }
    }

    // The acceptance ratio: best self-calculated rate vs the single
    // master, both at the largest simulated worker count.
    let max_w = *worker_counts.last().expect("non-empty sweep");
    let single = points
        .iter()
        .find(|p| p.mode == "single" && p.workers == max_w)
        .expect("single-master point")
        .rate();
    let best_self = points
        .iter()
        .filter(|p| p.mode == "self" && p.workers == max_w)
        .map(Point::rate)
        .fold(0.0f64, f64::max);
    let ratio = best_self / single;
    println!(
        "\nself-calculated vs single master at {max_w} workers: {best_self:.0} / {single:.0} = {ratio:.1}x"
    );

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"grant_ceiling\",\n");
    json.push_str("  \"scheme\": \"css:8\",\n");
    json.push_str(&format!("  \"iterations\": {total},\n"));
    json.push_str(&format!("  \"chunks\": {},\n", total / 8));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"max_workers\": {max_w},\n"));
    json.push_str(&format!("  \"selfsched_vs_single_at_max_workers\": {ratio:.2},\n"));
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"shards\": {}, \"workers\": {}, \"grants\": {}, \
             \"wall_s\": {:.4}, \"grants_per_sec\": {:.0}}}{}\n",
            p.mode,
            p.shards,
            p.workers,
            p.grants,
            p.wall_s,
            p.rate(),
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    write_artifact("BENCH_shard.json", json.as_bytes());
}
