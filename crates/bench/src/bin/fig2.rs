//! Regenerates **Figure 2** of the paper: the Mandelbrot fractal
//! itself, rendered from the same computation the schedulers
//! distribute. Writes a PPM image and prints an ASCII preview.

use lss_bench::experiments::{figure12_workload, write_artifact};
use lss_metrics::plot::{ascii_image, ppm_image};

fn main() {
    let mandelbrot = figure12_workload();
    let p = *mandelbrot.params();
    println!(
        "Figure 2: Mandelbrot fractal, {}x{} on [{}, {}] x [{}, {}], max_iter {}",
        p.width, p.height, p.x_range.0, p.x_range.1, p.y_range.0, p.y_range.1, p.max_iter
    );

    let img = mandelbrot.render();
    let art = ascii_image(&img, p.width as usize, p.height as usize, 78);
    println!("{art}");

    write_artifact(
        "fig2.ppm",
        &ppm_image(&img, p.width as usize, p.height as usize),
    );
    write_artifact("fig2.txt", art.as_bytes());
}
