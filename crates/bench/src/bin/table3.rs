//! Regenerates **Table 3** of the paper: the *distributed* schemes
//! (DTSS, DFSS, DFISS, DTFSS) plus power-weighted tree scheduling on
//! the 8-slave heterogeneous cluster, dedicated and non-dedicated.
//!
//! Expected shape (paper §6.1): computation times are well balanced
//! across fast and slow PEs; communication/waiting is much smaller than
//! in Table 2; `DTSS` wins, `DFISS` second in the non-dedicated case.

use lss_bench::experiments::{table23_workload, table3_reports, write_artifact};
use lss_metrics::table::breakdown_table;

fn main() {
    let workload = table23_workload();
    println!(
        "Table 3 workload: {} columns, total cost {} basic ops\n",
        lss_workloads::Workload::len(workload),
        lss_workloads::Workload::total_cost(workload)
    );

    let mut out = String::new();
    for (label, nondedicated) in [("Dedicated", false), ("NonDedicated", true)] {
        let reports = table3_reports(workload, nondedicated);
        let rendered = breakdown_table(
            &format!(
                "Table 3 ({label}): distributed schemes, p = 8; cells are T_com/T_wait/T_comp (s)"
            ),
            &reports,
        );
        println!("{rendered}");
        out.push_str(&rendered);
        out.push('\n');
        for r in &reports {
            let line = format!(
                "  {:6} T_p={:6.1}s  comp-imbalance(cov)={:.2}  overhead(com+wait)={:6.1}s  steps={}\n",
                r.scheme,
                r.t_p,
                r.comp_imbalance(),
                r.total_overhead(),
                r.scheduling_steps
            );
            print!("{line}");
            out.push_str(&line);
        }
        println!();
        out.push('\n');
    }
    write_artifact("table3.txt", out.as_bytes());
}
