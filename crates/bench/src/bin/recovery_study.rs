//! Robustness economics of the serve daemon: what quarantining a
//! degraded straggler buys, and what the durable job journal costs.
//!
//! Two experiments, both against the in-process service:
//!
//! 1. **Quarantine value** — a pool with one worker running 10× slow.
//!    With health scoring on, the straggler is quarantined, its leased
//!    chunks are reclaimed and re-granted to healthy workers, and the
//!    makespan tracks the healthy pool. With scoring off, every lease
//!    the straggler holds must lapse before its chunks move, and the
//!    makespan stretches toward the straggler's pace. The harness runs
//!    both and reports the ratio — quarantine must win.
//! 2. **Journal overhead** — the same healthy workload with and
//!    without a write-ahead journal, reporting the makespan ratio (the
//!    price of crash recoverability on the hot path).
//!
//! Results land in `results/BENCH_recovery.json`.
//!
//! ```sh
//! cargo run --release -p lss-bench --bin recovery_study
//! ```

use lss_bench::experiments::write_artifact;
use lss_core::SchemeKind;
use lss_runtime::protocol::serve::{JobSpec, WorkloadSpec};
use lss_serve::{
    run_serve_worker, serve, JournalConfig, QuarantineConfig, ServeConfig, ServeWorkerConfig,
};
use lss_trace::{EventKind, SharedSink};

const WORKERS: usize = 4;
const DEGRADED: usize = 3;
const SLOWDOWN: u32 = 10;

struct Outcome {
    wall_s: f64,
    quarantines: u64,
    readmissions: u64,
    jobs: u64,
}

/// One full service run: `jobs` uniform DTSS jobs over 4 workers.
/// `slow` degrades worker 3 by `SLOWDOWN`×; `quarantine` toggles the
/// health scorer; `journal` adds a fresh write-ahead journal.
fn run_once(jobs: usize, iters: u64, slow: bool, quarantine: bool, journal: bool) -> Outcome {
    let dir = std::env::temp_dir().join(format!(
        "lss-bench-recovery-{}-{}{}{}",
        std::process::id(),
        u8::from(slow),
        u8::from(quarantine),
        u8::from(journal)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = ServeConfig::new(WORKERS);
    cfg.queue_capacity = jobs + 1;
    cfg.trace = SharedSink::bounded(1 << 17);
    if !quarantine {
        cfg.quarantine = QuarantineConfig::disabled();
    }
    if journal {
        cfg.journal = Some(JournalConfig::fresh(&dir));
    }
    let handle = serve(cfg);
    let worker_threads: Vec<_> = (0..WORKERS)
        .map(|w| {
            let mut link = handle.worker_link(w);
            std::thread::spawn(move || {
                let mut wcfg = ServeWorkerConfig::healthy(w);
                if slow && w == DEGRADED {
                    wcfg.slowdown = SLOWDOWN;
                }
                let _ = run_serve_worker(&mut link, &wcfg);
            })
        })
        .collect();
    let started = std::time::Instant::now();
    let mut client = handle.client();
    for i in 0..jobs {
        client
            .submit(JobSpec {
                workload: WorkloadSpec::Uniform { iters, cost: 40 },
                scheme: SchemeKind::Dtss,
                priority: 1 + (i % 4) as u32,
            })
            .expect("submit");
    }
    client.drain().expect("drain");
    drop(client);
    let report = handle.join();
    let wall_s = started.elapsed().as_secs_f64();
    for t in worker_threads {
        let _ = t.join();
    }
    assert_eq!(report.jobs_completed as usize, jobs, "all jobs must retire");
    let trace = report.trace.as_ref().expect("trace sink configured");
    let count = |kind: EventKind| -> u64 {
        trace.events().iter().filter(|e| e.kind == kind).count() as u64
    };
    let _ = std::fs::remove_dir_all(&dir);
    Outcome {
        wall_s,
        quarantines: count(EventKind::WorkerQuarantined),
        readmissions: count(EventKind::WorkerReadmitted),
        jobs: report.jobs_completed,
    }
}

fn main() {
    // Even quick mode needs enough work that (a) the health scorer
    // sees `min_samples` batches from the straggler and (b) the chunks
    // the straggler holds are a meaningful share of the makespan —
    // sub-100ms runs are all startup noise.
    // Both modes use the same regime: shrinking further starves the
    // health scorer of strikes, while scaling the straggler's
    // in-flight batches past the run length measures nothing — grants
    // are not preemptible, so on an oversubscribed host a huge first
    // batch burns shared CPU for the whole run in both arms.
    let (jobs, iters) = (4, 1_200_000);

    println!("{:>24} {:>9} {:>12} {:>10}", "scenario", "wall(s)", "quarantines", "readmits");
    let show = |name: &str, o: &Outcome| {
        println!("{:>24} {:>9.3} {:>12} {:>10}", name, o.wall_s, o.quarantines, o.readmissions);
    };

    // Experiment 1: one 10×-degraded worker, scoring on vs off.
    let with_q = run_once(jobs, iters, true, true, false);
    show("degraded+quarantine", &with_q);
    let without_q = run_once(jobs, iters, true, false, false);
    show("degraded+no-quarantine", &without_q);
    let speedup = without_q.wall_s / with_q.wall_s;
    println!("quarantine speedup over lease-lapse reclaim: {speedup:.2}×");
    assert!(
        with_q.quarantines >= 1,
        "the degraded worker was never quarantined"
    );
    assert!(
        speedup > 1.0,
        "quarantine must beat the no-quarantine baseline \
         (with: {:.3}s, without: {:.3}s)",
        with_q.wall_s,
        without_q.wall_s
    );

    // Experiment 2: healthy pool, journal on vs off.
    let plain = run_once(jobs, iters, false, true, false);
    show("healthy", &plain);
    let journaled = run_once(jobs, iters, false, true, true);
    show("healthy+journal", &journaled);
    let overhead = journaled.wall_s / plain.wall_s;
    println!("journal makespan overhead: {overhead:.3}×");

    let json = format!(
        "{{\n  \"bench\": \"recovery_study\",\n  \"workers\": {WORKERS},\n  \
         \"degraded_worker\": {DEGRADED},\n  \"slowdown\": {SLOWDOWN},\n  \
         \"jobs\": {jobs},\n  \"iterations_per_job\": {iters},\n  \"scheme\": \"dtss\",\n  \
         \"quarantine\": {{\n    \
         \"makespan_s\": {:.4},\n    \"quarantines\": {},\n    \"readmissions\": {},\n    \
         \"jobs_completed\": {}\n  }},\n  \"no_quarantine\": {{\n    \
         \"makespan_s\": {:.4},\n    \"jobs_completed\": {}\n  }},\n  \
         \"quarantine_speedup\": {:.4},\n  \"journal\": {{\n    \
         \"makespan_plain_s\": {:.4},\n    \"makespan_journaled_s\": {:.4},\n    \
         \"overhead_ratio\": {:.4}\n  }}\n}}\n",
        with_q.wall_s,
        with_q.quarantines,
        with_q.readmissions,
        with_q.jobs,
        without_q.wall_s,
        without_q.jobs,
        speedup,
        plain.wall_s,
        journaled.wall_s,
        overhead,
    );
    write_artifact("BENCH_recovery.json", json.as_bytes());
}
