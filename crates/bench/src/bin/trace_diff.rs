//! Trace-derived wait-profile diff across every scheme variant.
//!
//! For each of the eleven scheme variants, the 8-slave paper cluster
//! runs the same Mandelbrot window twice — dedicated and non-dedicated
//! — with the trace sink recording. Everything in the table is computed
//! *from the trace* (not from the engine's own report): per-worker wait
//! totals, idle-gap counts, serialized time and makespan. A final
//! column confirms the trace-derived `T_wait` reconciles with the
//! engine's `TimeBreakdown` exactly — the tracing subsystem's core
//! invariant, exercised at table scale.
//!
//! ```sh
//! cargo run --release -p lss-bench --bin trace_diff
//! ```

use lss_bench::experiments::{table_traces, write_artifact};
use lss_core::SchemeKind;
use lss_metrics::breakdown::TimeBreakdown;
use lss_metrics::table::TextTable;
use lss_sim::{simulate_traced, ClusterSpec, SimConfig};
use lss_trace::{critical_path, idle_gaps, Trace};
use lss_workloads::{Mandelbrot, MandelbrotParams, SampledWorkload, Workload};

fn all_schemes() -> Vec<SchemeKind> {
    vec![
        SchemeKind::Css { k: 7 },
        SchemeKind::Gss { min_chunk: 1 },
        SchemeKind::Tss,
        SchemeKind::Fss,
        SchemeKind::Fiss { sigma: 3 },
        SchemeKind::Tfss,
        SchemeKind::Wf,
        SchemeKind::Dtss,
        SchemeKind::Dfss,
        SchemeKind::Dfiss { sigma: 3 },
        SchemeKind::Dtfss,
    ]
}

struct Profile {
    wait_total: f64,
    wait_max: f64,
    gaps: usize,
    gap_s: f64,
    serialized_s: f64,
    makespan_s: f64,
    reconciled: bool,
}

fn profile(trace: &Trace, report_pe: &[TimeBreakdown]) -> Profile {
    let derived = TimeBreakdown::all_from_trace(trace);
    let reconciled = derived
        .iter()
        .zip(report_pe)
        .all(|(d, r)| d.t_com == r.t_com && d.t_wait == r.t_wait && d.t_comp == r.t_comp);
    let gaps = idle_gaps(trace);
    let cp = critical_path(trace);
    Profile {
        wait_total: derived.iter().map(|b| b.t_wait).sum(),
        wait_max: derived.iter().map(|b| b.t_wait).fold(0.0, f64::max),
        gaps: gaps.len(),
        gap_s: gaps.iter().map(|g| g.dur_ns()).sum::<u64>() as f64 / 1e9,
        serialized_s: cp.serialized_ns as f64 / 1e9,
        makespan_s: cp.makespan_s,
        reconciled,
    }
}

fn main() {
    let workload = SampledWorkload::new(
        Mandelbrot::new(MandelbrotParams::paper_domain(800, 400)),
        4,
    );
    let mut table = TextTable::new(vec![
        "scheme".into(),
        "SumT_wait ded/nded".into(),
        "maxT_wait ded/nded".into(),
        "gaps ded/nded".into(),
        "serial_s ded/nded".into(),
        "T_p ded/nded".into(),
        "trace==report".into(),
    ]);
    println!("trace-derived wait profiles, 8 slaves, {} iterations", workload.len());
    for scheme in all_schemes() {
        let mut per_cond = Vec::new();
        for nondedicated in [false, true] {
            let cfg = SimConfig::new(ClusterSpec::paper_mix(3, 5), scheme);
            let (report, _spans, trace) =
                simulate_traced(&cfg, &workload, &table_traces(nondedicated));
            per_cond.push(profile(&trace, &report.per_pe));
        }
        let (d, n) = (&per_cond[0], &per_cond[1]);
        table.push_row(vec![
            scheme.name().to_string(),
            format!("{:.2}/{:.2}", d.wait_total, n.wait_total),
            format!("{:.2}/{:.2}", d.wait_max, n.wait_max),
            format!("{}({:.1}s)/{}({:.1}s)", d.gaps, d.gap_s, n.gaps, n.gap_s),
            format!("{:.2}/{:.2}", d.serialized_s, n.serialized_s),
            format!("{:.2}/{:.2}", d.makespan_s, n.makespan_s),
            if d.reconciled && n.reconciled { "exact".into() } else { "MISMATCH".into() },
        ]);
    }
    let out = table.render();
    println!("{out}");
    write_artifact("trace_diff.txt", out.as_bytes());
}
