//! Regenerates **Figures 4–7** of the paper: speedup `S_p = T_1/T_p`
//! for `p = 1..8` slaves.
//!
//! - Figure 4 — simple schemes, dedicated;
//! - Figure 5 — simple schemes, non-dedicated;
//! - Figure 6 — distributed schemes, dedicated (paper: expect
//!   `S_p ≤ 4.5` with 3 fast ≈ 3× + 5 slow PEs);
//! - Figure 7 — distributed schemes, non-dedicated (expect `S_p ≤ 6`
//!   in the paper's partially-dedicated setup).
//!
//! Expected shape: a "dip" (flat spot) at `p = 2` where the added PE is
//! slow and communication cost bites; distributed schemes dominate the
//! simple ones; TSS scales best among the simple schemes, DTSS among
//! the distributed ones.

use lss_bench::experiments::{figure_series, series_points, table23_workload, write_artifact};
use lss_metrics::plot::{ascii_chart, series_csv};
use lss_metrics::speedup::SpeedupSeries;

fn main() {
    let workload = table23_workload();
    let figures = [
        ("fig4", "Figure 4: speedup of simple schemes — dedicated", false, false),
        ("fig5", "Figure 5: speedup of simple schemes — non-dedicated", false, true),
        ("fig6", "Figure 6: speedup of distributed schemes — dedicated", true, false),
        ("fig7", "Figure 7: speedup of distributed schemes — non-dedicated", true, true),
    ];

    let r = lss_sim::cluster::SPEED_RATIO;
    let bound = SpeedupSeries::power_bound(&[r, r, r, 1.0, 1.0, 1.0, 1.0, 1.0], r);
    println!("power-bound speedup for the p = 8 mix (3 fast x{r:.2} + 5 slow): {bound:.2}\n");

    let mut summary = String::new();
    for (slug, title, distributed, nondedicated) in figures {
        let series = figure_series(distributed, nondedicated, workload);
        let pts = series_points(&series);
        let chart = ascii_chart(title, &pts, 64, 18);
        println!("{chart}");
        summary.push_str(&chart);
        summary.push('\n');
        for s in &series {
            let line = format!(
                "  {:6} S_p: {}\n",
                s.scheme,
                s.p_values
                    .iter()
                    .zip(&s.speedups)
                    .map(|(p, sp)| format!("p={p}:{sp:.2}"))
                    .collect::<Vec<_>>()
                    .join("  ")
            );
            print!("{line}");
            summary.push_str(&line);
        }
        println!();
        summary.push('\n');
        write_artifact(&format!("{slug}.csv"), series_csv(&pts).as_bytes());
    }
    write_artifact("fig4_7.txt", summary.as_bytes());
}
