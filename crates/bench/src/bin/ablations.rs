//! Ablations of the paper's design choices (DESIGN.md §6):
//!
//! 1. **ACP scale** — the §5.2(I) fix: integer `⌊V/Q⌋` (original DTSS)
//!    vs decimal division scaled by 10 / 100.
//! 2. **GSS vs GSS(k) vs TSS** — why the paper replaces GSS with its
//!    linearized approximation.
//! 3. **TSS last-chunk size `L`** — the paper's "one can improve this
//!    by choosing L > 1".
//! 4. **Re-plan threshold** — DTSS with the paper's ">½ changed" rule
//!    vs re-planning disabled, under a mid-run load spike.
//! 5. **Sampling frequency `S_f`** — the §2.1 reordering, swept.
//! 6. **TreeS initial allocation** — equal vs power-weighted.
//! 7. **FSS α** — the paper's sub-optimal fixed `α = 2` vs Hummel et
//!    al.'s α computed from the iteration-cost distribution.
//! 8. **Iteration reordering** — none vs sampling (`S_f = 4`, for
//!    irregular loops) vs cost-sorted (for §2.1's *predictable* loops).

use lss_bench::experiments::{table23_workload, write_artifact};
use lss_core::chunk::ChunkDispenser;
use lss_core::master::SchemeKind;
use lss_core::power::{AcpConfig, VirtualPower};
use lss_core::scheme::{GuidedSelfSched, TrapezoidSelfSched};
use lss_metrics::table::TextTable;
use lss_sim::{simulate, simulate_tree, ClusterSpec, LoadTrace, SimConfig, SimTime, TreeSimConfig};
use lss_workloads::{Mandelbrot, MandelbrotParams, SampledWorkload, Workload};

fn main() {
    let mut out = String::new();

    out.push_str(&acp_scale_ablation());
    out.push_str(&gss_family_ablation());
    out.push_str(&tss_last_chunk_ablation());
    out.push_str(&replan_ablation());
    out.push_str(&sampling_frequency_ablation());
    out.push_str(&trees_allocation_ablation());
    out.push_str(&adaptive_alpha_ablation());
    out.push_str(&reorder_strategy_ablation());

    print!("{out}");
    write_artifact("ablations.txt", out.as_bytes());
}

/// §5.2(I): the starvation bug and its repair, plus finer scales.
fn acp_scale_ablation() -> String {
    let mut t = TextTable::new(vec![
        "scale".into(),
        "A(V=1,Q=2)".into(),
        "A(V=3,Q=4)".into(),
        "A(V=3.4,Q=4)".into(),
        "total A".into(),
        "verdict".into(),
    ]);
    for scale in [1u32, 10, 100] {
        let cfg = AcpConfig::new(scale, 0);
        let a1 = cfg.acp(VirtualPower::new(1.0), 2).get();
        let a2 = cfg.acp(VirtualPower::new(3.0), 4).get();
        let a3 = cfg.acp(VirtualPower::new(3.4), 4).get();
        let total = a1 + a2;
        t.push_row(vec![
            scale.to_string(),
            a1.to_string(),
            a2.to_string(),
            a3.to_string(),
            total.to_string(),
            if total == 0 {
                "STARVES (computation can never start)".into()
            } else {
                "works".into()
            },
        ]);
    }
    format!(
        "Ablation 1: ACP scale (the §5.2 fix) on the paper's example V=(1,3), Q=(2,4)\n{}\n",
        t.render()
    )
}

/// GSS's long unit-chunk tail vs GSS(k) vs TSS, on the paper workload.
fn gss_family_ablation() -> String {
    let workload = table23_workload();
    let i = Workload::len(workload);
    let steps = |sizes: Vec<u64>| sizes.len();
    let gss = steps(ChunkDispenser::new(i, GuidedSelfSched::new(8)).into_sizes());
    let gss_k = steps(ChunkDispenser::new(i, GuidedSelfSched::with_min_chunk(8, 10)).into_sizes());
    let tss = steps(ChunkDispenser::new(i, TrapezoidSelfSched::new(i, 8)).into_sizes());

    let mut t = TextTable::new(vec!["scheme".into(), "scheduling steps".into(), "T_p (s)".into()]);
    for (name, scheme, n) in [
        ("GSS", SchemeKind::Gss { min_chunk: 1 }, gss),
        ("GSS(10)", SchemeKind::Gss { min_chunk: 10 }, gss_k),
        ("TSS", SchemeKind::Tss, tss),
    ] {
        let r = simulate(
            &SimConfig::new(ClusterSpec::paper_p8(), scheme),
            workload,
            &vec![LoadTrace::dedicated(); 8],
        );
        t.push_row(vec![name.into(), n.to_string(), format!("{:.1}", r.t_p)]);
    }
    format!(
        "Ablation 2: guided-scheduling family, I = {i}, p = 8 (dedicated)\n{}\n",
        t.render()
    )
}

/// TSS with L ∈ {1, 4, 16, 64}: fewer final synchronizations.
fn tss_last_chunk_ablation() -> String {
    let workload = table23_workload();
    let i = Workload::len(workload);
    let mut t = TextTable::new(vec!["L".into(), "steps".into(), "T_p (s)".into()]);
    for l in [1u64, 4, 16, 64] {
        let f = (i / 16).max(l);
        let sizes = ChunkDispenser::new(i, TrapezoidSelfSched::with_bounds(i, f, l)).into_sizes();
        let r = simulate(
            &SimConfig::new(ClusterSpec::paper_p8(), SchemeKind::TssWith { first: f, last: l }),
            workload,
            &vec![LoadTrace::dedicated(); 8],
        );
        t.push_row(vec![l.to_string(), sizes.len().to_string(), format!("{:.1}", r.t_p)]);
    }
    format!(
        "Ablation 3: TSS last-chunk size L (paper: 'one can improve by choosing L > 1')\n{}\n",
        t.render()
    )
}

/// DTSS with and without re-planning under a mid-run load spike.
fn replan_ablation() -> String {
    let workload = table23_workload();
    // Five of eight PEs start loaded (Q = 3, captured in the initial
    // plan) and become free at t = 3 s — e.g. the background users log
    // off. The freed PEs report quickly, so the ">1/2 changed" rule
    // fires and the master recomputes F, D, N from the remaining
    // iterations ("a change in the slope of the trapezoid", §3.1).
    let free_at = SimTime::from_secs_f64(3.0);
    let mut traces = vec![LoadTrace::dedicated(); 8];
    for t in traces.iter_mut().take(7).skip(2) {
        *t = LoadTrace::from_steps(vec![(SimTime::ZERO, 3), (free_at, 1)]);
    }
    let mut t = TextTable::new(vec![
        "re-planning".into(),
        "T_p (s)".into(),
        "plans".into(),
        "comp imbalance".into(),
    ]);
    for (label, threshold) in [("on (paper, >1/2)", None), ("off", Some(1.0))] {
        let mut cfg = SimConfig::new(ClusterSpec::paper_p8(), SchemeKind::Dtss);
        cfg.replan_threshold = threshold;
        let r = simulate(&cfg, workload, &traces);
        t.push_row(vec![
            label.into(),
            format!("{:.1}", r.t_p),
            r.plans.to_string(),
            format!("{:.2}", r.comp_imbalance()),
        ]);
    }
    format!(
        "Ablation 4: DTSS re-planning when 5 of 8 PEs go from loaded (Q=3) to free at t = 3 s.\n\
         Note: per-request ACP scaling already adapts chunk sizes, so re-planning's extra\n\
         effect (recomputing F, D from the remaining iterations) is visible mostly in the\n\
         end-game; the paper describes it as insurance for persistent load shifts.\n{}\n",
        t.render()
    )
}

/// The S_f sweep: reordering quality and its end-to-end effect.
fn sampling_frequency_ablation() -> String {
    let base = if lss_bench::experiments::quick_mode() {
        Mandelbrot::new(MandelbrotParams::paper_domain(400, 200))
    } else {
        Mandelbrot::new(MandelbrotParams::paper_domain(1200, 600))
    };
    let mut t = TextTable::new(vec![
        "S_f".into(),
        "windowed max/min".into(),
        "T_p TSS (s)".into(),
    ]);
    for sf in [1u64, 2, 4, 8, 16] {
        let w = SampledWorkload::new(base.clone(), sf);
        let profile = w.cost_profile();
        let imb = lss_workloads::sampling::windowed_imbalance(&profile, profile.len() / 24);
        let r = simulate(
            &SimConfig::new(ClusterSpec::paper_p8(), SchemeKind::Tss),
            &w,
            &vec![LoadTrace::dedicated(); 8],
        );
        t.push_row(vec![sf.to_string(), format!("{imb:.2}"), format!("{:.1}", r.t_p)]);
    }
    format!("Ablation 5: sampling frequency S_f (paper uses 4)\n{}\n", t.render())
}

/// TreeS equal vs weighted initial allocation.
fn trees_allocation_ablation() -> String {
    let workload = table23_workload();
    let mut t = TextTable::new(vec![
        "allocation".into(),
        "T_p (s)".into(),
        "transfers".into(),
    ]);
    for (label, weighted) in [("equal (§5.1)", false), ("weighted (§6.1)", true)] {
        let r = simulate_tree(
            &TreeSimConfig::new(ClusterSpec::paper_p8(), weighted),
            workload,
            &vec![LoadTrace::dedicated(); 8],
        );
        t.push_row(vec![
            label.into(),
            format!("{:.1}", r.t_p),
            r.scheduling_steps.to_string(),
        ]);
    }
    format!("Ablation 6: tree-scheduling initial allocation\n{}\n", t.render())
}

/// Fixed α = 2 vs the computed-α variant on the Mandelbrot profile.
fn adaptive_alpha_ablation() -> String {
    let workload = table23_workload();
    let profile = workload.cost_profile();
    let mean = profile.iter().sum::<u64>() as f64 / profile.len() as f64;
    let var = profile
        .iter()
        .map(|&c| (c as f64 - mean) * (c as f64 - mean))
        .sum::<f64>()
        / profile.len() as f64;
    let sd = var.sqrt();

    let mut t = TextTable::new(vec![
        "variant".into(),
        "steps".into(),
        "T_p (s)".into(),
        "comp imbalance".into(),
    ]);
    for (label, scheme) in [
        ("fixed α = 2".to_string(), SchemeKind::Fss),
        (
            format!("computed α (μ={mean:.0}, σ={sd:.0})"),
            SchemeKind::FssAdaptive { mean_cost: mean, std_dev: sd },
        ),
    ] {
        let r = simulate(
            &SimConfig::new(ClusterSpec::paper_p8(), scheme),
            workload,
            &vec![LoadTrace::dedicated(); 8],
        );
        t.push_row(vec![
            label,
            r.scheduling_steps.to_string(),
            format!("{:.1}", r.t_p),
            format!("{:.2}", r.comp_imbalance()),
        ]);
    }
    format!(
        "Ablation 7: FSS factoring parameter — fixed vs computed from the cost\n\
         distribution (the option §2.2 mentions; Hummel et al.'s batching rule).\n\
         Finding: the computed α assumes *homogeneous* PEs; its near-static first\n\
         stage straggles on this heterogeneous cluster, so the paper's fixed α = 2\n\
         is the right call here.\n{}\n",
        t.render()
    )
}

/// Iteration reordering strategies under TSS.
fn reorder_strategy_ablation() -> String {
    let base = if lss_bench::experiments::quick_mode() {
        Mandelbrot::new(MandelbrotParams::paper_domain(400, 200))
    } else {
        Mandelbrot::new(MandelbrotParams::paper_domain(1200, 600))
    };
    let traces = vec![LoadTrace::dedicated(); 8];
    let run = |w: &dyn Workload| {
        let r = simulate(&SimConfig::new(ClusterSpec::paper_p8(), SchemeKind::Tss), w, &traces);
        (r.t_p, r.comp_imbalance())
    };
    let mut t = TextTable::new(vec![
        "order".into(),
        "T_p (s)".into(),
        "comp imbalance".into(),
    ]);
    let (tp, imb) = run(&base);
    t.push_row(vec!["original".into(), format!("{tp:.2}"), format!("{imb:.2}")]);
    let (tp, imb) = run(&lss_workloads::SampledWorkload::new(base.clone(), 4));
    t.push_row(vec!["sampled S_f=4 (paper)".into(), format!("{tp:.2}"), format!("{imb:.2}")]);
    let (tp, imb) = run(&lss_workloads::SortedWorkload::decreasing(base.clone()));
    t.push_row(vec!["sorted decreasing (LPT)".into(), format!("{tp:.2}"), format!("{imb:.2}")]);
    let (tp, imb) = run(&lss_workloads::SortedWorkload::increasing(base));
    t.push_row(vec!["sorted increasing".into(), format!("{tp:.2}"), format!("{imb:.2}")]);
    format!(
        "Ablation 8: iteration reordering under TSS — sampling suits irregular loops\n\
         (costs unknowable); cost-sorting is the *predictable*-loop alternative (§2.1).\n\
         Finding: *increasing* cost order wins under TSS because decreasing chunk\n\
         sizes times increasing iteration costs gives near-constant chunk durations;\n\
         decreasing order (LPT) pairs the biggest costs with the biggest chunks.\n{}\n",
        t.render()
    )
}
