//! Gantt timelines of one dedicated and one non-dedicated run — a
//! visual companion to Tables 2/3 that shows *where* the imbalance of
//! the simple schemes lives (idle tails on the fast PEs) and how the
//! distributed schemes remove it.

use lss_bench::experiments::{table23_workload, table_traces, write_artifact};
use lss_core::master::SchemeKind;
use lss_metrics::plot::gantt_ascii;
use lss_sim::engine::simulate_with_timeline;
use lss_sim::{ClusterSpec, SimConfig};

fn main() {
    let workload = table23_workload();
    let mut out = String::new();
    for (scheme, nondedicated) in [
        (SchemeKind::Tss, false),
        (SchemeKind::Dtss, false),
        (SchemeKind::Tss, true),
        (SchemeKind::Dtss, true),
    ] {
        let cfg = SimConfig::new(ClusterSpec::paper_p8(), scheme);
        let traces = table_traces(nondedicated);
        let (report, spans) = simulate_with_timeline(&cfg, workload, &traces);
        let data: Vec<(usize, f64, f64)> = spans
            .iter()
            .map(|s| (s.pe, s.start.as_secs_f64(), s.end.as_secs_f64()))
            .collect();
        let title = format!(
            "{} ({}) — T_p = {:.1} s, {} chunks ('.' = waiting/communicating; PE1-3 fast, PE4-8 slow)",
            report.scheme,
            if nondedicated { "non-dedicated" } else { "dedicated" },
            report.t_p,
            report.scheduling_steps,
        );
        let chart = gantt_ascii(&title, &data, 8, report.t_p, 96);
        println!("{chart}");
        out.push_str(&chart);
        out.push('\n');
    }
    write_artifact("timeline.txt", out.as_bytes());
}
