//! Generalization check: the paper argues (§1) its schemes "are
//! expected to perform well on other types of loop computations"
//! because their adaptivity is workload-independent. This experiment
//! reruns the Table 2/3 comparison on three classic kernels instead of
//! Mandelbrot: adjoint convolution (predictable decreasing), dense
//! mat-vec (uniform) and sparse mat-vec (irregular).

use lss_bench::experiments::write_artifact;
use lss_core::master::SchemeKind;
use lss_metrics::table::TextTable;
use lss_sim::engine::sequential_time;
use lss_sim::{simulate, ClusterSpec, LoadTrace, SimConfig};
use lss_workloads::{AdjointConvolution, MatVec, SparseMatVec, Workload};

fn main() {
    // Sized so each kernel's total cost lands near the Mandelbrot
    // experiment's (~10^8 basic ops → tens of simulated seconds).
    let adjoint = AdjointConvolution::new(16_000, 42);
    let matvec = MatVec::new(11_000, 42);
    let sparse = SparseMatVec::new(40_000, 6_000, 42);
    let kernels: Vec<(&str, &dyn Workload)> = vec![
        ("adjoint-conv (decreasing)", &adjoint),
        ("matvec (uniform)", &matvec),
        ("sparse-matvec (irregular)", &sparse),
    ];
    let schemes = [
        SchemeKind::Tss,
        SchemeKind::Fss,
        SchemeKind::Tfss,
        SchemeKind::Dtss,
        SchemeKind::Dtfss,
    ];

    let mut out = String::new();
    for (label, workload) in kernels {
        let t1 = sequential_time(workload, lss_sim::cluster::FAST_SPEED);
        let mut t = TextTable::new(vec![
            "scheme".into(),
            "T_p (s)".into(),
            "speedup".into(),
            "steps".into(),
            "comp imbalance".into(),
        ]);
        for scheme in schemes {
            let cfg = SimConfig::new(ClusterSpec::paper_p8(), scheme);
            let r = simulate(&cfg, workload, &vec![LoadTrace::dedicated(); 8]);
            t.push_row(vec![
                r.scheme.clone(),
                format!("{:.1}", r.t_p),
                format!("{:.2}", t1 / r.t_p),
                r.scheduling_steps.to_string(),
                format!("{:.3}", r.comp_imbalance()),
            ]);
        }
        let section = format!(
            "Kernel: {label} — {} iterations, total cost {} ops, T_1 = {t1:.1}s\n{}\n",
            workload.len(),
            workload.total_cost(),
            t.render()
        );
        print!("{section}");
        out.push_str(&section);
    }
    println!("Expected shape: distributed schemes balance (low cov) and match or beat");
    println!("their simple counterparts on every kernel — workload independence.");
    write_artifact("kernels.txt", out.as_bytes());
}
