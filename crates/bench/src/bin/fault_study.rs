//! Fault study: how much does recovery cost? For each scheme, the
//! 8-slave paper cluster runs the same loop healthy and under four
//! chaos scenarios (a crash, a crash + a hang, a mid-run disconnect,
//! and a lossy network). The table reports the makespan inflation over
//! the healthy run and the fault events the master logged — the
//! quantitative version of "the loop survives and every iteration is
//! accounted exactly once".
//!
//! ```sh
//! cargo run --release -p lss-bench --bin fault_study
//! ```

use lss_bench::experiments::write_artifact;
use lss_core::fault::{FaultPlan, LeaseConfig, NetFaults};
use lss_core::SchemeKind;
use lss_metrics::fault::FaultKind;
use lss_sim::engine::{simulate, SimConfig};
use lss_sim::{ClusterSpec, LoadTrace};
use lss_workloads::UniformLoop;

fn lease() -> LeaseConfig {
    // Expire at 2x the predicted chunk time; heartbeats protect
    // healthy slaves, so only silent holders lapse.
    LeaseConfig {
        base_ticks: 2_000_000_000,
        default_ticks_per_iter: 50_000_000,
        grace: 2.0,
        dead_after_ticks: 1_000_000_000,
        max_speculations: 2,
    }
}

fn scenarios() -> Vec<(&'static str, Vec<FaultPlan>)> {
    let h = FaultPlan::healthy;
    vec![
        ("healthy", vec![h(); 8]),
        ("1 crash", {
            let mut v = vec![h(); 8];
            v[5] = FaultPlan::crash_after(1);
            v
        }),
        ("crash+hang", {
            let mut v = vec![h(); 8];
            v[5] = FaultPlan::crash_after(1);
            v[6] = FaultPlan::hang_after(2);
            v
        }),
        ("disconnect", {
            let mut v = vec![h(); 8];
            v[5] = FaultPlan::reconnect_after(1, 20_000_000_000);
            v
        }),
        ("lossy net", {
            let mut v = vec![h(); 8];
            v[5] = h()
                .with_net(NetFaults { drop_prob: 0.3, dup_prob: 0.2, delay_ticks: 5_000_000 })
                .with_seed(11);
            v
        }),
    ]
}

fn main() {
    let w = UniformLoop::new(4000, 100_000);
    let traces = vec![LoadTrace::dedicated(); 8];
    let schemes = [
        SchemeKind::Tss,
        SchemeKind::Fss,
        SchemeKind::Tfss,
        SchemeKind::Dtss,
        SchemeKind::Dtfss,
    ];

    let mut out = String::new();
    let header = format!(
        "{:8} {:12} {:>8} {:>9} {:>8} {:>8} {:>8} {:>8}\n",
        "scheme", "scenario", "T_p(s)", "overhead", "expired", "requeued", "spec", "dedup"
    );
    print!("{header}");
    out.push_str(&header);

    for scheme in schemes {
        let mut healthy_tp = 0.0f64;
        for (name, plans) in scenarios() {
            let cfg = SimConfig::new(ClusterSpec::paper_p8(), scheme)
                .with_faults(plans)
                .with_lease(lease());
            let r = simulate(&cfg, &w, &traces);
            if name == "healthy" {
                healthy_tp = r.t_p;
            }
            let overhead = if healthy_tp > 0.0 {
                format!("{:+7.1}%", (r.t_p / healthy_tp - 1.0) * 100.0)
            } else {
                "      -".into()
            };
            let line = format!(
                "{:8} {:12} {:8.1} {:>9} {:8} {:8} {:8} {:8}\n",
                scheme.name(),
                name,
                r.t_p,
                overhead,
                r.faults.count(FaultKind::LeaseExpired),
                r.faults.count(FaultKind::Requeued),
                r.faults.count(FaultKind::Speculated),
                r.faults.count(FaultKind::DuplicateDropped),
            );
            print!("{line}");
            out.push_str(&line);
        }
        println!();
        out.push('\n');
    }
    let note = "overhead = makespan inflation vs the same scheme's healthy run.\n\
                expired/requeued/spec/dedup = master fault-log event counts.\n";
    print!("{note}");
    out.push_str(note);
    write_artifact("fault_study.txt", out.as_bytes());
}
