//! Regenerates **Figure 1** of the paper: the Mandelbrot per-column
//! cost distribution for a 1200×1200 window — (a) in original column
//! order and (b) reordered by sampling with `S_f = 4`.
//!
//! Expected shape: the original profile is a tall hump over the set's
//! interior (costs from ~height up to tens of thousands of basic
//! computations); the reordered profile repeats a 4×-compressed copy of
//! that hump, so any window of consecutive iterations mixes cheap and
//! expensive columns.

use lss_bench::experiments::{figure12_workload, write_artifact, PAPER_SF};
use lss_metrics::plot::{ascii_chart, downsample_max, profile_csv};
use lss_workloads::sampling::windowed_imbalance;
use lss_workloads::{SampledWorkload, Workload};

fn main() {
    let mandelbrot = figure12_workload();
    let original = mandelbrot.cost_profile();
    let sampled = SampledWorkload::new(mandelbrot, PAPER_SF);
    let reordered = sampled.cost_profile();

    let min = original.iter().min().unwrap();
    let max = original.iter().max().unwrap();
    println!(
        "Figure 1: Mandelbrot loop distribution, {} columns, cost range {min}..{max}",
        original.len()
    );
    let window = (original.len() / 24).max(1);
    println!(
        "windowed (w={window}) max/min cost ratio: original {:.1}, reordered (S_f = {PAPER_SF}) {:.1}\n",
        windowed_imbalance(&original, window),
        windowed_imbalance(&reordered, window)
    );

    let chart_a = ascii_chart(
        "Figure 1(a): original distribution (basic computations per column)",
        &[("L(i)".to_string(), downsample_max(&original, 72))],
        72,
        16,
    );
    let chart_b = ascii_chart(
        &format!("Figure 1(b): reordered distribution, S_f = {PAPER_SF}"),
        &[("L(i)".to_string(), downsample_max(&reordered, 72))],
        72,
        16,
    );
    println!("{chart_a}");
    println!("{chart_b}");

    write_artifact("fig1_original.csv", profile_csv("basic_computations", &original).as_bytes());
    write_artifact("fig1_reordered.csv", profile_csv("basic_computations", &reordered).as_bytes());
    write_artifact("fig1.txt", format!("{chart_a}\n{chart_b}").as_bytes());
}
