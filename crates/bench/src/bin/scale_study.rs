//! Beyond-paper extension: how far does the centralized master scale?
//!
//! The paper stops at `p = 8`. This study sweeps the cluster to
//! `p = 64` slaves (keeping the 3-fast:5-slow ratio) under two regimes:
//!
//! - **strong scaling** — the Table 2/3 workload, fixed;
//! - **weak scaling** — workload grows with `p` (fixed work per slave).
//!
//! Expected outcome: the serializing master (1 ms per request plus
//! payload receive) and the shared slow segment eventually cap the
//! speedup of every centralized scheme; decentralized tree scheduling
//! degrades more slowly. This quantifies the paper's implicit
//! assumption that one master suffices at cluster scale.

use lss_bench::experiments::write_artifact;
use lss_core::master::SchemeKind;
use lss_metrics::plot::{ascii_chart, series_csv};
use lss_metrics::table::TextTable;
use lss_sim::engine::sequential_time;
use lss_sim::{simulate, simulate_tree, ClusterSpec, LoadTrace, SimConfig, TreeSimConfig};
use lss_workloads::{Mandelbrot, MandelbrotParams, SampledWorkload, Workload};

const PS: [usize; 5] = [4, 8, 16, 32, 64];

fn cluster(p: usize) -> ClusterSpec {
    // Keep the paper's 3:5 fast:slow ratio at every size.
    let fast = (3 * p).div_ceil(8);
    ClusterSpec::paper_mix(fast, p - fast)
}

fn main() {
    let mut out = String::new();

    // Strong scaling: fixed 4000×2000 workload.
    let strong = SampledWorkload::new(Mandelbrot::new(MandelbrotParams::table23_window()), 4);
    let t1 = sequential_time(&strong, lss_sim::cluster::FAST_SPEED);
    let mut table = TextTable::new(vec![
        "p".into(),
        "TSS".into(),
        "DTSS".into(),
        "TreeS".into(),
        "power bound".into(),
    ]);
    let mut series: Vec<(String, Vec<(f64, f64)>)> = vec![
        ("TSS".into(), Vec::new()),
        ("DTSS".into(), Vec::new()),
        ("TreeS".into(), Vec::new()),
    ];
    for p in PS {
        let c = cluster(p);
        let traces = vec![LoadTrace::dedicated(); p];
        let bound: f64 = c.slaves.iter().map(|s| s.speed).sum::<f64>() / lss_sim::cluster::FAST_SPEED;
        let tss = simulate(&SimConfig::new(c.clone(), SchemeKind::Tss), &strong, &traces).t_p;
        let dtss = simulate(&SimConfig::new(c.clone(), SchemeKind::Dtss), &strong, &traces).t_p;
        let trees = simulate_tree(&TreeSimConfig::new(c, true), &strong, &traces).t_p;
        table.push_row(vec![
            p.to_string(),
            format!("{:.2}", t1 / tss),
            format!("{:.2}", t1 / dtss),
            format!("{:.2}", t1 / trees),
            format!("{bound:.2}"),
        ]);
        series[0].1.push((p as f64, t1 / tss));
        series[1].1.push((p as f64, t1 / dtss));
        series[2].1.push((p as f64, t1 / trees));
    }
    let section = format!(
        "Scale study (strong scaling, fixed 4000x2000 Mandelbrot): speedup vs p\n{}\n",
        table.render()
    );
    print!("{section}");
    out.push_str(&section);
    let chart = ascii_chart("Strong-scaling speedup, p = 4..64", &series, 64, 16);
    println!("{chart}");
    out.push_str(&chart);
    write_artifact("scale_strong.csv", series_csv(&series).as_bytes());

    // Weak scaling: 500 columns per slave; report efficiency
    // T_ideal / T_p where T_ideal keeps per-slave work constant.
    let mut table = TextTable::new(vec![
        "p".into(),
        "columns".into(),
        "TSS eff".into(),
        "DTSS eff".into(),
        "TreeS eff".into(),
    ]);
    for p in PS {
        let w = SampledWorkload::new(
            Mandelbrot::new(MandelbrotParams::paper_domain(500 * p as u32, 1000)),
            4,
        );
        let c = cluster(p);
        let traces = vec![LoadTrace::dedicated(); p];
        let aggregate: f64 = c.slaves.iter().map(|s| s.speed).sum();
        let ideal = w.total_cost() as f64 / aggregate;
        let eff = |tp: f64| ideal / tp;
        let tss = simulate(&SimConfig::new(c.clone(), SchemeKind::Tss), &w, &traces).t_p;
        let dtss = simulate(&SimConfig::new(c.clone(), SchemeKind::Dtss), &w, &traces).t_p;
        let trees = simulate_tree(&TreeSimConfig::new(c, true), &w, &traces).t_p;
        table.push_row(vec![
            p.to_string(),
            (500 * p).to_string(),
            format!("{:.2}", eff(tss)),
            format!("{:.2}", eff(dtss)),
            format!("{:.2}", eff(trees)),
        ]);
    }
    let section = format!(
        "Scale study (weak scaling, 500 columns/slave): efficiency = T_ideal / T_p\n{}\n",
        table.render()
    );
    print!("{section}");
    out.push_str(&section);

    write_artifact("scale_study.txt", out.as_bytes());
}
