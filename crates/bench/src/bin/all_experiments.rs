//! Runs every table and figure in one go, writing all artifacts to
//! `results/` (the per-experiment binaries remain available for
//! individual runs). This is what EXPERIMENTS.md is generated from.

use std::process::Command;

fn main() {
    let bins = ["table1", "fig1", "fig2", "table2", "table3", "fig4_7", "timeline", "kernels", "scale_study", "ablations"];
    for bin in bins {
        println!("==== running {bin} ====");
        let exe = std::env::current_exe().expect("own path");
        let dir = exe.parent().expect("bin dir");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed with {status}");
        println!();
    }
    println!("all experiments complete; artifacts in results/");
}
