//! Serving-layer throughput: one `lss-serve` service, a fixed worker
//! pool, and a stream of jobs. For each (concurrency, batch size)
//! point the harness measures jobs/sec and the p50/p99 of per-job
//! latency (submit to retire, from the service's own `JobStatus`
//! clock), plus scheduling round trips — the number batched grants
//! exist to cut. A second sweep compares the two TCP front ends —
//! blocking thread-per-connection vs the epoll reactor — head to head
//! at 16 and 256 jobs, plus a connection-scaling curve. Results land
//! in `results/BENCH_serve.json`.
//!
//! ```sh
//! cargo run --release -p lss-bench --bin serve_throughput
//! ```

use lss_bench::experiments::{quick_mode, write_artifact};
use lss_core::SchemeKind;
use lss_runtime::protocol::serve::{JobSpec, WorkloadSpec};
use lss_serve::{
    run_serve_worker, serve, serve_tcp_with, ServeBackend, ServeClient, ServeConfig,
    ServeWorkerConfig, TcpLink,
};

const WORKERS: usize = 8;

struct Point {
    concurrency: usize,
    batch_k: usize,
    jobs: usize,
    wall_s: f64,
    latencies_ms: Vec<f64>,
    requests: u64,
    grants: u64,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn run_point(concurrency: usize, batch_k: usize, jobs: usize, iters: u64) -> Point {
    let mut cfg = ServeConfig::new(WORKERS);
    cfg.max_active = concurrency;
    cfg.queue_capacity = jobs + 1;
    cfg.batch_k = batch_k;
    let handle = serve(cfg);
    let worker_threads: Vec<_> = (0..WORKERS)
        .map(|w| {
            let mut link = handle.worker_link(w);
            std::thread::spawn(move || {
                run_serve_worker(&mut link, &ServeWorkerConfig::healthy(w))
                    .expect("worker loop failed")
            })
        })
        .collect();
    let started = std::time::Instant::now();
    let mut client = handle.client();
    for i in 0..jobs {
        let spec = JobSpec {
            workload: WorkloadSpec::Uniform { iters, cost: 40 },
            scheme: SchemeKind::Dtss,
            priority: 1 + (i % 4) as u32,
        };
        client.submit(spec).expect("submit");
    }
    client.drain().expect("drain");
    drop(client);
    let report = handle.join();
    let wall_s = started.elapsed().as_secs_f64();
    for t in worker_threads {
        t.join().expect("worker thread");
    }
    assert_eq!(report.jobs_completed as usize, jobs, "all jobs must retire");
    let mut latencies_ms: Vec<f64> = report
        .jobs
        .iter()
        .map(|j| {
            let fin = j.finished_ns.expect("job finished");
            (fin - j.submitted_ns) as f64 / 1e6
        })
        .collect();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    Point {
        concurrency,
        batch_k,
        jobs,
        wall_s,
        latencies_ms,
        requests: report.requests_served,
        grants: report.grants_sent,
    }
}

/// One backend x (connections, jobs) point over real loopback TCP:
/// `conns` workers each dial the service on its own socket, `jobs`
/// uniform jobs stream through, and the figure of merit is retired
/// jobs per second of wall clock.
fn run_tcp_point(backend: ServeBackend, conns: usize, jobs: usize, iters: u64) -> f64 {
    let mut cfg = ServeConfig::new(conns);
    cfg.max_active = 4;
    cfg.batch_k = 4;
    cfg.queue_capacity = jobs + 1;
    let handle = serve_tcp_with(cfg, "127.0.0.1", 0, backend).expect("serve over tcp");
    let addr = handle.addr.expect("tcp service has an address");
    let worker_threads: Vec<_> = (0..conns)
        .map(|w| {
            std::thread::spawn(move || {
                let mut link = TcpLink::connect(addr).expect("worker dial");
                run_serve_worker(&mut link, &ServeWorkerConfig::healthy(w))
                    .expect("worker loop failed")
            })
        })
        .collect();
    let started = std::time::Instant::now();
    let mut client = ServeClient::connect(addr).expect("client dial");
    for i in 0..jobs {
        let spec = JobSpec {
            workload: WorkloadSpec::Uniform { iters, cost: 40 },
            scheme: SchemeKind::Dtss,
            priority: 1 + (i % 4) as u32,
        };
        client.submit(spec).expect("submit");
    }
    client.drain().expect("drain");
    drop(client);
    let report = handle.join();
    let wall_s = started.elapsed().as_secs_f64();
    for t in worker_threads {
        t.join().expect("worker thread");
    }
    assert_eq!(report.jobs_completed as usize, jobs, "all jobs must retire");
    jobs as f64 / wall_s
}

/// Best-of-`n` throughput — the comparison points take the best of a
/// few runs per backend so one unlucky scheduler quantum does not
/// decide the blocking-vs-reactor verdict.
fn best_tcp(backend: ServeBackend, conns: usize, jobs: usize, iters: u64, n: usize) -> f64 {
    (0..n)
        .map(|_| run_tcp_point(backend, conns, jobs, iters))
        .fold(0.0, f64::max)
}

fn main() {
    let (jobs, iters) = if quick_mode() { (8, 2_000) } else { (32, 20_000) };
    let mut points = Vec::new();
    println!(
        "{:>11} {:>7} {:>9} {:>9} {:>9} {:>9} {:>11}",
        "concurrency", "batch_k", "jobs/s", "p50(ms)", "p99(ms)", "requests", "req/grant"
    );
    for concurrency in [1usize, 4, 16] {
        for batch_k in [1usize, 4] {
            let p = run_point(concurrency, batch_k, jobs, iters);
            println!(
                "{:>11} {:>7} {:>9.2} {:>9.2} {:>9.2} {:>9} {:>11.3}",
                p.concurrency,
                p.batch_k,
                p.jobs as f64 / p.wall_s,
                percentile(&p.latencies_ms, 50.0),
                percentile(&p.latencies_ms, 99.0),
                p.requests,
                p.requests as f64 / p.grants as f64,
            );
            points.push(p);
        }
    }

    // Backend face-off over real TCP: the 16-job point (the gate: the
    // reactor must not lose to thread-per-connection at small scale)
    // and the 256-job sustained point, then a connection-scaling curve.
    let (tcp_iters, reps) = if quick_mode() { (1_000, 2) } else { (5_000, 3) };
    println!("\n{:>9} {:>6} {:>6} {:>14} {:>14}", "tcp", "conns", "jobs", "blocking j/s", "evented j/s");
    let mut faceoff = Vec::new();
    for jobs in [16usize, 256] {
        let blocking = best_tcp(ServeBackend::Blocking, WORKERS, jobs, tcp_iters, reps);
        let evented = best_tcp(ServeBackend::Evented, WORKERS, jobs, tcp_iters, reps);
        println!("{:>9} {:>6} {:>6} {:>14.2} {:>14.2}", "faceoff", WORKERS, jobs, blocking, evented);
        faceoff.push((jobs, blocking, evented));
    }
    let conn_counts: &[usize] = if quick_mode() { &[2, 8] } else { &[2, 8, 16, 32] };
    let scaling_jobs = 64usize;
    let mut scaling = Vec::new();
    for &conns in conn_counts {
        let blocking = run_tcp_point(ServeBackend::Blocking, conns, scaling_jobs, tcp_iters);
        let evented = run_tcp_point(ServeBackend::Evented, conns, scaling_jobs, tcp_iters);
        println!("{:>9} {:>6} {:>6} {:>14.2} {:>14.2}", "scaling", conns, scaling_jobs, blocking, evented);
        scaling.push((conns, blocking, evented));
    }
    let (_, blocking_16, evented_16) = faceoff[0];

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"serve_throughput\",\n");
    json.push_str(&format!("  \"workers\": {WORKERS},\n"));
    json.push_str(&format!("  \"jobs_per_point\": {jobs},\n"));
    json.push_str(&format!("  \"iterations_per_job\": {iters},\n"));
    json.push_str("  \"scheme\": \"dtss\",\n");
    json.push_str("  \"tcp_backends\": {\n");
    json.push_str(&format!("    \"iterations_per_job\": {tcp_iters},\n"));
    for (jobs, blocking, evented) in &faceoff {
        json.push_str(&format!(
            "    \"jobs_{jobs}\": {{\"blocking_jobs_per_sec\": {blocking:.3}, \
             \"evented_jobs_per_sec\": {evented:.3}}},\n"
        ));
    }
    json.push_str(&format!(
        "    \"evented_at_least_blocking_at_16_jobs\": {},\n",
        evented_16 >= blocking_16
    ));
    json.push_str("    \"connection_scaling\": [\n");
    for (i, (conns, blocking, evented)) in scaling.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"connections\": {conns}, \"jobs\": {scaling_jobs}, \
             \"blocking_jobs_per_sec\": {blocking:.3}, \"evented_jobs_per_sec\": {evented:.3}}}{}\n",
            if i + 1 < scaling.len() { "," } else { "" },
        ));
    }
    json.push_str("    ]\n  },\n");
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"concurrency\": {}, \"batch_k\": {}, \"jobs_per_sec\": {:.3}, \
             \"latency_p50_ms\": {:.3}, \"latency_p99_ms\": {:.3}, \
             \"requests\": {}, \"grants\": {}, \"requests_per_grant\": {:.4}}}{}\n",
            p.concurrency,
            p.batch_k,
            p.jobs as f64 / p.wall_s,
            percentile(&p.latencies_ms, 50.0),
            percentile(&p.latencies_ms, 99.0),
            p.requests,
            p.grants,
            p.requests as f64 / p.grants as f64,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    write_artifact("BENCH_serve.json", json.as_bytes());
}
