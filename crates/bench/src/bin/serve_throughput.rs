//! Serving-layer throughput: one `lss-serve` service, a fixed worker
//! pool, and a stream of jobs. For each (concurrency, batch size)
//! point the harness measures jobs/sec and the p50/p99 of per-job
//! latency (submit to retire, from the service's own `JobStatus`
//! clock), plus scheduling round trips — the number batched grants
//! exist to cut. Results land in `results/BENCH_serve.json`.
//!
//! ```sh
//! cargo run --release -p lss-bench --bin serve_throughput
//! ```

use lss_bench::experiments::{quick_mode, write_artifact};
use lss_core::SchemeKind;
use lss_runtime::protocol::serve::{JobSpec, WorkloadSpec};
use lss_serve::{run_serve_worker, serve, ServeConfig, ServeWorkerConfig};

const WORKERS: usize = 8;

struct Point {
    concurrency: usize,
    batch_k: usize,
    jobs: usize,
    wall_s: f64,
    latencies_ms: Vec<f64>,
    requests: u64,
    grants: u64,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn run_point(concurrency: usize, batch_k: usize, jobs: usize, iters: u64) -> Point {
    let mut cfg = ServeConfig::new(WORKERS);
    cfg.max_active = concurrency;
    cfg.queue_capacity = jobs + 1;
    cfg.batch_k = batch_k;
    let handle = serve(cfg);
    let worker_threads: Vec<_> = (0..WORKERS)
        .map(|w| {
            let mut link = handle.worker_link(w);
            std::thread::spawn(move || {
                run_serve_worker(&mut link, &ServeWorkerConfig::healthy(w))
                    .expect("worker loop failed")
            })
        })
        .collect();
    let started = std::time::Instant::now();
    let mut client = handle.client();
    for i in 0..jobs {
        let spec = JobSpec {
            workload: WorkloadSpec::Uniform { iters, cost: 40 },
            scheme: SchemeKind::Dtss,
            priority: 1 + (i % 4) as u32,
        };
        client.submit(spec).expect("submit");
    }
    client.drain().expect("drain");
    drop(client);
    let report = handle.join();
    let wall_s = started.elapsed().as_secs_f64();
    for t in worker_threads {
        t.join().expect("worker thread");
    }
    assert_eq!(report.jobs_completed as usize, jobs, "all jobs must retire");
    let mut latencies_ms: Vec<f64> = report
        .jobs
        .iter()
        .map(|j| {
            let fin = j.finished_ns.expect("job finished");
            (fin - j.submitted_ns) as f64 / 1e6
        })
        .collect();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    Point {
        concurrency,
        batch_k,
        jobs,
        wall_s,
        latencies_ms,
        requests: report.requests_served,
        grants: report.grants_sent,
    }
}

fn main() {
    let (jobs, iters) = if quick_mode() { (8, 2_000) } else { (32, 20_000) };
    let mut points = Vec::new();
    println!(
        "{:>11} {:>7} {:>9} {:>9} {:>9} {:>9} {:>11}",
        "concurrency", "batch_k", "jobs/s", "p50(ms)", "p99(ms)", "requests", "req/grant"
    );
    for concurrency in [1usize, 4, 16] {
        for batch_k in [1usize, 4] {
            let p = run_point(concurrency, batch_k, jobs, iters);
            println!(
                "{:>11} {:>7} {:>9.2} {:>9.2} {:>9.2} {:>9} {:>11.3}",
                p.concurrency,
                p.batch_k,
                p.jobs as f64 / p.wall_s,
                percentile(&p.latencies_ms, 50.0),
                percentile(&p.latencies_ms, 99.0),
                p.requests,
                p.requests as f64 / p.grants as f64,
            );
            points.push(p);
        }
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"serve_throughput\",\n");
    json.push_str(&format!("  \"workers\": {WORKERS},\n"));
    json.push_str(&format!("  \"jobs_per_point\": {jobs},\n"));
    json.push_str(&format!("  \"iterations_per_job\": {iters},\n"));
    json.push_str("  \"scheme\": \"dtss\",\n  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"concurrency\": {}, \"batch_k\": {}, \"jobs_per_sec\": {:.3}, \
             \"latency_p50_ms\": {:.3}, \"latency_p99_ms\": {:.3}, \
             \"requests\": {}, \"grants\": {}, \"requests_per_grant\": {:.4}}}{}\n",
            p.concurrency,
            p.batch_k,
            p.jobs as f64 / p.wall_s,
            percentile(&p.latencies_ms, 50.0),
            percentile(&p.latencies_ms, 99.0),
            p.requests,
            p.grants,
            p.requests as f64 / p.grants as f64,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    write_artifact("BENCH_serve.json", json.as_bytes());
}
