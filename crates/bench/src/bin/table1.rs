//! Regenerates **Table 1** of the paper: the chunk-size sequences each
//! scheme produces for `I = 1000` iterations on `p = 4` PEs.
//!
//! The paper lists idealized *formula* sequences for TSS/TFSS (they
//! overshoot `I`; the real master clamps the tail), so both forms are
//! printed. The `PAPER` rows are transcribed from the publication and
//! checked digit for digit.

use lss_bench::experiments::write_artifact;
use lss_core::chunk::ChunkDispenser;
use lss_core::scheme::{
    ChunkSizer, FactoringSelfSched, FixedIncreaseSelfSched, GuidedSelfSched, StaticSched,
    TrapezoidFactoringSelfSched, TrapezoidSelfSched,
};
use lss_metrics::table::chunk_table;

const I: u64 = 1000;
const P: u32 = 4;

fn dispensed<S: ChunkSizer>(sizer: S) -> Vec<u64> {
    ChunkDispenser::new(I, sizer).into_sizes()
}

fn main() {
    let mut rows: Vec<(String, Vec<u64>)> = Vec::new();

    rows.push(("S".into(), dispensed(StaticSched::new(I, P))));
    rows.push(("SS".into(), vec![1, 1, 1, 1, 1])); // "1 1 1 1 1 …"
    rows.push(("GSS".into(), dispensed(GuidedSelfSched::new(P))));

    let tss = TrapezoidSelfSched::new(I, P);
    rows.push(("TSS*".into(), tss.formula_sequence()));
    rows.push(("TSS".into(), dispensed(TrapezoidSelfSched::new(I, P))));
    rows.push(("FSS".into(), dispensed(FactoringSelfSched::new(P))));
    rows.push(("FISS".into(), dispensed(FixedIncreaseSelfSched::new(I, P, 3))));

    let tfss = TrapezoidFactoringSelfSched::new(I, P);
    let tfss_formula: Vec<u64> = tfss
        .stage_chunks()
        .iter()
        .flat_map(|&c| std::iter::repeat_n(c, P as usize))
        .collect();
    rows.push(("TFSS*".into(), tfss_formula));
    rows.push(("TFSS".into(), dispensed(TrapezoidFactoringSelfSched::new(I, P))));

    let rendered = chunk_table(
        &format!(
            "Table 1: chunk sizes for I = {I} and p = {P}\n(CSS(k): 'k k k k ...' with user-chosen k; rows marked * are the paper's\nidealized formula listings; unmarked rows are what the master dispenses)"
        ),
        &rows,
    );
    println!("{rendered}");

    // Digit-for-digit checks against the publication.
    let paper_gss = vec![
        250u64, 188, 141, 106, 79, 59, 45, 33, 25, 19, 14, 11, 8, 6, 4, 3, 3, 2, 1, 1, 1, 1,
    ];
    let paper_tss = vec![125u64, 117, 109, 101, 93, 85, 77, 69, 61, 53, 45, 37, 29, 21, 13, 5];
    let paper_fss: Vec<u64> = [125u64, 62, 32, 16, 8, 4, 2, 1]
        .iter()
        .flat_map(|&s| std::iter::repeat_n(s, 4))
        .collect();
    let paper_fiss: Vec<u64> = [50u64, 83, 117]
        .iter()
        .flat_map(|&s| std::iter::repeat_n(s, 4))
        .collect();
    let paper_tfss_stages = vec![113u64, 81, 49, 17];

    let mut checks = String::new();
    let mut check = |name: &str, ours: &[u64], paper: &[u64]| {
        let ok = ours == paper;
        let line = format!(
            "{name:8} {}\n",
            if ok { "MATCHES paper" } else { "DIFFERS from paper" }
        );
        print!("{line}");
        checks.push_str(&line);
        assert!(ok, "{name} mismatch:\n ours  {ours:?}\n paper {paper:?}");
    };
    check("GSS", &dispensed(GuidedSelfSched::new(P)), &paper_gss);
    check("TSS*", &TrapezoidSelfSched::new(I, P).formula_sequence(), &paper_tss);
    check("FSS", &dispensed(FactoringSelfSched::new(P)), &paper_fss);
    check("FISS", &dispensed(FixedIncreaseSelfSched::new(I, P, 3)), &paper_fiss);
    check(
        "TFSS",
        TrapezoidFactoringSelfSched::new(I, P).stage_chunks(),
        &paper_tfss_stages,
    );

    write_artifact("table1.txt", format!("{rendered}\n{checks}").as_bytes());
}
