//! Shared experiment plumbing: the paper's workloads, cluster
//! configurations, overload sets and run helpers.

use std::fs;
use std::path::PathBuf;
use std::sync::OnceLock;

use lss_core::master::SchemeKind;
use lss_metrics::breakdown::RunReport;
use lss_metrics::speedup::SpeedupSeries;
use lss_sim::engine::sequential_time;
use lss_sim::{simulate, simulate_tree, ClusterSpec, LoadTrace, SimConfig, TreeSimConfig};
use lss_workloads::{Mandelbrot, MandelbrotParams, SampledWorkload, Workload};

/// The sampling frequency used throughout the paper's experiments.
pub const PAPER_SF: u64 = 4;

/// Where experiment artifacts are written (`LSS_RESULTS` or
/// `results/`). Created on first use.
pub fn out_dir() -> PathBuf {
    let dir = std::env::var("LSS_RESULTS").unwrap_or_else(|_| "results".into());
    let path = PathBuf::from(dir);
    fs::create_dir_all(&path).expect("cannot create results directory");
    path
}

/// Writes a text artifact into [`out_dir`], echoing the path.
pub fn write_artifact(name: &str, contents: &[u8]) -> PathBuf {
    let path = out_dir().join(name);
    fs::write(&path, contents).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("  wrote {}", path.display());
    path
}

/// Whether quick mode is on (`LSS_QUICK=1`): smaller windows, for
/// smoke-testing the harness.
pub fn quick_mode() -> bool {
    std::env::var("LSS_QUICK").is_ok_and(|v| v == "1")
}

/// The Table 2/3 workload: Mandelbrot 4000×2000 (or 1000×500 in quick
/// mode), reordered with `S_f = 4`. Cached — construction computes the
/// full fractal once.
pub fn table23_workload() -> &'static SampledWorkload<Mandelbrot> {
    static CACHE: OnceLock<SampledWorkload<Mandelbrot>> = OnceLock::new();
    CACHE.get_or_init(|| {
        let params = if quick_mode() {
            MandelbrotParams::paper_domain(1000, 500)
        } else {
            MandelbrotParams::table23_window()
        };
        SampledWorkload::new(Mandelbrot::new(params), PAPER_SF)
    })
}

/// The Figure 1/2 workload: Mandelbrot 1200×1200 (300×300 quick).
pub fn figure12_workload() -> Mandelbrot {
    let params = if quick_mode() {
        MandelbrotParams::paper_domain(300, 300)
    } else {
        MandelbrotParams::figure12_window()
    };
    Mandelbrot::new(params)
}

/// Load traces for the `p = 8` table experiments.
///
/// §5.1's non-dedicated overload set for `p = 8`: 1 fast and 3 slow
/// slaves (fast PEs are indices 0–2, slow are 3–7).
pub fn table_traces(nondedicated: bool) -> Vec<LoadTrace> {
    let mut traces = vec![LoadTrace::dedicated(); 8];
    if nondedicated {
        traces[0] = LoadTrace::paper_overloaded();
        for t in traces.iter_mut().take(6).skip(3) {
            *t = LoadTrace::paper_overloaded();
        }
    }
    traces
}

/// Overload set for the speedup figures at slave count `p` (§5.1):
/// `p = 1` → 1 fast; `p = 2` → 1 fast + 1 slow; `p = 4` → 1 fast +
/// 1 slow; `p = 8` → 1 fast + 3 slow. Intermediate `p` interpolate.
pub fn speedup_traces(p: usize, nondedicated: bool) -> Vec<LoadTrace> {
    let cluster = ClusterSpec::paper_config(p);
    let mut traces = vec![LoadTrace::dedicated(); p];
    if !nondedicated {
        return traces;
    }
    let fast_count = cluster.slaves.iter().filter(|s| s.name == "US10").count();
    // Always overload one fast PE.
    traces[0] = LoadTrace::paper_overloaded();
    // Overload slow PEs: none below p=2, one at p=2..7, three at p=8.
    let slow_overloads = match p {
        0 | 1 => 0,
        2..=7 => 1,
        _ => 3,
    };
    for i in 0..slow_overloads.min(p.saturating_sub(fast_count)) {
        traces[fast_count + i] = LoadTrace::paper_overloaded();
    }
    traces
}

/// Replicas averaged per table cell: a real cluster's LAN noise decides
/// who wins chunk races, so one deterministic sample would be a
/// razor-edge artifact; we average over jitter seeds instead.
pub const REPLICAS: u64 = 5;
/// Maximum extra per-message latency (OS scheduling + LAN noise).
pub fn jitter() -> lss_sim::SimTime {
    lss_sim::SimTime::from_millis(20)
}

/// Runs one simple/distributed scheme on the `p = 8` paper cluster,
/// averaged over [`REPLICAS`] jitter seeds.
pub fn run_table_scheme(
    scheme: SchemeKind,
    workload: &dyn Workload,
    nondedicated: bool,
) -> RunReport {
    let traces = table_traces(nondedicated);
    let runs: Vec<RunReport> = (0..REPLICAS)
        .map(|seed| {
            let cfg = SimConfig::new(ClusterSpec::paper_p8(), scheme).with_jitter(jitter(), seed);
            simulate(&cfg, workload, &traces)
        })
        .collect();
    lss_metrics::breakdown::average_reports(&runs)
}

/// Runs tree scheduling on the `p = 8` paper cluster.
pub fn run_table_trees(workload: &dyn Workload, nondedicated: bool, weighted: bool) -> RunReport {
    let cfg = TreeSimConfig::new(ClusterSpec::paper_p8(), weighted);
    simulate_tree(&cfg, workload, &table_traces(nondedicated))
}

/// All reports for Table 2 (simple schemes + equal-allocation TreeS).
pub fn table2_reports(workload: &dyn Workload, nondedicated: bool) -> Vec<RunReport> {
    let mut reports: Vec<RunReport> = SchemeKind::table2_schemes()
        .into_iter()
        .map(|s| run_table_scheme(s, workload, nondedicated))
        .collect();
    reports.push(run_table_trees(workload, nondedicated, false));
    reports
}

/// All reports for Table 3 (distributed schemes + weighted TreeS).
pub fn table3_reports(workload: &dyn Workload, nondedicated: bool) -> Vec<RunReport> {
    let mut reports: Vec<RunReport> = SchemeKind::table3_schemes()
        .into_iter()
        .map(|s| run_table_scheme(s, workload, nondedicated))
        .collect();
    reports.push(run_table_trees(workload, nondedicated, true));
    reports
}

/// Speedup series for one scheme across `p = 1..=8` (Figures 4–7).
///
/// `T_1` is the dedicated sequential time on one fast PE.
pub fn speedup_series(
    scheme: Option<SchemeKind>, // None = tree scheduling
    workload: &dyn Workload,
    nondedicated: bool,
    weighted_tree: bool,
) -> SpeedupSeries {
    let t1 = sequential_time(workload, lss_sim::cluster::FAST_SPEED);
    let mut runs = Vec::new();
    for p in 1..=8usize {
        let traces = speedup_traces(p, nondedicated);
        let t_p = match scheme {
            Some(s) => {
                (0..REPLICAS)
                    .map(|seed| {
                        let cfg = SimConfig::new(ClusterSpec::paper_config(p), s)
                            .with_jitter(jitter(), seed);
                        simulate(&cfg, workload, &traces).t_p
                    })
                    .sum::<f64>()
                    / REPLICAS as f64
            }
            None => {
                let cluster = ClusterSpec::paper_config(p);
                simulate_tree(&TreeSimConfig::new(cluster, weighted_tree), workload, &traces).t_p
            }
        };
        runs.push((p as u32, t_p));
    }
    let name = scheme.map_or("TreeS", |s| s.name());
    SpeedupSeries::from_times(name, t1, &runs)
}

/// Speedup series for a whole figure.
pub fn figure_series(distributed: bool, nondedicated: bool, workload: &dyn Workload) -> Vec<SpeedupSeries> {
    let schemes = if distributed {
        SchemeKind::table3_schemes()
    } else {
        SchemeKind::table2_schemes()
    };
    let mut out: Vec<SpeedupSeries> = schemes
        .into_iter()
        .map(|s| speedup_series(Some(s), workload, nondedicated, false))
        .collect();
    out.push(speedup_series(None, workload, nondedicated, distributed));
    out
}

/// Converts speedup series to the plot/CSV point format.
pub fn series_points(series: &[SpeedupSeries]) -> Vec<(String, Vec<(f64, f64)>)> {
    series
        .iter()
        .map(|s| {
            let pts = s
                .p_values
                .iter()
                .zip(&s.speedups)
                .map(|(&p, &sp)| (p as f64, sp))
                .collect();
            (s.scheme.clone(), pts)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_traces_shape() {
        let ded = table_traces(false);
        assert_eq!(ded.len(), 8);
        assert!(ded.iter().all(|t| t.q_at(lss_sim::SimTime::ZERO) == 1));
        let non = table_traces(true);
        let overloaded: Vec<usize> = (0..8)
            .filter(|&i| non[i].q_at(lss_sim::SimTime::ZERO) > 1)
            .collect();
        assert_eq!(overloaded, vec![0, 3, 4, 5]); // 1 fast + 3 slow
    }

    #[test]
    fn speedup_traces_match_paper_configs() {
        for (p, expect) in [(1usize, 1usize), (2, 2), (4, 2), (8, 4)] {
            let tr = speedup_traces(p, true);
            let n = tr
                .iter()
                .filter(|t| t.q_at(lss_sim::SimTime::ZERO) > 1)
                .count();
            assert_eq!(n, expect, "p={p}");
        }
        assert!(speedup_traces(4, false)
            .iter()
            .all(|t| t.q_at(lss_sim::SimTime::ZERO) == 1));
    }

    #[test]
    fn series_points_shape() {
        let s = vec![SpeedupSeries::new("X", vec![1, 2], vec![1.0, 1.5])];
        let pts = series_points(&s);
        assert_eq!(pts[0].0, "X");
        assert_eq!(pts[0].1, vec![(1.0, 1.0), (2.0, 1.5)]);
    }
}
