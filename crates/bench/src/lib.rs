//! # lss-bench — the experiment harness
//!
//! One binary per table/figure of the paper (run them with
//! `cargo run --release -p lss-bench --bin <name>`):
//!
//! | binary | regenerates |
//! |--------|-------------|
//! | `table1` | Table 1 — chunk-size sequences for `I = 1000, p = 4` |
//! | `table2` | Table 2 — simple schemes on the 8-slave cluster |
//! | `table3` | Table 3 — distributed schemes on the 8-slave cluster |
//! | `fig1`   | Figure 1 — Mandelbrot cost profile, original vs `S_f = 4` |
//! | `fig2`   | Figure 2 — the fractal (PPM + ASCII) |
//! | `fig4_7` | Figures 4–7 — speedup curves, simple/distributed × dedicated/non-dedicated |
//! | `ablations` | the design-choice ablations listed in DESIGN.md |
//! | `all_experiments` | everything above, writing `results/` |
//!
//! Output goes to the `results/` directory (override with
//! `LSS_RESULTS`). Set `LSS_QUICK=1` to shrink the Mandelbrot windows
//! for smoke runs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
