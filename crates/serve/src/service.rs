//! The scheduler daemon: event loop, admission control, lifecycle.
//!
//! One thread owns all scheduling state ([`MultiJobScheduler`] +
//! [`JobQueue`]) and serializes every interaction — worker requests,
//! client submissions, disconnect notices, lease polls — through one
//! event channel, exactly as the one-shot master serializes its
//! transport inbox. Connections are threads that pump frames into that
//! channel and write the replies back out; an in-process peer skips
//! the socket and sends events directly ([`crate::LocalLink`]).
//!
//! Lifecycle: the service runs until asked to drain (client `Drain`
//! frame) and all work retires, or until `exit_after_jobs` jobs have
//! completed (the CI smoke-test knob). From then on every worker
//! request is answered with `Shutdown` and every submission with a
//! typed `Rejected`; the loop exits once each connected worker has
//! been told, so no thread is left parked on a socket.
//!
//! Two TCP front ends feed the same event loop ([`ServeBackend`]):
//! the original thread-per-connection blocking sockets, and a single
//! epoll reactor thread ([`crate::evented`]). Replies route back
//! through [`ReplyTo`], which hides the difference — a channel to a
//! connection thread, or the reactor's outbox plus a waker nudge —
//! so the state machine itself never knows which backend carried the
//! frame.

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lss_core::power::{AcpConfig, VirtualPower};
use lss_core::LeaseConfig;
use lss_runtime::protocol::serve::{
    JobState, JobStatus, ServeFrame, ServeRequest,
};
use lss_runtime::transport::frame::{read_frame_blocking, write_frame};
use lss_runtime::transport::tcp::tcp_listen_on;
use lss_runtime::transport::TransportError;
use lss_trace::{ClockDomain, EventKind, SharedSink, Trace, TraceEvent, TraceMeta};

use lss_core::Chunk;

use crate::client::ServeClient;
use crate::journal::{JobSnapshot, Journal, JournalConfig, RecoveredState};
use crate::link::LocalLink;
use crate::queue::{JobQueue, QueuedJob};
use crate::scheduler::{FairSnapshot, MultiJobScheduler, QuarantineConfig, SchedulerConfig};

/// Static configuration of the serving daemon.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Size of the worker pool (dense ids `0..workers`).
    pub workers: usize,
    /// Virtual power of each worker.
    pub powers: Vec<VirtualPower>,
    /// Bound on *waiting* jobs; a submission past it is rejected.
    pub queue_capacity: usize,
    /// Bound on concurrently *active* jobs.
    pub max_active: usize,
    /// Batched-grant bound `k`: chunks per round trip per worker.
    pub batch_k: usize,
    /// Pool-level ACP derivation (partitioned across jobs). The
    /// default scale is finer than the paper's 10 so fair shares keep
    /// their proportions after integer apportionment.
    pub acp: AcpConfig,
    /// Chunk-lease parameters for every job's master.
    pub lease: LeaseConfig,
    /// How long the event loop waits for events before polling leases.
    pub poll_interval: Duration,
    /// Trace sink; job lifecycle and every master's chunk events land
    /// here, job-tagged.
    pub trace: SharedSink,
    /// Exit automatically once this many jobs completed (`None` = run
    /// until drained).
    pub exit_after_jobs: Option<u64>,
    /// Worker-health scoring and straggler-quarantine policy.
    pub quarantine: QuarantineConfig,
    /// Durable job journal (`None` = in-memory only). With
    /// [`JournalConfig::recover`], unfinished jobs found in the
    /// directory are re-admitted with only their un-completed
    /// iterations left to schedule.
    pub journal: Option<JournalConfig>,
    /// How long the evented front end lets an established connection
    /// stay silent before treating it as half-open and closing it
    /// (workers hear a disconnect notice, so held chunks requeue).
    /// Generous by default: serve workers legitimately go quiet for a
    /// whole batch computation between requests.
    pub idle_deadline: Duration,
}

impl ServeConfig {
    /// Defaults for a pool of `workers` equal machines.
    pub fn new(workers: usize) -> Self {
        ServeConfig {
            workers,
            powers: vec![VirtualPower::new(1.0); workers],
            queue_capacity: 64,
            max_active: 8,
            batch_k: 4,
            acp: AcpConfig::new(1000, 0),
            lease: LeaseConfig::RUNTIME_DEFAULT,
            poll_interval: Duration::from_millis(5),
            trace: SharedSink::disabled(),
            exit_after_jobs: None,
            quarantine: QuarantineConfig::default(),
            journal: None,
            idle_deadline: Duration::from_secs(120),
        }
    }
}

/// Which TCP front end [`serve_tcp`] runs. Both speak the identical
/// framed protocol and feed the same single-threaded event loop; they
/// differ only in how connections are multiplexed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeBackend {
    /// One blocking thread per connection (the original front end).
    Blocking,
    /// One epoll reactor thread for every connection (`lss-reactor`).
    Evented,
}

impl ServeBackend {
    /// Resolves the backend from `LSS_SERVE_BACKEND`: `blocking` (or
    /// unset/empty) and `evented` are accepted; anything else is a
    /// typed error rather than a silent fallback.
    pub fn from_env() -> Result<ServeBackend, TransportError> {
        match std::env::var("LSS_SERVE_BACKEND") {
            Err(_) => Ok(ServeBackend::Blocking),
            Ok(v) if v.is_empty() || v == "blocking" => Ok(ServeBackend::Blocking),
            Ok(v) if v == "evented" => Ok(ServeBackend::Evented),
            Ok(v) => Err(TransportError::Io(format!(
                "unknown LSS_SERVE_BACKEND `{v}` (expected `blocking` or `evented`)"
            ))),
        }
    }
}

/// Where a reply to an [`Event::Frame`] goes: a channel back to the
/// blocking connection thread (or local link), or the evented
/// reactor's outbox keyed by connection token. Either way the send is
/// fire-and-forget — a peer that vanished mid-request simply never
/// reads its reply, exactly as bytes in a dead socket would be lost.
pub(crate) enum ReplyTo {
    /// An mpsc sender (connection thread or in-process link).
    Channel(Sender<ServeFrame>),
    /// The evented front end's outbox plus the owning connection.
    Evented {
        /// Registration token of the connection awaiting the reply.
        token: u64,
        /// The reactor's reply queue (waking it is part of `reply`).
        outbox: Arc<crate::evented::EvOutbox>,
    },
}

impl ReplyTo {
    pub(crate) fn send(self, frame: ServeFrame) {
        match self {
            ReplyTo::Channel(tx) => {
                let _ = tx.send(frame);
            }
            ReplyTo::Evented { token, outbox } => outbox.reply(token, frame),
        }
    }
}

/// An event on the service's single serialized queue.
pub(crate) enum Event {
    /// A frame expecting a reply.
    Frame {
        /// The decoded frame.
        frame: ServeFrame,
        /// Where the reply goes (connection thread, local link, or the
        /// evented reactor's outbox).
        reply: ReplyTo,
    },
    /// A frame with no reply (heartbeats).
    Post(ServeFrame),
    /// A worker's connection died.
    WorkerGone(usize),
    /// Die immediately — no drain, no farewells, and *no* final journal
    /// compaction (the crash-recovery analogue of SIGKILL).
    Kill,
}

/// Everything the service learned, returned by [`ServeHandle::join`].
#[derive(Debug)]
pub struct ServeReport {
    /// Final job table (done, active-at-exit, and queued-at-exit).
    pub jobs: Vec<JobStatus>,
    /// Cross-job progress at each job completion (fairness evidence).
    pub snapshots: Vec<FairSnapshot>,
    /// Worker scheduling round trips served (hellos included).
    pub requests_served: u64,
    /// Chunks granted across all batches.
    pub grants_sent: u64,
    /// Jobs that ran to completion.
    pub jobs_completed: u64,
    /// Submissions refused by admission control.
    pub jobs_rejected: u64,
    /// ACP partitions committed (initial one included).
    pub replans: u32,
    /// The job-tagged event stream, when tracing was enabled.
    pub trace: Option<Trace>,
}

/// A running service: the handle spawns clients and in-process worker
/// links, and joins the daemon for its report.
pub struct ServeHandle {
    tx: Sender<Event>,
    thread: JoinHandle<ServeReport>,
    accept_stop: Option<Arc<AtomicBool>>,
    /// How to nudge the front end awake once the stop flag is set: a
    /// self-connect for the blocking acceptor (which only observes the
    /// flag after `accept()` returns), a waker for the reactor.
    stop_signal: Option<StopSignal>,
    /// The acceptor/reactor thread, joined so "service finished" means
    /// the front end's loop has actually exited, not merely been asked.
    front_end: Option<JoinHandle<()>>,
    /// Dial address, when listening on TCP.
    pub addr: Option<SocketAddr>,
}

/// The wake-up that makes the front end notice its stop flag.
enum StopSignal {
    /// Dial the listener once so a blocking `accept()` returns.
    Kick(SocketAddr),
    /// Interrupt the reactor's `epoll_wait`.
    Wake(lss_reactor::Waker),
}

impl StopSignal {
    fn fire(&self) {
        match self {
            StopSignal::Kick(addr) => {
                let _ = TcpStream::connect(*addr);
            }
            StopSignal::Wake(waker) => waker.wake(),
        }
    }
}

impl ServeHandle {
    /// An in-process client (submissions, job queries, drain).
    pub fn client(&self) -> ServeClient {
        ServeClient::local(LocalLink::new(self.tx.clone(), None))
    }

    /// An in-process link for worker `id` — hand it to
    /// [`crate::run_serve_worker`].
    pub fn worker_link(&self, worker: usize) -> LocalLink {
        LocalLink::new(self.tx.clone(), Some(worker))
    }

    /// Waits for the service to finish (drain requested and work
    /// retired, or the job limit reached) and returns its report.
    ///
    /// The TCP acceptor keeps listening until the service itself exits
    /// (its thread flips the stop flag) — joining must not refuse
    /// peers that have not dialed yet.
    pub fn join(self) -> ServeReport {
        let ServeHandle { tx, thread, accept_stop, stop_signal, front_end, .. } = self;
        drop(tx);
        let report = match thread.join() {
            Ok(report) => report,
            Err(_) => panic!("service thread panicked"),
        };
        // The service thread already flagged and signalled the front
        // end on its way out; repeating both here is belt-and-braces
        // so the join below can never park on a lost wakeup.
        if let Some(stop) = &accept_stop {
            stop.store(true, Ordering::SeqCst);
        }
        if let Some(signal) = &stop_signal {
            signal.fire();
        }
        if let Some(fe) = front_end {
            let _ = fe.join();
        }
        report
    }

    /// Kills the service abruptly: the event loop exits on the spot —
    /// active jobs stay unfinished, connected workers are cut off, and
    /// the journal is left exactly as the write-ahead log last wrote it
    /// (no parting checkpoint). This is the in-process analogue of
    /// SIGKILL, for crash-recovery tests; the returned report reflects
    /// the state at the moment of death.
    pub fn kill(self) -> ServeReport {
        let _ = self.tx.send(Event::Kill);
        self.join()
    }
}

/// Starts an in-process service (no sockets). Peers attach through
/// [`ServeHandle::client`] and [`ServeHandle::worker_link`].
///
/// Panics if the configured journal directory cannot be opened; use
/// [`try_serve`] to handle that as a typed error.
pub fn serve(cfg: ServeConfig) -> ServeHandle {
    match try_serve(cfg) {
        Ok(handle) => handle,
        Err(e) => panic!("failed to start service: {e}"),
    }
}

/// Starts an in-process service, surfacing journal-open failures as a
/// typed error instead of a panic.
pub fn try_serve(cfg: ServeConfig) -> Result<ServeHandle, TransportError> {
    let (tx, rx) = channel();
    let service = Service::new(cfg)?;
    let thread = std::thread::spawn(move || service.run(rx));
    Ok(ServeHandle { tx, thread, accept_stop: None, stop_signal: None, front_end: None, addr: None })
}

/// Starts a service listening on TCP (`port` 0 = ephemeral). Workers
/// and clients dial the returned handle's `addr` and are told apart by
/// their hello frame; a peer speaking the legacy unversioned protocol
/// is refused with a typed `Rejected` frame.
///
/// The front end is chosen by `LSS_SERVE_BACKEND` (see
/// [`ServeBackend::from_env`]); use [`serve_tcp_with`] to pin one
/// explicitly.
pub fn serve_tcp(cfg: ServeConfig, host: &str, port: u16) -> Result<ServeHandle, TransportError> {
    serve_tcp_with(cfg, host, port, ServeBackend::from_env()?)
}

/// [`serve_tcp`] with an explicit front end.
pub fn serve_tcp_with(
    cfg: ServeConfig,
    host: &str,
    port: u16,
    backend: ServeBackend,
) -> Result<ServeHandle, TransportError> {
    match backend {
        ServeBackend::Blocking => serve_tcp_blocking(cfg, host, port),
        ServeBackend::Evented => serve_tcp_evented(cfg, host, port),
    }
}

/// The thread-per-connection front end: one blocking acceptor thread,
/// one [`connection_loop`] thread per peer.
fn serve_tcp_blocking(
    cfg: ServeConfig,
    host: &str,
    port: u16,
) -> Result<ServeHandle, TransportError> {
    let listener_handle = tcp_listen_on(host, port)?;
    let addr = listener_handle.addr;
    let listener = listener_handle.into_listener();
    let (tx, rx) = channel::<Event>();
    let service = Service::new(cfg)?;
    let stop = Arc::new(AtomicBool::new(false));
    let thread = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let report = service.run(rx);
            // Service is gone: flag the acceptor, then kick it with a
            // self-connect — a blocking `accept()` observes the flag
            // only after it returns, so without the kick the acceptor
            // would park until some unrelated peer happened to dial.
            stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(addr);
            report
        })
    };
    let front_end = {
        let stop = Arc::clone(&stop);
        let tx = tx.clone();
        std::thread::spawn(move || loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    // Checked immediately after accept returns: the
                    // kick (or any peer landing after it) exits here.
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    if stream.set_nodelay(true).is_err() || stream.set_nonblocking(false).is_err()
                    {
                        continue;
                    }
                    let tx = tx.clone();
                    std::thread::spawn(move || connection_loop(stream, tx));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        })
    };
    Ok(ServeHandle {
        tx,
        thread,
        accept_stop: Some(stop),
        stop_signal: Some(StopSignal::Kick(addr)),
        front_end: Some(front_end),
        addr: Some(addr),
    })
}

/// The reactor front end: every connection multiplexed onto one epoll
/// thread ([`crate::evented`]); replies travel outbox → waker → wire.
fn serve_tcp_evented(
    cfg: ServeConfig,
    host: &str,
    port: u16,
) -> Result<ServeHandle, TransportError> {
    let listener_handle = tcp_listen_on(host, port)?;
    let addr = listener_handle.addr;
    let listener = listener_handle.into_listener();
    let (tx, rx) = channel::<Event>();
    let idle_deadline = cfg.idle_deadline;
    let service = Service::new(cfg)?;
    let stop = Arc::new(AtomicBool::new(false));
    let front = crate::evented::start(listener, tx.clone(), Arc::clone(&stop), idle_deadline)?;
    let waker = front.waker.clone();
    let thread = {
        let stop = Arc::clone(&stop);
        let waker = front.waker.clone();
        std::thread::spawn(move || {
            let report = service.run(rx);
            // Flag, then wake: the reactor drains its outbox (the
            // farewell `Shutdown` frames queued by the loop above) and
            // flushes them to the wire before tearing down.
            stop.store(true, Ordering::SeqCst);
            waker.wake();
            report
        })
    };
    Ok(ServeHandle {
        tx,
        thread,
        accept_stop: Some(stop),
        stop_signal: Some(StopSignal::Wake(waker)),
        front_end: Some(front.thread),
        addr: Some(addr),
    })
}

/// Pumps one TCP connection: handshake, then frame → event → reply.
fn connection_loop(mut stream: TcpStream, tx: Sender<Event>) {
    let Ok(first) = read_frame_blocking(&mut stream) else { return };
    let mut frame = match ServeFrame::decode(&first) {
        Ok(f @ (ServeFrame::HelloWorker { .. } | ServeFrame::HelloClient)) => f,
        Ok(_) => {
            let reject = ServeFrame::Rejected { reason: "handshake required".into() };
            let _ = write_frame(&mut stream, &reject.encode());
            return;
        }
        Err(e) => {
            // A legacy (unversioned) or mis-versioned peer gets a typed
            // refusal it can surface, never a deserialization panic.
            let reject = ServeFrame::Rejected { reason: e.to_string() };
            let _ = write_frame(&mut stream, &reject.encode());
            return;
        }
    };
    let worker_id = match &frame {
        ServeFrame::HelloWorker { worker, .. } => Some(*worker),
        _ => None,
    };
    loop {
        if matches!(frame, ServeFrame::Heartbeat { .. }) {
            if tx.send(Event::Post(frame)).is_err() {
                let _ = write_frame(&mut stream, &ServeFrame::Shutdown.encode());
                return;
            }
        } else {
            let (rtx, rrx) = channel();
            if tx.send(Event::Frame { frame, reply: ReplyTo::Channel(rtx) }).is_err() {
                // Service already exited: tell the peer to stop.
                let _ = write_frame(&mut stream, &ServeFrame::Shutdown.encode());
                return;
            }
            let Ok(resp) = rrx.recv() else {
                let _ = write_frame(&mut stream, &ServeFrame::Shutdown.encode());
                return;
            };
            let was_shutdown = matches!(resp, ServeFrame::Shutdown);
            if write_frame(&mut stream, &resp.encode()).is_err() {
                break;
            }
            if was_shutdown {
                return; // orderly exit; no disconnect notice
            }
        }
        match read_frame_blocking(&mut stream).ok().and_then(|p| ServeFrame::decode(&p).ok()) {
            Some(f) => frame = f,
            None => break,
        }
    }
    if let Some(worker) = worker_id {
        let _ = tx.send(Event::WorkerGone(worker));
    }
}

/// The single-threaded service state machine.
struct Service {
    cfg: ServeConfig,
    scheduler: MultiJobScheduler,
    queue: JobQueue,
    /// Crash-recovered jobs waiting for an active slot; drained before
    /// the regular queue so recovery finishes first.
    recovered_queue: Vec<JobSnapshot>,
    /// The durable journal, when configured. Dropped (degrading to
    /// in-memory scheduling) if an append ever fails — the daemon
    /// refuses to panic mid-run over a full disk.
    journal: Option<Journal>,
    epoch: Instant,
    next_job: u64,
    draining: bool,
    completed: u64,
    rejected: u64,
    requests: u64,
    seen: Vec<bool>,
    told_shutdown: Vec<bool>,
    total_iterations: u64,
}

impl Service {
    fn new(cfg: ServeConfig) -> Result<Self, TransportError> {
        let journal_state = match &cfg.journal {
            Some(jc) => Some(
                Journal::open(jc)
                    .map_err(|e| TransportError::Io(format!("journal open failed: {e}")))?,
            ),
            None => None,
        };
        let scheduler = MultiJobScheduler::new(
            SchedulerConfig {
                workers: cfg.workers,
                powers: cfg.powers.clone(),
                acp: cfg.acp,
                lease: cfg.lease,
                batch_k: cfg.batch_k,
                quarantine: cfg.quarantine,
            },
            cfg.trace.clone(),
        );
        let queue = JobQueue::new(cfg.queue_capacity);
        let workers = cfg.workers;
        let mut service = Service {
            cfg,
            scheduler,
            queue,
            recovered_queue: Vec::new(),
            journal: None,
            epoch: Instant::now(),
            next_job: 1,
            draining: false,
            completed: 0,
            rejected: 0,
            requests: 0,
            seen: vec![false; workers],
            told_shutdown: vec![false; workers],
            total_iterations: 0,
        };
        if let Some((journal, state)) = journal_state {
            service.journal = Some(journal);
            service.next_job = state.next_job.max(1);
            let now = service.now();
            for job in state.jobs {
                service.total_iterations += job.total();
                if service.scheduler.active_len() < service.cfg.max_active {
                    service.scheduler.activate_recovered(
                        job.id,
                        &job.spec,
                        job.submitted_ns,
                        &job.completed_ranges(),
                        now,
                    );
                } else {
                    service.recovered_queue.push(job);
                }
            }
        }
        Ok(service)
    }

    /// Service-epoch nanoseconds, aligned with the trace sink's epoch
    /// when tracing is on.
    fn now(&self) -> u64 {
        if self.cfg.trace.enabled() {
            self.cfg.trace.now_ns()
        } else {
            self.epoch.elapsed().as_nanos() as u64
        }
    }

    /// Whether the service has no more scheduling to do.
    fn done(&self) -> bool {
        let drained = self.draining
            && self.queue.is_empty()
            && self.recovered_queue.is_empty()
            && self.scheduler.is_idle();
        let limit = self.cfg.exit_after_jobs.is_some_and(|n| self.completed >= n);
        drained || limit
    }

    /// Done, and every worker that ever connected has been told.
    fn finished(&self) -> bool {
        self.done()
            && self
                .seen
                .iter()
                .zip(&self.told_shutdown)
                .all(|(seen, told)| !seen || *told)
    }

    fn run(mut self, rx: Receiver<Event>) -> ServeReport {
        loop {
            if self.finished() {
                break;
            }
            match rx.recv_timeout(self.cfg.poll_interval) {
                Ok(Event::Frame { frame, reply }) => {
                    let resp = self.handle(frame);
                    reply.send(resp);
                }
                Ok(Event::Post(ServeFrame::Heartbeat { worker })) => {
                    if worker < self.cfg.workers {
                        let now = self.now();
                        self.scheduler.heartbeat(worker, now);
                    }
                }
                Ok(Event::Post(_)) => {}
                Ok(Event::WorkerGone(worker)) => {
                    if worker < self.cfg.workers {
                        self.scheduler.worker_disconnected(worker);
                        // No link left to say goodbye on: a gone worker
                        // must not hold the service open waiting for a
                        // `Shutdown` it can never receive. A redial
                        // re-enters via `Hello` and re-marks `seen`.
                        self.seen[worker] = false;
                        self.told_shutdown[worker] = false;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    let now = self.now();
                    self.scheduler.poll(now);
                    let retired = self.scheduler_retired(now);
                    self.completed += retired;
                    self.maybe_checkpoint();
                }
                Ok(Event::Kill) => {
                    // Simulated SIGKILL: skip the parting checkpoint so
                    // recovery exercises the raw write-ahead log.
                    return self.report();
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        // A final compaction so a restart re-admits nothing that
        // already retired.
        let state = self.journal_state();
        if let Some(journal) = &mut self.journal {
            let _ = journal.checkpoint(&state);
        }
        self.report()
    }

    /// The durable image of the service's current job table: every
    /// open job (active, recovered-waiting, queued) with its live
    /// completion bitmap.
    fn journal_state(&self) -> RecoveredState {
        let mut jobs = self.scheduler.journal_snapshot();
        jobs.extend(self.recovered_queue.iter().cloned());
        for qj in self.queue.iter() {
            jobs.push(JobSnapshot::empty(qj.id, qj.spec.clone(), qj.submitted_ns));
        }
        jobs.sort_by_key(|j| j.id);
        RecoveredState { next_job: self.next_job, jobs }
    }

    /// Compacts the journal when enough completions accumulated.
    fn maybe_checkpoint(&mut self) {
        if self.journal.as_ref().is_some_and(Journal::checkpoint_due) {
            let state = self.journal_state();
            if let Some(journal) = &mut self.journal {
                if journal.checkpoint(&state).is_err() {
                    self.journal = None;
                }
            }
        }
    }

    /// Write-ahead journals one reported chunk completion. An append
    /// failure permanently degrades to in-memory scheduling rather
    /// than panicking the daemon.
    fn journal_complete(&mut self, job: u64, chunk: Chunk) {
        if let Some(journal) = &mut self.journal {
            if journal.append_complete(job, chunk).is_err() {
                self.journal = None;
            }
        }
    }

    /// Journals retired job ids.
    fn journal_finish(&mut self, retired: &[u64]) {
        if let Some(journal) = &mut self.journal {
            for &id in retired {
                if journal.append_finish(id).is_err() {
                    self.journal = None;
                    return;
                }
            }
        }
    }

    /// Lease expiry alone cannot complete a job, but a requeued chunk
    /// re-granted and completed via a piggy-backed result can retire
    /// one between requests; sweep for completions after polls too.
    fn scheduler_retired(&mut self, now: u64) -> u64 {
        let retired = self.scheduler.record_results(usize::MAX, &[], now);
        self.journal_finish(&retired);
        let n = retired.len() as u64;
        if n > 0 {
            self.activate_from_queue();
        }
        n
    }

    fn handle(&mut self, frame: ServeFrame) -> ServeFrame {
        match frame {
            ServeFrame::HelloWorker { worker, q } => self.worker_request(worker, q, Vec::new()),
            ServeFrame::Request(ServeRequest { worker, q, results }) => {
                self.worker_request(worker, q, results)
            }
            ServeFrame::Heartbeat { worker } => {
                if worker < self.cfg.workers {
                    let now = self.now();
                    self.scheduler.heartbeat(worker, now);
                }
                ServeFrame::Ack
            }
            ServeFrame::Submit(spec) => self.submit(spec),
            ServeFrame::JobsQuery => ServeFrame::JobList(self.statuses()),
            ServeFrame::Drain => {
                self.draining = true;
                ServeFrame::Ack
            }
            ServeFrame::HelloClient => ServeFrame::Ack,
            _ => ServeFrame::Rejected { reason: "unexpected frame".into() },
        }
    }

    fn worker_request(
        &mut self,
        worker: usize,
        q: u32,
        results: Vec<lss_runtime::protocol::serve::JobChunkResult>,
    ) -> ServeFrame {
        if worker >= self.cfg.workers {
            return ServeFrame::Rejected {
                reason: format!("unknown worker {worker} (pool size {})", self.cfg.workers),
            };
        }
        self.seen[worker] = true;
        self.requests += 1;
        let now = self.now();
        // Write-ahead: completions hit the journal before the
        // scheduler, so anything the trace later claims complete is
        // recoverable. Replay ORs bits, so duplicates are harmless.
        for r in &results {
            self.journal_complete(r.job, r.result.chunk);
        }
        let retired = self.scheduler.record_results(worker, &results, now);
        self.journal_finish(&retired);
        self.completed += retired.len() as u64;
        self.activate_from_queue();
        if self.done() {
            self.told_shutdown[worker] = true;
            return ServeFrame::Shutdown;
        }
        let grants = self.scheduler.grants_for(worker, q, now);
        if grants.is_empty() {
            ServeFrame::Retry
        } else {
            ServeFrame::Grants(grants)
        }
    }

    fn submit(&mut self, spec: lss_runtime::protocol::serve::JobSpec) -> ServeFrame {
        let id = self.next_job;
        self.next_job += 1;
        let now = self.now();
        self.cfg
            .trace
            .record(TraceEvent::new(now, EventKind::JobSubmitted).on_job(id));
        let reject = |svc: &mut Service, reason: String| {
            svc.rejected += 1;
            svc.cfg
                .trace
                .record(TraceEvent::new(svc.now(), EventKind::JobRejected).on_job(id));
            ServeFrame::Rejected { reason }
        };
        if self.draining || self.done() {
            return reject(self, "service is draining; not accepting jobs".into());
        }
        if spec.priority == 0 {
            return reject(self, "priority must be at least 1".into());
        }
        if spec.workload.is_empty() {
            return reject(self, "empty loop: nothing to schedule".into());
        }
        let iters = spec.workload.len();
        if self.scheduler.active_len() < self.cfg.max_active {
            self.scheduler.activate(id, &spec, now);
        } else if let Err(reason) =
            self.queue.offer(QueuedJob { id, spec: spec.clone(), submitted_ns: now })
        {
            return reject(self, reason);
        }
        // Write-ahead relative to the acknowledgment: the admission is
        // durable before `Accepted` leaves the service, so a crash can
        // never lose a job the client was told it has.
        if let Some(journal) = &mut self.journal {
            if journal.append_admit(id, now, &spec).is_err() {
                self.journal = None;
            }
        }
        self.total_iterations += iters;
        self.cfg
            .trace
            .record(TraceEvent::new(self.now(), EventKind::JobAdmitted).on_job(id));
        ServeFrame::Accepted { job: id }
    }

    fn activate_from_queue(&mut self) {
        // Crash-recovered jobs first: they keep their completion
        // bitmaps and were admitted before anything still queued.
        while self.scheduler.active_len() < self.cfg.max_active {
            match self.recovered_queue.first() {
                Some(_) => {
                    let job = self.recovered_queue.remove(0);
                    let now = self.now();
                    self.scheduler.activate_recovered(
                        job.id,
                        &job.spec,
                        job.submitted_ns,
                        &job.completed_ranges(),
                        now,
                    );
                }
                None => break,
            }
        }
        while self.scheduler.active_len() < self.cfg.max_active {
            match self.queue.pop_highest() {
                Some(job) => self.scheduler.activate(job.id, &job.spec, job.submitted_ns),
                None => break,
            }
        }
    }

    fn statuses(&self) -> Vec<JobStatus> {
        let mut out: Vec<JobStatus> = self
            .queue
            .iter()
            .map(|qj| JobStatus {
                job: qj.id,
                priority: qj.spec.priority,
                total: qj.spec.workload.len(),
                completed: 0,
                state: JobState::Queued,
                submitted_ns: qj.submitted_ns,
                finished_ns: None,
            })
            .collect();
        out.extend(self.recovered_queue.iter().map(|js| JobStatus {
            job: js.id,
            priority: js.spec.priority,
            total: js.total(),
            completed: js.completed_count(),
            state: JobState::Recovering,
            submitted_ns: js.submitted_ns,
            finished_ns: None,
        }));
        out.extend(self.scheduler.statuses(self.draining));
        out.sort_by_key(|j| j.job);
        out
    }

    fn report(self) -> ServeReport {
        let trace = if self.cfg.trace.enabled() {
            Some(self.cfg.trace.take(TraceMeta {
                scheme: "serve".into(),
                workers: self.cfg.workers,
                total_iterations: self.total_iterations,
                clock: ClockDomain::Monotonic,
            }))
        } else {
            None
        };
        ServeReport {
            jobs: self.statuses(),
            snapshots: self.scheduler.snapshots().to_vec(),
            requests_served: self.requests,
            grants_sent: self.scheduler.grants_sent(),
            jobs_completed: self.completed,
            jobs_rejected: self.rejected,
            replans: self.scheduler.replans(),
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::{run_serve_worker, ServeWorkerConfig};
    use lss_core::master::SchemeKind;
    use lss_runtime::protocol::serve::{JobSpec, WorkloadSpec};

    fn uniform(priority: u32, iters: u64) -> JobSpec {
        JobSpec {
            workload: WorkloadSpec::Uniform { iters, cost: 5 },
            scheme: SchemeKind::Dtss,
            priority,
        }
    }

    fn spawn_workers(handle: &ServeHandle, n: usize) -> Vec<std::thread::JoinHandle<()>> {
        (0..n)
            .map(|w| {
                let mut link = handle.worker_link(w);
                std::thread::spawn(move || {
                    let cfg = ServeWorkerConfig::healthy(w);
                    run_serve_worker(&mut link, &cfg).expect("worker failed");
                })
            })
            .collect()
    }

    #[test]
    fn in_process_jobs_run_to_completion() {
        let handle = serve(ServeConfig::new(4));
        let mut client = handle.client();
        let a = client.submit(uniform(1, 300)).expect("submit a");
        let b = client.submit(uniform(2, 300)).expect("submit b");
        let c = client.submit(uniform(4, 300)).expect("submit c");
        assert_eq!((a, b, c), (1, 2, 3), "service assigns dense job ids");
        let workers = spawn_workers(&handle, 4);
        client.drain().expect("drain");
        drop(client);
        let report = handle.join();
        for w in workers {
            w.join().expect("worker thread");
        }
        assert_eq!(report.jobs_completed, 3);
        assert_eq!(report.jobs.len(), 3);
        for job in &report.jobs {
            assert_eq!(job.state, JobState::Done, "job {} not done", job.job);
            assert_eq!(job.completed, job.total);
            assert!(job.finished_ns.is_some());
        }
        assert!(report.requests_served > 0);
        assert!(report.grants_sent >= 3, "at least one grant per job");
    }

    #[test]
    fn admission_control_rejects_when_full_with_typed_reason() {
        let mut cfg = ServeConfig::new(2);
        cfg.max_active = 1;
        cfg.queue_capacity = 1;
        let handle = serve(cfg);
        let mut client = handle.client();
        client.submit(uniform(1, 200)).expect("first fills the active slot");
        client.submit(uniform(1, 200)).expect("second fills the queue");
        let err = client.submit(uniform(1, 200)).expect_err("third must be rejected");
        match err {
            crate::ServeError::Rejected(reason) => {
                assert!(reason.contains("queue full"), "reason: {reason}")
            }
            other => panic!("expected Rejected, got {other}"),
        }
        // Invalid specs are rejected before touching the queue.
        let err = client.submit(uniform(0, 100)).expect_err("priority 0");
        assert!(matches!(err, crate::ServeError::Rejected(_)));
        let err = client.submit(uniform(1, 0)).expect_err("empty loop");
        assert!(matches!(err, crate::ServeError::Rejected(_)));
        let workers = spawn_workers(&handle, 2);
        client.drain().expect("drain");
        drop(client);
        let report = handle.join();
        for w in workers {
            w.join().expect("worker thread");
        }
        assert_eq!(report.jobs_completed, 2);
        assert_eq!(report.jobs_rejected, 3);
    }

    #[test]
    fn drain_refuses_new_jobs() {
        let handle = serve(ServeConfig::new(1));
        let mut client = handle.client();
        // Keep one job in flight so the draining service stays up long
        // enough to answer the refused submission with a typed reason.
        client.submit(uniform(1, 5000)).expect("submit before drain");
        client.drain().expect("drain");
        let err = client.submit(uniform(1, 10)).expect_err("draining");
        assert!(matches!(err, crate::ServeError::Rejected(_)));
        let workers = spawn_workers(&handle, 1);
        drop(client);
        let report = handle.join();
        for w in workers {
            w.join().expect("worker thread");
        }
        assert_eq!(report.jobs_completed, 1);
        assert_eq!(report.jobs_rejected, 1);
    }

    #[test]
    fn jobs_query_reports_queued_active_done() {
        let mut cfg = ServeConfig::new(1);
        cfg.max_active = 1;
        let handle = serve(cfg);
        let mut client = handle.client();
        client.submit(uniform(1, 100)).expect("submit 1");
        client.submit(uniform(1, 100)).expect("submit 2");
        let jobs = client.jobs().expect("jobs");
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].state, JobState::Active);
        assert_eq!(jobs[1].state, JobState::Queued);
        let workers = spawn_workers(&handle, 1);
        client.drain().expect("drain");
        drop(client);
        handle.join();
        for w in workers {
            w.join().expect("worker thread");
        }
    }
}
