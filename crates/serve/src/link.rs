//! Connection abstraction between the service and its peers.
//!
//! The serve protocol is strict request/reply (heartbeats excepted),
//! so a connection reduces to two operations: [`ServeLink::call`]
//! (send a frame, block for the reply) and [`ServeLink::post`] (send
//! with no reply expected). Two implementations:
//!
//! - [`LocalLink`] — an in-process channel straight into the service
//!   event loop (tests, benches, and the in-process worker threads of
//!   `lss serve`);
//! - [`TcpLink`] — a framed socket, sharing the length-prefixed
//!   framing of the one-shot transport.

use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc::{channel, Sender};

use lss_runtime::protocol::serve::ServeFrame;
use lss_runtime::transport::frame::{read_frame_blocking, write_frame};
use lss_runtime::transport::TransportError;

use crate::service::Event;

/// A request/reply connection to the service.
pub trait ServeLink: Send {
    /// Sends `frame` and blocks for the service's reply.
    fn call(&mut self, frame: ServeFrame) -> Result<ServeFrame, TransportError>;

    /// Sends `frame` without expecting a reply (heartbeats).
    fn post(&mut self, frame: ServeFrame) -> Result<(), TransportError>;

    /// Severs and re-establishes the link (chaos injection). Links
    /// that cannot reconnect return [`TransportError::Unsupported`].
    fn reconnect(&mut self) -> Result<(), TransportError> {
        Err(TransportError::Unsupported("reconnect"))
    }
}

/// An in-process link: frames travel over the service's event channel.
///
/// Dropping a worker's `LocalLink` mid-run is the in-process analogue
/// of a TCP connection dying: the service receives a disconnect notice
/// and requeues whatever the worker held.
pub struct LocalLink {
    tx: Sender<Event>,
    /// `Some(id)` for worker links — a disconnect notice is emitted on
    /// drop so the scheduler can requeue leased chunks.
    worker: Option<usize>,
}

impl LocalLink {
    pub(crate) fn new(tx: Sender<Event>, worker: Option<usize>) -> Self {
        LocalLink { tx, worker }
    }
}

impl ServeLink for LocalLink {
    fn call(&mut self, frame: ServeFrame) -> Result<ServeFrame, TransportError> {
        let (rtx, rrx) = channel();
        self.tx
            .send(Event::Frame { frame, reply: rtx })
            .map_err(|_| TransportError::Disconnected("service stopped".into()))?;
        rrx.recv()
            .map_err(|_| TransportError::Disconnected("service stopped".into()))
    }

    fn post(&mut self, frame: ServeFrame) -> Result<(), TransportError> {
        self.tx
            .send(Event::Post(frame))
            .map_err(|_| TransportError::Disconnected("service stopped".into()))
    }
}

impl Drop for LocalLink {
    fn drop(&mut self) {
        if let Some(worker) = self.worker {
            let _ = self.tx.send(Event::WorkerGone(worker));
        }
    }
}

/// A framed TCP link speaking the serve protocol.
pub struct TcpLink {
    stream: TcpStream,
    addr: SocketAddr,
}

impl TcpLink {
    /// Dials the service.
    pub fn connect(addr: SocketAddr) -> Result<Self, TransportError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| TransportError::Io(format!("connect {addr} failed: {e}")))?;
        stream
            .set_nodelay(true)
            .map_err(|e| TransportError::Io(format!("nodelay failed: {e}")))?;
        Ok(TcpLink { stream, addr })
    }
}

impl ServeLink for TcpLink {
    fn call(&mut self, frame: ServeFrame) -> Result<ServeFrame, TransportError> {
        write_frame(&mut self.stream, &frame.encode())?;
        let payload = read_frame_blocking(&mut self.stream).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                TransportError::Disconnected("service closed the connection".into())
            } else {
                TransportError::Io(e.to_string())
            }
        })?;
        ServeFrame::decode(&payload).map_err(|e| TransportError::Malformed(e.to_string()))
    }

    fn post(&mut self, frame: ServeFrame) -> Result<(), TransportError> {
        write_frame(&mut self.stream, &frame.encode())
    }

    fn reconnect(&mut self) -> Result<(), TransportError> {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        *self = Self::connect(self.addr)?;
        Ok(())
    }
}
