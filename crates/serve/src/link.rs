//! Connection abstraction between the service and its peers.
//!
//! The serve protocol is strict request/reply (heartbeats excepted),
//! so a connection reduces to two operations: [`ServeLink::call`]
//! (send a frame, block for the reply) and [`ServeLink::post`] (send
//! with no reply expected). Two implementations:
//!
//! - [`LocalLink`] — an in-process channel straight into the service
//!   event loop (tests, benches, and the in-process worker threads of
//!   `lss serve`);
//! - [`TcpLink`] — a framed socket, sharing the length-prefixed
//!   framing of the one-shot transport.
//!
//! Every request carries a **deadline** ([`ServeLink::set_deadline`],
//! default [`DEFAULT_DEADLINE`]). A dead or half-open peer — a socket
//! the kernel still thinks is connected but whose process is gone —
//! costs one deadline and surfaces as a typed
//! [`TransportError::TimedOut`], never an indefinite hang. Partial
//! frames survive a timed-out read (the [`FrameBuf`] accumulator keeps
//! the bytes), so a *slow* peer is not confused with a dead one:
//! retrying the wait resumes mid-frame.

use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

use lss_core::fault::ChaosRng;
use lss_runtime::backoff::BackoffPolicy;
use lss_runtime::protocol::serve::ServeFrame;
use lss_runtime::transport::frame::{fill_from, write_frame, FrameBuf};
use lss_runtime::transport::TransportError;

use crate::service::{Event, ReplyTo};

/// Deadline applied to every request unless overridden with
/// [`ServeLink::set_deadline`]. Generous — it guards against *dead*
/// peers, not slow ones.
pub const DEFAULT_DEADLINE: Duration = Duration::from_secs(30);

/// A request/reply connection to the service.
pub trait ServeLink: Send {
    /// Sends `frame` and blocks for the service's reply, at most until
    /// the link's deadline elapses ([`TransportError::TimedOut`]).
    fn call(&mut self, frame: ServeFrame) -> Result<ServeFrame, TransportError>;

    /// Sends `frame` without expecting a reply (heartbeats).
    fn post(&mut self, frame: ServeFrame) -> Result<(), TransportError>;

    /// Bounds how long a [`call`](ServeLink::call) may wait for its
    /// reply. `None` waits forever (tests that want to block on a
    /// stopped clock). New links start at [`DEFAULT_DEADLINE`].
    fn set_deadline(&mut self, deadline: Option<Duration>);

    /// Severs and re-establishes the link (chaos injection). Links
    /// that cannot reconnect return [`TransportError::Unsupported`].
    fn reconnect(&mut self) -> Result<(), TransportError> {
        Err(TransportError::Unsupported("reconnect"))
    }
}

/// An in-process link: frames travel over the service's event channel.
///
/// Dropping a worker's `LocalLink` mid-run is the in-process analogue
/// of a TCP connection dying: the service receives a disconnect notice
/// and requeues whatever the worker held.
pub struct LocalLink {
    tx: Sender<Event>,
    deadline: Option<Duration>,
    /// `Some(id)` for worker links — a disconnect notice is emitted on
    /// drop so the scheduler can requeue leased chunks.
    worker: Option<usize>,
}

impl LocalLink {
    pub(crate) fn new(tx: Sender<Event>, worker: Option<usize>) -> Self {
        LocalLink { tx, deadline: Some(DEFAULT_DEADLINE), worker }
    }
}

impl ServeLink for LocalLink {
    fn call(&mut self, frame: ServeFrame) -> Result<ServeFrame, TransportError> {
        let (rtx, rrx) = channel();
        self.tx
            .send(Event::Frame { frame, reply: ReplyTo::Channel(rtx) })
            .map_err(|_| TransportError::Disconnected("service stopped".into()))?;
        match self.deadline {
            None => {
                rrx.recv().map_err(|_| TransportError::Disconnected("service stopped".into()))
            }
            Some(deadline) => rrx.recv_timeout(deadline).map_err(|e| match e {
                RecvTimeoutError::Timeout => TransportError::TimedOut { deadline },
                RecvTimeoutError::Disconnected => {
                    TransportError::Disconnected("service stopped".into())
                }
            }),
        }
    }

    fn post(&mut self, frame: ServeFrame) -> Result<(), TransportError> {
        self.tx
            .send(Event::Post(frame))
            .map_err(|_| TransportError::Disconnected("service stopped".into()))
    }

    fn set_deadline(&mut self, deadline: Option<Duration>) {
        self.deadline = deadline;
    }
}

impl Drop for LocalLink {
    fn drop(&mut self) {
        if let Some(worker) = self.worker {
            let _ = self.tx.send(Event::WorkerGone(worker));
        }
    }
}

/// A framed TCP link speaking the serve protocol.
pub struct TcpLink {
    stream: TcpStream,
    addr: SocketAddr,
    deadline: Option<Duration>,
    /// Partial-frame accumulator: bytes read before a timeout are kept
    /// so a deadline never corrupts the stream's framing.
    rbuf: FrameBuf,
}

impl TcpLink {
    /// Dials the service.
    pub fn connect(addr: SocketAddr) -> Result<Self, TransportError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| TransportError::Io(format!("connect {addr} failed: {e}")))?;
        stream
            .set_nodelay(true)
            .map_err(|e| TransportError::Io(format!("nodelay failed: {e}")))?;
        Ok(TcpLink { stream, addr, deadline: Some(DEFAULT_DEADLINE), rbuf: FrameBuf::default() })
    }

    /// Dials the service with a bounded retry budget: each failed
    /// attempt sleeps an equal-jitter backoff delay, and exhausting
    /// `policy.max_attempts` yields a typed
    /// [`TransportError::RetriesExhausted`] carrying the attempt count
    /// and the last failure.
    pub fn connect_with_backoff(
        addr: SocketAddr,
        policy: &BackoffPolicy,
        rng: &mut ChaosRng,
    ) -> Result<Self, TransportError> {
        let mut attempt = 0u32;
        loop {
            match Self::connect(addr) {
                Ok(link) => return Ok(link),
                Err(e) => {
                    attempt += 1;
                    if !policy.allows(attempt) {
                        return Err(TransportError::RetriesExhausted {
                            attempts: attempt,
                            last: e.to_string(),
                        });
                    }
                    std::thread::sleep(policy.delay(attempt - 1, rng));
                }
            }
        }
    }

    /// Waits for one complete reply frame, at most until the deadline.
    fn read_reply(&mut self) -> Result<Vec<u8>, TransportError> {
        let Some(deadline) = self.deadline else {
            // Deadline-less links still never issue an unbounded read:
            // waiting forever is a loop of finite slices, so every
            // syscall keeps a deadline and EOF/reset is noticed on the
            // next slice.
            loop {
                if let Some(payload) = self.rbuf.try_extract()? {
                    return Ok(payload);
                }
                self.stream
                    .set_read_timeout(Some(Duration::from_millis(250)))
                    .map_err(|e| TransportError::Io(format!("set read timeout: {e}")))?;
                let _ = fill_from(&mut self.stream, &mut self.rbuf)?;
            }
        };
        let start = Instant::now();
        loop {
            if let Some(payload) = self.rbuf.try_extract()? {
                return Ok(payload);
            }
            let remaining = deadline
                .checked_sub(start.elapsed())
                .ok_or(TransportError::TimedOut { deadline })?;
            self.stream
                .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))
                .map_err(|e| TransportError::Io(format!("set read timeout: {e}")))?;
            // Ok(false) = this slice of the deadline elapsed with no
            // bytes; loop around — `remaining` shrinks to the TimedOut
            // branch above.
            let _ = fill_from(&mut self.stream, &mut self.rbuf)?;
        }
    }
}

impl ServeLink for TcpLink {
    fn call(&mut self, frame: ServeFrame) -> Result<ServeFrame, TransportError> {
        write_frame(&mut self.stream, &frame.encode())?;
        let payload = self.read_reply().map_err(|e| match e {
            TransportError::Disconnected(_) => {
                TransportError::Disconnected("service closed the connection".into())
            }
            other => other,
        })?;
        ServeFrame::decode(&payload).map_err(|e| TransportError::Malformed(e.to_string()))
    }

    fn post(&mut self, frame: ServeFrame) -> Result<(), TransportError> {
        write_frame(&mut self.stream, &frame.encode())
    }

    fn set_deadline(&mut self, deadline: Option<Duration>) {
        self.deadline = deadline;
    }

    fn reconnect(&mut self) -> Result<(), TransportError> {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        let deadline = self.deadline;
        *self = Self::connect(self.addr)?;
        self.deadline = deadline;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpListener;

    /// A half-open peer — accepts the connection, reads the request,
    /// never replies — costs exactly one deadline, surfaced as a typed
    /// `TimedOut`, not a hang.
    #[test]
    fn half_open_peer_times_out_within_deadline() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().unwrap();
            // Swallow the request, then sit silent until the client
            // hangs up.
            let mut sink = [0u8; 4096];
            while matches!(sock.read(&mut sink), Ok(n) if n > 0) {}
        });

        let deadline = Duration::from_millis(200);
        let mut link = TcpLink::connect(addr).unwrap();
        link.set_deadline(Some(deadline));
        let start = Instant::now();
        let err = link.call(ServeFrame::Drain).unwrap_err();
        let waited = start.elapsed();
        assert!(
            matches!(err, TransportError::TimedOut { deadline: d } if d == deadline),
            "want typed TimedOut, got {err:?}"
        );
        assert!(waited >= deadline, "returned before the deadline: {waited:?}");
        assert!(
            waited < deadline + Duration::from_millis(500),
            "deadline overshot: waited {waited:?} for a {deadline:?} deadline"
        );
        drop(link);
        server.join().unwrap();
    }

    /// Connecting to a dead address exhausts the retry budget and
    /// yields the typed error with an attempt count, not the last
    /// attempt's raw failure.
    #[test]
    fn connect_retries_are_bounded_and_typed() {
        // A listener bound then dropped: the port exists but nothing
        // accepts, so connect fails fast with ECONNREFUSED.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let policy = BackoffPolicy {
            base: Duration::from_micros(10),
            cap: Duration::from_micros(50),
            max_attempts: 3,
        };
        let mut rng = ChaosRng::new(7);
        let err = match TcpLink::connect_with_backoff(addr, &policy, &mut rng) {
            Ok(_) => panic!("connect to a refusing port should fail"),
            Err(e) => e,
        };
        match err {
            TransportError::RetriesExhausted { attempts, last } => {
                assert_eq!(attempts, 3);
                assert!(last.contains("connect"), "last error should name the op: {last}");
            }
            other => panic!("want RetriesExhausted, got {other:?}"),
        }
    }

    /// A reply that arrives in pieces — header now, payload later —
    /// survives intermediate read timeouts via the FrameBuf.
    #[test]
    fn slow_reply_in_pieces_is_reassembled() {
        use std::io::Write;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().unwrap();
            let mut req = [0u8; 4096];
            let _ = sock.read(&mut req).unwrap();
            let payload = ServeFrame::Drain.encode();
            let mut framed = (payload.len() as u32).to_be_bytes().to_vec();
            framed.extend_from_slice(&payload);
            // Dribble the frame one byte at a time, slower than the
            // link's per-slice read timeout granularity.
            for b in framed {
                sock.write_all(&[b]).unwrap();
                sock.flush().unwrap();
                std::thread::sleep(Duration::from_millis(2));
            }
            // Hold the socket open until the client hangs up: closing
            // with unread request bytes pending would RST and discard
            // the dribbled reply.
            while matches!(sock.read(&mut req), Ok(n) if n > 0) {}
        });

        let mut link = TcpLink::connect(addr).unwrap();
        link.set_deadline(Some(Duration::from_secs(5)));
        let reply = link.call(ServeFrame::Drain).unwrap();
        assert!(matches!(reply, ServeFrame::Drain));
        drop(link);
        server.join().unwrap();
    }
}
